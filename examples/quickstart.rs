//! Quickstart: reproduce the paper's headline result.
//!
//! Runs the full `matmul-int` workload on the Cortex-M0 simulator, builds
//! the case study (both technologies at 500 MHz), prints the Table II
//! summary, and reports the 24-month tCDP comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppatc::{CaseStudy, Lifetime, Technology};
use ppatc_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("simulating matmul-int on the Cortex-M0 ISS...");
    let run = Workload::matmul_int().execute()?;
    println!(
        "  {} cycles, {} instructions, checksum {:#010x}\n",
        run.cycles, run.instructions, run.checksum
    );

    let study = CaseStudy::paper(&run)?;
    println!("{}\n", study.summary());

    for months in [6.0, 12.0, 18.0, 24.0] {
        let life = Lifetime::months(months);
        let ratio = study.tcdp_ratio(life);
        let (winner, benefit) = if ratio < 1.0 {
            ("M3D IGZO/CNFET/Si", 1.0 / ratio)
        } else {
            ("all-Si", ratio)
        };
        println!(
            "lifetime {months:>4.0} months: {winner} is {benefit:.3}x more carbon-efficient (tCDP)"
        );
    }

    let si = study.trajectory(Technology::AllSi);
    let m3d = study.trajectory(Technology::M3dIgzoCnfetSi);
    if let (Some(a), Some(b)) = (
        si.embodied_dominance_crossover(),
        m3d.embodied_dominance_crossover(),
    ) {
        println!(
            "\noperational carbon overtakes embodied carbon after {:.1} months (all-Si) / {:.1} months (M3D)",
            a.as_months(),
            b.as_months()
        );
    }
    Ok(())
}
