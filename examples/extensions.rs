//! Beyond the paper: the extension features in one tour.
//!
//! 1. **Standby policies** — what IGZO's >1000 s retention is worth when
//!    the system must keep its state between sessions.
//! 2. **Design-space optimization** — CORDOBA-style tCDP ranking with
//!    latency constraints, and the (execution time, tCDP) Pareto front.
//! 3. **Water footprint** — the conclusion's "extend to water consumption".
//! 4. **Layout export** — a GDS of the M3D bit-cell array plus the GDS3D
//!    process file to render it in 3D, like the paper's artifact.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use ppatc::optimize::{Constraints, DesignSpace, Optimizer};
use ppatc::standby::{standby_power, StandbyPolicy};
use ppatc::{Lifetime, SystemDesign, Technology};
use ppatc_fab::water::WaterModel;
use ppatc_fab::ProcessFlow;
use ppatc_pdk::layout;
use ppatc_units::{Frequency, Time};
use ppatc_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = Workload::matmul_int().execute()?;
    let f = Frequency::from_megahertz(500.0);

    // ---- 1. standby ----
    println!("== standby power for state-retentive sleep (22 h gap) ==");
    for tech in Technology::ALL {
        let design = SystemDesign::new(tech, f)?;
        let p = standby_power(
            &design,
            StandbyPolicy::StateRetentive,
            Time::from_hours(22.0),
        );
        println!(
            "{tech:<18} {:>8.1} µW  (retention {:.1e} s)",
            p.as_microwatts(),
            design.data_mem().retention().as_seconds()
        );
    }

    // ---- 2. optimizer ----
    println!("\n== tCDP-optimal designs at 24 months, latency <= 45 ms ==");
    let optimizer = Optimizer::new(DesignSpace::paper_default(), Lifetime::months(24.0))
        .with_constraints(Constraints::new().with_max_execution_time(Time::from_seconds(0.045)));
    for c in optimizer.run(&run).iter().filter(|c| c.feasible).take(5) {
        println!(
            "{:<18} {:>5} @ {:>4.0} MHz   tCDP {:.4} gCO2e/Hz   {:>5.1} ms   {:.2} mW",
            c.technology.to_string(),
            c.flavor.to_string(),
            c.f_clk.as_megahertz(),
            c.tcdp.as_grams_per_hertz(),
            c.execution_time.as_seconds() * 1e3,
            c.power.as_milliwatts()
        );
    }
    println!(
        "Pareto front (time vs tCDP): {} designs",
        optimizer.pareto_front(&run).len()
    );

    // ---- 3. water ----
    println!("\n== fabrication water footprint ==");
    let water = WaterModel::typical_7nm();
    for tech in Technology::ALL {
        let flow = ProcessFlow::for_technology(tech);
        println!(
            "{tech:<18} UPW {:>6.2} m³/wafer, raw {:>6.2} m³/wafer",
            water.upw_per_wafer(&flow) / 1000.0,
            water.raw_water_per_wafer(&flow) / 1000.0
        );
    }

    // ---- 4. layout export ----
    let out_dir = std::path::Path::new("target/layout");
    std::fs::create_dir_all(out_dir)?;
    for tech in Technology::ALL {
        let lib = layout::cell_array(tech, 8, 8);
        let name = match tech {
            Technology::AllSi => "edram_allsi_8x8",
            Technology::M3dIgzoCnfetSi => "edram_m3d_8x8",
        };
        let gds_path = out_dir.join(format!("{name}.gds"));
        std::fs::write(&gds_path, lib.to_bytes())?;
        let proc_path = out_dir.join(format!("{name}_gds3d.txt"));
        std::fs::write(&proc_path, layout::gds3d_process_file(tech))?;
        println!(
            "\nwrote {} ({} polygons) and {}",
            gds_path.display(),
            lib.polygon_count(),
            proc_path.display()
        );
    }
    println!("render in 3D with GDS3D using the process files above");
    Ok(())
}
