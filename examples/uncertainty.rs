//! Robust comparison under carbon-accounting uncertainty (the paper's
//! Sec. III-D / Fig. 6 methodology).
//!
//! Carbon models are uncertain: embodied footprints of novel processes,
//! deployment lifetimes, grid intensities, and yields are all estimates.
//! This example shows how to find the regions of design space where the
//! technology choice is robust to all of them at once.
//!
//! ```text
//! cargo run --release --example uncertainty
//! ```

use ppatc::montecarlo::{self, UncertaintyRanges};
use ppatc::{CaseStudy, Lifetime, Perturbation};
use ppatc_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = Workload::matmul_int().execute()?;
    let study = CaseStudy::paper(&run)?;
    let map = study.tcdp_map(Lifetime::months(24.0));

    let perturbations: [(&str, Option<Perturbation>); 7] = [
        ("nominal", None),
        (
            "lifetime -6 mo",
            Some(Perturbation::LifetimeDeltaMonths(-6.0)),
        ),
        (
            "lifetime +6 mo",
            Some(Perturbation::LifetimeDeltaMonths(6.0)),
        ),
        ("CI_use / 3", Some(Perturbation::CiUseScale(1.0 / 3.0))),
        ("CI_use x 3", Some(Perturbation::CiUseScale(3.0))),
        ("M3D yield 10%", Some(Perturbation::M3dYield(0.10))),
        ("M3D yield 90%", Some(Perturbation::M3dYield(0.90))),
    ];

    // 1. How does each source of uncertainty move the isoline at x = 1?
    println!("== isoline position at nominal embodied carbon (x = 1) ==");
    for (label, p) in perturbations {
        match map.isoline_y(1.0, p) {
            Some(y) => println!("{label:<16} M3D wins while E_operational scale < {y:.3}"),
            None => println!("{label:<16} all-Si wins at any operational energy"),
        }
    }

    // 2. Scan the (embodied, operational) plane and classify each point as
    //    robustly-M3D, robustly-Si, or uncertainty-dependent.
    println!("\n== robustness map: M = always M3D, S = always all-Si, ? = depends ==");
    print!("  y\\x ");
    for i in 0..11 {
        print!("{:>5.2}", 0.2 + 0.28 * f64::from(i));
    }
    println!();
    let mut robust_m3d = 0usize;
    let mut robust_si = 0usize;
    let mut contested = 0usize;
    for j in (0..11).rev() {
        let y = 0.2 + 0.13 * f64::from(j);
        print!("{y:>6.2}");
        for i in 0..11 {
            let x = 0.2 + 0.28 * f64::from(i);
            let ratios: Vec<f64> = perturbations
                .iter()
                .map(|&(_, p)| map.ratio_with(x, y, p))
                .collect();
            let all_m3d = ratios.iter().all(|&r| r < 1.0);
            let all_si = ratios.iter().all(|&r| r > 1.0);
            let mark = if all_m3d {
                robust_m3d += 1;
                "M"
            } else if all_si {
                robust_si += 1;
                "S"
            } else {
                contested += 1;
                "?"
            };
            print!("{mark:>5}");
        }
        println!();
    }
    println!(
        "\n{robust_m3d} robustly-M3D points, {robust_si} robustly-all-Si points, {contested} uncertainty-dependent"
    );
    println!("(the paper's takeaway: robust regions exist on both sides of the isoline)");

    // 3. Joint Monte Carlo: all uncertainty sources at once, at the
    //    nominal design point.
    println!("\n== joint Monte Carlo over all Fig. 6b uncertainty sources ==");
    let mc = montecarlo::run(&map, &UncertaintyRanges::paper_default(), 20_000, 2025);
    println!("{mc}");
    Ok(())
}
