//! Extending the embodied-carbon model to a *new* process: a single-tier
//! M3D variant (one CNFET tier, no IGZO) — the kind of what-if the paper's
//! conclusion invites ("new materials and processes").
//!
//! Builds a custom layer stack, derives its fabrication flow and per-wafer
//! footprint, and compares all three processes across grids.
//!
//! ```text
//! cargo run --release --example custom_process
//! ```

use ppatc_fab::{grid, EmbodiedModel, ProcessFlow};
use ppatc_pdk::{LayerStack, MetalLayer, StackElement, Technology, TierKind};
use ppatc_units::Length;

/// A hypothetical lighter M3D process: M1–M4 as usual, one CNFET tier with
/// its two local layers, then the global stack — no IGZO tier.
fn single_tier_stack() -> LayerStack {
    let metal = |name: &str, pitch_nm: f64| {
        StackElement::Metal(MetalLayer::new(name, Length::from_nanometers(pitch_nm)))
    };
    LayerStack::from_elements(vec![
        metal("M1", 36.0),
        metal("M2", 36.0),
        metal("M3", 36.0),
        metal("M4", 48.0),
        StackElement::DeviceTier(TierKind::Cnfet),
        metal("M5", 36.0),
        metal("M6", 36.0),
        metal("M7", 48.0),
        metal("M8", 64.0),
        metal("M9", 64.0),
        metal("M10", 80.0),
        metal("M11", 80.0),
    ])
}

fn main() {
    let model = EmbodiedModel::paper_default();
    let custom_flow = ProcessFlow::from_stack("1-tier CNFET/Si", &single_tier_stack());

    println!("== fabrication energy (EPA, kWh per 300 mm wafer) ==");
    for (label, flow) in [
        ("all-Si", ProcessFlow::for_technology(Technology::AllSi)),
        (
            "M3D 2xCNFET+IGZO",
            ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi),
        ),
        ("1-tier CNFET/Si", custom_flow.clone()),
    ] {
        let epa = model.epa(&flow).as_kilowatt_hours();
        println!(
            "{label:<18} {epa:>8.1} kWh  ({} BEOL steps)",
            flow.steps().len()
        );
    }

    println!("\n== embodied carbon per wafer across grids (kgCO2e) ==");
    println!(
        "{:<18}{:>10}{:>10}{:>10}{:>10}",
        "process", "U.S.", "coal", "solar", "Taiwan"
    );
    for (label, breakdown_of) in [
        ("all-Si", Technology::AllSi),
        ("M3D 2xCNFET+IGZO", Technology::M3dIgzoCnfetSi),
    ] {
        print!("{label:<18}");
        for g in grid::FIG2C_GRIDS {
            let b = model.embodied_per_wafer(breakdown_of, g);
            print!("{:>10.0}", b.total().as_kilograms());
        }
        println!();
    }
    // The custom flow reuses the M3D materials model (its CNT layer count
    // differs, but the CNT MPA contribution is negligible either way).
    print!("{:<18}", "1-tier CNFET/Si");
    for g in grid::FIG2C_GRIDS {
        let b = model.embodied_per_wafer_for_flow(&custom_flow, Technology::M3dIgzoCnfetSi, g);
        print!("{:>10.0}", b.total().as_kilograms());
    }
    println!();

    println!(
        "\nThe single-tier variant recovers much of the M3D stacking benefit at a \
         fraction of the added embodied carbon — the kind of trade the PPAtC \
         framework is built to quantify."
    );
}
