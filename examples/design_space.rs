//! Design-space exploration: how clock target, threshold flavor, workload,
//! and M3D yield move the carbon-efficiency comparison.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ppatc::{
    CaseStudy, EmbodiedPipeline, Lifetime, SystemDesign, Technology, UsagePattern, YieldModel,
};
use ppatc_pdk::synthesis::LogicBlock;
use ppatc_pdk::SiVtFlavor;
use ppatc_units::Frequency;
use ppatc_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let life = Lifetime::months(24.0);

    // 1. Threshold flavor × frequency: the Fig. 4 trade-off.
    println!("== Cortex-M0 energy/cycle across flavors and clocks ==");
    let m0 = LogicBlock::cortex_m0();
    for flavor in SiVtFlavor::ALL {
        print!("{flavor:>5}: ");
        for mhz in [200.0, 500.0, 800.0] {
            match m0.synthesize(flavor, Frequency::from_megahertz(mhz)) {
                Ok(r) => print!(
                    "{mhz:>4.0} MHz -> {:>5.2} pJ   ",
                    r.energy_per_cycle().as_picojoules()
                ),
                Err(_) => print!("{mhz:>4.0} MHz ->  n/a     "),
            }
        }
        println!();
    }

    // 2. Workload dependence: every kernel in the suite, at reduced reps to
    //    keep the example quick (access *rates* converge fast).
    println!("\n== tCDP benefit of M3D at 24 months, per workload ==");
    for workload in Workload::suite() {
        let run = workload.execute_with_reps(2)?;
        let study = CaseStudy::paper(&run)?;
        let benefit = 1.0 / study.tcdp_ratio(life);
        println!(
            "{:<12} {:>9} cycles/run   M3D benefit {benefit:.3}x",
            workload.name(),
            run.cycles
        );
    }

    // 3. Yield sensitivity: the M3D process is immature; how good must its
    //    yield be for the 24-month win to survive?
    println!("\n== M3D yield sensitivity (matmul-int, 24 months) ==");
    let run = Workload::matmul_int().execute_with_reps(4)?;
    let f = Frequency::from_megahertz(500.0);
    let si = SystemDesign::new(Technology::AllSi, f)?;
    for yield_pct in [10, 30, 50, 70, 90] {
        let m3d = SystemDesign::new(Technology::M3dIgzoCnfetSi, f)?
            .with_yield(YieldModel::Fixed(f64::from(yield_pct) / 100.0));
        let study = CaseStudy::from_designs(
            si.clone(),
            m3d,
            &run,
            EmbodiedPipeline::paper_default(),
            UsagePattern::paper_default(),
        );
        let ratio = study.tcdp_ratio(life);
        println!(
            "yield {yield_pct:>3}%: tCDP(M3D)/tCDP(all-Si) = {ratio:.3}  ({})",
            if ratio < 1.0 {
                "M3D wins"
            } else {
                "all-Si wins"
            }
        );
    }
    Ok(())
}
