//! Umbrella library for the `ppatc` workspace.
//!
//! This crate exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`) that span multiple member crates.
//! The actual functionality lives in the `ppatc-*` crates; see the
//! workspace [README](https://github.com/example/ppatc) for the map.

pub use ppatc as core;
