//! Cross-crate consistency checks: quantities that two different crates
//! compute (or imply) independently must agree.

use ppatc::{Lifetime, SystemDesign, Technology};
use ppatc_fab::{grid, EmbodiedModel, ProcessArea, ProcessFlow};
use ppatc_pdk::{LayerStack, Lithography, TierKind};
use ppatc_units::{approx_eq, Frequency};
use ppatc_workloads::Workload;

#[test]
fn fab_flow_litho_counts_match_pdk_stack_structure() {
    // The fab crate derives its flows by walking the pdk stacks: the EUV
    // exposure count must equal 2 per 36 nm metal + 4 per device tier.
    for tech in Technology::ALL {
        let stack = tech.stack();
        let flow = ProcessFlow::for_technology(tech);
        let euv_from_structure = 2 * stack.metals_at_pitch(36.0)
            + 4 * (stack.tier_count(TierKind::Cnfet) + stack.tier_count(TierKind::Igzo));
        let euv_in_flow = flow
            .steps()
            .iter()
            .filter(|s| s.tool == Some(ppatc_fab::LithoTool::Euv))
            .count();
        assert_eq!(euv_in_flow, euv_from_structure, "{tech}");
    }
}

#[test]
fn gpa_scaling_consistent_with_epa_ratio() {
    // Eq. 3: GPA scales exactly with EPA; check through the public API.
    let model = EmbodiedModel::paper_default();
    let si_flow = ProcessFlow::for_technology(Technology::AllSi);
    let m3d_flow = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi);
    let epa_ratio = model.epa(&m3d_flow) / model.epa(&si_flow);
    let gpa_ratio = model.gpa(&m3d_flow).as_g_per_cm2() / model.gpa(&si_flow).as_g_per_cm2();
    assert!(approx_eq(epa_ratio, gpa_ratio, 1e-12));
}

#[test]
fn system_area_is_the_sum_of_its_parts() {
    for tech in Technology::ALL {
        let d = SystemDesign::new(tech, Frequency::from_megahertz(500.0)).expect("designs");
        let parts = d.m0().area().as_square_meters()
            + d.program_mem().area().as_square_meters()
            + d.data_mem().area().as_square_meters();
        assert!(approx_eq(d.area().as_square_meters(), parts, 1e-12));
        let die = d.die();
        assert!(approx_eq(
            die.area().as_square_meters(),
            d.area().as_square_meters(),
            1e-9
        ));
    }
}

#[test]
fn evaluate_equals_evaluate_counts() {
    let run = Workload::edn().execute_with_reps(1).expect("edn runs");
    let d =
        SystemDesign::new(Technology::AllSi, Frequency::from_megahertz(500.0)).expect("designs");
    assert_eq!(d.evaluate(&run), d.evaluate_counts(run.cycles, &run.stats));
}

#[test]
fn trajectory_matches_direct_composition() {
    // CarbonTrajectory must be an exact decomposition: total = embodied +
    // usage.operational_carbon(power, t) for any t.
    let run = Workload::fir().execute_with_reps(1).expect("fir runs");
    let study = ppatc::CaseStudy::paper(&run).expect("case study builds");
    for tech in Technology::ALL {
        let traj = study.trajectory(tech);
        for months in [0.5, 7.0, 13.0, 36.0] {
            let life = Lifetime::months(months);
            let direct = study.embodied(tech).per_good_die()
                + study
                    .usage()
                    .operational_carbon(study.evaluation(tech).operational_power, life);
            assert!(approx_eq(
                traj.total(life).as_grams(),
                direct.as_grams(),
                1e-12
            ));
        }
    }
}

#[test]
fn isoline_points_really_equalize_tcdp() {
    let run = Workload::crc32().execute_with_reps(1).expect("crc32 runs");
    let study = ppatc::CaseStudy::paper(&run).expect("case study builds");
    let map = study.tcdp_map(Lifetime::months(24.0));
    for x in [0.6, 1.0, 1.4, 1.9] {
        if let Some(y) = map.isoline_y(x, None) {
            let r = map.ratio(x, y);
            assert!(approx_eq(r, 1.0, 1e-9), "ratio at isoline ({x}, {y}) = {r}");
        }
    }
}

#[test]
fn step_matrix_total_equals_flow_length() {
    for tech in Technology::ALL {
        let flow = ProcessFlow::for_technology(tech);
        let total: usize = flow.step_counts().iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, flow.steps().len(), "{tech}");
    }
}

#[test]
fn custom_stack_flows_compose() {
    // A stack of two identical halves must cost exactly twice one half
    // (per-step energies are context-free).
    use ppatc_pdk::{MetalLayer, StackElement};
    use ppatc_units::Length;
    let half = vec![
        StackElement::Metal(MetalLayer::new("Ma", Length::from_nanometers(36.0))),
        StackElement::DeviceTier(TierKind::Cnfet),
    ];
    let mut double = half.clone();
    double.extend(half.clone());
    let model = EmbodiedModel::paper_default();
    let f1 = ProcessFlow::from_stack("half", &LayerStack::from_elements(half));
    let f2 = ProcessFlow::from_stack("double", &LayerStack::from_elements(double));
    let beol1 = f1.beol_epa(model.step_energies());
    let beol2 = f2.beol_epa(model.step_energies());
    assert!(approx_eq(beol2.as_joules(), 2.0 * beol1.as_joules(), 1e-12));
}

#[test]
fn device_figures_survive_the_full_stack() {
    // Table I orderings must still be visible at the system level: the M3D
    // memory (CNFET reads, IGZO retention) must be faster to read and hold
    // longer than the all-Si memory.
    let f = Frequency::from_megahertz(500.0);
    let si = SystemDesign::new(Technology::AllSi, f).expect("all-Si designs");
    let m3d = SystemDesign::new(Technology::M3dIgzoCnfetSi, f).expect("M3D designs");
    assert!(m3d.program_mem().read_latency() <= si.program_mem().read_latency());
    assert!(m3d.program_mem().retention() > si.program_mem().retention() * 1e3);
}

#[test]
fn all_metal_pitches_have_wire_models_and_litho_classes() {
    for tech in Technology::ALL {
        for metal in tech.stack().metals() {
            let _ = Lithography::for_pitch(metal.pitch());
            let wire = ppatc_pdk::wire::WireModel::for_pitch(metal.pitch());
            assert!(wire.resistance_per_um().as_ohms() > 0.0);
        }
    }
}

#[test]
fn fig2c_breakdowns_are_internally_additive() {
    let model = EmbodiedModel::paper_default();
    for tech in Technology::ALL {
        for g in grid::FIG2C_GRIDS {
            let b = model.embodied_per_wafer(tech, g);
            let sum = b.materials() + b.gases() + b.fab_electricity();
            assert!(approx_eq(sum.as_grams(), b.total().as_grams(), 1e-12));
        }
    }
}

#[test]
fn flow_area_breakdown_partitions_all_areas() {
    let flow = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi);
    let model = EmbodiedModel::paper_default();
    let rows = ppatc_fab::flow::area_breakdown(flow.steps(), model.step_energies());
    assert_eq!(rows.len(), ProcessArea::ALL.len());
    let total: f64 = rows.iter().map(|(_, _, e)| e.as_kilowatt_hours()).sum();
    assert!(approx_eq(
        total,
        flow.beol_epa(model.step_energies()).as_kilowatt_hours(),
        1e-9
    ));
}
