//! Property-based tests (proptest) on the core invariants of the model
//! stack.

use ppatc::{CarbonTrajectory, Lifetime, TcdpMap, UsagePattern};
use ppatc_device::{si, SiVtFlavor};
use ppatc_m0::{Cpu, Instruction, Reg};
use ppatc_units::*;
use ppatc_wafer::{DieSpec, WaferSpec, YieldModel};
use proptest::prelude::*;

proptest! {
    // ---- units ----

    #[test]
    fn unit_arithmetic_is_consistent(a in 1e-6..1e6f64, b in 1e-6..1e6f64) {
        // P·t/t = P, E/t·t = E, ratios are dimensionless inverses.
        let p = Power::from_watts(a);
        let t = Time::from_seconds(b);
        let e = p * t;
        prop_assert!(approx_eq((e / t).as_watts(), a, 1e-12));
        prop_assert!(approx_eq((e / p).as_seconds(), b, 1e-12));
    }

    #[test]
    fn carbon_intensity_round_trip(g_per_kwh in 0.0..5000.0f64, kwh in 0.0..1e6f64) {
        let ci = CarbonIntensity::from_g_per_kwh(g_per_kwh);
        let c = ci * Energy::from_kilowatt_hours(kwh);
        prop_assert!(approx_eq(c.as_grams(), g_per_kwh * kwh, 1e-9));
    }

    #[test]
    fn month_conversions_invert(months in 0.0..1200.0f64) {
        prop_assert!(approx_eq(Time::from_months(months).as_months(), months, 1e-12));
    }

    // ---- devices ----

    #[test]
    fn drain_current_is_monotone_in_vgs(
        v1 in 0.0..1.3f64,
        dv in 0.001..0.5f64,
        vds in 0.05..0.7f64,
    ) {
        let model = si::nfet(SiVtFlavor::Rvt);
        let lo = model.current_per_width(v1, vds);
        let hi = model.current_per_width(v1 + dv, vds);
        prop_assert!(hi > lo, "I(vgs) must increase: {lo} vs {hi}");
    }

    #[test]
    fn drain_current_antisymmetric_under_terminal_swap(
        vgs in 0.0..1.0f64,
        vds in 0.0..0.7f64,
    ) {
        // I(vgs, vds) = -I(vgs - vds, -vds): exchanging source and drain
        // flips the sign.
        let model = si::nfet(SiVtFlavor::Lvt);
        let fwd = model.current_per_width(vgs, vds);
        let rev = model.current_per_width(vgs - vds, -vds);
        prop_assert!(approx_eq(fwd, -rev, 1e-9));
    }

    // ---- wafer / yield ----

    #[test]
    fn dies_per_wafer_decreases_with_die_size(
        w_um in 100.0..2000.0f64,
        h_um in 100.0..2000.0f64,
        grow in 1.01..3.0f64,
    ) {
        let wafer = WaferSpec::paper_default();
        let small = DieSpec::new(Length::from_micrometers(w_um), Length::from_micrometers(h_um));
        let big = DieSpec::new(
            Length::from_micrometers(w_um * grow),
            Length::from_micrometers(h_um * grow),
        );
        prop_assert!(wafer.dies_per_wafer(&big) <= wafer.dies_per_wafer(&small));
    }

    #[test]
    fn yield_models_stay_in_unit_interval(
        d0 in 0.0..10.0f64,
        alpha in 0.1..100.0f64,
        area_mm2 in 0.001..500.0f64,
    ) {
        let a = Area::from_square_millimeters(area_mm2);
        for y in [
            YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a),
            YieldModel::Murphy { d0_per_cm2: d0 }.die_yield(a),
            YieldModel::NegativeBinomial { d0_per_cm2: d0, alpha }.die_yield(a),
        ] {
            prop_assert!((0.0..=1.0).contains(&y), "yield {y} out of range");
        }
    }

    #[test]
    fn murphy_bounds_poisson_from_above(
        d0 in 0.01..5.0f64,
        area_mm2 in 0.1..200.0f64,
    ) {
        let a = Area::from_square_millimeters(area_mm2);
        let poisson = YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a);
        let murphy = YieldModel::Murphy { d0_per_cm2: d0 }.die_yield(a);
        prop_assert!(murphy >= poisson - 1e-12);
    }

    // ---- carbon trajectories ----

    #[test]
    fn total_carbon_is_monotone_in_lifetime(
        embodied_g in 0.1..100.0f64,
        power_mw in 0.01..1000.0f64,
        m1 in 0.1..600.0f64,
        dm in 0.1..600.0f64,
    ) {
        let t = CarbonTrajectory::new(
            CarbonMass::from_grams(embodied_g),
            Power::from_milliwatts(power_mw),
            UsagePattern::paper_default(),
            Time::from_seconds(0.04),
        );
        let a = t.total(Lifetime::months(m1));
        let b = t.total(Lifetime::months(m1 + dm));
        prop_assert!(b > a);
    }

    #[test]
    fn embodied_dominance_crossover_is_exact(
        embodied_g in 0.1..100.0f64,
        power_mw in 0.1..1000.0f64,
    ) {
        let t = CarbonTrajectory::new(
            CarbonMass::from_grams(embodied_g),
            Power::from_milliwatts(power_mw),
            UsagePattern::paper_default(),
            Time::from_seconds(0.04),
        );
        let cross = t.embodied_dominance_crossover().expect("power > 0");
        prop_assert!(approx_eq(
            t.operational(cross).as_grams(),
            t.embodied().as_grams(),
            1e-9
        ));
    }

    #[test]
    fn isoline_equalizes_random_design_pairs(
        e_si in 0.5..50.0f64,
        e_m3d in 0.5..50.0f64,
        p_si in 1.0..100.0f64,
        p_m3d in 1.0..100.0f64,
        x in 0.2..3.0f64,
        months in 1.0..60.0f64,
    ) {
        let usage = UsagePattern::paper_default();
        let exec = Time::from_seconds(0.04);
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(e_si), Power::from_milliwatts(p_si), usage, exec);
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(e_m3d), Power::from_milliwatts(p_m3d), usage, exec);
        let map = TcdpMap::new(si, m3d, Lifetime::months(months), 0.5);
        if let Some(y) = map.isoline_y(x, None) {
            prop_assert!(approx_eq(map.ratio(x, y), 1.0, 1e-9));
        }
    }

    // ---- the instruction set ----

    #[test]
    fn movs_adds_sequences_compute_correct_sums(
        start in 0u8..200,
        add in prop::collection::vec(0u8..50, 1..20),
    ) {
        // Build a straight-line program with the typed encoder, run it, and
        // check the architectural result against u32 arithmetic.
        let mut halves: Vec<u16> = Vec::new();
        let mut push = |i: Instruction| {
            halves.extend_from_slice(i.encode().halfwords());
        };
        push(Instruction::MovImm { rd: Reg(0), imm8: start });
        let mut expected = u32::from(start);
        for &a in &add {
            push(Instruction::AddImm8 { rdn: Reg(0), imm8: a });
            expected = expected.wrapping_add(u32::from(a));
        }
        push(Instruction::Bkpt { imm8: 0 });
        let image: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        let mut cpu = Cpu::new(&image);
        cpu.run(100_000).expect("straight-line program halts");
        prop_assert_eq!(cpu.reg(0), expected);
        // 1 cycle per instruction (+1 for bkpt).
        prop_assert_eq!(cpu.cycles(), add.len() as u64 + 2);
    }

    #[test]
    fn memory_roundtrip_random_words(words in prop::collection::vec(any::<u32>(), 1..32)) {
        use ppatc_m0::{MemorySystem, DATA_BASE};
        let mut mem = MemorySystem::new(&[]);
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(DATA_BASE + 4 * i as u32, w, i as u64).expect("in range");
        }
        for (i, &w) in words.iter().enumerate() {
            let got = mem.read_u32(DATA_BASE + 4 * i as u32, 1000).expect("in range");
            prop_assert_eq!(got, w);
        }
        prop_assert_eq!(mem.stats().data_writes, words.len() as u64);
        prop_assert_eq!(mem.stats().data_reads, words.len() as u64);
    }
}
