//! Property-based tests on the core invariants of the model stack, driven
//! by the deterministic in-repo PRNG ([`ppatc_units::rng::SplitMix64`]).
//!
//! Each property runs a fixed number of pseudo-random cases from a fixed
//! seed, so a failure is always reproducible; the panic message includes the
//! case index and inputs.

use ppatc::{CarbonTrajectory, Lifetime, TcdpMap, UsagePattern};
use ppatc_device::{si, SiVtFlavor};
use ppatc_m0::{Cpu, Instruction, Reg};
use ppatc_units::rng::SplitMix64;
use ppatc_units::*;
use ppatc_wafer::{DieSpec, WaferSpec, YieldModel};

const CASES: usize = 64;

// ---- units ----

#[test]
fn unit_arithmetic_is_consistent() {
    let mut rng = SplitMix64::new(0xBA5E_0001);
    for case in 0..CASES {
        // P·t/t = P, E/t·t = E, ratios are dimensionless inverses.
        let a = rng.log_uniform(1e-6, 1e6);
        let b = rng.log_uniform(1e-6, 1e6);
        let p = Power::from_watts(a);
        let t = Time::from_seconds(b);
        let e = p * t;
        assert!(
            approx_eq((e / t).as_watts(), a, 1e-12),
            "case {case}: a={a}, b={b}"
        );
        assert!(
            approx_eq((e / p).as_seconds(), b, 1e-12),
            "case {case}: a={a}, b={b}"
        );
    }
}

#[test]
fn carbon_intensity_round_trip() {
    let mut rng = SplitMix64::new(0xBA5E_0002);
    for case in 0..CASES {
        let g_per_kwh = rng.uniform(0.0, 5000.0);
        let kwh = rng.uniform(0.0, 1e6);
        let ci = CarbonIntensity::from_g_per_kwh(g_per_kwh);
        let c = ci * Energy::from_kilowatt_hours(kwh);
        assert!(
            approx_eq(c.as_grams(), g_per_kwh * kwh, 1e-9),
            "case {case}"
        );
    }
}

#[test]
fn month_conversions_invert() {
    let mut rng = SplitMix64::new(0xBA5E_0003);
    for case in 0..CASES {
        let months = rng.uniform(0.0, 1200.0);
        assert!(
            approx_eq(Time::from_months(months).as_months(), months, 1e-12),
            "case {case}: {months}"
        );
    }
}

// ---- devices ----

#[test]
fn drain_current_is_monotone_in_vgs() {
    let mut rng = SplitMix64::new(0xBA5E_0004);
    for case in 0..CASES {
        let v1 = rng.uniform(0.0, 1.3);
        let dv = rng.uniform(0.001, 0.5);
        let vds = rng.uniform(0.05, 0.7);
        let model = si::nfet(SiVtFlavor::Rvt);
        let lo = model.current_per_width(v1, vds);
        let hi = model.current_per_width(v1 + dv, vds);
        assert!(hi > lo, "case {case}: I(vgs) must increase: {lo} vs {hi}");
    }
}

#[test]
fn drain_current_antisymmetric_under_terminal_swap() {
    let mut rng = SplitMix64::new(0xBA5E_0005);
    for case in 0..CASES {
        let vgs = rng.uniform(0.0, 1.0);
        let vds = rng.uniform(0.0, 0.7);
        // I(vgs, vds) = -I(vgs - vds, -vds): exchanging source and drain
        // flips the sign.
        let model = si::nfet(SiVtFlavor::Lvt);
        let fwd = model.current_per_width(vgs, vds);
        let rev = model.current_per_width(vgs - vds, -vds);
        assert!(
            approx_eq(fwd, -rev, 1e-9),
            "case {case}: vgs={vgs}, vds={vds}"
        );
    }
}

// ---- wafer / yield ----

#[test]
fn dies_per_wafer_decreases_with_die_size() {
    let mut rng = SplitMix64::new(0xBA5E_0006);
    for case in 0..CASES {
        let w_um = rng.uniform(100.0, 2000.0);
        let h_um = rng.uniform(100.0, 2000.0);
        let grow = rng.uniform(1.01, 3.0);
        let wafer = WaferSpec::paper_default();
        let small = DieSpec::new(
            Length::from_micrometers(w_um),
            Length::from_micrometers(h_um),
        );
        let big = DieSpec::new(
            Length::from_micrometers(w_um * grow),
            Length::from_micrometers(h_um * grow),
        );
        assert!(
            wafer.dies_per_wafer(&big) <= wafer.dies_per_wafer(&small),
            "case {case}: {w_um}x{h_um} grow {grow}"
        );
    }
}

#[test]
fn yield_models_stay_in_unit_interval() {
    let mut rng = SplitMix64::new(0xBA5E_0007);
    for case in 0..CASES {
        let d0 = rng.uniform(0.0, 10.0);
        let alpha = rng.uniform(0.1, 100.0);
        let area_mm2 = rng.log_uniform(0.001, 500.0);
        let a = Area::from_square_millimeters(area_mm2);
        for y in [
            YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a),
            YieldModel::Murphy { d0_per_cm2: d0 }.die_yield(a),
            YieldModel::NegativeBinomial {
                d0_per_cm2: d0,
                alpha,
            }
            .die_yield(a),
        ] {
            assert!(
                (0.0..=1.0).contains(&y),
                "case {case}: yield {y} out of range"
            );
        }
    }
}

#[test]
fn murphy_bounds_poisson_from_above() {
    let mut rng = SplitMix64::new(0xBA5E_0008);
    for case in 0..CASES {
        let d0 = rng.uniform(0.01, 5.0);
        let area_mm2 = rng.uniform(0.1, 200.0);
        let a = Area::from_square_millimeters(area_mm2);
        let poisson = YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a);
        let murphy = YieldModel::Murphy { d0_per_cm2: d0 }.die_yield(a);
        assert!(
            murphy >= poisson - 1e-12,
            "case {case}: d0={d0}, A={area_mm2}"
        );
    }
}

// ---- carbon trajectories ----

#[test]
fn total_carbon_is_monotone_in_lifetime() {
    let mut rng = SplitMix64::new(0xBA5E_0009);
    for case in 0..CASES {
        let embodied_g = rng.uniform(0.1, 100.0);
        let power_mw = rng.log_uniform(0.01, 1000.0);
        let m1 = rng.uniform(0.1, 600.0);
        let dm = rng.uniform(0.1, 600.0);
        let t = CarbonTrajectory::new(
            CarbonMass::from_grams(embodied_g),
            Power::from_milliwatts(power_mw),
            UsagePattern::paper_default(),
            Time::from_seconds(0.04),
        );
        let a = t.total(Lifetime::months(m1));
        let b = t.total(Lifetime::months(m1 + dm));
        assert!(b > a, "case {case}");
    }
}

#[test]
fn embodied_dominance_crossover_is_exact() {
    let mut rng = SplitMix64::new(0xBA5E_000A);
    for case in 0..CASES {
        let embodied_g = rng.uniform(0.1, 100.0);
        let power_mw = rng.log_uniform(0.1, 1000.0);
        let t = CarbonTrajectory::new(
            CarbonMass::from_grams(embodied_g),
            Power::from_milliwatts(power_mw),
            UsagePattern::paper_default(),
            Time::from_seconds(0.04),
        );
        let cross = t.embodied_dominance_crossover().expect("power > 0");
        assert!(
            approx_eq(
                t.operational(cross).as_grams(),
                t.embodied().as_grams(),
                1e-9
            ),
            "case {case}"
        );
    }
}

#[test]
fn isoline_equalizes_random_design_pairs() {
    let mut rng = SplitMix64::new(0xBA5E_000B);
    for case in 0..CASES {
        let e_si = rng.uniform(0.5, 50.0);
        let e_m3d = rng.uniform(0.5, 50.0);
        let p_si = rng.uniform(1.0, 100.0);
        let p_m3d = rng.uniform(1.0, 100.0);
        let x = rng.uniform(0.2, 3.0);
        let months = rng.uniform(1.0, 60.0);
        let usage = UsagePattern::paper_default();
        let exec = Time::from_seconds(0.04);
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(e_si),
            Power::from_milliwatts(p_si),
            usage,
            exec,
        );
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(e_m3d),
            Power::from_milliwatts(p_m3d),
            usage,
            exec,
        );
        let map = TcdpMap::new(si, m3d, Lifetime::months(months), 0.5);
        if let Some(y) = map.isoline_y(x, None) {
            assert!(approx_eq(map.ratio(x, y), 1.0, 1e-9), "case {case}");
        }
    }
}

// ---- the instruction set ----

#[test]
fn movs_adds_sequences_compute_correct_sums() {
    let mut rng = SplitMix64::new(0xBA5E_000C);
    for case in 0..CASES {
        // Build a straight-line program with the typed encoder, run it, and
        // check the architectural result against u32 arithmetic.
        let start = rng.next_below(200) as u8;
        let n_adds = 1 + rng.next_below(19) as usize;
        let add: Vec<u8> = (0..n_adds).map(|_| rng.next_below(50) as u8).collect();
        let mut halves: Vec<u16> = Vec::new();
        let mut push = |i: Instruction| {
            halves.extend_from_slice(i.encode().halfwords());
        };
        push(Instruction::MovImm {
            rd: Reg(0),
            imm8: start,
        });
        let mut expected = u32::from(start);
        for &a in &add {
            push(Instruction::AddImm8 {
                rdn: Reg(0),
                imm8: a,
            });
            expected = expected.wrapping_add(u32::from(a));
        }
        push(Instruction::Bkpt { imm8: 0 });
        let image: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        let mut cpu = Cpu::new(&image);
        cpu.run(100_000).expect("straight-line program halts");
        assert_eq!(cpu.reg(0), expected, "case {case}");
        // 1 cycle per instruction (+1 for bkpt).
        assert_eq!(cpu.cycles(), add.len() as u64 + 2, "case {case}");
    }
}

#[test]
fn memory_roundtrip_random_words() {
    use ppatc_m0::{MemorySystem, DATA_BASE};
    let mut rng = SplitMix64::new(0xBA5E_000D);
    for case in 0..CASES {
        let n = 1 + rng.next_below(31) as usize;
        let words: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut mem = MemorySystem::new(&[]);
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(DATA_BASE + 4 * i as u32, w, i as u64)
                .expect("in range");
        }
        for (i, &w) in words.iter().enumerate() {
            let got = mem
                .read_u32(DATA_BASE + 4 * i as u32, 1000)
                .expect("in range");
            assert_eq!(got, w, "case {case}, word {i}");
        }
        assert_eq!(mem.stats().data_writes, words.len() as u64);
        assert_eq!(mem.stats().data_reads, words.len() as u64);
    }
}

// ---- boundary robustness: try_* APIs never panic on hostile inputs ----

/// Draws a hostile scalar: zero, a negative value, NaN, or an infinity.
fn hostile_scalar(rng: &mut SplitMix64) -> f64 {
    match rng.next_below(5) {
        0 => 0.0,
        1 => -rng.log_uniform(1e-12, 1e12),
        2 => f64::NAN,
        3 => f64::INFINITY,
        _ => f64::NEG_INFINITY,
    }
}

#[test]
fn try_constructors_never_panic_on_hostile_scalars() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut rng = SplitMix64::new(0xBA5E_000E);
    for case in 0..CASES {
        let v = hostile_scalar(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = Lifetime::try_months(v);
            let _ = UsagePattern::try_new(v, CarbonIntensity::from_g_per_kwh(380.0));
            let _ = ppatc::EmbodiedPipeline::paper_default().try_with_embodied_scale(v);
            let _ = si::nfet(SiVtFlavor::Rvt).try_sized(Length::from_nanometers(v));
            let _ = ppatc::montecarlo::MonteCarloConfig::new(1, 1)
                .expect("valid base config")
                .with_failure_budget(v);
        }));
        assert!(outcome.is_ok(), "case {case}: try_* API panicked on {v}");
    }
}

#[test]
fn hostile_scalars_are_rejected_not_accepted() {
    let mut rng = SplitMix64::new(0xBA5E_000F);
    for case in 0..CASES {
        let v = hostile_scalar(&mut rng);
        // Strictly-positive constructors must reject every hostile draw.
        assert!(
            ppatc::EmbodiedPipeline::paper_default()
                .try_with_embodied_scale(v)
                .is_err(),
            "case {case}: embodied scale accepted {v}"
        );
        assert!(
            si::nfet(SiVtFlavor::Rvt)
                .try_sized(Length::from_nanometers(v))
                .is_err(),
            "case {case}: width accepted {v}"
        );
        // Non-negative constructors accept only exact zero.
        assert_eq!(
            Lifetime::try_months(v).is_ok(),
            v == 0.0,
            "case {case}: lifetime({v})"
        );
    }
}

#[test]
fn hostile_trajectory_inputs_never_panic() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut rng = SplitMix64::new(0xBA5E_0010);
    for case in 0..CASES {
        let (a, b, c) = (
            hostile_scalar(&mut rng),
            hostile_scalar(&mut rng),
            hostile_scalar(&mut rng),
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = CarbonTrajectory::try_new(
                CarbonMass::from_grams(a),
                Power::from_watts(b),
                UsagePattern::paper_default(),
                Time::from_seconds(c),
            );
        }));
        assert!(
            outcome.is_ok(),
            "case {case}: trajectory panicked on ({a}, {b}, {c})"
        );
    }
}

#[test]
fn hostile_map_scales_are_structured_errors_across_random_maps() {
    let mut rng = SplitMix64::new(0xBA5E_0011);
    for case in 0..CASES {
        // A random but valid map...
        let traj = |rng: &mut SplitMix64| {
            CarbonTrajectory::new(
                CarbonMass::from_grams(rng.uniform(0.5, 10.0)),
                Power::from_milliwatts(rng.uniform(1.0, 20.0)),
                UsagePattern::paper_default(),
                Time::from_seconds(rng.uniform(0.01, 0.1)),
            )
        };
        let map = TcdpMap::new(
            traj(&mut rng),
            traj(&mut rng),
            Lifetime::months(rng.uniform(1.0, 48.0)),
            rng.uniform(0.1, 1.0),
        );
        // ...still rejects every hostile scale factor with a field name.
        let v = hostile_scalar(&mut rng);
        let e = map
            .try_ratio_with(v, 1.0, None)
            .expect_err("hostile x scale");
        assert_eq!(e.field, "embodied_scale", "case {case}");
        let e = map
            .try_ratio_with(1.0, v, None)
            .expect_err("hostile y scale");
        assert_eq!(e.field, "eop_scale", "case {case}");
    }
}
