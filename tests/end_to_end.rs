//! End-to-end reproduction test: from assembly-level workload simulation to
//! the paper's headline carbon-efficiency claim, exercising every crate in
//! the workspace in one flow.

use ppatc::{CaseStudy, Lifetime, Technology};
use ppatc_units::approx_eq;
use ppatc_workloads::{Workload, WorkloadRun};
use std::sync::OnceLock;

fn full_matmul() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        Workload::matmul_int()
            .execute()
            .expect("matmul-int executes")
    })
}

fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| CaseStudy::paper(full_matmul()).expect("case study builds"))
}

#[test]
fn headline_claim_m3d_is_more_carbon_efficient_at_24_months() {
    let ratio = study().tcdp_ratio(Lifetime::months(24.0));
    let benefit = 1.0 / ratio;
    assert!(
        approx_eq(benefit, 1.02, 0.015),
        "24-month M3D tCDP benefit is {benefit:.3} (paper: 1.02x)"
    );
}

#[test]
fn workload_cycle_count_matches_table2() {
    assert!(approx_eq(full_matmul().cycles as f64, 20_047_348.0, 0.01));
}

#[test]
fn embodied_carbon_ranking_holds_on_every_grid() {
    // The M3D process always costs more carbon to *fabricate* — the win
    // must come from use-phase energy. True per wafer on any grid.
    use ppatc_fab::{grid, EmbodiedModel};
    let model = EmbodiedModel::paper_default();
    for g in grid::FIG2C_GRIDS {
        let si = model.embodied_per_wafer(Technology::AllSi, g).total();
        let m3d = model
            .embodied_per_wafer(Technology::M3dIgzoCnfetSi, g)
            .total();
        assert!(m3d > si, "{}", g.name());
    }
}

#[test]
fn operational_power_ordering_and_magnitude() {
    let s = study();
    let p_si = s.evaluation(Technology::AllSi).operational_power;
    let p_m3d = s.evaluation(Technology::M3dIgzoCnfetSi).operational_power;
    assert!(p_m3d < p_si, "M3D must draw less power");
    // ~10 mW class embedded system.
    assert!(p_si.as_milliwatts() < 15.0 && p_si.as_milliwatts() > 5.0);
}

#[test]
fn both_designs_satisfy_workload_retention() {
    let s = study();
    for tech in Technology::ALL {
        let eval = s.evaluation(tech);
        assert!(eval.retention_satisfied, "{tech} fails retention");
        // matmul-int holds data nearly the whole 40 ms run.
        assert!(eval.required_retention.as_seconds() > 0.01);
    }
}

#[test]
fn all_workloads_flow_through_the_pipeline() {
    for w in Workload::suite() {
        let run = w.execute_with_reps(1).expect("kernel runs");
        let study = CaseStudy::paper(&run).expect("case study builds");
        let ratio = study.tcdp_ratio(Lifetime::months(24.0));
        assert!(
            ratio > 0.8 && ratio < 1.2,
            "{}: implausible tCDP ratio {ratio}",
            w.name()
        );
    }
}

#[test]
fn per_workload_memory_energy_tracks_access_rate() {
    // The denser a workload's memory traffic, the higher its average
    // memory energy per cycle.
    let s = study();
    let si = s.design(Technology::AllSi);
    let mut rates_and_energies: Vec<(f64, f64)> = Vec::new();
    for w in Workload::suite() {
        let run = w.execute_with_reps(1).expect("kernel runs");
        let accesses = run.stats.instruction_fetches
            + run.stats.program_reads
            + run.stats.data_reads
            + run.stats.data_writes;
        let rate = accesses as f64 / run.cycles as f64;
        let e = si.evaluate(&run).mem_energy_per_cycle.as_picojoules();
        rates_and_energies.push((rate, e));
    }
    rates_and_energies.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for pair in rates_and_energies.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "energy must track access rate: {rates_and_energies:?}"
        );
    }
}

#[test]
fn fig5_shape_is_reproduced() {
    let (si, m3d) = study().fig5_series(24);
    // Month 1: M3D above (embodied-dominated). Month 24: M3D below.
    assert!(m3d[0].total > si[0].total);
    assert!(m3d[23].total < si[23].total);
    // Exactly one sign change along the window.
    let mut flips = 0;
    for k in 1..24 {
        let before = m3d[k - 1].total > si[k - 1].total;
        let after = m3d[k].total > si[k].total;
        if before != after {
            flips += 1;
        }
    }
    assert_eq!(flips, 1, "total-carbon curves must cross exactly once");
}

#[test]
fn checksum_golden_references_guard_the_simulator() {
    // Any ISS regression breaks a golden checksum long before it corrupts
    // carbon numbers: verify all six.
    for w in Workload::suite() {
        let run = w.execute_with_reps(1).expect("kernel runs");
        assert_eq!(run.checksum, w.expected_checksum(), "{}", w.name());
    }
}
