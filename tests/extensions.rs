//! Integration tests for the extension features, spanning crates the way a
//! downstream adopter would combine them.

use ppatc::montecarlo::{self, UncertaintyRanges};
use ppatc::optimize::{DesignSpace, Optimizer};
use ppatc::standby::{standby_power, StandbyPolicy};
use ppatc::{Lifetime, SystemDesign, Technology};
use ppatc_fab::act::ActNode;
use ppatc_fab::cost::CostModel;
use ppatc_fab::water::WaterModel;
use ppatc_fab::{grid, EmbodiedModel, ProcessFlow};
use ppatc_units::{approx_eq, Area, Frequency, Length, Time};
use ppatc_workloads::Workload;

#[test]
fn the_three_footprints_tell_one_story() {
    // Carbon, cost, and water all derive from the same step counts, so the
    // M3D premium must appear in all three with correlated magnitudes.
    let si = ProcessFlow::for_technology(Technology::AllSi);
    let m3d = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi);
    let carbon = EmbodiedModel::paper_default();
    let carbon_ratio = carbon
        .embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US)
        .total()
        / carbon
            .embodied_per_wafer(Technology::AllSi, grid::US)
            .total();
    let cost_ratio = CostModel::typical_7nm().cost_per_wafer(&m3d)
        / CostModel::typical_7nm().cost_per_wafer(&si);
    let water_ratio = WaterModel::typical_7nm().upw_per_wafer(&m3d)
        / WaterModel::typical_7nm().upw_per_wafer(&si);
    for (name, r) in [
        ("carbon", carbon_ratio),
        ("cost", cost_ratio),
        ("water", water_ratio),
    ] {
        assert!((1.15..1.7).contains(&r), "{name} ratio {r:.2}");
    }
}

#[test]
fn act_validates_the_baseline_but_not_the_m3d_gap() {
    let wafer = Area::of_wafer(Length::from_millimeters(300.0));
    let act = ActNode::n7().embodied(wafer, grid::US);
    let ours = EmbodiedModel::paper_default();
    let si = ours.embodied_per_wafer(Technology::AllSi, grid::US).total();
    let m3d = ours
        .embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US)
        .total();
    // Bottom-up all-Si agrees with the top-down ACT band…
    assert!((0.7..1.3).contains(&(si / act)));
    // …but ACT has no way to express the M3D flow, whose footprint sits
    // well outside that agreement.
    assert!(m3d / act > 1.25);
}

#[test]
fn standby_and_montecarlo_compose_with_the_case_study() {
    let run = Workload::matmul_int()
        .execute_with_reps(4)
        .expect("matmul runs");
    let study = ppatc::CaseStudy::paper(&run).expect("case study builds");

    // Monte Carlo at the nominal point is contested.
    let map = study.tcdp_map(Lifetime::months(24.0));
    let mc = montecarlo::run(&map, &UncertaintyRanges::paper_default(), 5_000, 11);
    assert!((0.05..0.95).contains(&mc.p_m3d_wins));

    // Under state-retentive standby, the M3D advantage strengthens, so the
    // win probability can only benefit; verify the deterministic ratio
    // moves the right way.
    let f = Frequency::from_megahertz(500.0);
    let si = SystemDesign::new(Technology::AllSi, f).expect("designs");
    let m3d = SystemDesign::new(Technology::M3dIgzoCnfetSi, f).expect("designs");
    let gap = Time::from_hours(22.0);
    assert!(
        standby_power(&si, StandbyPolicy::StateRetentive, gap)
            > standby_power(&m3d, StandbyPolicy::StateRetentive, gap)
    );
}

#[test]
fn optimizer_agrees_with_the_case_study_at_the_papers_point() {
    let run = Workload::matmul_int()
        .execute_with_reps(4)
        .expect("matmul runs");
    let study = ppatc::CaseStudy::paper(&run).expect("case study builds");
    let space = DesignSpace::new(
        Technology::ALL.to_vec(),
        vec![ppatc::SiVtFlavor::Rvt],
        vec![Frequency::from_megahertz(500.0)],
    );
    let ranked = Optimizer::new(space, Lifetime::months(24.0)).run(&run);
    assert_eq!(ranked.len(), 2);
    let ratio = ranked
        .iter()
        .find(|c| c.technology == Technology::M3dIgzoCnfetSi)
        .expect("M3D candidate")
        .tcdp
        / ranked
            .iter()
            .find(|c| c.technology == Technology::AllSi)
            .expect("all-Si candidate")
            .tcdp;
    assert!(approx_eq(
        ratio,
        study.tcdp_ratio(Lifetime::months(24.0)),
        1e-9
    ));
}

#[test]
fn layout_artifacts_are_self_consistent() {
    use ppatc_pdk::{gds::GdsLibrary, layout};
    for tech in Technology::ALL {
        let lib = layout::cell_array(tech, 2, 3);
        let round = GdsLibrary::from_bytes(&lib.to_bytes()).expect("parses");
        assert_eq!(round, lib);
        // Every GDS layer used by the array appears in the cross-section's
        // layer map (the FEOL/poly/derived layers are a superset check the
        // other way, so check array ⊆ cross-section ∪ {poly}).
        let xs = layout::cross_section(tech);
        let known: Vec<i16> = xs.iter().map(|l| l.gds_layer).collect();
        for s in round.structures() {
            for b in s.elements() {
                let ok = known.contains(&b.layer) || b.layer == 2; // 2 = poly
                assert!(ok, "{tech}: GDS layer {} not in cross-section", b.layer);
            }
        }
    }
}

#[test]
fn workload_mix_brackets_its_components() {
    use ppatc::mix::WorkloadMix;
    let f = Frequency::from_megahertz(500.0);
    let design = SystemDesign::new(Technology::AllSi, f).expect("designs");
    let heavy = Workload::matmul_int().execute_with_reps(2).expect("runs");
    let light = Workload::fsm().execute_with_reps(1).expect("runs");
    let p_heavy = design.evaluate(&heavy).operational_power;
    let p_light = design.evaluate(&light).operational_power;
    let blend = WorkloadMix::new()
        .with(heavy, 1.0)
        .with(light, 1.0)
        .evaluate(&design)
        .operational_power;
    assert!(blend > p_light.min(p_heavy) && blend < p_light.max(p_heavy));
}
