//! Deterministic fault-injection harness.
//!
//! Every test here feeds the pipeline deliberately corrupted inputs — NaN
//! model parameters, zero and negative widths, inverted uncertainty
//! ranges, solvers starved of iterations — and asserts that the failure
//! surfaces as a *structured error*, never as a panic, and that
//! per-sample faults in a Monte-Carlo sweep are isolated and counted
//! rather than aborting the sweep.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ppatc::montecarlo::{
    self, MonteCarloConfig, RatioSource, UncertaintyRanges, UncertaintySample,
};
use ppatc::{
    CarbonTrajectory, EmbodiedPipeline, Lifetime, PpatcError, SystemDesign, TcdpMap, Technology,
    UsagePattern,
};
use ppatc_device::{si, DeviceError, SiVtFlavor};
use ppatc_spice::{Circuit, DcOptions, RecoveryStage, SpiceError, Waveform};
use ppatc_units::{CarbonIntensity, CarbonMass, Frequency, Length, Power, Time, Voltage};

/// Asserts that `f` completes without panicking and returns its value.
fn no_panic<T>(label: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(_) => panic!("`{label}` panicked on hostile input"),
    }
}

fn paper_trajectory(embodied_g: f64, power_mw: f64) -> CarbonTrajectory {
    CarbonTrajectory::new(
        CarbonMass::from_grams(embodied_g),
        Power::from_milliwatts(power_mw),
        UsagePattern::paper_default(),
        Time::from_seconds(0.04),
    )
}

fn paper_map() -> TcdpMap {
    TcdpMap::new(
        paper_trajectory(3.11, 9.7),
        paper_trajectory(3.63, 8.45),
        Lifetime::months(24.0),
        0.81,
    )
}

// ---------------------------------------------------------------------------
// Device layer: NaN parameters and degenerate widths.
// ---------------------------------------------------------------------------

#[test]
fn nan_model_parameters_are_structured_errors() {
    let w = Length::from_nanometers(100.0);
    let corruptions: [fn(&mut ppatc_device::VirtualSourceModel); 4] = [
        |m| m.c_inv = f64::NAN,
        |m| m.v_x0 = f64::NAN,
        |m| m.mobility = -1.0,
        |m| m.beta = f64::NAN,
    ];
    for corrupt in corruptions {
        let mut model = si::nfet(SiVtFlavor::Rvt);
        corrupt(&mut model);
        let err = no_panic("try_sized with NaN parameter", || model.try_sized(w))
            .expect_err("corrupted model must be rejected");
        assert!(matches!(err, DeviceError::Model(_)), "{err}");
        // The source chain reaches the underlying parameter error.
        assert!(std::error::Error::source(&err).is_some());
    }
}

#[test]
fn degenerate_widths_are_structured_errors() {
    for bad_nm in [0.0, -100.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = no_panic("try_sized with degenerate width", || {
            si::nfet(SiVtFlavor::Rvt).try_sized(Length::from_nanometers(bad_nm))
        })
        .expect_err("degenerate width must be rejected");
        assert!(matches!(err, DeviceError::InvalidWidth(_)), "{err}");
    }
}

// ---------------------------------------------------------------------------
// Evaluation layer: hostile scalar inputs through every try_* constructor.
// ---------------------------------------------------------------------------

#[test]
fn hostile_scalars_never_panic_through_try_apis() {
    let hostile = [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    for &v in &hostile {
        no_panic("Lifetime::try_months", || {
            let r = Lifetime::try_months(v);
            // 0.0 is a legal (degenerate) lifetime; everything else here is not.
            assert_eq!(r.is_ok(), v == 0.0, "months({v})");
        });
        no_panic("UsagePattern::try_new", || {
            assert!(
                UsagePattern::try_new(v, CarbonIntensity::from_g_per_kwh(380.0)).is_err(),
                "hours_per_day({v})"
            );
        });
        no_panic("EmbodiedPipeline::try_with_embodied_scale", || {
            assert!(EmbodiedPipeline::paper_default()
                .try_with_embodied_scale(v)
                .is_err());
        });
        no_panic("TcdpMap::try_ratio_with", || {
            assert!(paper_map().try_ratio_with(v, 1.0, None).is_err());
            assert!(paper_map().try_ratio_with(1.0, v, None).is_err());
        });
        no_panic("SystemDesign::new with hostile f_clk", || {
            let r = SystemDesign::new(Technology::AllSi, Frequency::from_hertz(v));
            assert!(r.is_err(), "f_clk({v})");
        });
    }
}

#[test]
fn hostile_inputs_carry_field_names() {
    let e = Lifetime::try_months(f64::NAN).expect_err("NaN lifetime");
    assert_eq!(e.field, "lifetime_months");
    let e = UsagePattern::try_new(25.0, CarbonIntensity::from_g_per_kwh(380.0))
        .expect_err("26-hour day");
    assert_eq!(e.field, "hours_per_day");
    let e = TcdpMap::try_new(
        paper_trajectory(3.11, 9.7),
        paper_trajectory(3.63, 8.45),
        Lifetime::months(24.0),
        1.5,
    )
    .expect_err("yield above 1");
    assert_eq!(e.field, "m3d_nominal_yield");
}

// ---------------------------------------------------------------------------
// Monte-Carlo layer: invalid ranges and injected per-sample faults.
// ---------------------------------------------------------------------------

#[test]
fn inverted_and_nan_ranges_are_structured_errors() {
    let config = MonteCarloConfig::new(100, 1).expect("valid config");
    let map = paper_map();

    let mut inverted = UncertaintyRanges::paper_default();
    inverted.lifetime_months = (36.0, 12.0);
    let err = no_panic("try_run with inverted range", || {
        montecarlo::try_run(&map, &inverted, &config)
    })
    .expect_err("inverted range must be rejected");
    assert!(matches!(err, PpatcError::Validation(_)), "{err}");

    let mut nan_hi = UncertaintyRanges::paper_default();
    nan_hi.ci_use_scale = (0.5, f64::NAN);
    assert!(montecarlo::try_run(&map, &nan_hi, &config).is_err());

    let mut wild_yield = UncertaintyRanges::paper_default();
    wild_yield.m3d_yield = (0.5, 1.5);
    assert!(montecarlo::try_run(&map, &wild_yield, &config).is_err());
}

/// A ratio source that corrupts every `nan_every`-th evaluation with NaN
/// and every `neg_every`-th with a negative ratio.
struct FaultySource {
    inner: TcdpMap,
    nan_every: usize,
    neg_every: usize,
    calls: Cell<usize>,
}

impl RatioSource for FaultySource {
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
        let n = self.calls.get() + 1;
        self.calls.set(n);
        if n % self.nan_every == 0 {
            f64::NAN
        } else if n % self.neg_every == 0 {
            -1.0
        } else {
            self.inner.tcdp_ratio(sample)
        }
    }
}

#[test]
fn injected_sample_faults_are_isolated_and_counted_per_cause() {
    let source = FaultySource {
        inner: paper_map(),
        nan_every: 10,
        neg_every: 7,
        calls: Cell::new(0),
    };
    let config = MonteCarloConfig::new(700, 42)
        .expect("valid config")
        .with_failure_budget(0.5)
        .expect("valid budget");
    let result = no_panic("try_run_with under injected faults", || {
        montecarlo::try_run_with(&source, &UncertaintyRanges::paper_default(), &config)
    })
    .expect("sweep completes despite injected faults");

    // Of 700 calls: 70 are NaN; multiples of 7 that are not also
    // multiples of 10 (i.e. not multiples of 70) are negative.
    assert_eq!(result.failures.non_finite_ratio, 70);
    assert_eq!(result.failures.non_positive_ratio, 100 - 10);
    assert_eq!(result.evaluated + result.failures.total(), result.samples);
    // Survivor statistics stay physical.
    assert!(result.p_m3d_wins >= 0.0 && result.p_m3d_wins <= 1.0);
    let (q05, q50, q95) = result.ratio_quantiles;
    assert!(q05 <= q50 && q50 <= q95);
    assert!(q05 > 0.0);
}

#[test]
fn blown_failure_budget_is_an_error_not_a_panic() {
    struct AlwaysNan;
    impl RatioSource for AlwaysNan {
        fn tcdp_ratio(&self, _: &UncertaintySample) -> f64 {
            f64::NAN
        }
    }
    let config = MonteCarloConfig::new(50, 3).expect("valid config");
    let err = no_panic("try_run_with with 100% faults", || {
        montecarlo::try_run_with(&AlwaysNan, &UncertaintyRanges::paper_default(), &config)
    })
    .expect_err("nothing survives");
    match err {
        PpatcError::FailureBudgetExceeded {
            failed, samples, ..
        } => {
            assert_eq!(failed, 50);
            assert_eq!(samples, 50);
        }
        other => panic!("expected FailureBudgetExceeded, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// SPICE layer: forced non-convergence and the recovery ladder.
// ---------------------------------------------------------------------------

fn inverter_at_midrail() -> (Circuit, ppatc_spice::NodeId) {
    let vdd = Voltage::from_volts(0.7);
    let w = Length::from_nanometers(100.0);
    let mut c = Circuit::new();
    let nvdd = c.node("vdd");
    let nin = c.node("in");
    let nout = c.node("out");
    c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
    c.voltage_source(
        "VIN",
        nin,
        Circuit::GROUND,
        Waveform::dc(Voltage::from_volts(0.35)),
    );
    c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
    c.fet(
        "MN",
        nout,
        nin,
        Circuit::GROUND,
        si::nfet(SiVtFlavor::Rvt).sized(w),
    );
    (c, nout)
}

#[test]
fn forced_non_convergence_is_a_structured_error() {
    let (c, _) = inverter_at_midrail();
    // One Newton iteration per rung cannot converge anything nonlinear —
    // even the full ladder must give up, with an error, not a panic.
    let err = no_panic("recovery ladder at max_iter = 1", || {
        c.dc_operating_point_recovered_with(DcOptions::new().with_max_iter(1))
    })
    .expect_err("one iteration cannot converge an inverter");
    assert!(matches!(err, SpiceError::NoConvergence { .. }), "{err}");
}

#[test]
fn recovery_ladder_rescues_a_starved_solve_and_logs_the_path() {
    let (c, nout) = inverter_at_midrail();
    let opts = DcOptions::new().with_max_iter(5);
    let (x, log) = c
        .dc_operating_point_recovered_with(opts)
        .expect("ladder rescues the solve");

    // The plain rung failed and the ladder escalated.
    assert!(log.recovery_was_needed(), "{log}");
    assert_eq!(log.attempts[0].stage, RecoveryStage::Plain);
    assert!(!log.attempts[0].converged());
    assert!(log.failed_attempts() >= 1);
    // The final rung converged at full source value.
    assert!(matches!(
        log.succeeded_via(),
        Some(RecoveryStage::SourceStepping { scale }) if (scale - 1.0).abs() < 1e-12
    ));

    // And the rescued solution matches the unconstrained solve. Nodes are
    // created in order vdd, in, out → out is unknown index 2.
    let v = c.dc_voltage(nout).expect("reference converges").as_volts();
    assert!((x[2] - v).abs() < 1e-6, "{} vs {v}", x[2]);
}

#[test]
fn singular_topologies_fail_fast_with_a_structured_error() {
    let mut c = Circuit::new();
    let a = c.node("a");
    c.voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::dc(Voltage::from_volts(1.0)),
    );
    c.voltage_source(
        "V2",
        a,
        Circuit::GROUND,
        Waveform::dc(Voltage::from_volts(2.0)),
    );
    let err = no_panic("singular circuit", || c.dc_operating_point_recovered())
        .expect_err("conflicting ideal sources are singular");
    assert!(matches!(err, SpiceError::SingularMatrix { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Cross-layer: errors compose into the unified taxonomy.
// ---------------------------------------------------------------------------

#[test]
fn every_layer_error_converts_into_ppatc_error() {
    let spice_err = SpiceError::NoConvergence {
        analysis: "dc",
        time: 0.0,
        residual: 1.0,
    };
    let unified: PpatcError = spice_err.into();
    assert!(matches!(unified, PpatcError::Spice(_)));
    assert!(std::error::Error::source(&unified).is_some());

    let validation = Lifetime::try_months(-1.0).expect_err("negative lifetime");
    let unified: PpatcError = validation.into();
    assert!(matches!(unified, PpatcError::Validation(_)));
    let msg = unified.to_string();
    assert!(msg.contains("lifetime_months"), "{msg}");
}
