//! Deterministic fault-injection harness.
//!
//! Every test here feeds the pipeline deliberately corrupted inputs — NaN
//! model parameters, zero and negative widths, inverted uncertainty
//! ranges, solvers starved of iterations — and asserts that the failure
//! surfaces as a *structured error*, never as a panic, and that
//! per-sample faults in a Monte-Carlo sweep are isolated and counted
//! rather than aborting the sweep.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ppatc::montecarlo::{
    self, MonteCarloConfig, RatioSource, UncertaintyRanges, UncertaintySample,
};
use ppatc::{
    CarbonTrajectory, EmbodiedPipeline, Lifetime, PpatcError, SystemDesign, TcdpMap, Technology,
    UsagePattern,
};
use ppatc_device::{si, DeviceError, SiVtFlavor};
use ppatc_spice::{Circuit, DcOptions, RecoveryStage, SpiceError, Waveform};
use ppatc_units::{CarbonIntensity, CarbonMass, Frequency, Length, Power, Time, Voltage};

/// Asserts that `f` completes without panicking and returns its value.
fn no_panic<T>(label: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(_) => panic!("`{label}` panicked on hostile input"),
    }
}

fn paper_trajectory(embodied_g: f64, power_mw: f64) -> CarbonTrajectory {
    CarbonTrajectory::new(
        CarbonMass::from_grams(embodied_g),
        Power::from_milliwatts(power_mw),
        UsagePattern::paper_default(),
        Time::from_seconds(0.04),
    )
}

fn paper_map() -> TcdpMap {
    TcdpMap::new(
        paper_trajectory(3.11, 9.7),
        paper_trajectory(3.63, 8.45),
        Lifetime::months(24.0),
        0.81,
    )
}

// ---------------------------------------------------------------------------
// Device layer: NaN parameters and degenerate widths.
// ---------------------------------------------------------------------------

#[test]
fn nan_model_parameters_are_structured_errors() {
    let w = Length::from_nanometers(100.0);
    let corruptions: [fn(&mut ppatc_device::VirtualSourceModel); 4] = [
        |m| m.c_inv = f64::NAN,
        |m| m.v_x0 = f64::NAN,
        |m| m.mobility = -1.0,
        |m| m.beta = f64::NAN,
    ];
    for corrupt in corruptions {
        let mut model = si::nfet(SiVtFlavor::Rvt);
        corrupt(&mut model);
        let err = no_panic("try_sized with NaN parameter", || model.try_sized(w))
            .expect_err("corrupted model must be rejected");
        assert!(matches!(err, DeviceError::Model(_)), "{err}");
        // The source chain reaches the underlying parameter error.
        assert!(std::error::Error::source(&err).is_some());
    }
}

#[test]
fn degenerate_widths_are_structured_errors() {
    for bad_nm in [0.0, -100.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = no_panic("try_sized with degenerate width", || {
            si::nfet(SiVtFlavor::Rvt).try_sized(Length::from_nanometers(bad_nm))
        })
        .expect_err("degenerate width must be rejected");
        assert!(matches!(err, DeviceError::InvalidWidth(_)), "{err}");
    }
}

// ---------------------------------------------------------------------------
// Evaluation layer: hostile scalar inputs through every try_* constructor.
// ---------------------------------------------------------------------------

#[test]
fn hostile_scalars_never_panic_through_try_apis() {
    let hostile = [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    for &v in &hostile {
        no_panic("Lifetime::try_months", || {
            let r = Lifetime::try_months(v);
            // 0.0 is a legal (degenerate) lifetime; everything else here is not.
            assert_eq!(r.is_ok(), v == 0.0, "months({v})");
        });
        no_panic("UsagePattern::try_new", || {
            assert!(
                UsagePattern::try_new(v, CarbonIntensity::from_g_per_kwh(380.0)).is_err(),
                "hours_per_day({v})"
            );
        });
        no_panic("EmbodiedPipeline::try_with_embodied_scale", || {
            assert!(EmbodiedPipeline::paper_default()
                .try_with_embodied_scale(v)
                .is_err());
        });
        no_panic("TcdpMap::try_ratio_with", || {
            assert!(paper_map().try_ratio_with(v, 1.0, None).is_err());
            assert!(paper_map().try_ratio_with(1.0, v, None).is_err());
        });
        no_panic("SystemDesign::new with hostile f_clk", || {
            let r = SystemDesign::new(Technology::AllSi, Frequency::from_hertz(v));
            assert!(r.is_err(), "f_clk({v})");
        });
    }
}

#[test]
fn hostile_inputs_carry_field_names() {
    let e = Lifetime::try_months(f64::NAN).expect_err("NaN lifetime");
    assert_eq!(e.field, "lifetime_months");
    let e = UsagePattern::try_new(25.0, CarbonIntensity::from_g_per_kwh(380.0))
        .expect_err("26-hour day");
    assert_eq!(e.field, "hours_per_day");
    let e = TcdpMap::try_new(
        paper_trajectory(3.11, 9.7),
        paper_trajectory(3.63, 8.45),
        Lifetime::months(24.0),
        1.5,
    )
    .expect_err("yield above 1");
    assert_eq!(e.field, "m3d_nominal_yield");
}

// ---------------------------------------------------------------------------
// Monte-Carlo layer: invalid ranges and injected per-sample faults.
// ---------------------------------------------------------------------------

#[test]
fn inverted_and_nan_ranges_are_structured_errors() {
    let config = MonteCarloConfig::new(100, 1).expect("valid config");
    let map = paper_map();

    let mut inverted = UncertaintyRanges::paper_default();
    inverted.lifetime_months = (36.0, 12.0);
    let err = no_panic("try_run with inverted range", || {
        montecarlo::try_run(&map, &inverted, &config)
    })
    .expect_err("inverted range must be rejected");
    assert!(matches!(err, PpatcError::Validation(_)), "{err}");

    let mut nan_hi = UncertaintyRanges::paper_default();
    nan_hi.ci_use_scale = (0.5, f64::NAN);
    assert!(montecarlo::try_run(&map, &nan_hi, &config).is_err());

    let mut wild_yield = UncertaintyRanges::paper_default();
    wild_yield.m3d_yield = (0.5, 1.5);
    assert!(montecarlo::try_run(&map, &wild_yield, &config).is_err());
}

/// A ratio source that corrupts every `nan_every`-th evaluation with NaN
/// and every `neg_every`-th with a negative ratio.
struct FaultySource {
    inner: TcdpMap,
    nan_every: usize,
    neg_every: usize,
    calls: Cell<usize>,
}

impl RatioSource for FaultySource {
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
        let n = self.calls.get() + 1;
        self.calls.set(n);
        if n % self.nan_every == 0 {
            f64::NAN
        } else if n % self.neg_every == 0 {
            -1.0
        } else {
            self.inner.tcdp_ratio(sample)
        }
    }
}

#[test]
fn injected_sample_faults_are_isolated_and_counted_per_cause() {
    let source = FaultySource {
        inner: paper_map(),
        nan_every: 10,
        neg_every: 7,
        calls: Cell::new(0),
    };
    let config = MonteCarloConfig::new(700, 42)
        .expect("valid config")
        .with_failure_budget(0.5)
        .expect("valid budget");
    let result = no_panic("try_run_with under injected faults", || {
        montecarlo::try_run_with(&source, &UncertaintyRanges::paper_default(), &config)
    })
    .expect("sweep completes despite injected faults");

    // Of 700 calls: 70 are NaN; multiples of 7 that are not also
    // multiples of 10 (i.e. not multiples of 70) are negative.
    assert_eq!(result.failures.non_finite_ratio, 70);
    assert_eq!(result.failures.non_positive_ratio, 100 - 10);
    assert_eq!(result.evaluated + result.failures.total(), result.samples);
    // Survivor statistics stay physical.
    assert!(result.p_m3d_wins >= 0.0 && result.p_m3d_wins <= 1.0);
    let (q05, q50, q95) = result.ratio_quantiles;
    assert!(q05 <= q50 && q50 <= q95);
    assert!(q05 > 0.0);
}

#[test]
fn blown_failure_budget_is_an_error_not_a_panic() {
    struct AlwaysNan;
    impl RatioSource for AlwaysNan {
        fn tcdp_ratio(&self, _: &UncertaintySample) -> f64 {
            f64::NAN
        }
    }
    let config = MonteCarloConfig::new(50, 3).expect("valid config");
    let err = no_panic("try_run_with with 100% faults", || {
        montecarlo::try_run_with(&AlwaysNan, &UncertaintyRanges::paper_default(), &config)
    })
    .expect_err("nothing survives");
    match err {
        PpatcError::FailureBudgetExceeded {
            failed, samples, ..
        } => {
            assert_eq!(failed, 50);
            assert_eq!(samples, 50);
        }
        other => panic!("expected FailureBudgetExceeded, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// SPICE layer: forced non-convergence and the recovery ladder.
// ---------------------------------------------------------------------------

fn inverter_at_midrail() -> (Circuit, ppatc_spice::NodeId) {
    let vdd = Voltage::from_volts(0.7);
    let w = Length::from_nanometers(100.0);
    let mut c = Circuit::new();
    let nvdd = c.node("vdd");
    let nin = c.node("in");
    let nout = c.node("out");
    c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
    c.voltage_source(
        "VIN",
        nin,
        Circuit::GROUND,
        Waveform::dc(Voltage::from_volts(0.35)),
    );
    c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
    c.fet(
        "MN",
        nout,
        nin,
        Circuit::GROUND,
        si::nfet(SiVtFlavor::Rvt).sized(w),
    );
    (c, nout)
}

#[test]
fn forced_non_convergence_is_a_structured_error() {
    let (c, _) = inverter_at_midrail();
    // One Newton iteration per rung cannot converge anything nonlinear —
    // even the full ladder must give up, with an error, not a panic.
    let err = no_panic("recovery ladder at max_iter = 1", || {
        c.dc_operating_point_recovered_with(DcOptions::new().with_max_iter(1))
    })
    .expect_err("one iteration cannot converge an inverter");
    assert!(matches!(err, SpiceError::NoConvergence { .. }), "{err}");
}

#[test]
fn recovery_ladder_rescues_a_starved_solve_and_logs_the_path() {
    let (c, nout) = inverter_at_midrail();
    let opts = DcOptions::new().with_max_iter(5);
    let (x, log) = c
        .dc_operating_point_recovered_with(opts)
        .expect("ladder rescues the solve");

    // The plain rung failed and the ladder escalated.
    assert!(log.recovery_was_needed(), "{log}");
    assert_eq!(log.attempts[0].stage, RecoveryStage::Plain);
    assert!(!log.attempts[0].converged());
    assert!(log.failed_attempts() >= 1);
    // The final rung converged at full source value.
    assert!(matches!(
        log.succeeded_via(),
        Some(RecoveryStage::SourceStepping { scale }) if (scale - 1.0).abs() < 1e-12
    ));

    // And the rescued solution matches the unconstrained solve. Nodes are
    // created in order vdd, in, out → out is unknown index 2.
    let v = c.dc_voltage(nout).expect("reference converges").as_volts();
    assert!((x[2] - v).abs() < 1e-6, "{} vs {v}", x[2]);
}

#[test]
fn singular_topologies_fail_fast_with_a_structured_error() {
    let mut c = Circuit::new();
    let a = c.node("a");
    c.voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::dc(Voltage::from_volts(1.0)),
    );
    c.voltage_source(
        "V2",
        a,
        Circuit::GROUND,
        Waveform::dc(Voltage::from_volts(2.0)),
    );
    let err = no_panic("singular circuit", || c.dc_operating_point_recovered())
        .expect_err("conflicting ideal sources are singular");
    assert!(matches!(err, SpiceError::SingularMatrix { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Chaos: injected worker panics, cancellation at random chunk boundaries,
// deadline exhaustion, and crash-safe resume.
// ---------------------------------------------------------------------------

/// A scratch journal path unique to this process and test.
fn scratch_journal(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ppatc-chaos-{}-{name}.journal", std::process::id()))
}

/// Asserts two Monte-Carlo results agree on everything the samples
/// determine. The `recovery` field is deliberately excluded: it snapshots
/// process-wide SPICE ladder counters, which other tests in this binary
/// bump concurrently.
fn assert_same_samples(a: &montecarlo::MonteCarloResult, b: &montecarlo::MonteCarloResult) {
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.evaluated, b.evaluated);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.p_m3d_wins.to_bits(), b.p_m3d_wins.to_bits());
    let (a05, a50, a95) = a.ratio_quantiles;
    let (b05, b50, b95) = b.ratio_quantiles;
    assert_eq!(a05.to_bits(), b05.to_bits());
    assert_eq!(a50.to_bits(), b50.to_bits());
    assert_eq!(a95.to_bits(), b95.to_bits());
}

/// A ratio source that panics on one specific sample index sequence: every
/// call whose drawn lifetime falls below a cut. Deterministic in the
/// sample, so serial and parallel runs fail identically.
struct PanickyBelowLifetime {
    inner: TcdpMap,
    cut_months: f64,
}

impl RatioSource for PanickyBelowLifetime {
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
        assert!(
            sample.lifetime.as_time().as_months() >= self.cut_months,
            "injected panic: lifetime below {} months",
            self.cut_months
        );
        self.inner.tcdp_ratio(sample)
    }
}

#[test]
fn injected_worker_panics_stay_within_the_failure_budget_at_eight_workers() {
    // ~8% of paper-default lifetimes (18–30 mo) fall below 19 months.
    let source = PanickyBelowLifetime {
        inner: paper_map(),
        cut_months: 19.0,
    };
    let config = MonteCarloConfig::new(2_000, 11)
        .expect("valid config")
        .with_failure_budget(0.25)
        .expect("valid budget");
    let ranges = UncertaintyRanges::paper_default();
    let supervisor = ppatc::Supervisor::new();
    let parallel = no_panic("Monte Carlo with panicking samples at 8 workers", || {
        montecarlo::try_run_supervised(&source, &ranges, &config, 8, &supervisor)
    })
    .expect("panics are isolated, not fatal");
    assert!(
        parallel.failures.worker_panic > 0,
        "the lifetime cut must actually fire"
    );
    assert_eq!(
        parallel.evaluated + parallel.failures.total(),
        parallel.samples
    );
    // Panic isolation must not disturb determinism: the serial sweep sees
    // the same panics on the same indices and the same survivors.
    let serial = montecarlo::try_run_supervised(&source, &ranges, &config, 1, &supervisor)
        .expect("serial sweep completes");
    assert_same_samples(&serial, &parallel);
}

#[test]
fn cancellation_at_random_chunk_boundaries_reports_coalesced_progress() {
    use ppatc_units::rng::SplitMix64;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let mut rng = SplitMix64::new(0xC4A0_5);
    let n = 5_000usize;
    for round in 0..4 {
        let jobs = [1, 2, 4, 8][round];
        // Cancel after a pseudo-random number of item evaluations, so the
        // interrupt lands at a different chunk boundary every round.
        let cancel_after = 1 + (rng.next_u64() as usize) % (n / 2);
        let token = ppatc::CancelToken::new();
        let budget = ppatc::RunBudget::unlimited().with_cancel(&token);
        let calls = AtomicUsize::new(0);
        let result = ppatc::eval::try_par_map_indexed(n, jobs, &budget, |i| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == cancel_after {
                token.cancel();
            }
            (i as f64).sqrt()
        });
        let Err(PpatcError::Interrupted {
            reason,
            completed,
            total,
        }) = result
        else {
            panic!("jobs = {jobs}: expected an interrupt");
        };
        assert_eq!(reason, ppatc::InterruptReason::Cancelled);
        assert_eq!(total, n);
        // Progress is reported as sorted, disjoint, in-range index runs.
        let mut done = 0;
        let mut prev_end = 0;
        for &(start, end) in &completed {
            assert!(start >= prev_end, "jobs = {jobs}: overlapping runs");
            assert!(
                end > start && end <= n,
                "jobs = {jobs}: bad run ({start}, {end})"
            );
            done += end - start;
            prev_end = end;
        }
        assert!(
            done < n,
            "jobs = {jobs}: a cancelled run cannot be complete"
        );
    }
}

#[test]
fn deadline_exhaustion_interrupts_a_raster_with_a_typed_reason() {
    let map = paper_map();
    let supervisor = ppatc::Supervisor::new()
        .with_budget(ppatc::RunBudget::unlimited().with_deadline(std::time::Instant::now()));
    let err = no_panic("raster under an expired deadline", || {
        map.try_raster_supervised((0.5, 3.0), (0.25, 1.5), 120, 100, 4, &supervisor)
    })
    .expect_err("an expired deadline stops the raster");
    assert!(
        matches!(
            err,
            PpatcError::Interrupted {
                reason: ppatc::InterruptReason::DeadlineExpired,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn interrupted_monte_carlo_resumes_byte_identically_from_its_journal() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let path = scratch_journal("montecarlo-resume");
    let _ = std::fs::remove_file(&path);
    let config = MonteCarloConfig::new(3_000, 2025).expect("valid config");
    let ranges = UncertaintyRanges::paper_default();
    let map = paper_map();

    // Reference: the uninterrupted, unjournaled sweep.
    let reference =
        montecarlo::try_run_jobs(&map, &ranges, &config, 1).expect("reference sweep completes");

    // A source that cancels its own run partway through.
    struct SelfCancelling<'a> {
        inner: &'a TcdpMap,
        token: ppatc::CancelToken,
        calls: AtomicUsize,
        cancel_after: usize,
    }
    impl RatioSource for SelfCancelling<'_> {
        fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
            if self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.cancel_after {
                self.token.cancel();
            }
            self.inner.tcdp_ratio(sample)
        }
    }
    let token = ppatc::CancelToken::new();
    let source = SelfCancelling {
        inner: &map,
        token: token.clone(),
        calls: AtomicUsize::new(0),
        cancel_after: 1_000,
    };
    let supervisor = ppatc::Supervisor::new()
        .with_budget(ppatc::RunBudget::unlimited().with_cancel(&token))
        .with_checkpoint(&path);
    let err = montecarlo::try_run_supervised(&source, &ranges, &config, 4, &supervisor)
        .expect_err("the run cancels itself");
    let PpatcError::Interrupted { completed, .. } = err else {
        panic!("expected an interrupt, got {err}");
    };
    assert!(!completed.is_empty(), "partial progress must be journaled");

    // Resume from the journal with a fresh supervisor: finished chunks
    // replay from disk, the rest is recomputed, and the merged result is
    // exactly the uninterrupted sweep.
    let resumed_supervisor = ppatc::Supervisor::new()
        .with_checkpoint(&path)
        .resuming(true);
    let resumed = montecarlo::try_run_supervised(&map, &ranges, &config, 4, &resumed_supervisor)
        .expect("resume completes");
    assert_same_samples(&reference, &resumed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_raster_resumes_byte_identically_from_its_journal() {
    let path = scratch_journal("raster-resume");
    let _ = std::fs::remove_file(&path);
    let map = paper_map();
    let window = ((0.5, 3.0), (0.25, 1.5));
    let (nx, ny) = (96, 80);

    let reference = map
        .try_raster_jobs(window.0, window.1, nx, ny, 1)
        .expect("reference raster completes");

    // First pass: journal under an already-expired deadline. The run stops
    // before computing anything new, but the journal (header only) is
    // valid. Then a second pass with a live budget journals real chunks
    // but is cancelled partway; the third pass resumes to completion.
    let expired = ppatc::Supervisor::new()
        .with_budget(ppatc::RunBudget::unlimited().with_deadline(std::time::Instant::now()))
        .with_checkpoint(&path);
    let err = map
        .try_raster_supervised(window.0, window.1, nx, ny, 4, &expired)
        .expect_err("expired deadline interrupts");
    assert!(matches!(err, PpatcError::Interrupted { .. }));

    let resumed = ppatc::Supervisor::new()
        .with_checkpoint(&path)
        .resuming(true);
    let grid = map
        .try_raster_supervised(window.0, window.1, nx, ny, 4, &resumed)
        .expect("resume completes the raster");
    let bits = |g: &[(f64, f64, f64)]| {
        g.iter()
            .map(|(x, y, r)| (x.to_bits(), y.to_bits(), r.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&reference), bits(&grid));

    // A second resume replays everything from disk and still matches.
    let replayed = map
        .try_raster_supervised(window.0, window.1, nx, ny, 2, &resumed)
        .expect("full replay completes");
    assert_eq!(bits(&reference), bits(&replayed));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn solver_budget_exhaustion_surfaces_through_the_unified_taxonomy() {
    let (c, _) = inverter_at_midrail();
    // A zero-iteration budget exhausts before the first ladder rung.
    let opts = DcOptions::new()
        .with_max_iter(5)
        .with_budget(ppatc_spice::SolverBudget::unlimited().with_max_newton_iterations(1));
    let err = no_panic("ladder under an exhausted budget", || {
        c.dc_operating_point_recovered_with(opts)
    })
    .expect_err("budget stops the ladder");
    assert!(
        matches!(err, SpiceError::SolverBudgetExceeded { .. }),
        "{err}"
    );
    let unified: PpatcError = err.into();
    assert!(matches!(unified, PpatcError::Spice(_)));
    let msg = unified.to_string();
    assert!(msg.contains("solver budget"), "{msg}");
}

// ---------------------------------------------------------------------------
// Cross-layer: errors compose into the unified taxonomy.
// ---------------------------------------------------------------------------

#[test]
fn every_layer_error_converts_into_ppatc_error() {
    let spice_err = SpiceError::NoConvergence {
        analysis: "dc",
        time: 0.0,
        residual: 1.0,
    };
    let unified: PpatcError = spice_err.into();
    assert!(matches!(unified, PpatcError::Spice(_)));
    assert!(std::error::Error::source(&unified).is_some());

    let validation = Lifetime::try_months(-1.0).expect_err("negative lifetime");
    let unified: PpatcError = validation.into();
    assert!(matches!(unified, PpatcError::Validation(_)));
    let msg = unified.to_string();
    assert!(msg.contains("lifetime_months"), "{msg}");
}

// ---------------------------------------------------------------------------
// Supervision edge cases: degenerate deadlines, racing cancellation, and
// chunks that panic wholesale.
// ---------------------------------------------------------------------------

#[test]
fn an_already_expired_deadline_interrupts_before_the_first_item() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let past = std::time::Instant::now();
    for (label, budget) in [
        (
            "deadline pinned to now",
            ppatc::RunBudget::unlimited().with_deadline(past),
        ),
        (
            "zero-duration deadline",
            ppatc::RunBudget::unlimited().with_deadline_in(std::time::Duration::ZERO),
        ),
    ] {
        let calls = AtomicUsize::new(0);
        let result = ppatc::eval::try_par_map_indexed(512, 4, &budget, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i as f64
        });
        let Err(PpatcError::Interrupted {
            reason,
            completed,
            total,
        }) = result
        else {
            panic!("{label}: an expired deadline must interrupt, got Ok");
        };
        assert_eq!(reason, ppatc::InterruptReason::DeadlineExpired, "{label}");
        assert_eq!(total, 512, "{label}");
        assert!(
            completed.is_empty(),
            "{label}: nothing ran, so no progress spans: {completed:?}"
        );
        assert_eq!(
            calls.load(Ordering::Relaxed),
            0,
            "{label}: the budget is polled before the first chunk is claimed"
        );
    }
}

#[test]
fn cancellation_raced_from_a_second_thread_interrupts_cooperatively() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let n = 4_000usize;
    let token = ppatc::CancelToken::new();
    let budget = ppatc::RunBudget::unlimited().with_cancel(&token);
    let first_item_seen = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        // The canceller lives on a different thread than every worker and
        // fires as soon as the sweep is demonstrably in flight.
        let canceller_token = token.clone();
        let first_item_seen = &first_item_seen;
        scope.spawn(move || {
            while !first_item_seen.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            canceller_token.cancel();
        });
        ppatc::eval::try_par_map_indexed(n, 4, &budget, |i| {
            first_item_seen.store(true, Ordering::Release);
            // Keep items slow enough that the run outlives the canceller.
            std::thread::sleep(std::time::Duration::from_micros(200));
            (i as f64).ln_1p()
        })
    });
    let Err(PpatcError::Interrupted {
        reason,
        completed,
        total,
    }) = result
    else {
        panic!("a cancellation raced mid-run must interrupt");
    };
    assert_eq!(reason, ppatc::InterruptReason::Cancelled);
    assert_eq!(total, n);
    let done: usize = completed.iter().map(|&(s, e)| e - s).sum();
    assert!(done < n, "a cancelled run cannot be complete ({done}/{n})");
    let mut prev_end = 0;
    for &(start, end) in &completed {
        assert!(
            start >= prev_end && end > start && end <= n,
            "bad spans: {completed:?}"
        );
        prev_end = end;
    }
}

#[test]
fn a_chunk_whose_every_item_panics_is_fully_accounted() {
    // Direct engine level: all 64 items of the run panic; the run still
    // completes Ok with one typed WorkerPanic per slot, in index order.
    let budget = ppatc::RunBudget::unlimited();
    let slots = no_panic("all-panic sweep at 4 workers", || {
        ppatc::eval::try_par_map_indexed::<f64, _>(64, 4, &budget, |i| {
            panic!("injected: item {i} always panics")
        })
    })
    .expect("wholesale panics are isolated, not fatal");
    assert_eq!(slots.len(), 64);
    for (i, slot) in slots.iter().enumerate() {
        assert_eq!(slot, &Err(PpatcError::WorkerPanic { index: i }));
    }

    // Monte-Carlo level: a source that panics on every sample wipes out
    // the whole run. Even with a saturated failure budget of 1.0 the
    // result is a *typed* NoSurvivingSamples error (quantiles of an empty
    // set are meaningless), never an escaped panic — and the serial and
    // parallel sweeps agree on it.
    let source = PanickyBelowLifetime {
        inner: paper_map(),
        cut_months: f64::INFINITY,
    };
    let config = MonteCarloConfig::new(400, 23)
        .expect("valid config")
        .with_failure_budget(1.0)
        .expect("valid budget");
    let ranges = UncertaintyRanges::paper_default();
    let supervisor = ppatc::Supervisor::new();
    for jobs in [1, 8] {
        let err = no_panic("all-panic Monte Carlo", || {
            montecarlo::try_run_supervised(&source, &ranges, &config, jobs, &supervisor)
        })
        .expect_err("a total wipeout is a structured error");
        assert!(
            matches!(err, PpatcError::NoSurvivingSamples { samples: 400 }),
            "jobs = {jobs}: every panic is accounted before the error: {err}"
        );
    }
}
