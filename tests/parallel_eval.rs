//! Serial-vs-parallel determinism of the evaluation engine.
//!
//! Every parallel entry point in the workspace must return results that
//! are *byte-identical* to its serial counterpart for any worker count:
//! Monte-Carlo sample `i` is a pure function of `(seed, i)`, raster point
//! `(i, j)` of its grid coordinates, and design-space candidate `k` of its
//! enumeration index, so how the work is sharded must be unobservable.

use ppatc::montecarlo::{self, MonteCarloConfig, UncertaintyRanges};
use ppatc::optimize::{DesignSpace, Optimizer};
use ppatc::{CaseStudy, Lifetime};
use ppatc_workloads::{Workload, WorkloadRun};
use std::sync::OnceLock;

const JOBS: [usize; 3] = [1, 2, 8];

fn short_matmul() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        Workload::matmul_int()
            .execute_with_reps(1)
            .expect("matmul-int runs")
    })
}

#[test]
fn monte_carlo_is_byte_identical_across_worker_counts() {
    let study = CaseStudy::paper(short_matmul()).expect("case study builds");
    let map = study.tcdp_map(Lifetime::months(24.0));
    let ranges = UncertaintyRanges::paper_default();
    let config = MonteCarloConfig::new(5000, 42).expect("sample count >= 1");
    let serial = montecarlo::try_run_jobs(&map, &ranges, &config, 1).expect("serial run");
    for jobs in JOBS {
        let parallel =
            montecarlo::try_run_jobs(&map, &ranges, &config, jobs).expect("parallel run");
        assert_eq!(serial, parallel, "jobs = {jobs}");
        // PartialEq on f64 admits -0.0 == 0.0; pin the actual bits too.
        let (s05, s50, s95) = serial.ratio_quantiles;
        let (p05, p50, p95) = parallel.ratio_quantiles;
        assert_eq!(
            (s05.to_bits(), s50.to_bits(), s95.to_bits()),
            (p05.to_bits(), p50.to_bits(), p95.to_bits()),
            "quantile bits, jobs = {jobs}"
        );
    }
}

#[test]
fn sensitivity_shares_are_byte_identical_across_worker_counts() {
    let study = CaseStudy::paper(short_matmul()).expect("case study builds");
    let map = study.tcdp_map(Lifetime::months(24.0));
    let ranges = UncertaintyRanges::paper_default();
    let serial =
        montecarlo::try_sensitivity_jobs(&map, &ranges, 2000, 42, 1).expect("serial shares");
    for jobs in JOBS {
        let parallel =
            montecarlo::try_sensitivity_jobs(&map, &ranges, 2000, 42, jobs).expect("shares");
        assert_eq!(serial.len(), parallel.len(), "jobs = {jobs}");
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0, "source order, jobs = {jobs}");
            assert_eq!(s.1.to_bits(), p.1.to_bits(), "{}: jobs = {jobs}", s.0);
        }
    }
}

#[test]
fn raster_grid_is_byte_identical_across_worker_counts() {
    let study = CaseStudy::paper(short_matmul()).expect("case study builds");
    let map = study.tcdp_map(Lifetime::months(24.0));
    let serial = map
        .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 31, 17, 1)
        .expect("serial raster");
    for jobs in JOBS {
        let parallel = map
            .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 31, 17, jobs)
            .expect("parallel raster");
        assert_eq!(serial.len(), parallel.len(), "jobs = {jobs}");
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                (s.0.to_bits(), s.1.to_bits(), s.2.to_bits()),
                (p.0.to_bits(), p.1.to_bits(), p.2.to_bits()),
                "jobs = {jobs}"
            );
        }
    }
}

#[test]
fn design_space_ranking_is_identical_across_worker_counts() {
    let optimizer = Optimizer::new(DesignSpace::paper_default(), Lifetime::months(24.0));
    let serial = optimizer.run_jobs(short_matmul(), 1);
    assert!(!serial.is_empty(), "paper-default space yields candidates");
    for jobs in JOBS {
        let parallel = optimizer.run_jobs(short_matmul(), jobs);
        assert_eq!(serial.len(), parallel.len(), "jobs = {jobs}");
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.technology, p.technology, "jobs = {jobs}");
            assert_eq!(s.flavor, p.flavor, "jobs = {jobs}");
            assert_eq!(
                s.f_clk.as_megahertz().to_bits(),
                p.f_clk.as_megahertz().to_bits(),
                "jobs = {jobs}"
            );
            assert_eq!(
                s.tcdp.as_grams_per_hertz().to_bits(),
                p.tcdp.as_grams_per_hertz().to_bits(),
                "tcdp bits, jobs = {jobs}"
            );
            assert_eq!(s.feasible, p.feasible, "jobs = {jobs}");
        }
        let front_serial = optimizer.pareto_front_jobs(short_matmul(), 1);
        let front_parallel = optimizer.pareto_front_jobs(short_matmul(), jobs);
        assert_eq!(
            front_serial.len(),
            front_parallel.len(),
            "front size, jobs = {jobs}"
        );
    }
}

#[test]
fn sample_streams_do_not_depend_on_total_sample_count() {
    // The bug this guards against: a single RNG threaded through the whole
    // sweep makes sample i depend on how many samples precede it. With
    // counter-indexed streams, sample i is a pure function of (seed, i).
    let ranges = UncertaintyRanges::paper_default();
    for i in [0u64, 1, 17, 99] {
        let a = montecarlo::draw_sample(7, i, &ranges);
        let b = montecarlo::draw_sample(7, i, &ranges);
        assert_eq!(a, b, "sample {i} must be reproducible in isolation");
    }
}
