//! Fig. 2c: embodied carbon per 300 mm wafer across power grids.

use ppatc_fab::{grid, EmbodiedModel, Grid};
use ppatc_pdk::Technology;

/// One Fig. 2c bar.
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    /// Fabrication grid.
    pub grid: Grid,
    /// Process.
    pub technology: Technology,
    /// Materials (MPA·area), kgCO₂e.
    pub materials_kg: f64,
    /// Direct gases (GPA·area), kgCO₂e.
    pub gases_kg: f64,
    /// Fabrication electricity (CI_fab·EPA_f·area), kgCO₂e.
    pub electricity_kg: f64,
    /// Total, kgCO₂e.
    pub total_kg: f64,
}

/// Computes all eight bars (4 grids × 2 processes).
pub fn bars() -> Vec<Bar> {
    let model = EmbodiedModel::paper_default();
    let mut out = Vec::new();
    for g in grid::FIG2C_GRIDS {
        for tech in Technology::ALL {
            let b = model.embodied_per_wafer(tech, g);
            out.push(Bar {
                grid: g,
                technology: tech,
                materials_kg: b.materials().as_kilograms(),
                gases_kg: b.gases().as_kilograms(),
                electricity_kg: b.fab_electricity().as_kilograms(),
                total_kg: b.total().as_kilograms(),
            });
        }
    }
    out
}

/// Average M3D/all-Si overhead across the four grids (the abstract's 1.31×).
pub fn average_overhead() -> f64 {
    let bars = bars();
    let mut sum = 0.0;
    let mut n = 0.0;
    for pair in bars.chunks(2) {
        sum += pair[1].total_kg / pair[0].total_kg;
        n += 1.0;
    }
    if n > 0.0 {
        sum / n
    } else {
        0.0
    }
}

/// Renders the figure's data.
pub fn render() -> String {
    let mut out = String::from(
        "grid                  process            MPA (kg)   GPA (kg)   CI·EPA_f (kg)   total (kg)\n",
    );
    for b in bars() {
        out.push_str(&format!(
            "{:<22}{:<18}{:>9.0}{:>11.0}{:>16.0}{:>13.0}\n",
            b.grid.to_string(),
            b.technology.to_string(),
            b.materials_kg,
            b.gases_kg,
            b.electricity_kg,
            b.total_kg
        ));
    }
    out.push_str(&format!(
        "average M3D / all-Si overhead across grids: {:.2}x\n",
        average_overhead()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn us_grid_bars_match_table2() {
        let bars = bars();
        let us_si = bars
            .iter()
            .find(|b| b.grid.name() == "U.S." && b.technology == Technology::AllSi)
            .expect("US all-Si bar");
        let us_m3d = bars
            .iter()
            .find(|b| b.grid.name() == "U.S." && b.technology == Technology::M3dIgzoCnfetSi)
            .expect("US M3D bar");
        assert!(approx_eq(us_si.total_kg, 837.0, 0.005));
        assert!(approx_eq(us_m3d.total_kg, 1100.0, 0.005));
    }

    #[test]
    fn abstract_average_overhead() {
        assert!(approx_eq(average_overhead(), 1.31, 0.01));
    }

    #[test]
    fn solar_is_the_cheapest_grid() {
        let bars = bars();
        let solar: Vec<_> = bars.iter().filter(|b| b.grid.name() == "solar").collect();
        for b in &bars {
            if b.grid.name() != "solar" {
                let same_tech = solar.iter().find(|s| s.technology == b.technology).unwrap();
                assert!(same_tech.total_kg < b.total_kg);
            }
        }
    }
}
