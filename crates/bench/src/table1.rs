//! Table I: FET benefits and challenges, quantified.

use ppatc_device::{cnfet, igzo, si, SiVtFlavor};
use ppatc_units::{Length, Voltage};

/// One quantified Table I row.
#[derive(Clone, Debug, PartialEq)]
pub struct FetRow {
    /// FET family name.
    pub name: &'static str,
    /// Effective drive current at V_DD = 0.7 V, µA/µm.
    pub i_eff_ua_per_um: f64,
    /// Off-state leakage at V_DD = 0.7 V, A/µm.
    pub i_off_a_per_um: f64,
    /// BEOL-compatible (low-temperature) fabrication.
    pub beol_compatible: bool,
}

/// Computes the quantified comparison.
pub fn rows() -> Vec<FetRow> {
    let w = Length::from_micrometers(1.0);
    let vdd = Voltage::from_volts(0.7);
    let cn = cnfet::nfet().sized(w);
    let ig = igzo::nfet().sized(w);
    let si_fet = si::nfet(SiVtFlavor::Rvt).sized(w);
    vec![
        FetRow {
            name: "CNFET",
            i_eff_ua_per_um: cn.i_eff(vdd).as_microamperes(),
            i_off_a_per_um: cn.i_off(vdd).as_amperes(),
            beol_compatible: true,
        },
        FetRow {
            name: "IGZO FET",
            i_eff_ua_per_um: ig.i_eff(vdd).as_microamperes(),
            i_off_a_per_um: ig.i_off(vdd).as_amperes(),
            beol_compatible: true,
        },
        FetRow {
            name: "Si FET",
            i_eff_ua_per_um: si_fet.i_eff(vdd).as_microamperes(),
            i_off_a_per_um: si_fet.i_off(vdd).as_amperes(),
            beol_compatible: false,
        },
    ]
}

/// Renders the table.
pub fn render() -> String {
    let mut out = String::from("FET        I_EFF (µA/µm)    I_OFF (A/µm)    BEOL-compatible\n");
    for r in rows() {
        out.push_str(&format!(
            "{:<11}{:>12.1}{:>17.2e}    {}\n",
            r.name,
            r.i_eff_ua_per_um,
            r.i_off_a_per_um,
            if r.beol_compatible {
                "yes (low-T)"
            } else {
                "no (FEOL only)"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table1() {
        let rows = rows();
        let (cn, ig, si) = (&rows[0], &rows[1], &rows[2]);
        // (+) high I_EFF for CNFET, (−) low for IGZO.
        assert!(cn.i_eff_ua_per_um > si.i_eff_ua_per_um);
        assert!(ig.i_eff_ua_per_um < 0.2 * si.i_eff_ua_per_um);
        // (+) ultra-low I_OFF for IGZO, (−) metallic-CNT-limited for CNFET.
        assert!(ig.i_off_a_per_um < si.i_off_a_per_um);
        assert!(cn.i_off_a_per_um > si.i_off_a_per_um);
        // Si is FEOL-only (high-temperature fabrication).
        assert!(!si.beol_compatible && cn.beol_compatible && ig.beol_compatible);
    }
}
