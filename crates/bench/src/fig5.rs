//! Fig. 5: tC and tCDP vs. system lifetime for both designs.

use crate::case_study;
use ppatc::{Lifetime, Technology, TrajectoryPoint};

/// The two monthly series over a 24-month window: `(all-Si, M3D)`.
pub fn series() -> (Vec<TrajectoryPoint>, Vec<TrajectoryPoint>) {
    case_study().fig5_series(24)
}

/// The per-design lifetimes at which operational carbon overtakes embodied
/// carbon (`(all-Si, M3D)`, months).
pub fn embodied_dominance_crossovers() -> (f64, f64) {
    let study = case_study();
    let t_si = study
        .trajectory(Technology::AllSi)
        .embodied_dominance_crossover()
        .expect("all-Si crossover exists")
        .as_months();
    let t_m3d = study
        .trajectory(Technology::M3dIgzoCnfetSi)
        .embodied_dominance_crossover()
        .expect("M3D crossover exists")
        .as_months();
    (t_si, t_m3d)
}

/// The lifetime at which the two designs' total carbon crosses, months.
pub fn design_crossover() -> Option<f64> {
    let study = case_study();
    study
        .trajectory(Technology::M3dIgzoCnfetSi)
        .crossover_with(&study.trajectory(Technology::AllSi))
        .map(|l| l.as_months())
}

/// tCDP ratio (all-Si / M3D, i.e. the M3D benefit) at the annotated months.
pub fn tcdp_benefits() -> Vec<(f64, f64)> {
    let study = case_study();
    [1.0, 18.0, 24.0]
        .iter()
        .map(|&m| (m, 1.0 / study.tcdp_ratio(Lifetime::months(m))))
        .collect()
}

/// Renders the figure's data.
pub fn render() -> String {
    let (si, m3d) = series();
    let mut out = String::from(
        "month   tC all-Si (g)  [emb/op]      tC M3D (g)  [emb/op]      tCDP all-Si    tCDP M3D  (gCO2e/Hz)\n",
    );
    for (a, b) in si.iter().zip(&m3d) {
        out.push_str(&format!(
            "{:>5.0}{:>12.2} [{:>4.2}/{:>4.2}]{:>14.2} [{:>4.2}/{:>4.2}]{:>14.4}{:>12.4}\n",
            a.lifetime.as_months(),
            a.total.as_grams(),
            a.embodied.as_grams(),
            a.operational.as_grams(),
            b.total.as_grams(),
            b.embodied.as_grams(),
            b.operational.as_grams(),
            a.tcdp.as_grams_per_hertz(),
            b.tcdp.as_grams_per_hertz(),
        ));
    }
    let (c_si, c_m3d) = embodied_dominance_crossovers();
    out.push_str(&format!(
        "embodied-dominance crossovers: all-Si {c_si:.1} mo, M3D {c_m3d:.1} mo\n"
    ));
    if let Some(c) = design_crossover() {
        out.push_str(&format!("design total-carbon crossover: {c:.1} mo\n"));
    }
    for (m, benefit) in tcdp_benefits() {
        out.push_str(&format!(
            "tCDP benefit of M3D at {m:>4.0} mo: {benefit:.3}x\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn crossovers_match_paper() {
        let (si, m3d) = embodied_dominance_crossovers();
        assert!(approx_eq(si, 14.0, 0.08), "all-Si {si:.1} mo");
        assert!(approx_eq(m3d, 19.0, 0.08), "M3D {m3d:.1} mo");
    }

    #[test]
    fn benefit_trajectory() {
        let benefits = tcdp_benefits();
        // At 1 month M3D is less carbon-efficient (benefit < 1); by 24
        // months the benefit reaches the paper's 1.02×.
        assert!(benefits[0].1 < 1.0);
        assert!(
            approx_eq(benefits[2].1, 1.02, 0.015),
            "24-mo benefit {}",
            benefits[2].1
        );
        // Benefit grows monotonically with lifetime.
        assert!(benefits[0].1 < benefits[1].1 && benefits[1].1 < benefits[2].1);
    }

    #[test]
    fn design_crossover_is_in_window() {
        let c = design_crossover().expect("designs cross");
        assert!(c > 5.0 && c < 24.0, "crossover {c:.1} mo");
    }

    #[test]
    fn series_shapes() {
        let (si, m3d) = series();
        assert_eq!(si.len(), 24);
        assert_eq!(m3d.len(), 24);
        // M3D starts with more total carbon and ends with less.
        assert!(m3d[0].total > si[0].total);
        assert!(m3d[23].total < si[23].total);
    }
}
