//! Memory-capacity sweep: how the M3D advantage scales with on-chip memory.
//!
//! The paper's motivation (and its N3XT citation) is *abundant-data*
//! computing: the more on-chip memory a system carries, the more the
//! memory dominates area and energy — and the more the M3D process's
//! cells-over-periphery density and shorter wires pay off. This exhibit
//! sweeps the per-macro capacity from 16 kB to 256 kB (2 kB sub-arrays
//! throughout) and tracks the 24-month tCDP comparison.

use crate::matmul_run;
use ppatc::checkpoint::Checkpointable;
use ppatc::{
    CaseStudy, EmbodiedPipeline, JournalSpec, Lifetime, PpatcError, Supervisor, SystemDesign,
    Technology, UsagePattern,
};
use ppatc_edram::Organization;
use ppatc_pdk::SiVtFlavor;
use ppatc_units::Frequency;

/// One capacity point.
#[derive(Clone, Debug, PartialEq)]
pub struct CapacityPoint {
    /// Per-macro capacity, kB.
    pub kb_per_macro: u32,
    /// Total die area, mm², all-Si / M3D.
    pub area_mm2: [f64; 2],
    /// Embodied carbon per good die, g, all-Si / M3D.
    pub embodied_g: [f64; 2],
    /// tCDP benefit of M3D at 24 months (>1 = M3D wins).
    pub m3d_benefit_24mo: f64,
}

impl Checkpointable for CapacityPoint {
    const WIDTH: usize = 6;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(self.kb_per_macro));
        out.extend([
            self.area_mm2[0].to_bits(),
            self.area_mm2[1].to_bits(),
            self.embodied_g[0].to_bits(),
            self.embodied_g[1].to_bits(),
            self.m3d_benefit_24mo.to_bits(),
        ]);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [kb, a0, a1, e0, e1, b] => Some(Self {
                kb_per_macro: u32::try_from(*kb).ok()?,
                area_mm2: [f64::from_bits(*a0), f64::from_bits(*a1)],
                embodied_g: [f64::from_bits(*e0), f64::from_bits(*e1)],
                m3d_benefit_24mo: f64::from_bits(*b),
            }),
            _ => None,
        }
    }
}

/// The swept per-macro capacities, kB.
const CAPACITIES_KB: [u32; 5] = [16, 32, 64, 128, 256];

/// The fixed evaluation clock of the sweep.
const SWEEP_CLOCK_MHZ: f64 = 500.0;

/// The fixed evaluation lifetime of the sweep, months.
const SWEEP_LIFETIME_MONTHS: f64 = 24.0;

/// Sweeps per-macro capacity (program and data memories both sized to it).
pub fn sweep() -> Vec<CapacityPoint> {
    sweep_jobs(1)
}

/// [`sweep`] with capacity points evaluated across `jobs` workers. The
/// result is byte-identical for any worker count; each point's two eDRAM
/// characterizations are served from [`ppatc_edram::EdramMacro`]'s memo
/// cache after the first request for that `(technology, organization)`.
pub fn sweep_jobs(jobs: usize) -> Vec<CapacityPoint> {
    ppatc::eval::par_map_indexed(CAPACITIES_KB.len(), jobs, capacity_point)
}

/// [`sweep_jobs`] under a [`Supervisor`]: honors the supervisor's
/// cancellation token and deadline, isolates worker panics, and — when a
/// checkpoint path is configured — journals every finished point so an
/// interrupted sweep resumes byte-identically (each point is a pure
/// function of its capacity index, and the journal stores exact `f64` bit
/// patterns).
///
/// # Errors
///
/// [`PpatcError::Interrupted`] when the budget stops the sweep,
/// [`PpatcError::WorkerPanic`] if a capacity point panics, and
/// [`PpatcError::Checkpoint`] on journal I/O failure or a journal recorded
/// for a different sweep.
#[must_use = "this returns a Result that must be handled"]
pub fn try_sweep_supervised(
    jobs: usize,
    supervisor: &Supervisor,
) -> Result<Vec<CapacityPoint>, PpatcError> {
    let spec = JournalSpec::for_run::<CapacityPoint>(
        "capacity",
        CAPACITIES_KB.len(),
        &[
            SWEEP_CLOCK_MHZ.to_bits(),
            SWEEP_LIFETIME_MONTHS.to_bits(),
            u64::from(CAPACITIES_KB[0]),
            u64::from(CAPACITIES_KB[CAPACITIES_KB.len() - 1]),
        ],
    );
    let journal = supervisor.try_open_journal(&spec)?;
    let outcomes = ppatc::eval::try_par_map_journaled(
        CAPACITIES_KB.len(),
        jobs,
        supervisor.budget(),
        journal.as_ref(),
        capacity_point,
    )?;
    outcomes.into_iter().collect()
}

/// Evaluates the `k`-th capacity point — a pure function of `k` (the
/// workload run and both pipelines are fixed), which is what makes
/// journaled resumes byte-identical.
fn capacity_point(k: usize) -> CapacityPoint {
    let run = matmul_run();
    let f = Frequency::from_megahertz(SWEEP_CLOCK_MHZ);
    let life = Lifetime::months(SWEEP_LIFETIME_MONTHS);
    let kb = CAPACITIES_KB[k];
    let org = Organization::new(kb * 1024, 2 * 1024, 32);
    let si =
        SystemDesign::with_flavor_and_memory(Technology::AllSi, f, SiVtFlavor::Rvt, org.clone())
            .expect("all-Si designs at this capacity");
    let m3d =
        SystemDesign::with_flavor_and_memory(Technology::M3dIgzoCnfetSi, f, SiVtFlavor::Rvt, org)
            .expect("M3D designs at this capacity");
    let study = CaseStudy::from_designs(
        si.clone(),
        m3d.clone(),
        run,
        EmbodiedPipeline::paper_default(),
        UsagePattern::paper_default(),
    );
    CapacityPoint {
        kb_per_macro: kb,
        area_mm2: [
            si.area().as_square_millimeters(),
            m3d.area().as_square_millimeters(),
        ],
        embodied_g: [
            study.embodied(Technology::AllSi).per_good_die().as_grams(),
            study
                .embodied(Technology::M3dIgzoCnfetSi)
                .per_good_die()
                .as_grams(),
        ],
        m3d_benefit_24mo: 1.0 / study.tcdp_ratio(life),
    }
}

/// Renders the sweep.
pub fn render() -> String {
    render_jobs(1)
}

/// [`render`] with the sweep evaluated across `jobs` workers (identical
/// output for any worker count).
pub fn render_jobs(jobs: usize) -> String {
    format_points(&sweep_jobs(jobs))
}

/// [`render_jobs`] under a [`Supervisor`]; identical output to
/// [`render_jobs`] when the run completes.
///
/// # Errors
///
/// Propagates every [`try_sweep_supervised`] error.
#[must_use = "this returns a Result that must be handled"]
pub fn try_render_supervised(jobs: usize, supervisor: &Supervisor) -> Result<String, PpatcError> {
    Ok(format_points(&try_sweep_supervised(jobs, supervisor)?))
}

/// Formats swept points as the exhibit table.
fn format_points(points: &[CapacityPoint]) -> String {
    let mut out = String::from(
        "kB/macro   area Si (mm²)   area M3D   emb Si (g)   emb M3D   M3D benefit @24mo\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>8}{:>16.3}{:>11.3}{:>13.2}{:>10.2}{:>15.3}x\n",
            p.kb_per_macro,
            p.area_mm2[0],
            p.area_mm2[1],
            p.embodied_g[0],
            p.embodied_g[1],
            p.m3d_benefit_24mo
        ));
    }
    out.push_str(
        "(2 h/day usage and the matmul-int access profile held fixed across capacities)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_scale_with_capacity() {
        let pts = sweep();
        for pair in pts.windows(2) {
            assert!(pair[1].area_mm2[0] > pair[0].area_mm2[0]);
            assert!(pair[1].area_mm2[1] > pair[0].area_mm2[1]);
        }
        // The area ratio approaches the pure memory-density ratio as the
        // core's share vanishes.
        let last = pts.last().expect("non-empty");
        let ratio = last.area_mm2[0] / last.area_mm2[1];
        assert!(ratio > 2.4, "area ratio at 256 kB {ratio:.2}");
    }

    #[test]
    fn abundant_memory_favors_m3d() {
        // The paper's motivating trend: the M3D benefit grows monotonically
        // with on-chip memory capacity.
        let pts = sweep();
        for pair in pts.windows(2) {
            assert!(
                pair[1].m3d_benefit_24mo > pair[0].m3d_benefit_24mo - 1e-9,
                "benefit fell from {} to {} between {} and {} kB",
                pair[0].m3d_benefit_24mo,
                pair[1].m3d_benefit_24mo,
                pair[0].kb_per_macro,
                pair[1].kb_per_macro
            );
        }
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial() {
        let serial = sweep_jobs(1);
        for jobs in [2, 8] {
            assert_eq!(serial, sweep_jobs(jobs), "jobs = {jobs}");
        }
        assert_eq!(render_jobs(1), render_jobs(4));
    }

    #[test]
    fn supervised_sweep_matches_unsupervised() {
        let plain = sweep_jobs(2);
        let supervised =
            try_sweep_supervised(2, &Supervisor::new()).expect("default supervisor completes");
        assert_eq!(plain, supervised);
        assert_eq!(
            render_jobs(1),
            try_render_supervised(1, &Supervisor::new()).expect("render completes")
        );
    }

    #[test]
    fn capacity_points_round_trip_through_the_journal_encoding() {
        let p = CapacityPoint {
            kb_per_macro: 64,
            area_mm2: [0.137, 0.062],
            embodied_g: [-0.0, f64::NAN],
            m3d_benefit_24mo: 1.03,
        };
        let mut words = Vec::new();
        p.encode(&mut words);
        assert_eq!(words.len(), CapacityPoint::WIDTH);
        let back = CapacityPoint::decode(&words).expect("decodes");
        assert_eq!(back.kb_per_macro, p.kb_per_macro);
        assert_eq!(back.area_mm2[0].to_bits(), p.area_mm2[0].to_bits());
        assert_eq!(back.embodied_g[0].to_bits(), p.embodied_g[0].to_bits());
        assert_eq!(back.embodied_g[1].to_bits(), p.embodied_g[1].to_bits());
        assert!(CapacityPoint::decode(&words[..5]).is_none());
    }

    #[test]
    fn the_paper_point_is_in_the_sweep() {
        let pts = sweep();
        let at_64 = pts
            .iter()
            .find(|p| p.kb_per_macro == 64)
            .expect("64 kB point");
        assert!((at_64.m3d_benefit_24mo - 1.03).abs() < 0.02);
        assert!((at_64.area_mm2[0] - 0.137).abs() < 0.01);
    }
}
