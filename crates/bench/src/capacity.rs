//! Memory-capacity sweep: how the M3D advantage scales with on-chip memory.
//!
//! The paper's motivation (and its N3XT citation) is *abundant-data*
//! computing: the more on-chip memory a system carries, the more the
//! memory dominates area and energy — and the more the M3D process's
//! cells-over-periphery density and shorter wires pay off. This exhibit
//! sweeps the per-macro capacity from 16 kB to 256 kB (2 kB sub-arrays
//! throughout) and tracks the 24-month tCDP comparison.

use crate::matmul_run;
use ppatc::{CaseStudy, EmbodiedPipeline, Lifetime, SystemDesign, Technology, UsagePattern};
use ppatc_edram::Organization;
use ppatc_pdk::SiVtFlavor;
use ppatc_units::Frequency;

/// One capacity point.
#[derive(Clone, Debug, PartialEq)]
pub struct CapacityPoint {
    /// Per-macro capacity, kB.
    pub kb_per_macro: u32,
    /// Total die area, mm², all-Si / M3D.
    pub area_mm2: [f64; 2],
    /// Embodied carbon per good die, g, all-Si / M3D.
    pub embodied_g: [f64; 2],
    /// tCDP benefit of M3D at 24 months (>1 = M3D wins).
    pub m3d_benefit_24mo: f64,
}

/// The swept per-macro capacities, kB.
const CAPACITIES_KB: [u32; 5] = [16, 32, 64, 128, 256];

/// Sweeps per-macro capacity (program and data memories both sized to it).
pub fn sweep() -> Vec<CapacityPoint> {
    sweep_jobs(1)
}

/// [`sweep`] with capacity points evaluated across `jobs` workers. The
/// result is byte-identical for any worker count; each point's two eDRAM
/// characterizations are served from [`ppatc_edram::EdramMacro`]'s memo
/// cache after the first request for that `(technology, organization)`.
pub fn sweep_jobs(jobs: usize) -> Vec<CapacityPoint> {
    let run = matmul_run();
    let f = Frequency::from_megahertz(500.0);
    let life = Lifetime::months(24.0);
    ppatc::eval::par_map_indexed(CAPACITIES_KB.len(), jobs, |k| {
        let kb = CAPACITIES_KB[k];
        let org = Organization::new(kb * 1024, 2 * 1024, 32);
        let si = SystemDesign::with_flavor_and_memory(
            Technology::AllSi,
            f,
            SiVtFlavor::Rvt,
            org.clone(),
        )
        .expect("all-Si designs at this capacity");
        let m3d = SystemDesign::with_flavor_and_memory(
            Technology::M3dIgzoCnfetSi,
            f,
            SiVtFlavor::Rvt,
            org,
        )
        .expect("M3D designs at this capacity");
        let study = CaseStudy::from_designs(
            si.clone(),
            m3d.clone(),
            run,
            EmbodiedPipeline::paper_default(),
            UsagePattern::paper_default(),
        );
        CapacityPoint {
            kb_per_macro: kb,
            area_mm2: [
                si.area().as_square_millimeters(),
                m3d.area().as_square_millimeters(),
            ],
            embodied_g: [
                study.embodied(Technology::AllSi).per_good_die().as_grams(),
                study
                    .embodied(Technology::M3dIgzoCnfetSi)
                    .per_good_die()
                    .as_grams(),
            ],
            m3d_benefit_24mo: 1.0 / study.tcdp_ratio(life),
        }
    })
}

/// Renders the sweep.
pub fn render() -> String {
    render_jobs(1)
}

/// [`render`] with the sweep evaluated across `jobs` workers (identical
/// output for any worker count).
pub fn render_jobs(jobs: usize) -> String {
    let mut out = String::from(
        "kB/macro   area Si (mm²)   area M3D   emb Si (g)   emb M3D   M3D benefit @24mo\n",
    );
    for p in sweep_jobs(jobs) {
        out.push_str(&format!(
            "{:>8}{:>16.3}{:>11.3}{:>13.2}{:>10.2}{:>15.3}x\n",
            p.kb_per_macro,
            p.area_mm2[0],
            p.area_mm2[1],
            p.embodied_g[0],
            p.embodied_g[1],
            p.m3d_benefit_24mo
        ));
    }
    out.push_str(
        "(2 h/day usage and the matmul-int access profile held fixed across capacities)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_scale_with_capacity() {
        let pts = sweep();
        for pair in pts.windows(2) {
            assert!(pair[1].area_mm2[0] > pair[0].area_mm2[0]);
            assert!(pair[1].area_mm2[1] > pair[0].area_mm2[1]);
        }
        // The area ratio approaches the pure memory-density ratio as the
        // core's share vanishes.
        let last = pts.last().expect("non-empty");
        let ratio = last.area_mm2[0] / last.area_mm2[1];
        assert!(ratio > 2.4, "area ratio at 256 kB {ratio:.2}");
    }

    #[test]
    fn abundant_memory_favors_m3d() {
        // The paper's motivating trend: the M3D benefit grows monotonically
        // with on-chip memory capacity.
        let pts = sweep();
        for pair in pts.windows(2) {
            assert!(
                pair[1].m3d_benefit_24mo > pair[0].m3d_benefit_24mo - 1e-9,
                "benefit fell from {} to {} between {} and {} kB",
                pair[0].m3d_benefit_24mo,
                pair[1].m3d_benefit_24mo,
                pair[0].kb_per_macro,
                pair[1].kb_per_macro
            );
        }
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial() {
        let serial = sweep_jobs(1);
        for jobs in [2, 8] {
            assert_eq!(serial, sweep_jobs(jobs), "jobs = {jobs}");
        }
        assert_eq!(render_jobs(1), render_jobs(4));
    }

    #[test]
    fn the_paper_point_is_in_the_sweep() {
        let pts = sweep();
        let at_64 = pts
            .iter()
            .find(|p| p.kb_per_macro == 64)
            .expect("64 kB point");
        assert!((at_64.m3d_benefit_24mo - 1.03).abs() < 0.02);
        assert!((at_64.area_mm2[0] - 0.137).abs() < 0.01);
    }
}
