//! Shared flag parsing for the exhibit binaries (`paper`, `eval_bench`).
//!
//! Both binaries take the same supervision flags (`--jobs`, `--deadline`,
//! `--checkpoint`, `--resume`); parsing them here keeps the two front ends
//! in agreement on validation — in particular, `--jobs 0` is a structured
//! [`ValidationError`], never a silent clamp to one worker.

use ppatc::ValidationError;
use std::time::Duration;

/// Parses a `--jobs` operand. `None` (a dangling flag) and non-numeric or
/// zero values are structured errors: a worker count must be an integer of
/// at least 1, and `--jobs 0` is rejected rather than silently clamped.
///
/// # Errors
///
/// [`ValidationError`] on a missing, malformed, or zero operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_jobs(raw: Option<&str>) -> Result<usize, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            "jobs",
            f64::NAN,
            "a worker count >= 1",
        ));
    };
    match raw.parse::<usize>() {
        Ok(0) => Err(ValidationError::new("jobs", 0.0, "a worker count >= 1")),
        Ok(n) => Ok(n),
        Err(_) => Err(ValidationError::new(
            "jobs",
            f64::NAN,
            "a worker count >= 1",
        )),
    }
}

/// Parses a `--deadline` operand as seconds into a [`Duration`]. The value
/// must be a finite, positive number of seconds.
///
/// # Errors
///
/// [`ValidationError`] on a missing, malformed, non-finite, or
/// non-positive operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_deadline(raw: Option<&str>) -> Result<Duration, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            "deadline",
            f64::NAN,
            "a positive number of seconds",
        ));
    };
    let secs = raw.parse::<f64>().unwrap_or(f64::NAN);
    if !(secs.is_finite() && secs > 0.0) {
        return Err(ValidationError::new(
            "deadline",
            secs,
            "a positive number of seconds",
        ));
    }
    Ok(Duration::from_secs_f64(secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_accepts_positive_integers() {
        assert_eq!(try_parse_jobs(Some("1")), Ok(1));
        assert_eq!(try_parse_jobs(Some("8")), Ok(8));
    }

    #[test]
    fn jobs_zero_is_a_structured_error_not_a_clamp() {
        let e = try_parse_jobs(Some("0")).expect_err("zero workers rejected");
        assert_eq!(e.field, "jobs");
        assert_eq!(e.value, 0.0);
    }

    #[test]
    fn jobs_rejects_garbage_and_missing_operands() {
        assert_eq!(
            try_parse_jobs(Some("two"))
                .expect_err("garbage rejected")
                .field,
            "jobs"
        );
        assert_eq!(
            try_parse_jobs(Some("-3"))
                .expect_err("negative rejected")
                .field,
            "jobs"
        );
        assert_eq!(
            try_parse_jobs(None)
                .expect_err("dangling flag rejected")
                .field,
            "jobs"
        );
    }

    #[test]
    fn deadline_parses_fractional_seconds() {
        let d = try_parse_deadline(Some("1.5")).expect("1.5 s parses");
        assert_eq!(d, Duration::from_millis(1_500));
    }

    #[test]
    fn deadline_rejects_bad_operands() {
        for raw in [Some("0"), Some("-2"), Some("inf"), Some("soon"), None] {
            let e = try_parse_deadline(raw).expect_err("bad deadline rejected");
            assert_eq!(e.field, "deadline");
        }
    }
}
