//! Shared flag parsing for the exhibit binaries (`paper`, `eval_bench`,
//! `serve_bench`).
//!
//! The actual parsers live in [`ppatc_serve::cli`] so that the benchmark
//! front ends and the long-running server agree on validation — `--jobs 0`
//! is a structured `ValidationError` everywhere, never a silent clamp to
//! one worker, and operands are normalized identically (whitespace
//! trimmed, one leading `+` accepted, empty operands reported as *empty*
//! rather than as a baffling `NaN`). This module re-exports them under the
//! historical `ppatc_bench::cli` paths.

pub use ppatc_serve::cli::{try_parse_count, try_parse_deadline, try_parse_jobs};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The full parser test matrix lives next to the shared implementation
    // in `ppatc_serve::cli`; these pin the re-exported surface the bench
    // binaries compile against.

    #[test]
    fn jobs_parser_is_the_shared_one() {
        assert_eq!(try_parse_jobs(Some("+8")), Ok(8));
        let e = try_parse_jobs(Some(" ")).expect_err("empty rejected");
        assert!(e.requirement.contains("non-empty"), "{}", e.requirement);
    }

    #[test]
    fn deadline_parser_is_the_shared_one() {
        assert_eq!(
            try_parse_deadline(Some("+1.5")).expect("parses"),
            Duration::from_millis(1_500)
        );
        assert_eq!(
            try_parse_deadline(Some("0"))
                .expect_err("zero rejected")
                .field,
            "deadline"
        );
    }

    #[test]
    fn count_parser_is_the_shared_one() {
        assert_eq!(try_parse_count("requests", Some("1000")), Ok(1_000));
        assert_eq!(
            try_parse_count("requests", Some("0"))
                .expect_err("zero rejected")
                .field,
            "requests"
        );
    }
}
