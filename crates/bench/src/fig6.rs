//! Fig. 6: tCDP-ratio colormap, isoline, and uncertainty variants.

use crate::case_study;
use ppatc::{IsolinePoint, Lifetime, Perturbation, TcdpMap};

/// x-axis samples (scale on M3D embodied carbon).
pub fn x_samples() -> Vec<f64> {
    (0..=10).map(|i| 0.5 + 0.25 * f64::from(i)).collect()
}

/// The nominal map at the paper's 24-month lifetime.
pub fn map() -> TcdpMap {
    case_study().tcdp_map(Lifetime::months(24.0))
}

/// The Fig. 6a raster: `(x, y, ratio)` samples of the colormap.
pub fn raster() -> Vec<(f64, f64, f64)> {
    map().raster((0.5, 3.0), (0.25, 1.5), 21, 21)
}

/// The nominal isoline.
pub fn isoline() -> Vec<IsolinePoint> {
    map().isoline(&x_samples())
}

/// The Fig. 6b perturbed isolines, labeled.
pub fn uncertainty_isolines() -> Vec<(&'static str, Vec<IsolinePoint>)> {
    let m = map();
    let xs = x_samples();
    vec![
        ("nominal", m.isoline(&xs)),
        (
            "lifetime −6 mo",
            m.isoline_with(&xs, Some(Perturbation::LifetimeDeltaMonths(-6.0))),
        ),
        (
            "lifetime +6 mo",
            m.isoline_with(&xs, Some(Perturbation::LifetimeDeltaMonths(6.0))),
        ),
        (
            "CI_use ÷ 3",
            m.isoline_with(&xs, Some(Perturbation::CiUseScale(1.0 / 3.0))),
        ),
        (
            "CI_use × 3",
            m.isoline_with(&xs, Some(Perturbation::CiUseScale(3.0))),
        ),
        (
            "M3D yield 10%",
            m.isoline_with(&xs, Some(Perturbation::M3dYield(0.10))),
        ),
        (
            "M3D yield 90%",
            m.isoline_with(&xs, Some(Perturbation::M3dYield(0.90))),
        ),
    ]
}

/// Renders the Fig. 6a map (coarse ASCII colormap plus the isoline).
pub fn render_map() -> String {
    let m = map();
    let mut out = String::from(
        "tCDP(M3D)/tCDP(all-Si) at 24 months; '+' = M3D more carbon-efficient (< 1)\n",
    );
    out.push_str("  y\\x ");
    for i in 0..11 {
        out.push_str(&format!("{:>6.2}", 0.5 + 0.25 * f64::from(i)));
    }
    out.push('\n');
    for j in (0..11).rev() {
        let y = 0.25 + 0.125 * f64::from(j);
        out.push_str(&format!("{y:>6.2}"));
        for i in 0..11 {
            let x = 0.5 + 0.25 * f64::from(i);
            let r = m.ratio(x, y);
            out.push_str(&format!("{:>6}", if r < 1.0 { "+" } else { "." }));
        }
        out.push('\n');
    }
    out.push_str("isoline (x, y where tCDP is equal):\n");
    for p in isoline() {
        match p.eop_scale {
            Some(y) => out.push_str(&format!("  x = {:>5.2}  y = {y:.3}\n", p.embodied_scale)),
            None => out.push_str(&format!(
                "  x = {:>5.2}  (all-Si always wins)\n",
                p.embodied_scale
            )),
        }
    }
    out
}

/// Renders the Fig. 6b uncertainty table.
pub fn render_uncertainty() -> String {
    let variants = uncertainty_isolines();
    let xs = x_samples();
    let mut out = String::from("isoline y(x) under uncertainty:\n        x:");
    for x in &xs {
        out.push_str(&format!("{x:>8.2}"));
    }
    out.push('\n');
    for (label, iso) in variants {
        out.push_str(&format!("{label:<16}"));
        for p in iso {
            match p.eop_scale {
                Some(y) => out.push_str(&format!("{y:>8.3}")),
                None => out.push_str(&format!("{:>8}", "—")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_is_in_the_red_region() {
        // At (1,1) the M3D design wins at 24 months — the paper's 1.02×.
        assert!(map().ratio(1.0, 1.0) < 1.0);
    }

    #[test]
    fn isoline_decreases_with_embodied_scale() {
        let iso = isoline();
        let ys: Vec<f64> = iso.iter().filter_map(|p| p.eop_scale).collect();
        assert!(ys.len() >= 5);
        for w in ys.windows(2) {
            assert!(w[1] < w[0], "isoline must slope down");
        }
    }

    #[test]
    fn uncertainty_brackets_the_nominal() {
        let variants = uncertainty_isolines();
        let y_at = |label: &str| -> Option<f64> {
            variants
                .iter()
                .find(|(l, _)| *l == label)
                .and_then(|(_, iso)| iso.iter().find(|p| (p.embodied_scale - 1.0).abs() < 1e-9))
                .and_then(|p| p.eop_scale)
        };
        let nominal = y_at("nominal").expect("nominal isoline at x=1");
        let longer = y_at("lifetime +6 mo").expect("longer-life isoline");
        let shorter = y_at("lifetime −6 mo").expect("shorter-life isoline");
        assert!(shorter < nominal && nominal < longer);
        let good_yield = y_at("M3D yield 90%").expect("90% yield isoline");
        assert!(good_yield > nominal);
    }

    #[test]
    fn raster_has_both_regions() {
        let r = raster();
        assert!(r.iter().any(|&(_, _, v)| v < 1.0), "some red region");
        assert!(r.iter().any(|&(_, _, v)| v > 1.0), "some blue region");
    }

    #[test]
    fn there_are_robust_regions_despite_uncertainty() {
        // Sec. III-D: even under uncertainty, some (x, y) keep their
        // winner. Check a strongly-M3D corner and a strongly-Si corner
        // across every perturbed variant.
        let m = map();
        for p in [
            None,
            Some(Perturbation::LifetimeDeltaMonths(-6.0)),
            Some(Perturbation::LifetimeDeltaMonths(6.0)),
            Some(Perturbation::CiUseScale(3.0)),
            Some(Perturbation::CiUseScale(1.0 / 3.0)),
            Some(Perturbation::M3dYield(0.10)),
            Some(Perturbation::M3dYield(0.90)),
        ] {
            assert!(
                m.ratio_with(0.3, 0.2, p) < 1.0,
                "M3D corner flips under {p:?}"
            );
            assert!(
                m.ratio_with(3.0, 1.5, p) > 1.0,
                "Si corner flips under {p:?}"
            );
        }
    }
}
