//! Extra exhibits beyond the paper's figures: the joint Monte-Carlo
//! uncertainty summary and the workload-suite characterization table.

use crate::case_study;
use ppatc::montecarlo::{self, MonteCarloConfig, MonteCarloResult, UncertaintyRanges};
use ppatc::{Lifetime, PpatcError, Supervisor};
use ppatc_workloads::Workload;

/// The deterministic seed of the Monte-Carlo exhibit.
const MC_SEED: u64 = 2025;

/// Sample count of the headline Monte-Carlo exhibit.
const MC_EXHIBIT_SAMPLES: usize = 20_000;

/// Sample count of the per-source sensitivity ranking.
const MC_SENSITIVITY_SAMPLES: usize = 10_000;

/// Joint Monte-Carlo run over all Fig. 6b uncertainty sources at the
/// nominal design point (deterministic seed).
pub fn monte_carlo(samples: usize) -> MonteCarloResult {
    monte_carlo_jobs(samples, 1)
}

/// [`monte_carlo`] sharded across `jobs` workers; byte-identical to the
/// serial run for any worker count.
pub fn monte_carlo_jobs(samples: usize, jobs: usize) -> MonteCarloResult {
    let map = case_study().tcdp_map(Lifetime::months(24.0));
    let config = MonteCarloConfig::new(samples, MC_SEED).expect("sample count >= 1");
    montecarlo::try_run_jobs(&map, &UncertaintyRanges::paper_default(), &config, jobs)
        .expect("paper-default sweep evaluates")
}

/// Renders the Monte-Carlo summary with the per-source sensitivity ranking.
pub fn render_monte_carlo() -> String {
    render_monte_carlo_jobs(1)
}

/// [`render_monte_carlo`] with sampling and sensitivity sharded across
/// `jobs` workers (identical output for any worker count).
pub fn render_monte_carlo_jobs(jobs: usize) -> String {
    match try_render_monte_carlo_supervised(jobs, &Supervisor::new()) {
        Ok(out) => out,
        // An unlimited, journal-free supervisor cannot be interrupted and
        // the paper-default sweep evaluates; surface anything else loudly.
        Err(e) => panic!("paper-default Monte-Carlo exhibit failed: {e}"),
    }
}

/// [`render_monte_carlo_jobs`] under a [`Supervisor`]: the 20 000-sample
/// headline sweep honors cancellation/deadline and — when a checkpoint
/// path is configured — journals finished chunks for byte-identical
/// resume. The sensitivity ranking that follows is budget-bounded but not
/// checkpointed (it is an order of magnitude cheaper than the sweep and
/// re-deriving it keeps the journal single-run).
///
/// # Errors
///
/// Propagates every [`montecarlo::try_run_supervised`] and
/// [`montecarlo::try_sensitivity_supervised`] error.
#[must_use = "this returns a Result that must be handled"]
pub fn try_render_monte_carlo_supervised(
    jobs: usize,
    supervisor: &Supervisor,
) -> Result<String, PpatcError> {
    let map = case_study().tcdp_map(Lifetime::months(24.0));
    let config = MonteCarloConfig::new(MC_EXHIBIT_SAMPLES, MC_SEED).expect("sample count >= 1");
    let r = montecarlo::try_run_supervised(
        &map,
        &UncertaintyRanges::paper_default(),
        &config,
        jobs,
        supervisor,
    )?;
    let shares = montecarlo::try_sensitivity_supervised(
        &map,
        &UncertaintyRanges::paper_default(),
        MC_SENSITIVITY_SAMPLES,
        MC_SEED,
        jobs,
        supervisor.budget(),
    )?;
    let mut out = format!(
        "joint uncertainty (lifetime 18-30 mo, CI /3..x3, yield 10-90%, model error ~±25%):\n{r}\n\nvariance shares by source:\n"
    );
    for (name, share) in shares {
        out.push_str(&format!("  {name:<18} {:>5.1}%\n", share * 100.0));
    }
    Ok(out)
}

/// One row of the workload characterization.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRow {
    /// Kernel name.
    pub name: &'static str,
    /// Cycles at 1 repetition.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Memory accesses (both memories) per cycle.
    pub accesses_per_cycle: f64,
    /// Fraction of data-memory traffic that is writes.
    pub write_fraction: f64,
}

/// Characterizes the full kernel suite at 1 repetition.
pub fn workload_rows() -> Vec<WorkloadRow> {
    Workload::suite()
        .iter()
        .map(|w| {
            let run = w.execute_with_reps(1).expect("kernel runs");
            let data = run.stats.data_reads + run.stats.data_writes;
            let accesses = run.stats.instruction_fetches + run.stats.program_reads + data;
            WorkloadRow {
                name: w.name(),
                cycles: run.cycles,
                ipc: run.instructions as f64 / run.cycles as f64,
                accesses_per_cycle: accesses as f64 / run.cycles as f64,
                write_fraction: if data > 0 {
                    run.stats.data_writes as f64 / data as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Renders the workload table.
pub fn render_workloads() -> String {
    let mut out =
        String::from("kernel        cycles/rep     IPC   mem-accesses/cycle   write fraction\n");
    for r in workload_rows() {
        out.push_str(&format!(
            "{:<12}{:>12}{:>8.2}{:>15.2}{:>17.2}\n",
            r.name, r.cycles, r.ipc, r.accesses_per_cycle, r.write_fraction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_is_reproducible_and_contested() {
        let a = monte_carlo(4000);
        let b = monte_carlo(4000);
        assert_eq!(a, b);
        assert!((0.05..0.95).contains(&a.p_m3d_wins), "P = {}", a.p_m3d_wins);
    }

    #[test]
    fn parallel_monte_carlo_matches_serial() {
        let serial = monte_carlo_jobs(4000, 1);
        for jobs in [2, 8] {
            assert_eq!(serial, monte_carlo_jobs(4000, jobs), "jobs = {jobs}");
        }
    }

    #[test]
    fn cancelled_exhibit_is_interrupted_not_rendered() {
        let token = ppatc::CancelToken::new();
        token.cancel();
        let supervisor =
            Supervisor::new().with_budget(ppatc::RunBudget::unlimited().with_cancel(&token));
        let e = try_render_monte_carlo_supervised(1, &supervisor)
            .expect_err("pre-cancelled exhibit stops");
        assert!(matches!(e, PpatcError::Interrupted { .. }));
    }

    #[test]
    fn every_kernel_is_characterized() {
        let rows = workload_rows();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.ipc > 0.3 && r.ipc < 1.0, "{}: IPC {}", r.name, r.ipc);
            assert!(
                r.accesses_per_cycle > 0.3,
                "{}: A/C {}",
                r.name,
                r.accesses_per_cycle
            );
            assert!((0.0..=1.0).contains(&r.write_fraction));
        }
    }

    #[test]
    fn suite_spans_diverse_memory_behaviour() {
        let rows = workload_rows();
        let max_wf = rows.iter().map(|r| r.write_fraction).fold(0.0, f64::max);
        let min_wf = rows.iter().map(|r| r.write_fraction).fold(1.0, f64::min);
        // From read-only (fsm) to write-heavy (sieve).
        assert!(
            max_wf > 0.5 && min_wf < 0.1,
            "write fractions {min_wf:.2}..{max_wf:.2}"
        );
    }
}
