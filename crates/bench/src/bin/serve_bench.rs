//! Load and chaos harness for `ppatc-serve`, writing `BENCH_serve.json`.
//!
//! Replays a deterministic mix of synthetic traffic against an in-process
//! server: well-formed evaluation queries (mostly cache-friendly, some
//! cold), malformed frames, slow-loris partial writes, mid-request
//! disconnects, and poison queries that panic inside the evaluator. A
//! second phase drains the server mid-load (the in-process equivalent of
//! SIGTERM) and verifies the shutdown stays graceful. A final resilience
//! phase drives retry/backoff clients through a deterministic transport
//! fault plan while `kill_worker` queries assassinate worker threads,
//! then kills the server and restarts it on its cache journal, requiring
//! zero unanswered requests, at least one supervised worker respawn, and
//! byte-identical recovered responses.
//!
//! ```text
//! cargo run --release -p ppatc-bench --bin serve_bench            # full load
//! cargo run --release -p ppatc-bench --bin serve_bench -- --smoke # CI-sized
//! ```
//!
//! Flags: `--smoke`, `--requests N` (total), `--clients N`,
//! `--workers N`/`--jobs N`, `--queue N`, `--deadline SECS`.
//!
//! Exit codes: 0 on a clean run, 1 if any panic escaped a request
//! boundary, a repeated query was not byte-identical, the drain phase
//! failed to shut down gracefully, or the resilience phase left a
//! request unanswered / failed to recover the cache byte-identically.

use ppatc_bench::cli;
use ppatc_serve::client::ServeClient;
use ppatc_serve::fault::{FaultPlan, FaultSpec};
use ppatc_serve::protocol::MAGIC;
use ppatc_serve::resilient::{ResilientClient, RetryPolicy};
use ppatc_serve::server::{try_spawn, ServerConfig};
use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Connect/read/write timeout for harness clients. Generous: the harness
/// must never wedge even when the server sheds or drains under it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Slow-loris window configured on the load-phase server. Short so the
/// handful of deliberate loris events cost milliseconds, not seconds.
const FRAME_TIMEOUT: Duration = Duration::from_millis(100);

/// Deliberate slow-loris events per client (each costs ~`FRAME_TIMEOUT`
/// of wall clock, so they are a fixed count rather than a traffic share).
const LORIS_PER_CLIENT: usize = 3;

/// The cache-friendly query pool. Every client replays these; responses
/// must be byte-identical across all clients and repetitions.
const POOL: &[&str] = &[
    "ping",
    "eval",
    "eval capacity_kb=16",
    "eval capacity_kb=16 f_clk_mhz=700",
    "eval capacity_kb=32 ci_g_per_kwh=50",
    "mc samples=64 seed=7",
    "mc samples=64 seed=7 capacity_kb=16",
];

/// Deterministic per-client PRNG (64-bit LCG, Knuth constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Per-client outcome tally, merged across clients at the end.
#[derive(Debug, Default)]
struct Tally {
    ok: u64,
    shed: u64,
    deadline_exceeded: u64,
    panic: u64,
    malformed: u64,
    invalid: u64,
    draining: u64,
    eval_failed: u64,
    other_err: u64,
    reconnects: u64,
    mismatches: u64,
    loris_events: u64,
    disconnect_events: u64,
    malformed_frames: u64,
    poison_queries: u64,
    latencies_micros: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.panic += other.panic;
        self.malformed += other.malformed;
        self.invalid += other.invalid;
        self.draining += other.draining;
        self.eval_failed += other.eval_failed;
        self.other_err += other.other_err;
        self.reconnects += other.reconnects;
        self.mismatches += other.mismatches;
        self.loris_events += other.loris_events;
        self.disconnect_events += other.disconnect_events;
        self.malformed_frames += other.malformed_frames;
        self.poison_queries += other.poison_queries;
        self.latencies_micros.extend(other.latencies_micros);
    }

    fn classify(&mut self, kind: &str, ok: bool) {
        if ok {
            self.ok += 1;
            return;
        }
        match kind {
            "overloaded" => self.shed += 1,
            "deadline_exceeded" => self.deadline_exceeded += 1,
            "panic" => self.panic += 1,
            "malformed" => self.malformed += 1,
            "invalid" => self.invalid += 1,
            "draining" => self.draining += 1,
            "eval_failed" => self.eval_failed += 1,
            _ => self.other_err += 1,
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn reconnect(addr: std::net::SocketAddr) -> Option<ServeClient> {
    ServeClient::try_connect(addr, CLIENT_TIMEOUT).ok()
}

/// One load-phase client: replays its request share, injecting chaos at
/// deterministic points, comparing pool responses against the shared
/// reference for byte-identity.
#[allow(clippy::too_many_lines)]
fn client_loop(
    id: usize,
    requests: usize,
    addr: std::net::SocketAddr,
    reference: &Mutex<HashMap<String, String>>,
) -> Tally {
    let mut tally = Tally::default();
    let mut rng = Lcg(0x9e37_79b9_7f4a_7c15 ^ (id as u64).wrapping_mul(0xdead_beef));
    let mut client = match reconnect(addr) {
        Some(c) => c,
        None => return tally,
    };
    // Loris events spread across the run at fixed indices.
    let loris_stride = (requests / (LORIS_PER_CLIENT + 1)).max(1);
    for i in 0..requests {
        // -- chaos: slow-loris partial write, then stall past the window.
        if LORIS_PER_CLIENT > 0
            && i > 0
            && i % loris_stride == 0
            && i / loris_stride <= LORIS_PER_CLIENT
        {
            tally.loris_events += 1;
            let _ = client.stream().write_all(&MAGIC[..2]);
            std::thread::sleep(FRAME_TIMEOUT + Duration::from_millis(50));
            // The server answers `err malformed msg=...timeout...` and
            // closes; drain the answer best-effort, then reconnect.
            let _ = client.try_request_raw("");
            tally.reconnects += 1;
            match reconnect(addr) {
                Some(c) => client = c,
                None => break,
            }
            continue;
        }
        let draw = rng.below(100);
        // -- chaos: mid-request disconnect (half a header, then vanish).
        if draw < 2 {
            tally.disconnect_events += 1;
            let _ = client.stream().write_all(&MAGIC[..3]);
            tally.reconnects += 1;
            match reconnect(addr) {
                Some(c) => client = c,
                None => break,
            }
            continue;
        }
        // -- chaos: malformed frame (wrong magic).
        if draw < 5 {
            tally.malformed_frames += 1;
            let _ = client.stream().write_all(b"XXXX\x00\x00\x00\x04junk");
            match client.try_request_raw("") {
                Ok(payload) if payload.starts_with("err malformed") => tally.malformed += 1,
                _ => tally.other_err += 1,
            }
            tally.reconnects += 1;
            match reconnect(addr) {
                Some(c) => client = c,
                None => break,
            }
            continue;
        }
        // -- the request mix proper.
        let owned: String;
        let line: &str = if draw < 9 {
            tally.poison_queries += 1;
            "poison"
        } else if draw < 15 {
            // Cold Monte-Carlo points: rotate seeds through a small space
            // so some repeat (cache hits) and some are first-seen (real
            // work that can back the queue up into shedding).
            owned = format!("mc samples=256 seed={}", rng.below(64));
            &owned
        } else if draw < 17 {
            "eval capacity_kb=63" // odd capacity: structured invalid
        } else {
            POOL[(i + id) % POOL.len()]
        };
        let started = Instant::now();
        match client.try_request_raw(line) {
            Ok(payload) => {
                let micros = started.elapsed().as_micros() as u64;
                tally.latencies_micros.push(micros);
                let ok = payload.starts_with("ok");
                let kind = if ok {
                    ""
                } else {
                    payload
                        .strip_prefix("err ")
                        .unwrap_or("")
                        .split_whitespace()
                        .next()
                        .unwrap_or("")
                };
                tally.classify(kind, ok);
                // Byte-identity across every client and repetition for
                // pool queries (they are pure and cacheable).
                if ok && POOL.contains(&line) {
                    let mut seen = reference.lock().expect("reference lock");
                    match seen.get(line) {
                        Some(first) if *first != payload => tally.mismatches += 1,
                        Some(_) => {}
                        None => {
                            seen.insert(line.to_string(), payload);
                        }
                    }
                }
            }
            Err(_) => {
                tally.reconnects += 1;
                match reconnect(addr) {
                    Some(c) => client = c,
                    None => break,
                }
            }
        }
    }
    tally
}

/// Overload burst: a deliberately undersized server (one worker, tiny
/// queue) hit by many concurrent clients with cold Monte-Carlo points.
/// Admission control must shed with `overloaded` + a retry hint instead
/// of queueing without bound; nothing may crash or hang.
fn burst_phase(clients: usize, per_client: usize) -> (u64, u64, u64, bool) {
    let mut config = ServerConfig::default();
    config.workers = 1;
    config.queue_capacity = 2;
    let handle = match try_spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_bench: burst-phase server failed to start: {e}");
            return (0, 0, 0, false);
        }
    };
    let addr = handle.addr();
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut hinted = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for id in 0..clients {
            joins.push(scope.spawn(move || {
                let mut answered = 0u64;
                let mut shed = 0u64;
                let mut hinted = 0u64;
                let Some(mut client) = reconnect(addr) else {
                    return (answered, shed, hinted);
                };
                for i in 0..per_client {
                    // Unique cold point per (client, i): always a cache
                    // miss, so the single worker is the bottleneck.
                    let q = format!("mc samples=8192 seed={}", id * per_client + i + 1_000);
                    match client.try_request(&q) {
                        Ok(resp) => {
                            answered += 1;
                            if !resp.ok && resp.kind == "overloaded" {
                                shed += 1;
                                if resp
                                    .field("retry_after_ms")
                                    .and_then(|v| v.parse::<u64>().ok())
                                    .is_some_and(|ms| ms >= 1)
                                {
                                    hinted += 1;
                                }
                            }
                        }
                        Err(_) => match reconnect(addr) {
                            Some(c) => client = c,
                            None => break,
                        },
                    }
                }
                (answered, shed, hinted)
            }));
        }
        for join in joins {
            if let Ok((a, s, h)) = join.join() {
                answered += a;
                shed += s;
                hinted += h;
            }
        }
    });
    let report = handle.drain();
    (answered, shed, hinted, report.connections_panicked == 0)
}

/// Phase 2: drain mid-load. Clients hammer the pool; the main thread
/// cancels the server (the in-process stand-in for SIGTERM) and every
/// client must wind down with a typed `draining` response or a clean
/// close — never a hang, never an escaped panic.
fn drain_phase(
    workers: usize,
    queue: usize,
    clients: usize,
) -> (Tally, ppatc_serve::HealthSnapshot, bool) {
    /// Safety cap so a drain that never lands cannot spin forever.
    const MAX_REQUESTS_PER_CLIENT: usize = 1_000_000;
    let mut config = ServerConfig::default();
    config.workers = workers;
    config.queue_capacity = queue;
    let handle = match try_spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_bench: drain-phase server failed to start: {e}");
            return (
                Tally::default(),
                ppatc_serve::HealthSnapshot::parse(""),
                false,
            );
        }
    };
    let addr = handle.addr();
    let token = handle.cancel_token();
    let drained = AtomicBool::new(false);
    let mut merged = Tally::default();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for id in 0..clients {
            let drained = &drained;
            joins.push(scope.spawn(move || {
                let mut tally = Tally::default();
                let Some(mut client) = reconnect(addr) else {
                    return tally;
                };
                for i in 0..MAX_REQUESTS_PER_CLIENT {
                    match client.try_request(POOL[(i + id) % POOL.len()]) {
                        Ok(resp) if resp.ok => tally.ok += 1,
                        Ok(resp) => {
                            tally.classify(&resp.kind, false);
                            if resp.kind == "draining" {
                                break;
                            }
                        }
                        Err(_) => {
                            // Connection torn down. Expected once the
                            // drain started; a fresh connect must fail
                            // or at least never be served.
                            if drained.load(Ordering::Relaxed) {
                                break;
                            }
                            tally.reconnects += 1;
                            match reconnect(addr) {
                                Some(c) => client = c,
                                None => break,
                            }
                        }
                    }
                }
                tally
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        drained.store(true, Ordering::Relaxed);
        token.cancel();
        for join in joins {
            if let Ok(tally) = join.join() {
                merged.merge(tally);
            }
        }
    });
    let started = Instant::now();
    let report = handle.join();
    let graceful = started.elapsed() < Duration::from_secs(30) && report.connections_panicked == 0;
    (merged, report, graceful)
}

/// Cacheable query pool for the resilience phase: warmed fault-free
/// before the chaos starts, and required to come back byte-identical
/// from the recovered cache after the kill/restart.
const RESILIENCE_POOL: &[&str] = &[
    "eval capacity_kb=16",
    "eval capacity_kb=16 f_clk_mhz=700",
    "eval capacity_kb=32 ci_g_per_kwh=50",
    "mc samples=64 seed=11",
    "mc samples=64 seed=12 capacity_kb=16",
];

/// Root seed for the resilience phase. Every fault plan and every retry
/// jitter stream derives from it, so the injected schedule is a pure
/// function of this constant.
const RESILIENCE_SEED: u64 = 0xc0ff_ee11;

/// Per-client retry budget for the resilience phase: effectively
/// unlimited, so the only way a request ends unanswered is a genuine
/// loss of service rather than an artificial accounting cap.
const RESILIENCE_RETRY_BUDGET: u64 = 1_000_000;

/// Fault-injection intensity, per mille of frames, for each of the
/// disconnect, corrupt-magic, and truncate faults (delays run at half).
const RESILIENCE_FAULT_PER_MILLE: u64 = 100;

/// Deterministic (client, request-index) points where a `kill_worker`
/// chaos query rides the stream, forcing supervised worker respawns.
const KILL_POINTS: &[(usize, usize)] = &[(0, 5), (1, 11)];

/// Outcome tally for the resilience phase, merged across its clients.
#[derive(Debug, Default)]
struct ResilienceTally {
    requests: u64,
    ok: u64,
    typed_err: u64,
    unanswered: u64,
    attempts: u64,
    wire_replays: u64,
    overload_retries: u64,
    connects: u64,
    backoff_ms_total: u64,
    injected_disconnects: u64,
    injected_corrupted: u64,
    injected_truncated: u64,
    injected_delays: u64,
    kills_sent: u64,
}

impl ResilienceTally {
    fn merge(&mut self, other: &ResilienceTally) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.typed_err += other.typed_err;
        self.unanswered += other.unanswered;
        self.attempts += other.attempts;
        self.wire_replays += other.wire_replays;
        self.overload_retries += other.overload_retries;
        self.connects += other.connects;
        self.backoff_ms_total += other.backoff_ms_total;
        self.injected_disconnects += other.injected_disconnects;
        self.injected_corrupted += other.injected_corrupted;
        self.injected_truncated += other.injected_truncated;
        self.injected_delays += other.injected_delays;
        self.kills_sent += other.kills_sent;
    }
}

/// Phase 4: resilience. Fault-injected retry clients hammer a
/// journal-backed server while `kill_worker` queries assassinate worker
/// threads mid-stream; afterwards the server is stopped, the journal's
/// final line is deliberately torn (as a kill mid-append would), and a
/// fresh server recovers the cache and must answer the warmed pool
/// byte-identically. Returns the phase's JSON object and its clean flag.
#[allow(clippy::too_many_lines)]
fn resilience_phase(smoke: bool) -> (String, bool) {
    let journal = std::env::temp_dir().join(format!(
        "ppatc-serve-bench-journal-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);
    let mut config = ServerConfig::default();
    config.workers = 2;
    config.enable_poison = true;
    config.cache_journal = Some(journal.clone());
    let handle = match try_spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_bench: resilience-phase server failed to start: {e}");
            return ("null".to_string(), false);
        }
    };
    let addr = handle.addr();

    // Warm the cache fault-free and capture the reference bytes.
    let mut reference: Vec<String> = Vec::new();
    if let Some(mut client) = reconnect(addr) {
        for q in RESILIENCE_POOL {
            match client.try_request_raw(q) {
                Ok(payload) => reference.push(payload),
                Err(e) => {
                    eprintln!("serve_bench: resilience warm-up failed on {q}: {e}");
                    break;
                }
            }
        }
    }
    if reference.len() != RESILIENCE_POOL.len() {
        handle.drain();
        return ("null".to_string(), false);
    }

    let clients = 3usize;
    let per_client = if smoke { 30 } else { 90 };
    let mut tally = ResilienceTally::default();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for id in 0..clients {
            joins.push(scope.spawn(move || {
                let mut part = ResilienceTally::default();
                let spec = FaultSpec {
                    seed: RESILIENCE_SEED ^ (id as u64 + 1),
                    disconnect_per_mille: RESILIENCE_FAULT_PER_MILLE,
                    corrupt_per_mille: RESILIENCE_FAULT_PER_MILLE,
                    truncate_per_mille: RESILIENCE_FAULT_PER_MILLE,
                    delay_per_mille: RESILIENCE_FAULT_PER_MILLE / 2,
                    max_delay_ms: 3,
                };
                let policy = RetryPolicy {
                    max_attempts: 16,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(50),
                    retry_budget: RESILIENCE_RETRY_BUDGET,
                    circuit_failure_threshold: 50,
                    circuit_cooldown: Duration::from_millis(100),
                    connect_timeout: Duration::from_secs(5),
                    request_timeout: Some(CLIENT_TIMEOUT),
                    seed: RESILIENCE_SEED.wrapping_add(id as u64),
                };
                let mut client = ResilientClient::new(addr.to_string(), policy)
                    .with_fault_plan(FaultPlan::new(spec));
                for i in 0..per_client {
                    let line = if KILL_POINTS.contains(&(id, i)) {
                        part.kills_sent += 1;
                        "kill_worker"
                    } else if i % 7 == 0 {
                        "ping"
                    } else {
                        RESILIENCE_POOL[(i + id) % RESILIENCE_POOL.len()]
                    };
                    part.requests += 1;
                    match client.try_request(line) {
                        Ok(resp) if resp.ok => part.ok += 1,
                        Ok(_) => part.typed_err += 1,
                        Err(e) => {
                            part.unanswered += 1;
                            eprintln!(
                                "serve_bench: resilience client {id} request {i} \
                                 ({line}) unanswered: {e}"
                            );
                        }
                    }
                }
                let stats = client.stats();
                part.attempts = stats.attempts;
                part.wire_replays = stats.wire_replays;
                part.overload_retries = stats.overload_retries;
                part.connects = stats.connects;
                part.backoff_ms_total = stats.backoff_ms_total;
                let counts = client.fault_counts();
                part.injected_disconnects = counts.disconnects;
                part.injected_corrupted = counts.corrupted;
                part.injected_truncated = counts.truncated;
                part.injected_delays = counts.delays;
                part
            }));
        }
        for join in joins {
            if let Ok(part) = join.join() {
                tally.merge(&part);
            }
        }
    });

    // Every kill point must have produced a supervised respawn before we
    // read the final health block (the supervisor polls every 50 ms, so
    // the last death can land just after the last client finishes).
    let kill_total = KILL_POINTS.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.health().worker_restarts < kill_total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let report_a = handle.drain();

    // Tear the journal's final line, as a kill mid-append would: the
    // recovery path must skip exactly this tail and nothing else.
    if let Ok(mut file) = std::fs::OpenOptions::new().append(true).open(&journal) {
        let _ = write!(file, "e 5 7 68656");
    }

    // Restart on the same journal (same default cache geometry) and
    // require byte-identical answers for the warmed pool.
    let mut restart_config = ServerConfig::default();
    restart_config.cache_journal = Some(journal.clone());
    let (recovered, recovery_mismatches, restart_hits, restarted) = match try_spawn(restart_config)
    {
        Ok(handle) => {
            let recovered = handle.health().cache_recovered;
            let mut mismatches = 0u64;
            match reconnect(handle.addr()) {
                Some(mut client) => {
                    for (q, want) in RESILIENCE_POOL.iter().zip(&reference) {
                        match client.try_request_raw(q) {
                            Ok(got) if got == *want => {}
                            _ => mismatches += 1,
                        }
                    }
                }
                None => mismatches = RESILIENCE_POOL.len() as u64,
            }
            let report_b = handle.drain();
            (recovered, mismatches, report_b.cache_hits, true)
        }
        Err(e) => {
            eprintln!("serve_bench: restart on the recovered journal failed: {e}");
            (0, RESILIENCE_POOL.len() as u64, 0, false)
        }
    };
    let _ = std::fs::remove_file(&journal);

    let pool_len = RESILIENCE_POOL.len() as u64;
    let clean = restarted
        && tally.unanswered == 0
        && report_a.worker_restarts >= 1
        && !report_a.supervisor_gave_up
        && report_a.connections_panicked == 0
        && report_a.cache_journal_failures == 0
        && recovered >= pool_len
        && recovery_mismatches == 0
        && restart_hits >= pool_len;
    let json = format!(
        r#"{{
    "clients": {clients},
    "requests_per_client": {per_client},
    "fault_seed": {RESILIENCE_SEED},
    "fault_per_mille": {{ "disconnect": {RESILIENCE_FAULT_PER_MILLE}, "corrupt_magic": {RESILIENCE_FAULT_PER_MILLE}, "truncate": {RESILIENCE_FAULT_PER_MILLE}, "delay": {} }},
    "requests": {},
    "answered_ok": {},
    "typed_errors": {},
    "unanswered": {},
    "attempts": {},
    "wire_replays": {},
    "overload_retries": {},
    "reconnects": {},
    "backoff_ms_total": {},
    "injected": {{ "disconnects": {}, "corrupt_magic": {}, "truncated": {}, "delays": {} }},
    "worker_kills_sent": {},
    "worker_restarts": {},
    "supervisor_gave_up": {},
    "cache_journal_failures": {},
    "kill_restart_recovery": {{
      "journal_recovered_entries": {recovered},
      "torn_tail_injected": true,
      "pool_queries_compared": {pool_len},
      "byte_mismatches": {recovery_mismatches},
      "post_restart_cache_hits": {restart_hits}
    }},
    "clean": {clean}
  }}"#,
        RESILIENCE_FAULT_PER_MILLE / 2,
        tally.requests,
        tally.ok,
        tally.typed_err,
        tally.unanswered,
        tally.attempts,
        tally.wire_replays,
        tally.overload_retries,
        tally.connects,
        tally.backoff_ms_total,
        tally.injected_disconnects,
        tally.injected_corrupted,
        tally.injected_truncated,
        tally.injected_delays,
        tally.kills_sent,
        report_a.worker_restarts,
        report_a.supervisor_gave_up,
        report_a.cache_journal_failures,
    );
    (json, clean)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut requests: usize = 200_000;
    let mut clients: usize = 8;
    let mut workers: usize = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let mut queue: usize = 64;
    let mut deadline = Duration::from_secs(10);
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--smoke" => {
                smoke = true;
                Ok(())
            }
            "--requests" => {
                cli::try_parse_count("requests", args.next().as_deref()).map(|n| requests = n)
            }
            "--clients" => {
                cli::try_parse_count("clients", args.next().as_deref()).map(|n| clients = n)
            }
            "--workers" | "--jobs" | "-j" => {
                cli::try_parse_jobs(args.next().as_deref()).map(|n| workers = n)
            }
            "--queue" => cli::try_parse_count("queue", args.next().as_deref()).map(|n| queue = n),
            "--deadline" => cli::try_parse_deadline(args.next().as_deref()).map(|d| deadline = d),
            other => {
                eprintln!("serve_bench: unknown argument `{other}`");
                eprintln!(
                    "usage: serve_bench [--smoke] [--requests N] [--clients N] \
                     [--workers N] [--queue N] [--deadline SECS]"
                );
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = parsed {
            eprintln!("serve_bench: {arg}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if smoke {
        requests = requests.min(3_000);
        clients = clients.min(4);
    }

    // Poison queries panic by design; keep stderr readable. Escaped
    // panics are still caught by the health counters and the exit code.
    std::panic::set_hook(Box::new(|_| {}));

    let mut config = ServerConfig::default();
    config.workers = workers;
    config.queue_capacity = queue;
    config.request_deadline = deadline;
    config.frame_timeout = FRAME_TIMEOUT;
    config.enable_poison = true;
    let handle = match try_spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_bench: server failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();
    let per_client = requests.div_ceil(clients.max(1));
    eprintln!(
        "serve_bench: load phase — {clients} clients x {per_client} requests, \
         {workers} workers, queue {queue}, on {addr}"
    );

    let reference = Mutex::new(HashMap::new());
    let started = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for id in 0..clients {
            let reference = &reference;
            joins.push(scope.spawn(move || client_loop(id, per_client, addr, reference)));
        }
        for join in joins {
            if let Ok(t) = join.join() {
                tally.merge(t);
            }
        }
    });
    let load_secs = started.elapsed().as_secs_f64();
    let report = handle.drain();

    tally.latencies_micros.sort_unstable();
    let p50 = percentile(&tally.latencies_micros, 0.50);
    let p99 = percentile(&tally.latencies_micros, 0.99);
    let max = tally.latencies_micros.last().copied().unwrap_or(0);
    let answered = tally.latencies_micros.len() as u64;
    let shed_rate = if answered == 0 {
        0.0
    } else {
        tally.shed as f64 / answered as f64
    };
    let throughput = if load_secs > 0.0 {
        answered as f64 / load_secs
    } else {
        0.0
    };

    eprintln!("serve_bench: burst phase — 1 worker, queue 2, expect load shedding");
    let burst_clients = 16;
    let burst_per_client = if smoke { 8 } else { 40 };
    let (burst_answered, burst_shed, burst_hinted, burst_clean) =
        burst_phase(burst_clients, burst_per_client);
    let burst_shed_rate = if burst_answered == 0 {
        0.0
    } else {
        burst_shed as f64 / burst_answered as f64
    };

    eprintln!("serve_bench: drain phase — cancel mid-load, expect graceful wind-down");
    let drain_clients = clients.min(4);
    let (drain_tally, drain_report, graceful) = drain_phase(workers, queue, drain_clients);

    eprintln!(
        "serve_bench: resilience phase — fault-injected transport, worker kills, \
         kill/restart cache recovery"
    );
    let (resilience_json, resilience_clean) = resilience_phase(smoke);

    let escaped = report.connections_panicked + drain_report.connections_panicked;
    let clean = escaped == 0
        && tally.mismatches == 0
        && graceful
        && burst_clean
        && burst_shed > 0
        && resilience_clean;
    let json = format!(
        r#"{{
  "benchmark": "ppatc-serve load + chaos harness",
  "command": "cargo run --release -p ppatc-bench --bin serve_bench{}",
  "methodology": "deterministic per-client LCG traffic mix against an in-process server; latencies cover every answered frame (ok or typed error); chaos events (malformed frames, slow-loris stalls, mid-request disconnects, poison panics) ride inline with the load",
  "config": {{
    "clients": {clients},
    "requests_per_client": {per_client},
    "workers": {workers},
    "queue_capacity": {queue},
    "request_deadline_secs": {:.3},
    "frame_timeout_ms": {}
  }},
  "latency_micros": {{
    "answered_frames": {answered},
    "p50": {p50},
    "p99": {p99},
    "max": {max},
    "throughput_per_sec": {throughput:.0},
    "load_wall_secs": {load_secs:.2}
  }},
  "outcomes": {{
    "ok": {},
    "shed": {},
    "shed_rate": {shed_rate:.4},
    "deadline_exceeded": {},
    "panic_isolated": {},
    "malformed": {},
    "invalid": {},
    "eval_failed": {},
    "other_err": {},
    "reconnects": {}
  }},
  "chaos_events": {{
    "slow_loris_stalls": {},
    "mid_request_disconnects": {},
    "malformed_frames": {},
    "poison_queries": {}
  }},
  "server_health_final": {{
    "served": {},
    "shed": {},
    "panicked": {},
    "deadline_expired": {},
    "malformed": {},
    "invalid": {},
    "connections_opened": {},
    "connections_panicked": {},
    "cache_hit_rate": {:.4}
  }},
  "burst_phase": {{
    "clients": {burst_clients},
    "requests_per_client": {burst_per_client},
    "server": "1 worker, queue capacity 2",
    "answered": {burst_answered},
    "shed": {burst_shed},
    "shed_rate": {burst_shed_rate:.4},
    "retry_hints_present": {burst_hinted},
    "graceful": {burst_clean}
  }},
  "drain_phase": {{
    "clients": {drain_clients},
    "served_before_drain": {},
    "draining_responses": {},
    "graceful": {graceful},
    "connections_panicked": {}
  }},
  "resilience_phase": {resilience_json},
  "determinism": {{
    "pool_queries_compared": {},
    "byte_mismatches": {}
  }},
  "clean": {clean}
}}"#,
        if smoke { " -- --smoke" } else { "" },
        deadline.as_secs_f64(),
        FRAME_TIMEOUT.as_millis(),
        tally.ok,
        tally.shed,
        tally.deadline_exceeded,
        tally.panic,
        tally.malformed,
        tally.invalid,
        tally.eval_failed,
        tally.other_err,
        tally.reconnects,
        tally.loris_events,
        tally.disconnect_events,
        tally.malformed_frames,
        tally.poison_queries,
        report.served,
        report.shed,
        report.panicked,
        report.deadline_expired,
        report.malformed,
        report.invalid,
        report.connections_opened,
        report.connections_panicked,
        report.cache_hit_rate(),
        drain_tally.ok,
        drain_tally.draining,
        drain_report.connections_panicked,
        reference.lock().map(|m| m.len()).unwrap_or(0),
        tally.mismatches,
    );
    if let Err(e) = std::fs::write("BENCH_serve.json", format!("{json}\n")) {
        eprintln!("failed to write BENCH_serve.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    if !clean {
        eprintln!(
            "serve_bench: FAILED — escaped_panics={escaped} mismatches={} graceful={graceful} \
             burst_shed={burst_shed} resilience_clean={resilience_clean}",
            tally.mismatches
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
