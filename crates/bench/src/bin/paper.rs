//! Prints any (or all) of the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ppatc-bench --bin paper -- table2
//! cargo run --release -p ppatc-bench --bin paper -- all
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let output = match arg.as_str() {
        "table1" => ppatc_bench::table1::render(),
        "fig2ab" => ppatc_bench::fig2ab::render(),
        "fig2c" => ppatc_bench::fig2c::render(),
        "fig2d" => ppatc_bench::fig2d::render(),
        "fig4" => ppatc_bench::fig4::render(),
        "table2" => ppatc_bench::table2::render(),
        "fig5" => ppatc_bench::fig5::render(),
        "fig6a" => ppatc_bench::fig6::render_map(),
        "fig6b" => ppatc_bench::fig6::render_uncertainty(),
        "ablations" => ppatc_bench::ablation::render(),
        "workloads" => ppatc_bench::extras::render_workloads(),
        "montecarlo" => ppatc_bench::extras::render_monte_carlo(),
        "capacity" => ppatc_bench::capacity::render(),
        "all" => ppatc_bench::render_all(),
        other => {
            eprintln!(
                "unknown exhibit `{other}`; expected one of: table1 fig2ab fig2c fig2d fig4 table2 fig5 fig6a fig6b ablations workloads montecarlo capacity all"
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{output}");
    ExitCode::SUCCESS
}
