//! Prints any (or all) of the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ppatc-bench --bin paper -- table2
//! cargo run --release -p ppatc-bench --bin paper -- montecarlo --jobs 4
//! cargo run --release -p ppatc-bench --bin paper -- all
//! ```
//!
//! `--jobs N` shards the evaluation-heavy exhibits (`montecarlo`,
//! `capacity`, and their appearances in `all`) across N workers; the
//! output is byte-identical for every worker count. The default is one
//! worker per available core; `--jobs 0` is rejected, not clamped.
//!
//! The `montecarlo` and `capacity` exhibits additionally accept
//! supervision flags:
//!
//! - `--deadline SECS` — stop the run (exit code 2) once the wall-clock
//!   budget expires; the deadline is also threaded into the SPICE solver
//!   budget.
//! - `--checkpoint PATH` — journal every finished chunk to `PATH`.
//! - `--resume` — reload `PATH` and recompute only the missing items; a
//!   resumed run is byte-identical to an uninterrupted one.

use ppatc::{PpatcError, RunBudget, Supervisor};
use std::process::ExitCode;

/// Exit code of a run stopped by its deadline (distinct from hard
/// failures so schedulers can tell "ran out of time, resume me" apart
/// from "broken").
const EXIT_INTERRUPTED: u8 = 2;

fn main() -> ExitCode {
    let mut exhibit: Option<String> = None;
    let mut jobs = ppatc::eval::default_jobs();
    let mut deadline = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => match ppatc_bench::cli::try_parse_jobs(args.next().as_deref()) {
                Ok(n) => jobs = n,
                Err(e) => {
                    eprintln!("--jobs: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--deadline" => match ppatc_bench::cli::try_parse_deadline(args.next().as_deref()) {
                Ok(d) => deadline = Some(d),
                Err(e) => {
                    eprintln!("--deadline: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint" => match args.next() {
                Some(path) => checkpoint = Some(path),
                None => {
                    eprintln!("--checkpoint requires a journal path");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => resume = true,
            other if exhibit.is_none() => exhibit = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let exhibit = exhibit.unwrap_or_else(|| "all".to_string());
    let supervised_requested = deadline.is_some() || checkpoint.is_some() || resume;
    if supervised_requested && !matches!(exhibit.as_str(), "montecarlo" | "capacity") {
        eprintln!(
            "--deadline/--checkpoint/--resume apply only to the `montecarlo` and `capacity` exhibits"
        );
        return ExitCode::FAILURE;
    }
    if resume && checkpoint.is_none() {
        eprintln!("--resume requires --checkpoint PATH");
        return ExitCode::FAILURE;
    }
    let mut budget = RunBudget::unlimited();
    if let Some(d) = deadline {
        budget = budget.with_deadline_in(d);
    }
    let mut supervisor = Supervisor::new().with_budget(budget).resuming(resume);
    if let Some(path) = &checkpoint {
        supervisor = supervisor.with_checkpoint(path);
    }
    let output = match exhibit.as_str() {
        "table1" => ppatc_bench::table1::render(),
        "fig2ab" => ppatc_bench::fig2ab::render(),
        "fig2c" => ppatc_bench::fig2c::render(),
        "fig2d" => ppatc_bench::fig2d::render(),
        "fig4" => ppatc_bench::fig4::render(),
        "table2" => ppatc_bench::table2::render(),
        "fig5" => ppatc_bench::fig5::render(),
        "fig6a" => ppatc_bench::fig6::render_map(),
        "fig6b" => ppatc_bench::fig6::render_uncertainty(),
        "ablations" => ppatc_bench::ablation::render(),
        "workloads" => ppatc_bench::extras::render_workloads(),
        "montecarlo" => {
            match ppatc_bench::extras::try_render_monte_carlo_supervised(jobs, &supervisor) {
                Ok(out) => out,
                Err(e) => return report_supervised_failure(&e, &checkpoint),
            }
        }
        "capacity" => match ppatc_bench::capacity::try_render_supervised(jobs, &supervisor) {
            Ok(out) => out,
            Err(e) => return report_supervised_failure(&e, &checkpoint),
        },
        "all" => ppatc_bench::render_all_jobs(jobs),
        other => {
            eprintln!(
                "unknown exhibit `{other}`; expected one of: table1 fig2ab fig2c fig2d fig4 table2 fig5 fig6a fig6b ablations workloads montecarlo capacity all"
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{output}");
    ExitCode::SUCCESS
}

/// Reports a supervised-exhibit failure: an interrupt gets the dedicated
/// exit code plus a resume hint when the partial work was journaled;
/// anything else is a plain failure.
fn report_supervised_failure(e: &PpatcError, checkpoint: &Option<String>) -> ExitCode {
    eprintln!("{e}");
    if let PpatcError::Interrupted { .. } = e {
        if let Some(path) = checkpoint {
            eprintln!("partial results are journaled; rerun with `--checkpoint {path} --resume`");
        }
        return ExitCode::from(EXIT_INTERRUPTED);
    }
    ExitCode::FAILURE
}
