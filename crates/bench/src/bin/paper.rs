//! Prints any (or all) of the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ppatc-bench --bin paper -- table2
//! cargo run --release -p ppatc-bench --bin paper -- montecarlo --jobs 4
//! cargo run --release -p ppatc-bench --bin paper -- all
//! ```
//!
//! `--jobs N` shards the evaluation-heavy exhibits (`montecarlo`,
//! `capacity`, and their appearances in `all`) across N workers; the
//! output is byte-identical for every worker count. The default is one
//! worker per available core.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exhibit: Option<String> = None;
    let mut jobs = ppatc::eval::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs requires a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            other if exhibit.is_none() => exhibit = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let exhibit = exhibit.unwrap_or_else(|| "all".to_string());
    let output = match exhibit.as_str() {
        "table1" => ppatc_bench::table1::render(),
        "fig2ab" => ppatc_bench::fig2ab::render(),
        "fig2c" => ppatc_bench::fig2c::render(),
        "fig2d" => ppatc_bench::fig2d::render(),
        "fig4" => ppatc_bench::fig4::render(),
        "table2" => ppatc_bench::table2::render(),
        "fig5" => ppatc_bench::fig5::render(),
        "fig6a" => ppatc_bench::fig6::render_map(),
        "fig6b" => ppatc_bench::fig6::render_uncertainty(),
        "ablations" => ppatc_bench::ablation::render(),
        "workloads" => ppatc_bench::extras::render_workloads(),
        "montecarlo" => ppatc_bench::extras::render_monte_carlo_jobs(jobs),
        "capacity" => ppatc_bench::capacity::render_jobs(jobs),
        "all" => ppatc_bench::render_all_jobs(jobs),
        other => {
            eprintln!(
                "unknown exhibit `{other}`; expected one of: table1 fig2ab fig2c fig2d fig4 table2 fig5 fig6a fig6b ablations workloads montecarlo capacity all"
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{output}");
    ExitCode::SUCCESS
}
