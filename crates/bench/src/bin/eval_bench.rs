//! Measures the parallel evaluation engine and the characterization memo
//! cache, writing `BENCH_eval.json`.
//!
//! ```text
//! cargo run --release -p ppatc-bench --bin eval_bench
//! cargo run --release -p ppatc-bench --bin eval_bench -- --samples 100000 --jobs 8
//! ```
//!
//! Four workloads are timed (median of 5 warm runs each):
//!
//! - the joint Monte-Carlo sweep at 10 000 samples, serial vs. parallel
//!   worker counts up to `--jobs` (byte-identical results are asserted,
//!   not assumed);
//! - the same sweep under a supervisor (cancellation/deadline polling and
//!   panic isolation active), measuring the supervision overhead;
//! - a 512×512 tCDP-ratio raster, serial vs. `--jobs` workers;
//! - the capacity sweep cold (every eDRAM macro characterized from
//!   scratch) vs. warm (every characterization served from the memo
//!   cache).
//!
//! `--jobs 0` is rejected, not clamped. `--deadline SECS`, `--checkpoint
//! PATH`, and `--resume` supervise the Monte-Carlo stage: a deadline that
//! expires stops the benchmark with exit code 2, and a checkpoint journals
//! the reference sweep so a rerun with `--resume` replays finished chunks
//! from disk.

use ppatc::montecarlo::{self, MonteCarloConfig, UncertaintyRanges};
use ppatc::{Lifetime, PpatcError, RunBudget, Supervisor};
use std::process::ExitCode;
use std::time::Instant;

/// Timed repetitions per measurement (median reported).
const RUNS: usize = 5;

/// Exit code of a run stopped by its deadline.
const EXIT_INTERRUPTED: u8 = 2;

fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() -> ExitCode {
    let mut samples = 10_000usize;
    let mut jobs = 4usize;
    let mut deadline = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => samples = n,
                _ => {
                    eprintln!("--samples requires a count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match ppatc_bench::cli::try_parse_jobs(args.next().as_deref()) {
                Ok(n) => jobs = n,
                Err(e) => {
                    eprintln!("--jobs: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--deadline" => match ppatc_bench::cli::try_parse_deadline(args.next().as_deref()) {
                Ok(d) => deadline = Some(d),
                Err(e) => {
                    eprintln!("--deadline: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint" => match args.next() {
                Some(path) => checkpoint = Some(path),
                None => {
                    eprintln!("--checkpoint requires a journal path");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => resume = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if resume && checkpoint.is_none() {
        eprintln!("--resume requires --checkpoint PATH");
        return ExitCode::FAILURE;
    }

    let cores = ppatc::eval::default_jobs();
    eprintln!("eval_bench: {cores} core(s) available, timing up to {jobs} worker(s)");

    let mut budget = RunBudget::unlimited();
    if let Some(d) = deadline {
        budget = budget.with_deadline_in(d);
    }
    let mut supervisor = Supervisor::new()
        .with_budget(budget.clone())
        .resuming(resume);
    if let Some(path) = &checkpoint {
        supervisor = supervisor.with_checkpoint(path);
    }

    // --- Capacity sweep: cold (characterize everything) vs. warm (memo
    // cache). Run this first so the cache is genuinely cold. The shared
    // matmul-int ISS run is workload *input*, not characterization work, so
    // it is forced outside the timed region (first caller pays the OnceLock
    // init otherwise).
    ppatc_bench::matmul_run();
    let (hits0, misses0) = ppatc_edram::characterization_cache_stats();
    let t = Instant::now();
    let cold_sweep = ppatc_bench::capacity::sweep_jobs(1);
    let capacity_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let (hits1, misses1) = ppatc_edram::characterization_cache_stats();
    let capacity_warm_ms = median_ms(|| {
        let warm = ppatc_bench::capacity::sweep_jobs(1);
        assert_eq!(warm, cold_sweep, "cache must not change sweep results");
    });
    let (hits2, misses2) = ppatc_edram::characterization_cache_stats();

    // --- Monte-Carlo sweep, serial vs. parallel (results asserted equal).
    // The supervised pass runs first so a configured deadline or journal
    // applies to a full-size sweep rather than an already-warm rerun.
    let map = ppatc_bench::case_study().tcdp_map(Lifetime::months(24.0));
    let ranges = UncertaintyRanges::paper_default();
    let config = MonteCarloConfig::new(samples, 2025).expect("sample count >= 1");
    let reference = match montecarlo::try_run_supervised(&map, &ranges, &config, jobs, &supervisor)
    {
        Ok(r) => r,
        Err(e @ PpatcError::Interrupted { .. }) => {
            eprintln!("{e}");
            if let Some(path) = &checkpoint {
                eprintln!(
                    "partial results are journaled; rerun with `--checkpoint {path} --resume`"
                );
            }
            return ExitCode::from(EXIT_INTERRUPTED);
        }
        Err(e) => {
            eprintln!("supervised sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plain =
        montecarlo::try_run_jobs(&map, &ranges, &config, 1).expect("serial sweep evaluates");
    assert_eq!(
        reference, plain,
        "supervised sweep must match the unsupervised serial sweep"
    );
    // The batched structure-of-arrays engine must agree byte-for-byte with
    // the scalar per-sample oracle before any of its timings are reported.
    let scalar_oracle =
        montecarlo::try_run_scalar(&map, &ranges, &config, 1).expect("scalar oracle evaluates");
    assert_eq!(
        plain, scalar_oracle,
        "batched SoA sweep must be byte-identical to the scalar per-sample path"
    );

    let mut workers = vec![1, 2, jobs];
    workers.sort_unstable();
    workers.dedup();
    let mc: Vec<(usize, f64)> = workers
        .iter()
        .map(|&j| {
            let ms = median_ms(|| {
                let r =
                    montecarlo::try_run_jobs(&map, &ranges, &config, j).expect("sweep evaluates");
                assert_eq!(r, reference, "jobs = {j} must be byte-identical");
            });
            (j, ms)
        })
        .collect();
    let supervised_ms = median_ms(|| {
        let r = montecarlo::try_run_supervised(&map, &ranges, &config, jobs, &Supervisor::new())
            .expect("supervised sweep evaluates");
        assert_eq!(r, reference, "supervised rerun must be byte-identical");
    });

    // --- Raster, serial vs. parallel.
    let raster_ref = map
        .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 512, 512, 1)
        .expect("raster evaluates");
    let raster_ms = |j: usize| {
        median_ms(|| {
            let g = map
                .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 512, 512, j)
                .expect("raster evaluates");
            assert_eq!(g, raster_ref, "jobs = {j} must be byte-identical");
        })
    };
    let mut raster_workers = vec![1, jobs];
    raster_workers.dedup();
    let raster: Vec<(usize, f64)> = raster_workers.iter().map(|&j| (j, raster_ms(j))).collect();

    let rows = |pairs: &[(usize, f64)]| {
        pairs
            .iter()
            .map(|(j, ms)| format!("    \"jobs_{j}\": {ms:.3}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let mc_rows = rows(&mc);
    let raster_rows = rows(&raster);
    let json = format!(
        r#"{{
  "benchmark": "ppatc-core parallel evaluation engine + eDRAM characterization memo cache",
  "command": "cargo run --release -p ppatc-bench --bin eval_bench",
  "methodology": "median of {RUNS} warm runs per row; serial-vs-parallel results asserted byte-identical before timing is reported",
  "host": {{
    "available_parallelism": {cores},
    "note": "on a 1-core host the parallel rows measure engine overhead only; the Monte-Carlo and raster stages scale with cores because every sample/point is a pure function of its index. Regenerate on the target host with the command above."
  }},
  "monte_carlo_{samples}_samples_ms": {{
{mc_rows},
    "jobs_{jobs}_supervised": {supervised_ms:.3}
  }},
  "raster_512x512_ms": {{
{raster_rows}
  }},
  "capacity_sweep_ms": {{
    "cold_cache": {:.1},
    "warm_cache": {:.3},
    "speedup": {:.1},
    "characterizations_cold": {},
    "characterizations_warm": {},
    "cache_hits_during_warm_runs": {}
  }},
  "determinism": "asserted in-process: MonteCarloResult (supervised and not) and raster grid equal across worker counts, batched SoA sweep byte-identical to the scalar per-sample oracle, warm capacity sweep byte-identical to cold; also covered by tests/parallel_eval.rs and tests/fault_injection.rs"
}}"#,
        capacity_cold_ms,
        capacity_warm_ms,
        capacity_cold_ms / capacity_warm_ms.max(1e-9),
        misses1 - misses0,
        misses2 - misses1,
        hits2 - hits1,
    );
    let _ = (hits0, budget);
    if let Err(e) = std::fs::write("BENCH_eval.json", format!("{json}\n")) {
        eprintln!("failed to write BENCH_eval.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
