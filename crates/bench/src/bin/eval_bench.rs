//! Measures the parallel evaluation engine and the characterization memo
//! cache, writing `BENCH_eval.json`.
//!
//! ```text
//! cargo run --release -p ppatc-bench --bin eval_bench
//! cargo run --release -p ppatc-bench --bin eval_bench -- --samples 100000
//! ```
//!
//! Three workloads are timed (median of 5 warm runs each):
//!
//! - the joint Monte-Carlo sweep at 10 000 samples, serial vs. 2/4 workers
//!   (byte-identical results are asserted, not assumed);
//! - a 512×512 tCDP-ratio raster, serial vs. 4 workers;
//! - the capacity sweep cold (every eDRAM macro characterized from
//!   scratch) vs. warm (every characterization served from the memo
//!   cache).

use ppatc::montecarlo::{self, MonteCarloConfig, UncertaintyRanges};
use ppatc::Lifetime;
use std::process::ExitCode;
use std::time::Instant;

/// Timed repetitions per measurement (median reported).
const RUNS: usize = 5;

fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() -> ExitCode {
    let mut samples = 10_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => samples = n,
                _ => {
                    eprintln!("--samples requires a count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let cores = ppatc::eval::default_jobs();
    eprintln!("eval_bench: {cores} core(s) available");

    // --- Capacity sweep: cold (characterize everything) vs. warm (memo
    // cache). Run this first so the cache is genuinely cold.
    let (hits0, misses0) = ppatc_edram::characterization_cache_stats();
    let t = Instant::now();
    let cold_sweep = ppatc_bench::capacity::sweep_jobs(1);
    let capacity_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let (hits1, misses1) = ppatc_edram::characterization_cache_stats();
    let capacity_warm_ms = median_ms(|| {
        let warm = ppatc_bench::capacity::sweep_jobs(1);
        assert_eq!(warm, cold_sweep, "cache must not change sweep results");
    });
    let (hits2, misses2) = ppatc_edram::characterization_cache_stats();

    // --- Monte-Carlo sweep, serial vs. parallel (results asserted equal).
    let map = ppatc_bench::case_study().tcdp_map(Lifetime::months(24.0));
    let ranges = UncertaintyRanges::paper_default();
    let config = MonteCarloConfig::new(samples, 2025).expect("sample count >= 1");
    let reference =
        montecarlo::try_run_jobs(&map, &ranges, &config, 1).expect("serial sweep evaluates");
    let mc_ms = |jobs: usize| {
        median_ms(|| {
            let r =
                montecarlo::try_run_jobs(&map, &ranges, &config, jobs).expect("sweep evaluates");
            assert_eq!(r, reference, "jobs = {jobs} must be byte-identical");
        })
    };
    let mc = [(1, mc_ms(1)), (2, mc_ms(2)), (4, mc_ms(4))];

    // --- Raster, serial vs. parallel.
    let raster_ref = map
        .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 512, 512, 1)
        .expect("raster evaluates");
    let raster_ms = |jobs: usize| {
        median_ms(|| {
            let g = map
                .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 512, 512, jobs)
                .expect("raster evaluates");
            assert_eq!(g, raster_ref, "jobs = {jobs} must be byte-identical");
        })
    };
    let raster = [(1, raster_ms(1)), (4, raster_ms(4))];

    let json = format!(
        r#"{{
  "benchmark": "ppatc-core parallel evaluation engine + eDRAM characterization memo cache",
  "command": "cargo run --release -p ppatc-bench --bin eval_bench",
  "methodology": "median of {RUNS} warm runs per row; serial-vs-parallel results asserted byte-identical before timing is reported",
  "host": {{
    "available_parallelism": {cores},
    "note": "on a 1-core host the parallel rows measure engine overhead only; the Monte-Carlo and raster stages scale with cores because every sample/point is a pure function of its index. Regenerate on the target host with the command above."
  }},
  "monte_carlo_{samples}_samples_ms": {{
    "jobs_1": {:.3},
    "jobs_2": {:.3},
    "jobs_4": {:.3}
  }},
  "raster_512x512_ms": {{
    "jobs_1": {:.3},
    "jobs_4": {:.3}
  }},
  "capacity_sweep_ms": {{
    "cold_cache": {:.1},
    "warm_cache": {:.3},
    "speedup": {:.1},
    "characterizations_cold": {},
    "characterizations_warm": {},
    "cache_hits_during_warm_runs": {}
  }},
  "determinism": "asserted in-process: MonteCarloResult and raster grid equal for jobs 1/2/4; also covered by tests/parallel_eval.rs"
}}"#,
        mc[0].1,
        mc[1].1,
        mc[2].1,
        raster[0].1,
        raster[1].1,
        capacity_cold_ms,
        capacity_warm_ms,
        capacity_cold_ms / capacity_warm_ms.max(1e-9),
        misses1 - misses0,
        misses2 - misses1,
        hits2 - hits1,
    );
    let _ = hits0;
    if let Err(e) = std::fs::write("BENCH_eval.json", format!("{json}\n")) {
        eprintln!("failed to write BENCH_eval.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
