//! Table II: the PPAtC summary for both systems.

use crate::case_study;
use ppatc::PpatcSummary;

/// Computes the summary (full-length `matmul-int` at 500 MHz).
pub fn summary() -> PpatcSummary {
    case_study().summary()
}

/// Renders the table.
pub fn render() -> String {
    summary().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    /// Paper values with the tolerance each row reproduces to.
    #[test]
    fn every_row_is_reproduced() {
        let s = summary();
        let checks: [(&str, f64, f64, f64); 10] = [
            ("f_clk (MHz)", s.f_clk.as_megahertz(), 500.0, 1e-9),
            ("M0 pJ/cycle", s.m0_dynamic_pj, 1.42, 0.08),
            ("Si mem pJ/cycle", s.mem_pj[0], 18.0, 0.03),
            ("M3D mem pJ/cycle", s.mem_pj[1], 15.5, 0.03),
            ("cycles", s.cycles as f64, 20_047_348.0, 0.01),
            ("Si total mm²", s.total_area_mm2[0], 0.139, 0.03),
            ("M3D total mm²", s.total_area_mm2[1], 0.053, 0.05),
            ("Si kg/wafer", s.embodied_per_wafer_kg[0], 837.0, 0.01),
            ("M3D kg/wafer", s.embodied_per_wafer_kg[1], 1100.0, 0.01),
            ("Si g/good die", s.embodied_per_good_die_g[0], 3.11, 0.03),
        ];
        for (what, measured, paper, tol) in checks {
            assert!(
                approx_eq(measured, paper, tol),
                "{what}: measured {measured} vs paper {paper}"
            );
        }
        assert!(approx_eq(s.embodied_per_good_die_g[1], 3.63, 0.05));
        assert!(approx_eq(s.dies_per_wafer[0] as f64, 299_127.0, 0.02));
        assert!(approx_eq(s.dies_per_wafer[1] as f64, 606_238.0, 0.04));
    }

    #[test]
    fn render_contains_both_columns() {
        let text = render();
        assert!(text.contains("M0 + Si eDRAM"));
        assert!(text.contains("M0 + M3D eDRAM"));
    }
}
