//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each module produces the data behind one exhibit and renders it in the
//! same rows/series the paper reports:
//!
//! | module | exhibit | content |
//! |---|---|---|
//! | [`table1`] | Table I | FET benefits/challenges, quantified from the device models |
//! | [`fig2c`] | Fig. 2c | embodied carbon per wafer, 4 grids × 2 processes |
//! | [`fig2d`] | Fig. 2d | EUV metal-layer step/energy breakdown by process area |
//! | [`fig4`] | Fig. 4 | M0 energy/cycle vs. f_clk for HVT/RVT/LVT/SLVT |
//! | [`table2`] | Table II | the full PPAtC summary for both systems |
//! | [`fig5`] | Fig. 5 | tC and tCDP vs. lifetime, with crossovers |
//! | [`fig6`] | Fig. 6a/b | tCDP-ratio map, isoline, and uncertainty variants |
//!
//! The `paper` binary prints any exhibit (`cargo run --release -p
//! ppatc-bench --bin paper -- table2`); the Criterion benches measure the
//! cost of regenerating each one.

#![warn(missing_docs)]

pub mod ablation;
pub mod capacity;
pub mod cli;
pub mod extras;
pub mod fig2ab;
pub mod fig2c;
pub mod fig2d;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;

use ppatc::CaseStudy;
use ppatc_workloads::{Workload, WorkloadRun};
use std::sync::OnceLock;

/// The shared full-length `matmul-int` run (Table II's workload), executed
/// once per process.
pub fn matmul_run() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        Workload::matmul_int()
            .execute()
            .expect("matmul-int must execute")
    })
}

/// The shared paper case study built on [`matmul_run`].
pub fn case_study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| CaseStudy::paper(matmul_run()).expect("case study must build"))
}

/// Renders every exhibit in paper order.
pub fn render_all() -> String {
    render_all_jobs(1)
}

/// [`render_all`] with the evaluation-heavy exhibits (Monte Carlo,
/// capacity sweep) sharded across `jobs` workers; identical output for any
/// worker count.
pub fn render_all_jobs(jobs: usize) -> String {
    let mut out = String::new();
    for (name, body) in [
        ("Table I", table1::render()),
        ("Fig. 2a/b", fig2ab::render()),
        ("Fig. 2c", fig2c::render()),
        ("Fig. 2d", fig2d::render()),
        ("Fig. 4", fig4::render()),
        ("Table II", table2::render()),
        ("Fig. 5", fig5::render()),
        ("Fig. 6a", fig6::render_map()),
        ("Fig. 6b", fig6::render_uncertainty()),
        ("Ablations", ablation::render()),
        ("Workload suite", extras::render_workloads()),
        ("Monte Carlo", extras::render_monte_carlo_jobs(jobs)),
        ("Capacity sweep", capacity::render_jobs(jobs)),
    ] {
        out.push_str(&format!("==== {name} ====\n{body}\n\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_exhibits_render() {
        let text = super::render_all();
        for marker in [
            "Table I", "Fig. 2c", "Fig. 4", "Table II", "Fig. 5", "Fig. 6",
        ] {
            assert!(text.contains(marker), "missing {marker}");
        }
    }
}
