//! Fig. 2a/b: process cross-sections of the all-Si and M3D stacks.

use ppatc_pdk::layout::{cross_section, stack_height, CrossSectionLayer};
use ppatc_pdk::Technology;

/// The two cross-sections, bottom-up: `(all-Si, M3D)`.
pub fn sections() -> (Vec<CrossSectionLayer>, Vec<CrossSectionLayer>) {
    (
        cross_section(Technology::AllSi),
        cross_section(Technology::M3dIgzoCnfetSi),
    )
}

/// Renders both stacks side by side, top-down (as drawn in the paper).
pub fn render() -> String {
    let (si, m3d) = sections();
    let mut out = String::new();
    out.push_str(&format!(
        "total BEOL height: all-Si {:.0} nm, M3D {:.0} nm\n\n",
        stack_height(Technology::AllSi).as_nanometers(),
        stack_height(Technology::M3dIgzoCnfetSi).as_nanometers()
    ));
    out.push_str(&format!(
        "{:<34}   {:<34}\n",
        "(a) all-Si process", "(b) M3D IGZO/CNT/Si process"
    ));
    let rows = si.len().max(m3d.len());
    for i in 0..rows {
        let left = si
            .get(si.len().wrapping_sub(1 + i).min(si.len().saturating_sub(1)))
            .filter(|_| i < si.len());
        let right = m3d
            .get(m3d.len().wrapping_sub(1 + i))
            .filter(|_| i < m3d.len());
        let fmt_layer = |l: Option<&CrossSectionLayer>| match l {
            Some(l) => format!("{:<22}{:>5.0}-{:<5.0}", l.name, l.z_bottom_nm, l.z_top_nm),
            None => " ".repeat(34),
        };
        out.push_str(&format!("{}   {}\n", fmt_layer(left), fmt_layer(right)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_stacks() {
        let text = render();
        assert!(text.contains("all-Si process"));
        assert!(text.contains("IGZO tier"));
        assert!(text.contains("CNFET tier 2"));
    }

    #[test]
    fn m3d_has_more_layers() {
        let (si, m3d) = sections();
        assert!(m3d.len() > si.len());
    }
}
