//! Fig. 2d: steps in EUV metal-layer fabrication and their total energy.

use ppatc_fab::flow::{area_breakdown, metal_via_pair_steps};
use ppatc_fab::{ProcessArea, StepEnergies};
use ppatc_pdk::Lithography;

/// One Fig. 2d row: a process area's step count and total energy for one
/// EUV-patterned metal/via layer.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaRow {
    /// Process area.
    pub area: ProcessArea,
    /// Steps of this area in the layer's flow.
    pub steps: usize,
    /// Total energy of those steps, kWh/wafer.
    pub total_kwh: f64,
    /// Energy per step, kWh (the quantity the paper divides out to cost
    /// novel process modules).
    pub kwh_per_step: f64,
}

/// Computes the breakdown.
pub fn rows() -> Vec<AreaRow> {
    let db = StepEnergies::calibrated_7nm();
    let steps = metal_via_pair_steps("M1", Lithography::EuvSingle);
    area_breakdown(&steps, &db)
        .into_iter()
        .map(|(area, steps, total)| {
            let kwh = total.as_kilowatt_hours();
            AreaRow {
                area,
                steps,
                total_kwh: kwh,
                kwh_per_step: if steps > 0 { kwh / steps as f64 } else { 0.0 },
            }
        })
        .collect()
}

/// Renders the figure's data.
pub fn render() -> String {
    let mut out = String::from("process area     steps   total (kWh/wafer)   per step (kWh)\n");
    let mut total = 0.0;
    let mut n = 0;
    for r in rows() {
        out.push_str(&format!(
            "{:<17}{:>5}{:>17.2}{:>17.2}\n",
            r.area.to_string(),
            r.steps,
            r.total_kwh,
            r.kwh_per_step
        ));
        total += r.total_kwh;
        n += r.steps;
    }
    out.push_str(&format!("{:<17}{:>5}{:>17.2}\n", "TOTAL", n, total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn lithography_dominates_the_layer() {
        let rows = rows();
        let litho = rows
            .iter()
            .find(|r| r.area == ProcessArea::Lithography)
            .expect("litho row");
        for r in &rows {
            if r.area != ProcessArea::Lithography {
                assert!(litho.total_kwh > r.total_kwh, "{} beats litho", r.area);
            }
        }
    }

    #[test]
    fn layer_total_matches_calibration() {
        let total: f64 = rows().iter().map(|r| r.total_kwh).sum();
        assert!(approx_eq(total, 37.84, 0.01), "EUV layer total {total} kWh");
    }

    #[test]
    fn per_step_division_is_consistent() {
        for r in rows() {
            if r.steps > 0 {
                assert!(approx_eq(
                    r.kwh_per_step * r.steps as f64,
                    r.total_kwh,
                    1e-12
                ));
            }
        }
    }
}
