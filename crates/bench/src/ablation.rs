//! Ablation studies on the design choices the models bake in.
//!
//! Four studies, each isolating one modeling decision:
//!
//! 1. **facility overhead** — how much of the per-wafer footprint is the
//!    ITRS 1.4× facility-energy multiplier;
//! 2. **eDRAM sub-array size** — why the paper partitions 64 kB into 2 kB
//!    sub-arrays (Step 2): latency/energy/leakage across organizations;
//! 3. **EUV step-energy sensitivity** — the M3D process has 3.3× the EUV
//!    exposures of the baseline, so uncertainty in the per-exposure energy
//!    moves its footprint disproportionately;
//! 4. **yield-model choice** — fixed vs. defect-density (Murphy) yield:
//!    area-dependent yield reshuffles the per-good-die comparison.

use ppatc_edram::{EdramMacro, Organization};
use ppatc_fab::{grid, EmbodiedModel, StepEnergies};
use ppatc_pdk::Technology;
use ppatc_units::Frequency;
use ppatc_wafer::{DieSpec, WaferSpec, YieldModel};

/// Study 1: per-wafer embodied carbon with and without the facility
/// overhead, per technology: `(technology, without, with, share)`.
pub fn facility_overhead() -> Vec<(Technology, f64, f64, f64)> {
    Technology::ALL
        .iter()
        .map(|&tech| {
            let with = EmbodiedModel::paper_default()
                .embodied_per_wafer(tech, grid::US)
                .total()
                .as_kilograms();
            let without = EmbodiedModel::paper_default()
                .with_facility_overhead(1.0)
                .embodied_per_wafer(tech, grid::US)
                .total()
                .as_kilograms();
            let share = if with > 0.0 {
                (with - without) / with
            } else {
                0.0
            };
            (tech, without, with, share)
        })
        .collect()
}

/// One row of the sub-array sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SubarrayRow {
    /// Sub-array size in bytes.
    pub subarray_bytes: u32,
    /// Read latency, ps.
    pub read_latency_ps: f64,
    /// Access energy, pJ.
    pub access_energy_pj: f64,
    /// Macro leakage, µW.
    pub leakage_uw: f64,
    /// Meets the paper's 500 MHz single-cycle constraint.
    pub meets_500mhz: bool,
}

/// Study 2: 64 kB M3D macro across sub-array sizes (512 B – 64 kB).
pub fn subarray_sweep() -> Vec<SubarrayRow> {
    [512u32, 1024, 2048, 4096, 8192, 65536]
        .iter()
        .map(|&sub| {
            let org = Organization::new(64 * 1024, sub, 32);
            let m = EdramMacro::characterize_with(Technology::M3dIgzoCnfetSi, org)
                .expect("organization characterizes");
            SubarrayRow {
                subarray_bytes: sub,
                read_latency_ps: m.read_latency().as_picoseconds(),
                access_energy_pj: m.access_energy().as_picojoules(),
                leakage_uw: m.leakage_power().as_microwatts(),
                meets_500mhz: m.meets_timing(Frequency::from_megahertz(500.0)),
            }
        })
        .collect()
}

/// Study 3: per-wafer carbon vs. EUV exposure-energy scale:
/// `(scale, all-Si kg, M3D kg, ratio)`.
pub fn euv_sensitivity() -> Vec<(f64, f64, f64, f64)> {
    [0.5, 0.75, 1.0, 1.5, 2.0]
        .iter()
        .map(|&scale| {
            // Scale only the EUV entry of the database.
            let base = StepEnergies::calibrated_7nm();
            let probe = ppatc_fab::ProcessStep::litho(ppatc_fab::LithoTool::Euv, "probe");
            let imm_probe = ppatc_fab::ProcessStep::litho(ppatc_fab::LithoTool::Immersion, "probe");
            let dep = ppatc_fab::ProcessStep::new(ppatc_fab::ProcessArea::Deposition, "p");
            let dry = ppatc_fab::ProcessStep::new(ppatc_fab::ProcessArea::DryEtch, "p");
            let wet = ppatc_fab::ProcessStep::new(ppatc_fab::ProcessArea::WetEtch, "p");
            let metz = ppatc_fab::ProcessStep::new(ppatc_fab::ProcessArea::Metallization, "p");
            let metr = ppatc_fab::ProcessStep::new(ppatc_fab::ProcessArea::Metrology, "p");
            let db = StepEnergies::custom(
                base.energy(&probe).as_kilowatt_hours() * scale,
                base.energy(&imm_probe).as_kilowatt_hours(),
                base.energy(&dep).as_kilowatt_hours(),
                base.energy(&dry).as_kilowatt_hours(),
                base.energy(&wet).as_kilowatt_hours(),
                base.energy(&metz).as_kilowatt_hours(),
                base.energy(&metr).as_kilowatt_hours(),
            );
            let model = EmbodiedModel::paper_default().with_step_energies(db);
            let si = model
                .embodied_per_wafer(Technology::AllSi, grid::US)
                .total()
                .as_kilograms();
            let m3d = model
                .embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US)
                .total()
                .as_kilograms();
            let ratio = if si > 0.0 { m3d / si } else { 0.0 };
            (scale, si, m3d, ratio)
        })
        .collect()
}

/// Study 4: per-good-die embodied carbon under a fixed 50%/90% yield vs. a
/// Murphy defect model with D₀ chosen to give the M3D die ~50% yield:
/// `(technology, fixed g/die, murphy g/die, murphy yield)`.
pub fn yield_model_choice() -> Vec<(Technology, f64, f64, f64)> {
    let wafer = WaferSpec::paper_default();
    // D0 such that the 0.053 mm² M3D die yields ≈ 50% under Murphy.
    let d0 = 1370.0; // defects per cm²: immature BEOL-device process
    let dies = [
        (
            Technology::AllSi,
            DieSpec::new(
                ppatc_units::Length::from_micrometers(515.0),
                ppatc_units::Length::from_micrometers(270.0),
            ),
            YieldModel::Fixed(0.90),
            837.0,
        ),
        (
            Technology::M3dIgzoCnfetSi,
            DieSpec::new(
                ppatc_units::Length::from_micrometers(334.0),
                ppatc_units::Length::from_micrometers(159.0),
            ),
            YieldModel::Fixed(0.50),
            1100.0,
        ),
    ];
    dies.iter()
        .map(|(tech, die, fixed, kg_per_wafer)| {
            let n = wafer.dies_per_wafer(die);
            let wafer_carbon = ppatc_units::CarbonMass::from_kilograms(*kg_per_wafer);
            let fixed_g =
                ppatc_wafer::embodied_per_good_die(wafer_carbon, n, fixed, die.area()).as_grams();
            let murphy = YieldModel::Murphy { d0_per_cm2: d0 };
            let murphy_g =
                ppatc_wafer::embodied_per_good_die(wafer_carbon, n, &murphy, die.area()).as_grams();
            (*tech, fixed_g, murphy_g, murphy.die_yield(die.area()))
        })
        .collect()
}

/// Study 5: retention vs. operating temperature for both bit cells —
/// `(celsius, all-Si retention s, M3D retention s)`. The IGZO cell keeps a
/// comfortable margin over its refresh-free threshold even at 85 °C.
pub fn retention_vs_temperature() -> Vec<(f64, f64, f64)> {
    [0.0f64, 27.0, 55.0, 85.0, 125.0]
        .iter()
        .map(|&celsius| {
            let kelvin = celsius + 273.15;
            let si = ppatc_edram::BitCell::for_technology(Technology::AllSi)
                .at_temperature(kelvin)
                .retention()
                .as_seconds();
            let m3d = ppatc_edram::BitCell::for_technology(Technology::M3dIgzoCnfetSi)
                .at_temperature(kelvin)
                .retention()
                .as_seconds();
            (celsius, si, m3d)
        })
        .collect()
}

/// Renders all five studies.
pub fn render() -> String {
    let mut out = String::from("-- 1. facility-energy overhead (per wafer, U.S. grid) --\n");
    for (tech, without, with, share) in facility_overhead() {
        out.push_str(&format!(
            "{tech:<18} {without:>6.0} kg -> {with:>6.0} kg  ({:.0}% of total)\n",
            share * 100.0
        ));
    }
    out.push_str("\n-- 2. M3D eDRAM sub-array size (64 kB macro) --\n");
    out.push_str("bytes    read (ps)   access (pJ)   leak (uW)   500 MHz?\n");
    for r in subarray_sweep() {
        out.push_str(&format!(
            "{:>6}{:>11.0}{:>13.2}{:>12.1}   {}\n",
            r.subarray_bytes,
            r.read_latency_ps,
            r.access_energy_pj,
            r.leakage_uw,
            if r.meets_500mhz { "yes" } else { "NO" }
        ));
    }
    out.push_str("\n-- 3. EUV exposure-energy sensitivity (per wafer, U.S. grid) --\n");
    out.push_str("scale   all-Si (kg)   M3D (kg)   M3D/all-Si\n");
    for (scale, si, m3d, ratio) in euv_sensitivity() {
        out.push_str(&format!("{scale:>5.2}{si:>12.0}{m3d:>12.0}{ratio:>12.3}\n"));
    }
    out.push_str("\n-- 4. yield model: fixed vs Murphy defect density --\n");
    for (tech, fixed_g, murphy_g, y) in yield_model_choice() {
        out.push_str(&format!(
            "{tech:<18} fixed: {fixed_g:>5.2} g/die   Murphy(D0): {murphy_g:>5.2} g/die at {:.0}% yield\n",
            y * 100.0
        ));
    }
    out.push_str("\n-- 5. bit-cell retention vs temperature --\n");
    out.push_str("T (°C)   all-Si retention    M3D (IGZO) retention\n");
    for (c, si, m3d) in retention_vs_temperature() {
        out.push_str(&format!("{c:>6.0}{si:>16.2e} s{m3d:>20.2e} s\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn facility_overhead_share_is_reasonable() {
        for (tech, without, with, share) in facility_overhead() {
            assert!(with > without, "{tech}");
            // The 40% energy uplift is ~10-20% of the *total* footprint
            // (materials and gases are unaffected).
            assert!((0.05..0.30).contains(&share), "{tech}: share {share:.2}");
        }
    }

    #[test]
    fn small_subarrays_are_fast_but_leaky() {
        let rows = subarray_sweep();
        let first = &rows[0]; // 512 B
        let last = rows.last().expect("non-empty"); // 64 kB monolithic
        assert!(first.read_latency_ps < last.read_latency_ps);
        assert!(first.leakage_uw > last.leakage_uw);
        assert!(first.access_energy_pj < last.access_energy_pj);
    }

    #[test]
    fn paper_2kb_choice_is_on_the_flat_part() {
        let rows = subarray_sweep();
        let at_2k = rows
            .iter()
            .find(|r| r.subarray_bytes == 2048)
            .expect("2 kB row");
        assert!(at_2k.meets_500mhz);
        // Within 15% of the fastest organization's latency…
        let fastest = rows
            .iter()
            .map(|r| r.read_latency_ps)
            .fold(f64::INFINITY, f64::min);
        assert!(at_2k.read_latency_ps < 1.15 * fastest);
        // …at a fraction of the smallest organization's leakage.
        let leakiest = rows.iter().map(|r| r.leakage_uw).fold(0.0, f64::max);
        assert!(at_2k.leakage_uw < 0.3 * leakiest);
    }

    #[test]
    fn euv_uncertainty_hits_m3d_harder() {
        let rows = euv_sensitivity();
        let at = |s: f64| {
            rows.iter()
                .find(|(scale, ..)| (*scale - s).abs() < 1e-9)
                .expect("scale present")
        };
        let (_, _, _, ratio_low) = at(0.5);
        let (_, _, _, ratio_nominal) = at(1.0);
        let (_, _, _, ratio_high) = at(2.0);
        assert!(ratio_low < ratio_nominal && ratio_nominal < ratio_high);
        assert!(approx_eq(*ratio_nominal, 1.31, 0.02));
    }

    #[test]
    fn retention_collapses_with_heat_but_igzo_survives() {
        let rows = retention_vs_temperature();
        let at = |c: f64| {
            *rows
                .iter()
                .find(|(celsius, ..)| (*celsius - c).abs() < 1e-9)
                .expect("temperature present")
        };
        let (_, si_27, m3d_27) = at(27.0);
        let (_, si_85, m3d_85) = at(85.0);
        // Both lose orders of magnitude between 27 °C and 85 °C…
        assert!(si_85 < si_27 / 10.0);
        assert!(m3d_85 < m3d_27 / 10.0);
        // …but the IGZO cell still holds for minutes at 85 °C — six orders
        // of magnitude longer than the Si cell's sub-millisecond window.
        // (Above ~70 °C it does drop below the >1000 s refresh-free mark:
        // hot sub-threshold leakage of the write FET, not the bandgap
        // floor, becomes the limit.)
        assert!(m3d_85 > 100.0, "M3D at 85C: {m3d_85:.1e} s");
        assert!(si_85 < 1e-3, "all-Si at 85C: {si_85:.1e} s");
        assert!(m3d_85 > 1e5 * si_85);
    }

    #[test]
    fn murphy_punishes_the_bigger_die() {
        let rows = yield_model_choice();
        let si = rows
            .iter()
            .find(|(t, ..)| *t == Technology::AllSi)
            .expect("Si row");
        let m3d = rows
            .iter()
            .find(|(t, ..)| *t == Technology::M3dIgzoCnfetSi)
            .expect("M3D row");
        // Under the same defect density, the 2.6×-larger all-Si die yields
        // worse than the M3D die.
        assert!(si.3 < m3d.3, "yields: Si {:.2} vs M3D {:.2}", si.3, m3d.3);
        // Murphy at this D0 leaves M3D near its fixed 50% anchor.
        assert!(
            approx_eq(m3d.3, 0.50, 0.10),
            "M3D Murphy yield {:.2}",
            m3d.3
        );
    }
}
