//! Fig. 4: Cortex-M0 energy per cycle vs. clock frequency, per V_T flavor.

use ppatc_pdk::synthesis::LogicBlock;
use ppatc_pdk::SiVtFlavor;
use ppatc_units::Frequency;

/// One point of one Fig. 4 curve.
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    /// Target clock frequency, MHz.
    pub f_mhz: f64,
    /// Total energy per cycle (dynamic + leakage·T), pJ.
    pub energy_pj: f64,
    /// Achieved critical path, ps.
    pub critical_path_ps: f64,
}

/// The four flavor curves over the paper's 100 MHz – 1 GHz sweep
/// (100 MHz steps). Points a flavor cannot close timing for are absent,
/// exactly as they are absent from the paper's figure.
pub fn curves() -> Vec<(SiVtFlavor, Vec<CurvePoint>)> {
    let m0 = LogicBlock::cortex_m0();
    SiVtFlavor::ALL
        .iter()
        .map(|&flavor| {
            let pts = m0
                .frequency_sweep(
                    flavor,
                    Frequency::from_megahertz(100.0),
                    Frequency::from_gigahertz(1.0),
                    10,
                )
                .into_iter()
                .map(|(f, r)| CurvePoint {
                    f_mhz: f.as_megahertz(),
                    energy_pj: r.energy_per_cycle().as_picojoules(),
                    critical_path_ps: r.critical_path().as_picoseconds(),
                })
                .collect();
            (flavor, pts)
        })
        .collect()
}

/// Renders the sweep.
pub fn render() -> String {
    let mut out =
        String::from("f_clk (MHz)      HVT      RVT      LVT     SLVT   (energy/cycle, pJ)\n");
    let curves = curves();
    for i in 0..10 {
        let f_mhz = 100.0 * (i + 1) as f64;
        out.push_str(&format!("{f_mhz:>11.0}"));
        for (_, pts) in &curves {
            match pts.iter().find(|p| (p.f_mhz - f_mhz).abs() < 1.0) {
                Some(p) => out.push_str(&format!("{:>9.2}", p.energy_pj)),
                None => out.push_str(&format!("{:>9}", "—")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(flavor: SiVtFlavor) -> Vec<CurvePoint> {
        curves()
            .into_iter()
            .find(|(f, _)| *f == flavor)
            .map(|(_, c)| c)
            .expect("flavor present")
    }

    #[test]
    fn hvt_misses_the_top_of_the_sweep() {
        let hvt = curve(SiVtFlavor::Hvt);
        assert!(hvt.len() < 10, "HVT should drop ≥1 point");
        assert!(hvt.iter().all(|p| p.f_mhz < 1000.0));
    }

    #[test]
    fn slvt_covers_the_full_sweep() {
        assert_eq!(curve(SiVtFlavor::Slvt).len(), 10);
    }

    #[test]
    fn flavor_ordering_at_the_extremes() {
        let at = |flavor, f_mhz: f64| {
            curve(flavor)
                .into_iter()
                .find(|p| (p.f_mhz - f_mhz).abs() < 1.0)
                .map(|p| p.energy_pj)
        };
        // At 100 MHz leakage rules: HVT is the cheapest flavor.
        let hvt = at(SiVtFlavor::Hvt, 100.0).expect("HVT closes 100 MHz");
        let slvt = at(SiVtFlavor::Slvt, 100.0).expect("SLVT closes 100 MHz");
        assert!(hvt < slvt);
        // At 900 MHz the upsizing cost flips the order.
        let hvt_hi = at(SiVtFlavor::Hvt, 900.0);
        let slvt_hi = at(SiVtFlavor::Slvt, 900.0).expect("SLVT closes 900 MHz");
        if let Some(h) = hvt_hi {
            assert!(h > slvt_hi);
        }
    }

    #[test]
    fn critical_paths_meet_targets() {
        for (_, pts) in curves() {
            for p in pts {
                assert!(p.critical_path_ps <= 1e6 / p.f_mhz + 1e-6);
            }
        }
    }
}
