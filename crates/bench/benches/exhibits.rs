//! Benchmark harness: the cost of regenerating each table/figure.
//!
//! One benchmark per exhibit, in paper order, timed with a small
//! dependency-free harness (`harness = false`, `std::time::Instant`). The
//! heavyweight shared inputs (the full 2×10⁷-cycle `matmul-int` simulation
//! and the case-study construction) are built once up front and measured
//! separately so the per-exhibit numbers reflect the analysis itself.
//!
//! Each benchmark runs one untimed warm-up iteration, then `SAMPLES` timed
//! iterations, and reports the minimum, median, and mean wall-clock time.
//! Pass a substring as the first CLI argument to run a subset:
//! `cargo bench --bench exhibits -- fig6`.

use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 10;

struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    fn new() -> Self {
        Self {
            filter: std::env::args().nth(1).filter(|a| a != "--bench"),
            ran: 0,
        }
    }

    fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        black_box(f()); // warm-up, untimed
        let mut times_ns: Vec<u128> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(f());
            times_ns.push(start.elapsed().as_nanos());
        }
        times_ns.sort_unstable();
        let min = times_ns[0];
        let median = times_ns[SAMPLES / 2];
        let mean = times_ns.iter().sum::<u128>() / SAMPLES as u128;
        println!(
            "{name:<44} min {:>12}  median {:>12}  mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        self.ran += 1;
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn main() {
    let mut h = Harness::new();

    // The ISS itself, at a reduced repetition count (the full run is ~20M
    // cycles; 4 reps keep the benchmark wall-clock sane while exercising
    // the same code path).
    h.bench("workload/matmul_int_4reps", || {
        ppatc_workloads::Workload::matmul_int()
            .execute_with_reps(4)
            .expect("matmul runs")
    });

    h.bench("table1/fet_comparison", ppatc_bench::table1::rows);
    h.bench("fig2c/embodied_per_wafer", ppatc_bench::fig2c::bars);
    h.bench("fig2d/step_energy_breakdown", ppatc_bench::fig2d::rows);
    h.bench("fig4/frequency_sweep", ppatc_bench::fig4::curves);

    // Force the shared case study (including the full matmul simulation)
    // to exist before timing the summary extraction.
    let _ = ppatc_bench::case_study();
    h.bench("table2/ppatc_summary", ppatc_bench::table2::summary);

    // The SPICE-backed step behind Table II's memory rows.
    h.bench("table2/edram_characterization_m3d", || {
        ppatc_edram::EdramMacro::characterize(ppatc_pdk::Technology::M3dIgzoCnfetSi)
            .expect("characterizes")
    });

    h.bench("fig5/lifetime_series", ppatc_bench::fig5::series);
    h.bench("fig6a/raster_21x21", ppatc_bench::fig6::raster);
    h.bench(
        "fig6b/uncertainty_isolines",
        ppatc_bench::fig6::uncertainty_isolines,
    );

    {
        let map = ppatc_bench::case_study().tcdp_map(ppatc::Lifetime::months(24.0));
        let ranges = ppatc::montecarlo::UncertaintyRanges::paper_default();
        h.bench("ext/monte_carlo_10k", || {
            ppatc::montecarlo::run(&map, &ranges, 10_000, 7)
        });
    }

    {
        let run = ppatc_workloads::Workload::edn()
            .execute_with_reps(1)
            .expect("edn runs");
        let opt = ppatc::optimize::Optimizer::new(
            ppatc::optimize::DesignSpace::paper_default(),
            ppatc::Lifetime::months(24.0),
        );
        h.bench("ext/optimizer_full_space", || opt.run(&run));
    }

    h.bench("ext/gds_array_16x16_round_trip", || {
        let lib = ppatc_pdk::layout::cell_array(ppatc_pdk::Technology::M3dIgzoCnfetSi, 16, 16);
        let bytes = lib.to_bytes();
        ppatc_pdk::gds::GdsLibrary::from_bytes(&bytes).expect("parses")
    });

    {
        use ppatc_device::{si, SiVtFlavor};
        use ppatc_spice::{Circuit, Waveform};
        use ppatc_units::{Length, Voltage};
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.voltage_source(
            "VDD",
            nvdd,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(0.7)),
        );
        let vin = ckt.voltage_source("VIN", nin, Circuit::GROUND, Waveform::dc(Voltage::zero()));
        let w = Length::from_nanometers(100.0);
        ckt.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
        ckt.fet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            si::nfet(SiVtFlavor::Rvt).sized(w),
        );
        let values: Vec<f64> = (0..=140).map(|i| 0.7 * f64::from(i) / 140.0).collect();
        h.bench("ext/spice_inverter_vtc_141pts", || {
            ckt.dc_sweep(vin, &values).expect("sweep solves")
        });
    }

    if h.ran == 0 {
        eprintln!("no benchmark matched the filter");
        std::process::exit(1);
    }
}
