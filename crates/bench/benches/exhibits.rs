//! Criterion benchmarks: the cost of regenerating each table/figure.
//!
//! One benchmark per exhibit, in paper order. The heavyweight shared inputs
//! (the full 2×10⁷-cycle `matmul-int` simulation and the case-study
//! construction) are built once up front and measured separately so the
//! per-exhibit numbers reflect the analysis itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_workload_simulation(c: &mut Criterion) {
    // The ISS itself, at a reduced repetition count (the full run is ~20M
    // cycles; 4 reps keep the benchmark wall-clock sane while exercising
    // the same code path).
    c.bench_function("workload/matmul_int_4reps", |b| {
        let w = ppatc_workloads::Workload::matmul_int();
        b.iter(|| black_box(w.execute_with_reps(4).expect("matmul runs")));
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/fet_comparison", |b| {
        b.iter(|| black_box(ppatc_bench::table1::rows()));
    });
}

fn bench_fig2c(c: &mut Criterion) {
    c.bench_function("fig2c/embodied_per_wafer", |b| {
        b.iter(|| black_box(ppatc_bench::fig2c::bars()));
    });
}

fn bench_fig2d(c: &mut Criterion) {
    c.bench_function("fig2d/step_energy_breakdown", |b| {
        b.iter(|| black_box(ppatc_bench::fig2d::rows()));
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/frequency_sweep", |b| {
        b.iter(|| black_box(ppatc_bench::fig4::curves()));
    });
}

fn bench_table2(c: &mut Criterion) {
    // Force the shared case study (including the full matmul simulation)
    // to exist before timing the summary extraction.
    let _ = ppatc_bench::case_study();
    c.bench_function("table2/ppatc_summary", |b| {
        b.iter(|| black_box(ppatc_bench::table2::summary()));
    });
}

fn bench_edram_characterization(c: &mut Criterion) {
    // The SPICE-backed step behind Table II's memory rows.
    c.bench_function("table2/edram_characterization_m3d", |b| {
        b.iter(|| {
            black_box(
                ppatc_edram::EdramMacro::characterize(ppatc_pdk::Technology::M3dIgzoCnfetSi)
                    .expect("characterizes"),
            )
        });
    });
}

fn bench_fig5(c: &mut Criterion) {
    let _ = ppatc_bench::case_study();
    c.bench_function("fig5/lifetime_series", |b| {
        b.iter(|| black_box(ppatc_bench::fig5::series()));
    });
}

fn bench_fig6(c: &mut Criterion) {
    let _ = ppatc_bench::case_study();
    c.bench_function("fig6a/raster_21x21", |b| {
        b.iter(|| black_box(ppatc_bench::fig6::raster()));
    });
    c.bench_function("fig6b/uncertainty_isolines", |b| {
        b.iter(|| black_box(ppatc_bench::fig6::uncertainty_isolines()));
    });
}

fn bench_extensions(c: &mut Criterion) {
    let _ = ppatc_bench::case_study();
    c.bench_function("ext/monte_carlo_10k", |b| {
        let map = ppatc_bench::case_study().tcdp_map(ppatc::Lifetime::months(24.0));
        let ranges = ppatc::montecarlo::UncertaintyRanges::paper_default();
        b.iter(|| black_box(ppatc::montecarlo::run(&map, &ranges, 10_000, 7)));
    });
    c.bench_function("ext/optimizer_full_space", |b| {
        let run = ppatc_workloads::Workload::edn()
            .execute_with_reps(1)
            .expect("edn runs");
        let opt = ppatc::optimize::Optimizer::new(
            ppatc::optimize::DesignSpace::paper_default(),
            ppatc::Lifetime::months(24.0),
        );
        b.iter(|| black_box(opt.run(&run)));
    });
    c.bench_function("ext/gds_array_16x16_round_trip", |b| {
        b.iter(|| {
            let lib = ppatc_pdk::layout::cell_array(
                ppatc_pdk::Technology::M3dIgzoCnfetSi,
                16,
                16,
            );
            let bytes = lib.to_bytes();
            black_box(ppatc_pdk::gds::GdsLibrary::from_bytes(&bytes).expect("parses"))
        });
    });
    c.bench_function("ext/spice_inverter_vtc_141pts", |b| {
        use ppatc_device::{si, SiVtFlavor};
        use ppatc_spice::{Circuit, Waveform};
        use ppatc_units::{Length, Voltage};
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(Voltage::from_volts(0.7)));
        let vin = ckt.voltage_source("VIN", nin, Circuit::GROUND, Waveform::dc(Voltage::zero()));
        let w = Length::from_nanometers(100.0);
        ckt.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
        ckt.fet("MN", nout, nin, Circuit::GROUND, si::nfet(SiVtFlavor::Rvt).sized(w));
        let values: Vec<f64> = (0..=140).map(|i| 0.7 * f64::from(i) / 140.0).collect();
        b.iter(|| black_box(ckt.dc_sweep(vin, &values).expect("sweep solves")));
    });
}

criterion_group! {
    name = exhibits;
    config = Criterion::default().sample_size(10);
    targets =
        bench_workload_simulation,
        bench_table1,
        bench_fig2c,
        bench_fig2d,
        bench_fig4,
        bench_table2,
        bench_edram_characterization,
        bench_fig5,
        bench_fig6,
        bench_extensions
}
criterion_main!(exhibits);
