//! DC operating-point analysis with a convergence-recovery ladder.
//!
//! The plain operating point ([`Circuit::dc_operating_point`]) runs one
//! damped Newton solve. When that fails — stiff transfer curves, poor
//! initial guesses, deliberately tight iteration budgets — the recovery
//! entry point ([`Circuit::dc_operating_point_recovered`]) escalates
//! through the classic SPICE ladder:
//!
//! 1. **Plain retry** at the configured iteration budget.
//! 2. **GMIN stepping**: solve with a large shunt conductance to ground
//!    (which linearises the system), then ramp it back down one decade at
//!    a time, warm-starting each rung from the previous solution.
//! 3. **Source stepping**: ramp every independent source from 10 % to
//!    100 % of its value, warm-starting each rung.
//!
//! Every attempt is recorded in a [`RecoveryLog`] so callers can see
//! which rung rescued the solve (or audit why everything failed).

use crate::budget::SolverBudget;
use crate::circuit::{Circuit, StampPlan, GMIN};
use crate::error::SpiceError;
use crate::solver::LinearSystem;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reusable per-topology solve state: the assembled MNA system (with its
/// factorization workspace) and the compiled [`StampPlan`]. Built once per
/// circuit topology by [`Circuit::newton_scratch`] and threaded through
/// every Newton solve — across iterations, transient timesteps, DC-sweep
/// points, and recovery-ladder rungs — so the hot path allocates nothing.
///
/// The scratch is only valid for the topology it was compiled from; any
/// circuit edit (new element, node, or parameter) requires a fresh one.
pub(crate) struct NewtonScratch {
    sys: LinearSystem,
    plan: StampPlan,
}

/// Maximum Newton iterations for the operating point.
const MAX_ITER: usize = 400;
/// Convergence tolerance on the node-voltage update, volts.
const V_TOL: f64 = 1e-9;
/// Per-iteration clamp on node-voltage updates, volts (damping).
const MAX_STEP: f64 = 0.3;
/// GMIN-stepping ladder, in siemens, ending at the nominal [`GMIN`].
const GMIN_LADDER: [f64; 5] = [1e-3, 1e-5, 1e-7, 1e-9, GMIN];
/// Source-stepping rungs: fraction of full source value.
const SOURCE_LADDER: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Internal knobs for one damped-Newton solve.
pub(crate) struct NewtonOptions {
    pub max_iter: usize,
    pub gmin: f64,
    pub source_scale: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iter: MAX_ITER,
            gmin: GMIN,
            source_scale: 1.0,
        }
    }
}

/// Options for [`Circuit::dc_operating_point_recovered_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcOptions {
    max_iter: usize,
    budget: SolverBudget,
}

impl DcOptions {
    /// The default configuration (400 Newton iterations per attempt, no
    /// solver budget).
    pub fn new() -> Self {
        Self {
            max_iter: MAX_ITER,
            budget: SolverBudget::unlimited(),
        }
    }

    /// Overrides the per-attempt Newton iteration budget. Clamped to at
    /// least 1.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Bounds the whole ladder (all rungs together) by a [`SolverBudget`].
    /// The budget is checked between rungs; an exhausted budget returns
    /// [`SpiceError::SolverBudgetExceeded`] carrying the attempts made so
    /// far.
    #[must_use]
    pub fn with_budget(mut self, budget: SolverBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The per-attempt Newton iteration budget.
    pub fn max_iter(&self) -> usize {
        self.max_iter
    }

    /// The whole-ladder solver budget.
    pub fn budget(&self) -> SolverBudget {
        self.budget
    }
}

impl Default for DcOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// One rung of the convergence-recovery ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum RecoveryStage {
    /// The ordinary damped-Newton solve, no aids.
    Plain,
    /// A solve with an elevated GMIN shunt conductance (siemens).
    GminStepping {
        /// Shunt conductance used on this rung.
        gmin: f64,
    },
    /// A solve with all independent sources scaled down.
    SourceStepping {
        /// Fraction of the full source values used on this rung.
        scale: f64,
    },
}

impl core::fmt::Display for RecoveryStage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Plain => write!(f, "plain"),
            Self::GminStepping { gmin } => write!(f, "gmin-step (gmin = {gmin:.0e} S)"),
            Self::SourceStepping { scale } => {
                write!(f, "source-step (scale = {scale:.1})")
            }
        }
    }
}

/// The outcome of one recovery-ladder attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryAttempt {
    /// Which ladder rung this attempt ran on.
    pub stage: RecoveryStage,
    /// Newton iterations spent in this attempt.
    pub iterations: usize,
    /// `None` on success; the solver error otherwise.
    pub error: Option<SpiceError>,
}

impl RecoveryAttempt {
    /// Whether this attempt converged.
    pub fn converged(&self) -> bool {
        self.error.is_none()
    }
}

/// The full audit trail of a recovered DC solve: every attempt, in order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryLog {
    /// All attempts, in the order they ran.
    pub attempts: Vec<RecoveryAttempt>,
}

impl RecoveryLog {
    fn record(&mut self, stage: RecoveryStage, outcome: &Result<usize, SpiceError>) {
        self.attempts.push(match outcome {
            Ok(iters) => RecoveryAttempt {
                stage,
                iterations: *iters,
                error: None,
            },
            Err(e) => RecoveryAttempt {
                stage,
                // The attempt burned its whole budget without converging.
                iterations: 0,
                error: Some(e.clone()),
            },
        });
    }

    /// Total attempts across all stages.
    pub fn total_attempts(&self) -> usize {
        self.attempts.len()
    }

    /// Attempts that did *not* converge.
    pub fn failed_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| !a.converged()).count()
    }

    /// Whether any recovery rung (anything beyond the first plain attempt)
    /// was needed.
    pub fn recovery_was_needed(&self) -> bool {
        self.attempts.len() > 1
    }

    /// The stage of the final, successful attempt — i.e. which rung of the
    /// ladder rescued the solve. `None` if nothing converged.
    pub fn succeeded_via(&self) -> Option<RecoveryStage> {
        let last = self.attempts.last()?;
        last.converged().then_some(last.stage)
    }

    /// Total Newton iterations across every attempt that converged.
    pub fn converged_iterations(&self) -> usize {
        self.attempts.iter().map(|a| a.iterations).sum()
    }
}

impl core::fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} attempt(s), {} failed",
            self.total_attempts(),
            self.failed_attempts()
        )?;
        match self.succeeded_via() {
            Some(stage) => write!(f, "; converged via {stage}"),
            None => write!(f, "; did not converge"),
        }
    }
}

/// Process-wide count of ladder solves rescued by a recovery rung (the
/// plain attempt failed but a later rung converged).
static RECOVERED_SOLVES: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of ladder solves that gave up: every rung failed or
/// the solver budget was exhausted (structural [`SpiceError::SingularMatrix`]
/// failures are not counted — no amount of recovery addresses those).
static EXHAUSTED_SOLVES: AtomicU64 = AtomicU64::new(0);

/// Process-wide recovery-pressure counters as `(recovered, exhausted)`:
/// how many [`Circuit::dc_operating_point_recovered_with`] invocations were
/// rescued by a GMIN/source-stepping rung, and how many gave up (ladder or
/// budget exhausted). Monotonic since process start, like
/// `ppatc_edram::characterization_cache_stats`; callers difference two
/// snapshots to attribute pressure to a run.
pub fn recovery_counters() -> (u64, u64) {
    (
        RECOVERED_SOLVES.load(Ordering::Relaxed),
        EXHAUSTED_SOLVES.load(Ordering::Relaxed),
    )
}

/// Returns [`SpiceError::SolverBudgetExceeded`] when `budget` is exhausted
/// after `spent` Newton iterations, carrying a snapshot of the ladder log.
fn check_ladder_budget(
    budget: &SolverBudget,
    spent: usize,
    log: &RecoveryLog,
) -> Result<(), SpiceError> {
    if budget.exhausted(spent) {
        Err(SpiceError::SolverBudgetExceeded {
            analysis: "dc",
            iterations: spent,
            log: log.clone(),
        })
    } else {
        Ok(())
    }
}

impl Circuit {
    /// Computes the DC operating point (all sources at their `t = 0` value,
    /// capacitors open).
    ///
    /// Returns the full unknown vector: node voltages (ground excluded)
    /// followed by voltage-source branch currents. Use
    /// [`Circuit::node`]-derived ids with [`Circuit::dc_voltage`] for
    /// convenient access.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for ill-formed topologies and
    /// [`SpiceError::NoConvergence`] if damped Newton fails. For automatic
    /// retries through GMIN and source stepping, use
    /// [`Circuit::dc_operating_point_recovered`].
    pub fn dc_operating_point(&self) -> Result<Vec<f64>, SpiceError> {
        let mut scratch = self.newton_scratch();
        let mut x = vec![0.0; self.unknowns()];
        self.newton_solve(&mut scratch, &mut x, 0.0, None, "dc")?;
        Ok(x)
    }

    /// Convenience: DC voltage of one node.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpiceError`] from [`Circuit::dc_operating_point`].
    pub fn dc_voltage(&self, node: crate::NodeId) -> Result<ppatc_units::Voltage, SpiceError> {
        let x = self.dc_operating_point()?;
        Ok(ppatc_units::Voltage::from_volts(self.voltage_of(&x, node)))
    }

    /// DC operating point with the full convergence-recovery ladder (see
    /// the module docs) at default options.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] immediately for ill-formed
    /// topologies; [`SpiceError::NoConvergence`] only after every rung of
    /// the ladder has failed.
    pub fn dc_operating_point_recovered(&self) -> Result<(Vec<f64>, RecoveryLog), SpiceError> {
        self.dc_operating_point_recovered_with(DcOptions::new())
    }

    /// DC operating point with the recovery ladder and explicit options.
    ///
    /// Feeds the process-wide [`recovery_counters`]: a solve rescued by a
    /// recovery rung bumps the recovered count, a solve that exhausts the
    /// ladder or its budget bumps the exhausted count (structural
    /// [`SpiceError::SingularMatrix`] failures bump neither).
    ///
    /// # Errors
    ///
    /// See [`Circuit::dc_operating_point_recovered`]; additionally
    /// [`SpiceError::SolverBudgetExceeded`] when the
    /// [`DcOptions::with_budget`] bound trips between rungs.
    pub fn dc_operating_point_recovered_with(
        &self,
        opts: DcOptions,
    ) -> Result<(Vec<f64>, RecoveryLog), SpiceError> {
        let result = self.recovered_ladder(opts);
        match &result {
            Ok((_, log)) if log.recovery_was_needed() => {
                RECOVERED_SOLVES.fetch_add(1, Ordering::Relaxed);
            }
            Err(SpiceError::NoConvergence { .. } | SpiceError::SolverBudgetExceeded { .. }) => {
                EXHAUSTED_SOLVES.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        result
    }

    fn recovered_ladder(&self, opts: DcOptions) -> Result<(Vec<f64>, RecoveryLog), SpiceError> {
        let n = self.unknowns();
        let budget = opts.budget();
        let mut log = RecoveryLog::default();
        // Newton iterations spent so far, across all rungs. A failed rung
        // burned its whole per-attempt budget.
        let mut spent = 0_usize;

        // One scratch (compiled stamp plan + linear-system workspace) is
        // reused across every rung: the topology never changes mid-ladder.
        let mut scratch = self.newton_scratch();

        // Rung 1: plain solve.
        check_ladder_budget(&budget, spent, &log)?;
        let mut x = vec![0.0; n];
        let plain = self.newton_solve_with(
            &mut scratch,
            &mut x,
            0.0,
            None,
            "dc",
            &NewtonOptions {
                max_iter: opts.max_iter,
                ..NewtonOptions::default()
            },
        );
        log.record(RecoveryStage::Plain, &plain);
        match plain {
            Ok(_) => return Ok((x, log)),
            // A singular matrix is structural (floating node, source loop);
            // no amount of stepping will fix it. Fail fast.
            Err(e @ SpiceError::SingularMatrix { .. }) => return Err(e),
            Err(SpiceError::NoConvergence { .. }) => spent += opts.max_iter,
            Err(e) => return Err(e),
        }

        // Rung 2: GMIN stepping — heavily shunted first solve, then ramp
        // the shunt back down to nominal, warm-starting each step.
        let mut x = vec![0.0; n];
        let mut gmin_ok = true;
        for &gmin in &GMIN_LADDER {
            check_ladder_budget(&budget, spent, &log)?;
            let step = self.newton_solve_with(
                &mut scratch,
                &mut x,
                0.0,
                None,
                "dc",
                &NewtonOptions {
                    max_iter: opts.max_iter,
                    gmin,
                    ..NewtonOptions::default()
                },
            );
            log.record(RecoveryStage::GminStepping { gmin }, &step);
            match step {
                Ok(iters) => spent += iters,
                // Structural singularity and numerical ill-conditioning are
                // both beyond what stepping can repair. Fail fast.
                Err(
                    e @ (SpiceError::SingularMatrix { .. } | SpiceError::IllConditioned { .. }),
                ) => return Err(e),
                Err(_) => {
                    spent += opts.max_iter;
                    gmin_ok = false;
                    break;
                }
            }
        }
        if gmin_ok {
            return Ok((x, log));
        }

        // Rung 3: source stepping — ramp all independent sources from 10 %
        // to full value, warm-starting each step.
        let mut x = vec![0.0; n];
        let mut last_err = None;
        let mut source_ok = true;
        for &scale in &SOURCE_LADDER {
            check_ladder_budget(&budget, spent, &log)?;
            let step = self.newton_solve_with(
                &mut scratch,
                &mut x,
                0.0,
                None,
                "dc",
                &NewtonOptions {
                    max_iter: opts.max_iter,
                    source_scale: scale,
                    ..NewtonOptions::default()
                },
            );
            log.record(RecoveryStage::SourceStepping { scale }, &step);
            match step {
                Ok(iters) => spent += iters,
                Err(
                    e @ (SpiceError::SingularMatrix { .. } | SpiceError::IllConditioned { .. }),
                ) => return Err(e),
                Err(e) => {
                    // No further rungs read `spent`; the ladder is done.
                    last_err = Some(e);
                    source_ok = false;
                    break;
                }
            }
        }
        if source_ok {
            return Ok((x, log));
        }

        Err(last_err.unwrap_or(SpiceError::NoConvergence {
            analysis: "dc",
            time: 0.0,
            residual: f64::INFINITY,
        }))
    }

    /// Creates the reusable solve state ([`NewtonScratch`]) for this
    /// circuit's current topology: compiles the stamp plan and sizes the
    /// linear system once, so repeated solves allocate nothing.
    pub(crate) fn newton_scratch(&self) -> NewtonScratch {
        NewtonScratch {
            sys: LinearSystem::new(self.unknowns()),
            plan: self.stamp_plan(),
        }
    }

    /// Damped Newton–Raphson around an initial guess `x` (updated in place)
    /// with default options. Returns the iteration count on success.
    pub(crate) fn newton_solve(
        &self,
        scratch: &mut NewtonScratch,
        x: &mut [f64],
        t: f64,
        cap_companion: Option<&[(f64, f64)]>,
        analysis: &'static str,
    ) -> Result<usize, SpiceError> {
        self.newton_solve_with(
            scratch,
            x,
            t,
            cap_companion,
            analysis,
            &NewtonOptions::default(),
        )
    }

    /// Damped Newton–Raphson with explicit iteration/GMIN/source-scale
    /// options. Returns the number of iterations used on success.
    ///
    /// `scratch` must come from [`Circuit::newton_scratch`] on this same
    /// (unmodified) circuit.
    pub(crate) fn newton_solve_with(
        &self,
        scratch: &mut NewtonScratch,
        x: &mut [f64],
        t: f64,
        cap_companion: Option<&[(f64, f64)]>,
        analysis: &'static str,
        opts: &NewtonOptions,
    ) -> Result<usize, SpiceError> {
        let n = self.unknowns();
        debug_assert_eq!(x.len(), n);
        if n == 0 {
            return Ok(0);
        }
        let n_node_unknowns = self.node_count() - 1;
        let NewtonScratch { sys, plan } = scratch;
        // Sources depend only on (t, source_scale), both fixed for the
        // whole solve: refresh them once, not once per iteration.
        plan.set_sources(self, t, opts.source_scale);
        let mut worst = f64::INFINITY;
        for iter in 0..opts.max_iter {
            self.stamp_planned(sys, plan, x, cap_companion, opts.gmin);
            let x_new = sys.solve()?;
            worst = 0.0;
            for i in 0..n {
                let mut delta = x_new[i] - x[i];
                // Damp node voltages only; branch currents may legitimately
                // jump by large amounts.
                if i < n_node_unknowns {
                    delta = delta.clamp(-MAX_STEP, MAX_STEP);
                    worst = worst.max(delta.abs());
                }
                x[i] += delta;
            }
            if worst < V_TOL {
                return Ok(iter + 1);
            }
        }
        Err(SpiceError::NoConvergence {
            analysis,
            time: t,
            residual: worst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::{DcOptions, RecoveryStage};
    use crate::{Circuit, SpiceError, Waveform};
    use ppatc_device::{si, SiVtFlavor};
    use ppatc_units::{approx_eq, Length, Resistance, Voltage};

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.voltage_source(
            "V1",
            top,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(1.0)),
        );
        c.resistor("R1", top, mid, Resistance::from_kilo_ohms(1.0));
        c.resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0));
        let v = c.dc_voltage(mid).expect("divider should solve");
        assert!(approx_eq(v.as_volts(), 0.75, 1e-6));
    }

    #[test]
    fn branch_current_of_source() {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.voltage_source(
            "V1",
            top,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(1.0)),
        );
        c.resistor("R1", top, Circuit::GROUND, Resistance::from_kilo_ohms(1.0));
        let x = c.dc_operating_point().expect("should solve");
        // Branch current flows out of the + terminal through the circuit:
        // MNA convention gives i = -1 mA through the source.
        assert!(approx_eq(x[c.branch_index(0)], -1.0e-3, 1e-6));
    }

    fn inverter(vin: f64) -> (Circuit, crate::NodeId) {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let mut c = Circuit::new();
        let nvdd = c.node("vdd");
        let nin = c.node("in");
        let nout = c.node("out");
        c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
        c.voltage_source(
            "VIN",
            nin,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(vin)),
        );
        c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
        c.fet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            si::nfet(SiVtFlavor::Rvt).sized(w),
        );
        (c, nout)
    }

    #[test]
    fn cmos_inverter_transfer_points() {
        let (c_low, out_low) = inverter(0.0);
        let v_high = c_low.dc_voltage(out_low).expect("inverter should solve");
        assert!(v_high.as_volts() > 0.65, "output high {v_high}");

        let (c_high, out_high) = inverter(0.7);
        let v_low = c_high.dc_voltage(out_high).expect("inverter should solve");
        assert!(v_low.as_volts() < 0.05, "output low {v_low}");
    }

    #[test]
    fn inverter_gain_region_is_between_rails() {
        let (c, nout) = inverter(0.35);
        let v = c
            .dc_voltage(nout)
            .expect("inverter should solve")
            .as_volts();
        assert!(v > 0.05 && v < 0.65, "midpoint output {v}");
    }

    #[test]
    fn fet_current_at_operating_point() {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let mut c = Circuit::new();
        let nvdd = c.node("vdd");
        let nout = c.node("out");
        c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
        c.resistor("RL", nvdd, nout, Resistance::from_kilo_ohms(100.0));
        let mn = c.fet(
            "MN",
            nout,
            nvdd,
            Circuit::GROUND,
            si::nfet(SiVtFlavor::Rvt).sized(w),
        );
        let rl = crate::ElementId(1);
        let x = c.dc_operating_point().expect("common-source stage solves");
        let i_fet = c.fet_current(mn, &x).expect("MN is a FET");
        assert!(
            c.fet_current(rl, &x).is_none(),
            "resistors have no drain current"
        );
        // KCL: the FET sinks whatever the load resistor delivers.
        let v_out = x[c.node_index(nout).expect("out is not ground")];
        let i_res = (0.7 - v_out) / 100e3;
        assert!(approx_eq(i_fet.as_amperes(), i_res, 1e-3));
    }

    #[test]
    fn empty_circuit_is_fine() {
        let c = Circuit::new();
        let x = c.dc_operating_point().expect("empty circuit should solve");
        assert!(x.is_empty());
    }

    #[test]
    fn recovered_solve_matches_plain_solve_when_plain_converges() {
        let (c, nout) = inverter(0.35);
        let plain = c.dc_operating_point().expect("plain converges");
        let (recovered, log) = c
            .dc_operating_point_recovered()
            .expect("recovered converges");
        let i = c.node_index(nout).expect("out is not ground");
        assert!(approx_eq(plain[i], recovered[i], 1e-9));
        assert_eq!(log.total_attempts(), 1, "no recovery needed: {log}");
        assert!(!log.recovery_was_needed());
        assert_eq!(log.succeeded_via(), Some(RecoveryStage::Plain));
    }

    #[test]
    fn ladder_rescues_a_solve_the_plain_budget_cannot() {
        // With the 0.3 V damping clamp, walking the supply rail up to
        // 0.7 V from a zero guess alone needs ≥ 3 iterations, and the
        // nonlinear output node needs several more (9 total): a
        // 5-iteration budget starves the plain solve deterministically,
        // while the warm-started source-stepping rungs each converge.
        let opts = DcOptions::new().with_max_iter(5);
        let (c, nout) = inverter(0.35);
        let plain_err = {
            let (c2, _) = inverter(0.35);
            let mut scratch = c2.newton_scratch();
            let mut x = vec![0.0; 5];
            c2.newton_solve_with(
                &mut scratch,
                &mut x,
                0.0,
                None,
                "dc",
                &super::NewtonOptions {
                    max_iter: opts.max_iter(),
                    ..super::NewtonOptions::default()
                },
            )
        };
        assert!(
            matches!(plain_err, Err(SpiceError::NoConvergence { .. })),
            "plain solve must fail for the ladder to matter: {plain_err:?}"
        );

        let (x, log) = c
            .dc_operating_point_recovered_with(opts)
            .expect("ladder rescues the solve");
        // The rescued answer matches the unconstrained solve.
        let reference = c.dc_operating_point().expect("reference converges");
        let i = c.node_index(nout).expect("out is not ground");
        assert!(
            approx_eq(x[i], reference[i], 1e-6),
            "{} vs {}",
            x[i],
            reference[i]
        );

        // The retry path is visible: the plain rung failed, recovery ran,
        // and the final rung converged at full source value / nominal GMIN.
        assert!(log.recovery_was_needed(), "{log}");
        assert!(!log.attempts[0].converged());
        assert_eq!(log.attempts[0].stage, RecoveryStage::Plain);
        assert!(log.failed_attempts() >= 1);
        match log.succeeded_via().expect("ladder converged") {
            RecoveryStage::GminStepping { gmin } => {
                assert!(approx_eq(gmin, crate::circuit::GMIN, 1e-18));
            }
            RecoveryStage::SourceStepping { scale } => {
                assert!(approx_eq(scale, 1.0, 1e-12));
            }
            RecoveryStage::Plain => panic!("plain cannot be the rescuing rung: {log}"),
        }
    }

    #[test]
    fn singular_topologies_fail_fast_without_laddering() {
        // Two ideal voltage sources in parallel with conflicting values:
        // structurally singular, so the ladder must not retry.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(1.0)),
        );
        c.voltage_source(
            "V2",
            a,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(2.0)),
        );
        let err = c.dc_operating_point_recovered().expect_err("singular");
        assert!(matches!(err, SpiceError::SingularMatrix { .. }), "{err}");
    }

    #[test]
    fn nearly_singular_topologies_surface_ill_conditioning() {
        // A pico-ohm "wire" feeding a kilo-ohm load from a current source:
        // the load conductance survives stamping only as the low-order bits
        // of a diagonal dominated by g_wire = 1e12 S, so elimination
        // recovers the load pivot as cancellation noise (relative pivot
        // ~1e-15, tens of percent of error in the load voltage). The old
        // absolute 1e-300 pivot floor accepted that garbage silently; it
        // must now be a typed error, on the plain path and on the ladder
        // (fail-fast: no rung can repair lost matrix bits).
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.current_source("I1", Circuit::GROUND, a, Waveform::Dc(1.0));
        c.resistor("Rwire", a, b, Resistance::from_ohms(1e-12));
        c.resistor("Rload", b, Circuit::GROUND, Resistance::from_kilo_ohms(1.0));
        let err = c.dc_operating_point().expect_err("ill-conditioned");
        assert!(matches!(err, SpiceError::IllConditioned { .. }), "{err}");
        let err = c
            .dc_operating_point_recovered()
            .expect_err("ill-conditioned");
        assert!(matches!(err, SpiceError::IllConditioned { .. }), "{err}");
    }

    #[test]
    fn exhausted_ladder_reports_no_convergence() {
        // A 1-iteration budget cannot finish even the warm-started rungs.
        let (c, _) = inverter(0.35);
        let err = c
            .dc_operating_point_recovered_with(DcOptions::new().with_max_iter(1))
            .expect_err("nothing converges in one iteration");
        assert!(matches!(err, SpiceError::NoConvergence { .. }), "{err}");
    }

    #[test]
    fn iteration_budget_stops_the_ladder_between_rungs() {
        // Starve the plain solve (5 iterations cannot converge the
        // inverter), and allow only 3 total Newton iterations: the budget
        // check before the first GMIN rung must trip, carrying the failed
        // plain attempt in its log.
        let (c, _) = inverter(0.35);
        let opts = DcOptions::new()
            .with_max_iter(5)
            .with_budget(crate::SolverBudget::unlimited().with_max_newton_iterations(3));
        let err = c
            .dc_operating_point_recovered_with(opts)
            .expect_err("budget must trip before the first recovery rung");
        match err {
            SpiceError::SolverBudgetExceeded {
                analysis,
                iterations,
                log,
            } => {
                assert_eq!(analysis, "dc");
                assert_eq!(iterations, 5, "the failed plain rung burned its budget");
                assert_eq!(log.total_attempts(), 1, "{log}");
                assert_eq!(log.failed_attempts(), 1, "{log}");
            }
            other => panic!("expected SolverBudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn expired_deadline_stops_the_ladder_before_any_attempt() {
        let (c, _) = inverter(0.35);
        let opts = DcOptions::new()
            .with_budget(crate::SolverBudget::unlimited().with_deadline(std::time::Instant::now()));
        let err = c
            .dc_operating_point_recovered_with(opts)
            .expect_err("an already-expired deadline allows no attempts");
        match err {
            SpiceError::SolverBudgetExceeded {
                analysis,
                iterations,
                log,
            } => {
                assert_eq!(analysis, "dc");
                assert_eq!(iterations, 0);
                assert_eq!(log.total_attempts(), 0);
            }
            other => panic!("expected SolverBudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn recovery_counters_track_rescued_and_exhausted_solves() {
        // Counters are process-wide and tests run concurrently, so only
        // lower-bound deltas are safe to assert.
        let (recovered_before, exhausted_before) = super::recovery_counters();

        // A rescued solve: plain starved, ladder succeeds.
        let (c, _) = inverter(0.35);
        c.dc_operating_point_recovered_with(DcOptions::new().with_max_iter(5))
            .expect("ladder rescues the solve");
        // An exhausted solve: nothing converges in one iteration.
        let (c2, _) = inverter(0.35);
        let _ = c2
            .dc_operating_point_recovered_with(DcOptions::new().with_max_iter(1))
            .expect_err("nothing converges");

        let (recovered_after, exhausted_after) = super::recovery_counters();
        assert!(recovered_after >= recovered_before + 1);
        assert!(exhausted_after >= exhausted_before + 1);
    }

    #[test]
    fn clean_solves_do_not_touch_recovery_counters() {
        // A converging plain solve and a structural singularity must leave
        // both counters alone. Other tests may bump them concurrently, so
        // pin the invariant on a serial pair of snapshots being plausible
        // rather than exactly equal; the strict check lives in the
        // fault-injection suite where ordering is controlled.
        let (c, nout) = inverter(0.0);
        let (x, log) = c.dc_operating_point_recovered().expect("clean solve");
        assert!(!log.recovery_was_needed());
        let i = c.node_index(nout).expect("out is not ground");
        assert!(x[i].is_finite());
    }
}
