//! DC operating-point analysis.

use crate::circuit::Circuit;
use crate::error::SpiceError;
use crate::solver::LinearSystem;

/// Maximum Newton iterations for the operating point.
const MAX_ITER: usize = 400;
/// Convergence tolerance on the node-voltage update, volts.
const V_TOL: f64 = 1e-9;
/// Per-iteration clamp on node-voltage updates, volts (damping).
const MAX_STEP: f64 = 0.3;

impl Circuit {
    /// Computes the DC operating point (all sources at their `t = 0` value,
    /// capacitors open).
    ///
    /// Returns the full unknown vector: node voltages (ground excluded)
    /// followed by voltage-source branch currents. Use
    /// [`Circuit::node`]-derived ids with [`Circuit::dc_voltage`] for
    /// convenient access.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for ill-formed topologies and
    /// [`SpiceError::NoConvergence`] if damped Newton fails.
    pub fn dc_operating_point(&self) -> Result<Vec<f64>, SpiceError> {
        self.newton_solve(&mut vec![0.0; self.unknowns()], 0.0, None, "dc")
            .map(|x| x.to_vec())
    }

    /// Convenience: DC voltage of one node.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpiceError`] from [`Circuit::dc_operating_point`].
    pub fn dc_voltage(&self, node: crate::NodeId) -> Result<ppatc_units::Voltage, SpiceError> {
        let x = self.dc_operating_point()?;
        Ok(ppatc_units::Voltage::from_volts(self.voltage_of(&x, node)))
    }

    /// Damped Newton–Raphson around an initial guess `x` (updated in place
    /// and returned on success).
    pub(crate) fn newton_solve<'a>(
        &self,
        x: &'a mut Vec<f64>,
        t: f64,
        cap_companion: Option<&[(f64, f64)]>,
        analysis: &'static str,
    ) -> Result<&'a [f64], SpiceError> {
        let n = self.unknowns();
        debug_assert_eq!(x.len(), n);
        if n == 0 {
            return Ok(x.as_slice());
        }
        let n_node_unknowns = self.node_count() - 1;
        let mut sys = LinearSystem::new(n);
        let mut worst = f64::INFINITY;
        for _ in 0..MAX_ITER {
            self.stamp(&mut sys, x, t, cap_companion);
            let x_new = sys.solve()?;
            worst = 0.0;
            for i in 0..n {
                let mut delta = x_new[i] - x[i];
                // Damp node voltages only; branch currents may legitimately
                // jump by large amounts.
                if i < n_node_unknowns {
                    delta = delta.clamp(-MAX_STEP, MAX_STEP);
                    worst = worst.max(delta.abs());
                }
                x[i] += delta;
            }
            if worst < V_TOL {
                return Ok(x.as_slice());
            }
        }
        Err(SpiceError::NoConvergence {
            analysis,
            time: t,
            residual: worst,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, Waveform};
    use ppatc_device::{si, SiVtFlavor};
    use ppatc_units::{approx_eq, Length, Resistance, Voltage};

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.voltage_source("V1", top, Circuit::GROUND, Waveform::dc(Voltage::from_volts(1.0)));
        c.resistor("R1", top, mid, Resistance::from_kilo_ohms(1.0));
        c.resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0));
        let v = c.dc_voltage(mid).expect("divider should solve");
        assert!(approx_eq(v.as_volts(), 0.75, 1e-6));
    }

    #[test]
    fn branch_current_of_source() {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.voltage_source("V1", top, Circuit::GROUND, Waveform::dc(Voltage::from_volts(1.0)));
        c.resistor("R1", top, Circuit::GROUND, Resistance::from_kilo_ohms(1.0));
        let x = c.dc_operating_point().expect("should solve");
        // Branch current flows out of the + terminal through the circuit:
        // MNA convention gives i = -1 mA through the source.
        assert!(approx_eq(x[c.branch_index(0)], -1.0e-3, 1e-6));
    }

    #[test]
    fn cmos_inverter_transfer_points() {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let build = |vin: f64| {
            let mut c = Circuit::new();
            let nvdd = c.node("vdd");
            let nin = c.node("in");
            let nout = c.node("out");
            c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
            c.voltage_source("VIN", nin, Circuit::GROUND, Waveform::dc(Voltage::from_volts(vin)));
            c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
            c.fet("MN", nout, nin, Circuit::GROUND, si::nfet(SiVtFlavor::Rvt).sized(w));
            (c, nout)
        };
        let (c_low, out_low) = build(0.0);
        let v_high = c_low.dc_voltage(out_low).expect("inverter should solve");
        assert!(v_high.as_volts() > 0.65, "output high {v_high}");

        let (c_high, out_high) = build(0.7);
        let v_low = c_high.dc_voltage(out_high).expect("inverter should solve");
        assert!(v_low.as_volts() < 0.05, "output low {v_low}");
    }

    #[test]
    fn inverter_gain_region_is_between_rails() {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let mut c = Circuit::new();
        let nvdd = c.node("vdd");
        let nin = c.node("in");
        let nout = c.node("out");
        c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
        c.voltage_source("VIN", nin, Circuit::GROUND, Waveform::dc(Voltage::from_volts(0.35)));
        c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
        c.fet("MN", nout, nin, Circuit::GROUND, si::nfet(SiVtFlavor::Rvt).sized(w));
        let v = c.dc_voltage(nout).expect("inverter should solve").as_volts();
        assert!(v > 0.05 && v < 0.65, "midpoint output {v}");
    }

    #[test]
    fn fet_current_at_operating_point() {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let mut c = Circuit::new();
        let nvdd = c.node("vdd");
        let nout = c.node("out");
        c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
        c.resistor("RL", nvdd, nout, Resistance::from_kilo_ohms(100.0));
        let mn = c.fet("MN", nout, nvdd, Circuit::GROUND, si::nfet(SiVtFlavor::Rvt).sized(w));
        let rl = crate::ElementId(1);
        let x = c.dc_operating_point().expect("common-source stage solves");
        let i_fet = c.fet_current(mn, &x).expect("MN is a FET");
        assert!(c.fet_current(rl, &x).is_none(), "resistors have no drain current");
        // KCL: the FET sinks whatever the load resistor delivers.
        let v_out = x[c.node_index(nout).expect("out is not ground")];
        let i_res = (0.7 - v_out) / 100e3;
        assert!(approx_eq(i_fet.as_amperes(), i_res, 1e-3));
    }

    #[test]
    fn empty_circuit_is_fine() {
        let c = Circuit::new();
        let x = c.dc_operating_point().expect("empty circuit should solve");
        assert!(x.is_empty());
    }
}
