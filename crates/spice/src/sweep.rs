//! DC sweep analysis: transfer curves.

use crate::circuit::{Circuit, Element, ElementId, NodeId};
use crate::error::SpiceError;
use crate::waveform::Waveform;
use ppatc_units::Voltage;

/// Result of a DC sweep: one operating point per sweep value.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResult {
    values: Vec<f64>,
    solutions: Vec<Vec<f64>>,
}

impl SweepResult {
    /// The swept source values, in volts.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Voltage of `node` at sweep point `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn voltage(&self, node: NodeId, idx: usize) -> Voltage {
        let x = &self.solutions[idx];
        if node.0 == 0 {
            Voltage::zero()
        } else {
            Voltage::from_volts(x[node.0 - 1])
        }
    }

    /// The full transfer curve of `node`: `(input, output)` pairs in volts.
    pub fn transfer(&self, node: NodeId) -> Vec<(f64, f64)> {
        (0..self.len())
            .map(|i| (self.values[i], self.voltage(node, i).as_volts()))
            .collect()
    }

    /// The input value where `node` crosses `level` (linear interpolation),
    /// scanning in sweep order. `None` if it never crosses.
    pub fn input_crossing(&self, node: NodeId, level: Voltage) -> Option<f64> {
        let curve = self.transfer(node);
        let lvl = level.as_volts();
        for pair in curve.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            if (y0 - lvl) * (y1 - lvl) <= 0.0 && (y1 - y0).abs() > 0.0 {
                return Some(x0 + (x1 - x0) * (lvl - y0) / (y1 - y0));
            }
        }
        None
    }

    /// Peak magnitude of the small-signal gain `|dV(node)/dV(in)|` along
    /// the sweep (finite differences).
    pub fn peak_gain(&self, node: NodeId) -> f64 {
        let curve = self.transfer(node);
        curve
            .windows(2)
            .filter(|w| (w[1].0 - w[0].0).abs() > 0.0)
            .map(|w| ((w[1].1 - w[0].1) / (w[1].0 - w[0].0)).abs())
            .fold(0.0, f64::max)
    }
}

impl Circuit {
    /// Sweeps the DC value of voltage source `source` through `values`,
    /// solving the operating point at each step (warm-started from the
    /// previous point, so sharp transfer curves converge quickly).
    ///
    /// # Errors
    ///
    /// [`SpiceError`] if `source` is not a voltage source or any point
    /// fails to converge.
    pub fn dc_sweep(&self, source: ElementId, values: &[f64]) -> Result<SweepResult, SpiceError> {
        let mut ckt = self.clone();
        {
            let Some(Element::VSource { .. }) = ckt.elements.get(source.0) else {
                return Err(SpiceError::NoConvergence {
                    analysis: "dc-sweep",
                    time: 0.0,
                    residual: f64::NAN,
                });
            };
        }
        let n_nodes = self.node_count() - 1;
        // Editing a source's waveform changes values, not topology, so one
        // compiled scratch serves every sweep point (sources are refreshed
        // from the circuit at the start of each solve).
        let mut scratch = ckt.newton_scratch();
        let mut x = vec![0.0; self.unknowns()];
        let mut solutions = Vec::with_capacity(values.len());
        for &v in values {
            if let Element::VSource { wave, .. } = &mut ckt.elements[source.0] {
                *wave = Waveform::Dc(v);
            }
            ckt.newton_solve(&mut scratch, &mut x, 0.0, None, "dc")?;
            solutions.push(x[..n_nodes].to_vec());
        }
        Ok(SweepResult {
            values: values.to_vec(),
            solutions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_device::{si, SiVtFlavor};
    use ppatc_units::{approx_eq, Length};

    fn inverter() -> (Circuit, ElementId, NodeId) {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let mut c = Circuit::new();
        let nvdd = c.node("vdd");
        let nin = c.node("in");
        let nout = c.node("out");
        c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
        let vin = c.voltage_source("VIN", nin, Circuit::GROUND, Waveform::dc(Voltage::zero()));
        c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
        c.fet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            si::nfet(SiVtFlavor::Rvt).sized(w),
        );
        (c, vin, nout)
    }

    fn ramp(n: usize, hi: f64) -> Vec<f64> {
        (0..=n).map(|i| hi * i as f64 / n as f64).collect()
    }

    #[test]
    fn inverter_vtc_shape() {
        let (c, vin, out) = inverter();
        let sweep = c.dc_sweep(vin, &ramp(70, 0.7)).expect("sweep solves");
        let curve = sweep.transfer(out);
        // Monotone non-increasing.
        for pair in curve.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-9);
        }
        // Full logic swing at the rails.
        assert!(curve[0].1 > 0.65);
        assert!(curve.last().expect("non-empty").1 < 0.05);
    }

    #[test]
    fn inverter_gain_and_threshold() {
        let (c, vin, out) = inverter();
        let sweep = c.dc_sweep(vin, &ramp(140, 0.7)).expect("sweep solves");
        // Regenerative: peak gain above 1 (required for bistable storage).
        assert!(sweep.peak_gain(out) > 1.5, "gain {}", sweep.peak_gain(out));
        // The switching threshold sits mid-rail-ish.
        let vm = sweep
            .input_crossing(out, Voltage::from_volts(0.35))
            .expect("crosses mid-rail");
        assert!((0.2..0.5).contains(&vm), "V_M = {vm}");
    }

    #[test]
    fn sweep_values_round_trip() {
        let (c, vin, _) = inverter();
        let vals = ramp(10, 0.7);
        let sweep = c.dc_sweep(vin, &vals).expect("sweep solves");
        assert_eq!(sweep.len(), vals.len());
        assert!(approx_eq(sweep.values()[5], vals[5], 1e-12));
    }

    #[test]
    fn sweeping_a_resistor_is_an_error() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source(
            "V",
            a,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(1.0)),
        );
        let r = c.resistor(
            "R",
            a,
            Circuit::GROUND,
            ppatc_units::Resistance::from_ohms(100.0),
        );
        assert!(c.dc_sweep(r, &[0.0, 1.0]).is_err());
    }
}
