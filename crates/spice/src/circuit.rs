//! Netlist construction and MNA stamping.

use crate::solver::LinearSystem;
use crate::waveform::Waveform;
use ppatc_device::{Fet, VsDerived};
use ppatc_units::{Capacitance, Resistance};

/// Identifies a node in a [`Circuit`]. Obtain via [`Circuit::node`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Identifies an element in a [`Circuit`]; returned by the element builders
/// and consumed by per-element measurements such as
/// [`Trace::source_energy`](crate::Trace::source_energy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// Minimum conductance from every node to ground (helps convergence and
/// pins truly floating nodes), in siemens.
pub(crate) const GMIN: f64 = 1e-12;

/// Perturbation used for numeric FET derivatives, in volts.
const DERIV_DV: f64 = 1e-6;

#[derive(Clone, Debug)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    /// Ideal voltage source from `p` (positive) to `n`; `branch` is the
    /// index of its current unknown.
    VSource {
        p: NodeId,
        n: NodeId,
        wave: Waveform,
        branch: usize,
    },
    /// Independent current source driving `value` amperes from `p` to `n`
    /// (i.e. out of node `p`, into node `n` through the external circuit).
    ISource {
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    },
    Fet {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        fet: Fet,
    },
}

/// One pre-resolved stamp instruction. Node lookups, conductances, and the
/// FET's bias-independent model intermediates are resolved at
/// [`StampPlan::compile`] time; only terminal voltages (and, for sources,
/// the waveform value refreshed by [`StampPlan::set_sources`]) vary at
/// replay time.
#[derive(Clone, Debug)]
pub(crate) enum PlanOp {
    /// A two-terminal conductance (resistor).
    Conductance {
        ia: Option<usize>,
        ib: Option<usize>,
        g: f64,
    },
    /// A capacitor slot: stamped only when a transient companion model is
    /// supplied, indexed by the capacitor's position among capacitors.
    Cap {
        ia: Option<usize>,
        ib: Option<usize>,
        cap_idx: usize,
    },
    /// An ideal voltage source; `value` holds `wave.at(t) · source_scale`.
    VSource {
        ip: Option<usize>,
        in_: Option<usize>,
        bi: usize,
        value: f64,
    },
    /// An independent current source; `value` as for `VSource`.
    ISource {
        ip: Option<usize>,
        in_: Option<usize>,
        value: f64,
    },
    /// A FET: terminal rows, width, and the model's cached bias-independent
    /// intermediates ([`VsDerived`]).
    Fet {
        di: Option<usize>,
        gi: Option<usize>,
        si: Option<usize>,
        w: f64,
        derived: VsDerived,
    },
}

/// A compiled stamp program for one circuit topology: one [`PlanOp`] per
/// element, replayed in element-insertion order so every `+=` into the MNA
/// system happens in exactly the order the interpretive
/// element-by-element walk used to perform it — f64 accumulation is not
/// associative, and the paper exhibits are pinned byte-for-byte.
///
/// The plan is valid for the lifetime of a topology (element list, node
/// set, and element parameters); any circuit edit requires recompiling.
/// Per-call quantities stay out of the cache: source values are refreshed
/// by [`StampPlan::set_sources`] per (time, source-scale) pair, and `gmin`
/// and the capacitor companion models are replay arguments.
#[derive(Clone, Debug)]
pub(crate) struct StampPlan {
    ops: Vec<PlanOp>,
    /// Non-ground node count (rows receiving the GMIN diagonal).
    n_nodes: usize,
}

impl StampPlan {
    /// Compiles the circuit's current topology into a stamp program.
    pub fn compile(circuit: &Circuit) -> Self {
        let mut cap_idx = 0usize;
        let ops = circuit
            .elements
            .iter()
            .map(|e| match e {
                Element::Resistor { a, b, ohms } => PlanOp::Conductance {
                    ia: circuit.node_index(*a),
                    ib: circuit.node_index(*b),
                    g: 1.0 / ohms,
                },
                Element::Capacitor { a, b, .. } => {
                    let op = PlanOp::Cap {
                        ia: circuit.node_index(*a),
                        ib: circuit.node_index(*b),
                        cap_idx,
                    };
                    cap_idx += 1;
                    op
                }
                Element::VSource { p, n, branch, .. } => PlanOp::VSource {
                    ip: circuit.node_index(*p),
                    in_: circuit.node_index(*n),
                    bi: circuit.branch_index(*branch),
                    value: 0.0,
                },
                Element::ISource { p, n, .. } => PlanOp::ISource {
                    ip: circuit.node_index(*p),
                    in_: circuit.node_index(*n),
                    value: 0.0,
                },
                Element::Fet { d, g, s, fet } => PlanOp::Fet {
                    di: circuit.node_index(*d),
                    gi: circuit.node_index(*g),
                    si: circuit.node_index(*s),
                    w: fet.width().as_meters(),
                    derived: fet.model().derive(),
                },
            })
            .collect();
        Self {
            ops,
            n_nodes: circuit.node_count() - 1,
        }
    }

    /// Refreshes the cached source values for time `t` and `source_scale`.
    /// Newton iterates at a fixed (t, scale), so this runs once per solve
    /// rather than once per iteration.
    pub fn set_sources(&mut self, circuit: &Circuit, t: f64, source_scale: f64) {
        for (op, e) in self.ops.iter_mut().zip(&circuit.elements) {
            match (op, e) {
                (PlanOp::VSource { value, .. }, Element::VSource { wave, .. })
                | (PlanOp::ISource { value, .. }, Element::ISource { wave, .. }) => {
                    *value = wave.at(t) * source_scale;
                }
                _ => {}
            }
        }
    }
}

/// A flat transistor-level netlist.
///
/// Nodes are created by name with [`Circuit::node`]; the ground node is
/// [`Circuit::GROUND`]. Elements are added with the builder methods, each
/// returning an [`ElementId`].
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    pub(crate) elements: Vec<Element>,
    element_names: Vec<String>,
    pub(crate) n_branches: usize,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
            element_names: Vec::new(),
            n_branches: 0,
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"`, `"gnd"`, and `"GND"` alias the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(idx) = self.node_names.iter().position(|n| n == name) {
            return NodeId(idx);
        }
        self.node_names.push(name.to_string());
        NodeId(self.node_names.len() - 1)
    }

    /// Name of a node (for diagnostics).
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    fn push(&mut self, name: &str, e: Element) -> ElementId {
        self.elements.push(e);
        self.element_names.push(name.to_string());
        ElementId(self.elements.len() - 1)
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, r: Resistance) -> ElementId {
        assert!(r.as_ohms() > 0.0, "resistance must be positive");
        self.push(
            name,
            Element::Resistor {
                a,
                b,
                ohms: r.as_ohms(),
            },
        )
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is negative.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, c: Capacitance) -> ElementId {
        assert!(c.as_farads() >= 0.0, "capacitance must be non-negative");
        self.push(
            name,
            Element::Capacitor {
                a,
                b,
                farads: c.as_farads(),
            },
        )
    }

    /// Adds an ideal voltage source; `p` is the positive terminal.
    pub fn voltage_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> ElementId {
        let branch = self.n_branches;
        self.n_branches += 1;
        self.push(name, Element::VSource { p, n, wave, branch })
    }

    /// Adds an independent current source driving current from `p` to `n`.
    pub fn current_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> ElementId {
        self.push(name, Element::ISource { p, n, wave })
    }

    /// Adds a FET with drain `d`, gate `g`, source `s`. The body/back-gate is
    /// implicitly tied to the source. Device capacitances are *not* added
    /// automatically — attach explicit capacitors where loading matters.
    pub fn fet(&mut self, name: &str, d: NodeId, g: NodeId, s: NodeId, fet: Fet) -> ElementId {
        self.push(name, Element::Fet { d, g, s, fet })
    }

    /// Number of MNA unknowns: node voltages (minus ground) + source branches.
    pub(crate) fn unknowns(&self) -> usize {
        self.node_names.len() - 1 + self.n_branches
    }

    /// Row/column of a node in the MNA system; `None` for ground.
    #[inline]
    pub(crate) fn node_index(&self, node: NodeId) -> Option<usize> {
        if node.0 == 0 {
            None
        } else {
            Some(node.0 - 1)
        }
    }

    /// Row/column of a voltage-source branch unknown.
    #[inline]
    pub(crate) fn branch_index(&self, branch: usize) -> usize {
        self.node_names.len() - 1 + branch
    }

    /// Voltage of `node` in an unknown vector `x`.
    #[inline]
    pub(crate) fn voltage_of(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Replays a compiled [`StampPlan`] to stamp the linearised MNA system
    /// around the candidate solution `x`. `cap_companion` provides
    /// (g_eq, i_eq) per capacitor for transient analysis; `None` treats
    /// capacitors as open (DC).
    ///
    /// `gmin` is the shunt conductance to ground on every node (the
    /// convergence-recovery ladder raises it temporarily, so it stays a
    /// replay-time argument). Source values must have been refreshed with
    /// [`StampPlan::set_sources`] for the solve's time and source scale.
    ///
    /// Every `+=` lands in the same order the pre-plan interpretive walk
    /// used: op replay follows element-insertion order, and the per-element
    /// add sequences are identical — keeping accumulated matrix entries
    /// bit-for-bit equal to the historical path.
    pub(crate) fn stamp_planned(
        &self,
        sys: &mut LinearSystem,
        plan: &StampPlan,
        x: &[f64],
        cap_companion: Option<&[(f64, f64)]>,
        gmin: f64,
    ) {
        sys.clear();
        // GMIN to ground on every non-ground node.
        for i in 0..plan.n_nodes {
            sys.add(i, i, gmin);
        }

        for (op, e) in plan.ops.iter().zip(&self.elements) {
            match op {
                PlanOp::Conductance { ia, ib, g } => {
                    stamp_conductance_idx(sys, *ia, *ib, *g);
                }
                PlanOp::Cap { ia, ib, cap_idx } => {
                    if let Some(companion) = cap_companion {
                        let (g_eq, i_eq) = companion[*cap_idx];
                        stamp_conductance_idx(sys, *ia, *ib, g_eq);
                        // i_eq flows from a to b inside the companion source.
                        if let Some(ia) = ia {
                            sys.add_rhs(*ia, -i_eq);
                        }
                        if let Some(ib) = ib {
                            sys.add_rhs(*ib, i_eq);
                        }
                    }
                }
                PlanOp::VSource { ip, in_, bi, value } => {
                    if let Some(ip) = ip {
                        sys.add(*ip, *bi, 1.0);
                        sys.add(*bi, *ip, 1.0);
                    }
                    if let Some(in_) = in_ {
                        sys.add(*in_, *bi, -1.0);
                        sys.add(*bi, *in_, -1.0);
                    }
                    sys.add_rhs(*bi, *value);
                }
                PlanOp::ISource { ip, in_, value } => {
                    if let Some(ip) = ip {
                        sys.add_rhs(*ip, -value);
                    }
                    if let Some(in_) = in_ {
                        sys.add_rhs(*in_, *value);
                    }
                }
                PlanOp::Fet {
                    di,
                    gi,
                    si,
                    w,
                    derived,
                } => {
                    let Element::Fet { fet, .. } = e else {
                        debug_assert!(false, "plan op out of sync with element list");
                        continue;
                    };
                    let vd = di.map_or(0.0, |i| x[i]);
                    let vg = gi.map_or(0.0, |i| x[i]);
                    let vs = si.map_or(0.0, |i| x[i]);
                    let (vgs, vds) = (vg - vs, vd - vs);
                    // One fused evaluation shares the bias-independent and
                    // drain-bias intermediates across the operating point
                    // and both derivative probes (bit-identical to three
                    // scalar model calls).
                    let (i0, ig_probe, id_probe) = fet
                        .model()
                        .current_triplet_per_width(derived, vgs, vds, DERIV_DV);
                    let id0 = i0 * w;
                    let gm = (ig_probe * w - id0) / DERIV_DV;
                    let gds = (id_probe * w - id0) / DERIV_DV;
                    // Norton companion: i_eq = I(v) - gm·vgs - gds·vds, current d→s.
                    let i_eq = id0 - gm * vgs - gds * vds;
                    if let Some(di) = di {
                        if let Some(gi) = gi {
                            sys.add(*di, *gi, gm);
                        }
                        sys.add(*di, *di, gds);
                        if let Some(si) = si {
                            sys.add(*di, *si, -(gm + gds));
                        }
                        sys.add_rhs(*di, -i_eq);
                    }
                    if let Some(si) = si {
                        if let Some(gi) = gi {
                            sys.add(*si, *gi, -gm);
                        }
                        if let Some(di) = di {
                            sys.add(*si, *di, -gds);
                        }
                        sys.add(*si, *si, gm + gds);
                        sys.add_rhs(*si, i_eq);
                    }
                }
            }
        }
    }

    /// Compiles this circuit's topology into a reusable [`StampPlan`].
    pub(crate) fn stamp_plan(&self) -> StampPlan {
        StampPlan::compile(self)
    }

    /// Drain current of FET element `element` evaluated at a solved unknown
    /// vector (e.g. the result of [`Circuit::dc_operating_point`]).
    /// Returns `None` if `element` is not a FET.
    pub fn fet_current(&self, element: ElementId, x: &[f64]) -> Option<ppatc_units::Current> {
        if let Element::Fet { d, g, s, fet } = &self.elements[element.0] {
            let vgs = self.voltage_of(x, *g) - self.voltage_of(x, *s);
            let vds = self.voltage_of(x, *d) - self.voltage_of(x, *s);
            Some(ppatc_units::Current::from_amperes(
                fet.model().current_per_width(vgs, vds) * fet.width().as_meters(),
            ))
        } else {
            None
        }
    }
}

/// Stamps a two-terminal conductance between pre-resolved rows (in the
/// same four-add order the original `stamp_conductance` used).
#[inline]
fn stamp_conductance_idx(sys: &mut LinearSystem, ia: Option<usize>, ib: Option<usize>, g: f64) {
    if let Some(ia) = ia {
        sys.add(ia, ia, g);
        if let Some(ib) = ib {
            sys.add(ia, ib, -g);
        }
    }
    if let Some(ib) = ib {
        sys.add(ib, ib, g);
        if let Some(ia) = ia {
            sys.add(ib, ia, -g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::Voltage;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
    }

    #[test]
    fn node_names_are_interned() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn unknown_layout() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(1.0)),
        );
        c.resistor("R1", a, b, Resistance::from_ohms(1.0));
        assert_eq!(c.unknowns(), 3); // two nodes + one branch
        assert_eq!(c.node_index(Circuit::GROUND), None);
        assert_eq!(c.node_index(a), Some(0));
        assert_eq!(c.branch_index(0), 2);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(0.0));
    }
}
