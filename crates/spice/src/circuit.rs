//! Netlist construction and MNA stamping.

use crate::solver::LinearSystem;
use crate::waveform::Waveform;
use ppatc_device::Fet;
use ppatc_units::{Capacitance, Resistance};

/// Identifies a node in a [`Circuit`]. Obtain via [`Circuit::node`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Identifies an element in a [`Circuit`]; returned by the element builders
/// and consumed by per-element measurements such as
/// [`Trace::source_energy`](crate::Trace::source_energy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// Minimum conductance from every node to ground (helps convergence and
/// pins truly floating nodes), in siemens.
pub(crate) const GMIN: f64 = 1e-12;

/// Perturbation used for numeric FET derivatives, in volts.
const DERIV_DV: f64 = 1e-6;

#[derive(Clone, Debug)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    /// Ideal voltage source from `p` (positive) to `n`; `branch` is the
    /// index of its current unknown.
    VSource {
        p: NodeId,
        n: NodeId,
        wave: Waveform,
        branch: usize,
    },
    /// Independent current source driving `value` amperes from `p` to `n`
    /// (i.e. out of node `p`, into node `n` through the external circuit).
    ISource {
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    },
    Fet {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        fet: Fet,
    },
}

/// A flat transistor-level netlist.
///
/// Nodes are created by name with [`Circuit::node`]; the ground node is
/// [`Circuit::GROUND`]. Elements are added with the builder methods, each
/// returning an [`ElementId`].
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    pub(crate) elements: Vec<Element>,
    element_names: Vec<String>,
    pub(crate) n_branches: usize,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
            element_names: Vec::new(),
            n_branches: 0,
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"`, `"gnd"`, and `"GND"` alias the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(idx) = self.node_names.iter().position(|n| n == name) {
            return NodeId(idx);
        }
        self.node_names.push(name.to_string());
        NodeId(self.node_names.len() - 1)
    }

    /// Name of a node (for diagnostics).
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    fn push(&mut self, name: &str, e: Element) -> ElementId {
        self.elements.push(e);
        self.element_names.push(name.to_string());
        ElementId(self.elements.len() - 1)
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, r: Resistance) -> ElementId {
        assert!(r.as_ohms() > 0.0, "resistance must be positive");
        self.push(
            name,
            Element::Resistor {
                a,
                b,
                ohms: r.as_ohms(),
            },
        )
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is negative.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, c: Capacitance) -> ElementId {
        assert!(c.as_farads() >= 0.0, "capacitance must be non-negative");
        self.push(
            name,
            Element::Capacitor {
                a,
                b,
                farads: c.as_farads(),
            },
        )
    }

    /// Adds an ideal voltage source; `p` is the positive terminal.
    pub fn voltage_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> ElementId {
        let branch = self.n_branches;
        self.n_branches += 1;
        self.push(name, Element::VSource { p, n, wave, branch })
    }

    /// Adds an independent current source driving current from `p` to `n`.
    pub fn current_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> ElementId {
        self.push(name, Element::ISource { p, n, wave })
    }

    /// Adds a FET with drain `d`, gate `g`, source `s`. The body/back-gate is
    /// implicitly tied to the source. Device capacitances are *not* added
    /// automatically — attach explicit capacitors where loading matters.
    pub fn fet(&mut self, name: &str, d: NodeId, g: NodeId, s: NodeId, fet: Fet) -> ElementId {
        self.push(name, Element::Fet { d, g, s, fet })
    }

    /// Number of MNA unknowns: node voltages (minus ground) + source branches.
    pub(crate) fn unknowns(&self) -> usize {
        self.node_names.len() - 1 + self.n_branches
    }

    /// Row/column of a node in the MNA system; `None` for ground.
    #[inline]
    pub(crate) fn node_index(&self, node: NodeId) -> Option<usize> {
        if node.0 == 0 {
            None
        } else {
            Some(node.0 - 1)
        }
    }

    /// Row/column of a voltage-source branch unknown.
    #[inline]
    pub(crate) fn branch_index(&self, branch: usize) -> usize {
        self.node_names.len() - 1 + branch
    }

    /// Voltage of `node` in an unknown vector `x`.
    #[inline]
    pub(crate) fn voltage_of(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Stamps the linearised MNA system around the candidate solution `x` at
    /// time `t`. `cap_companion` provides (g_eq, i_eq) per capacitor for
    /// transient analysis; `None` treats capacitors as open (DC).
    ///
    /// `gmin` is the shunt conductance to ground on every node (the
    /// convergence-recovery ladder raises it temporarily); `source_scale`
    /// multiplies every independent source value (source stepping ramps it
    /// from near zero back to 1).
    pub(crate) fn stamp(
        &self,
        sys: &mut LinearSystem,
        x: &[f64],
        t: f64,
        cap_companion: Option<&[(f64, f64)]>,
        gmin: f64,
        source_scale: f64,
    ) {
        sys.clear();
        let n_nodes = self.node_names.len() - 1;
        // GMIN to ground on every non-ground node.
        for i in 0..n_nodes {
            sys.add(i, i, gmin);
        }

        let mut cap_idx = 0usize;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    self.stamp_conductance(sys, *a, *b, g);
                }
                Element::Capacitor { a, b, .. } => {
                    if let Some(companion) = cap_companion {
                        let (g_eq, i_eq) = companion[cap_idx];
                        self.stamp_conductance(sys, *a, *b, g_eq);
                        // i_eq flows from a to b inside the companion source.
                        if let Some(ia) = self.node_index(*a) {
                            sys.add_rhs(ia, -i_eq);
                        }
                        if let Some(ib) = self.node_index(*b) {
                            sys.add_rhs(ib, i_eq);
                        }
                    }
                    cap_idx += 1;
                }
                Element::VSource { p, n, wave, branch } => {
                    let bi = self.branch_index(*branch);
                    if let Some(ip) = self.node_index(*p) {
                        sys.add(ip, bi, 1.0);
                        sys.add(bi, ip, 1.0);
                    }
                    if let Some(in_) = self.node_index(*n) {
                        sys.add(in_, bi, -1.0);
                        sys.add(bi, in_, -1.0);
                    }
                    sys.add_rhs(bi, wave.at(t) * source_scale);
                }
                Element::ISource { p, n, wave } => {
                    let j = wave.at(t) * source_scale;
                    if let Some(ip) = self.node_index(*p) {
                        sys.add_rhs(ip, -j);
                    }
                    if let Some(in_) = self.node_index(*n) {
                        sys.add_rhs(in_, j);
                    }
                }
                Element::Fet { d, g, s, fet } => {
                    let vd = self.voltage_of(x, *d);
                    let vg = self.voltage_of(x, *g);
                    let vs = self.voltage_of(x, *s);
                    let (vgs, vds) = (vg - vs, vd - vs);
                    let model = fet.model();
                    let w = fet.width().as_meters();
                    let id0 = model.current_per_width(vgs, vds) * w;
                    let gm = (model.current_per_width(vgs + DERIV_DV, vds) * w - id0) / DERIV_DV;
                    let gds = (model.current_per_width(vgs, vds + DERIV_DV) * w - id0) / DERIV_DV;
                    // Norton companion: i_eq = I(v) - gm·vgs - gds·vds, current d→s.
                    let i_eq = id0 - gm * vgs - gds * vds;
                    let (di, gi, si) = (
                        self.node_index(*d),
                        self.node_index(*g),
                        self.node_index(*s),
                    );
                    if let Some(di) = di {
                        if let Some(gi) = gi {
                            sys.add(di, gi, gm);
                        }
                        sys.add(di, di, gds);
                        if let Some(si) = si {
                            sys.add(di, si, -(gm + gds));
                        }
                        sys.add_rhs(di, -i_eq);
                    }
                    if let Some(si) = si {
                        if let Some(gi) = gi {
                            sys.add(si, gi, -gm);
                        }
                        if let Some(di) = di {
                            sys.add(si, di, -gds);
                        }
                        sys.add(si, si, gm + gds);
                        sys.add_rhs(si, i_eq);
                    }
                }
            }
        }
    }

    fn stamp_conductance(&self, sys: &mut LinearSystem, a: NodeId, b: NodeId, g: f64) {
        let (ia, ib) = (self.node_index(a), self.node_index(b));
        if let Some(ia) = ia {
            sys.add(ia, ia, g);
            if let Some(ib) = ib {
                sys.add(ia, ib, -g);
            }
        }
        if let Some(ib) = ib {
            sys.add(ib, ib, g);
            if let Some(ia) = ia {
                sys.add(ib, ia, -g);
            }
        }
    }

    /// Drain current of FET element `element` evaluated at a solved unknown
    /// vector (e.g. the result of [`Circuit::dc_operating_point`]).
    /// Returns `None` if `element` is not a FET.
    pub fn fet_current(&self, element: ElementId, x: &[f64]) -> Option<ppatc_units::Current> {
        if let Element::Fet { d, g, s, fet } = &self.elements[element.0] {
            let vgs = self.voltage_of(x, *g) - self.voltage_of(x, *s);
            let vds = self.voltage_of(x, *d) - self.voltage_of(x, *s);
            Some(ppatc_units::Current::from_amperes(
                fet.model().current_per_width(vgs, vds) * fet.width().as_meters(),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::Voltage;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
    }

    #[test]
    fn node_names_are_interned() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn unknown_layout() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(1.0)),
        );
        c.resistor("R1", a, b, Resistance::from_ohms(1.0));
        assert_eq!(c.unknowns(), 3); // two nodes + one branch
        assert_eq!(c.node_index(Circuit::GROUND), None);
        assert_eq!(c.node_index(a), Some(0));
        assert_eq!(c.branch_index(0), 2);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(0.0));
    }
}
