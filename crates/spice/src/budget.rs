//! Wall-clock and iteration budgets for solver invocations.
//!
//! The evaluation pipeline shards thousands of independent solves across
//! workers; one pathological netlist must not stall a worker forever. A
//! [`SolverBudget`] bounds a single analysis invocation by wall-clock
//! deadline, by total Newton iterations, or both. Budgets are checked at
//! coarse, cheap boundaries — between recovery-ladder rungs in the DC
//! ladder and between time steps in the transient loop — so an exhausted
//! budget surfaces as [`SolverBudgetExceeded`] within one rung or step,
//! never mid-iteration.
//!
//! [`SolverBudgetExceeded`]: crate::SpiceError::SolverBudgetExceeded

use std::time::{Duration, Instant};

/// A bound on how much work a single solver invocation may perform.
///
/// The default budget is unlimited. Budgets are `Copy` and cheap to check;
/// an exceeded budget is reported as
/// [`SpiceError::SolverBudgetExceeded`](crate::SpiceError::SolverBudgetExceeded)
/// carrying the work done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverBudget {
    deadline: Option<Instant>,
    max_newton_iterations: Option<usize>,
}

impl SolverBudget {
    /// A budget with no bounds (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bounds the invocation by an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the invocation by a wall-clock timeout from now.
    #[must_use]
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Bounds the invocation by a total Newton-iteration count across all
    /// rungs/steps. Clamped to at least 1.
    #[must_use]
    pub fn with_max_newton_iterations(mut self, iterations: usize) -> Self {
        self.max_newton_iterations = Some(iterations.max(1));
        self
    }

    /// Whether this budget imposes no bounds at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_newton_iterations.is_none()
    }

    /// Whether the budget is exhausted after `iterations_spent` Newton
    /// iterations. The wall clock is polled here, so call this only at
    /// coarse boundaries (ladder rungs, time steps).
    pub fn exhausted(&self, iterations_spent: usize) -> bool {
        if let Some(limit) = self.max_newton_iterations {
            if iterations_spent >= limit {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_never_exhausted() {
        let b = SolverBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.exhausted(0));
        assert!(!b.exhausted(usize::MAX));
    }

    #[test]
    fn iteration_budget_trips_at_the_limit() {
        let b = SolverBudget::unlimited().with_max_newton_iterations(10);
        assert!(!b.is_unlimited());
        assert!(!b.exhausted(9));
        assert!(b.exhausted(10));
        assert!(b.exhausted(11));
        // Clamped to at least one iteration.
        assert!(!SolverBudget::unlimited()
            .with_max_newton_iterations(0)
            .exhausted(0));
    }

    #[test]
    fn past_deadline_is_exhausted_regardless_of_iterations() {
        let b = SolverBudget::unlimited().with_deadline(Instant::now());
        assert!(b.exhausted(0));
        let far = SolverBudget::unlimited().with_deadline_in(Duration::from_secs(60));
        assert!(!far.exhausted(0));
    }
}
