//! Source waveforms.

use ppatc_units::{Time, Voltage};

/// The time-dependent value of an independent source.
///
/// Values are in volts for voltage sources and amperes for current sources.
///
/// ```
/// use ppatc_spice::Waveform;
/// use ppatc_units::{Time, Voltage};
///
/// let clk = Waveform::pulse(
///     Voltage::zero(),
///     Voltage::from_volts(0.7),
///     Time::zero(),                    // delay
///     Time::from_picoseconds(20.0),    // rise
///     Time::from_picoseconds(20.0),    // fall
///     Time::from_nanoseconds(0.98),    // width
///     Time::from_nanoseconds(2.0),     // period
/// );
/// assert!((clk.at(1e-9) - 0.7).abs() < 1e-12);
/// assert!(clk.at(1.5e-9) < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// A constant value.
    Dc(f64),
    /// A (periodic) trapezoidal pulse, SPICE `PULSE(...)` semantics.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds (must be > 0).
        rise: f64,
        /// Fall time, seconds (must be > 0).
        fall: f64,
        /// Time spent at `v1`, seconds.
        width: f64,
        /// Repetition period, seconds (`f64::INFINITY` for a single pulse).
        period: f64,
    },
    /// Piece-wise linear interpolation through `(time, value)` points.
    ///
    /// Before the first point the first value holds; after the last point
    /// the last value holds. Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// A DC voltage level.
    pub fn dc(v: Voltage) -> Self {
        Waveform::Dc(v.as_volts())
    }

    /// An ideal step from 0 to `v` at t = 0 (implemented as a 1 ps ramp to
    /// keep the transient well-conditioned).
    pub fn step(v: Voltage) -> Self {
        Waveform::Pwl(vec![(0.0, 0.0), (1e-12, v.as_volts())])
    }

    /// A step from 0 to `v` starting at `at` with the given `rise` time.
    pub fn step_at(v: Voltage, at: Time, rise: Time) -> Self {
        Waveform::Pwl(vec![
            (at.as_seconds(), 0.0),
            (at.as_seconds() + rise.as_seconds().max(1e-15), v.as_volts()),
        ])
    }

    /// A falling step from `v` to 0 starting at `at` with the given `fall` time.
    pub fn fall_at(v: Voltage, at: Time, fall: Time) -> Self {
        Waveform::Pwl(vec![
            (at.as_seconds(), v.as_volts()),
            (at.as_seconds() + fall.as_seconds().max(1e-15), 0.0),
        ])
    }

    /// A SPICE-style periodic pulse.
    pub fn pulse(
        v0: Voltage,
        v1: Voltage,
        delay: Time,
        rise: Time,
        fall: Time,
        width: Time,
        period: Time,
    ) -> Self {
        Waveform::Pulse {
            v0: v0.as_volts(),
            v1: v1.as_volts(),
            delay: delay.as_seconds(),
            rise: rise.as_seconds().max(1e-15),
            fall: fall.as_seconds().max(1e-15),
            width: width.as_seconds(),
            period: period.as_seconds(),
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().map(|&(_, v)| v).unwrap_or(0.0)
            }
        }
    }

    /// The value at t = 0, used as the DC-operating-point value.
    pub fn initial(&self) -> f64 {
        self.at(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(Voltage::from_volts(0.7));
        assert_eq!(w.at(0.0), 0.7);
        assert_eq!(w.at(1.0), 0.7);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 1.0)]);
        assert!(approx_eq(w.at(0.5), 0.0, 1e-12));
        assert!(approx_eq(w.at(1.5), 0.5, 1e-12));
        assert!(approx_eq(w.at(3.0), 1.0, 1e-12));
    }

    #[test]
    fn pulse_repeats() {
        let w = Waveform::pulse(
            Voltage::zero(),
            Voltage::from_volts(1.0),
            Time::zero(),
            Time::from_picoseconds(1.0),
            Time::from_picoseconds(1.0),
            Time::from_nanoseconds(1.0),
            Time::from_nanoseconds(2.0),
        );
        // Mid-pulse in the first and the third period.
        assert!(approx_eq(w.at(0.5e-9), 1.0, 1e-12));
        assert!(approx_eq(w.at(4.5e-9), 1.0, 1e-12));
        // Between pulses.
        assert!(w.at(1.7e-9).abs() < 1e-9);
    }

    #[test]
    fn step_starts_at_zero() {
        let w = Waveform::step(Voltage::from_volts(0.7));
        assert!(approx_eq(w.initial(), 0.0, 1e-12));
        assert!(approx_eq(w.at(1e-9), 0.7, 1e-12));
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(Waveform::Pwl(vec![]).at(1.0), 0.0);
    }
}
