//! Fixed-step transient analysis.

use crate::budget::SolverBudget;
use crate::circuit::{Circuit, Element};
use crate::error::SpiceError;
use crate::measure::Trace;
use ppatc_units::{Time, Voltage};

/// Time-integration scheme for capacitor companion models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Integration {
    /// First-order implicit Euler: L-stable, slightly lossy. Good default
    /// for strongly nonlinear switching circuits.
    BackwardEuler,
    /// Second-order trapezoidal rule (with a backward-Euler start-up step).
    #[default]
    Trapezoidal,
}

/// Configuration for [`Circuit::transient`].
#[derive(Clone, Debug, PartialEq)]
pub struct TransientConfig {
    /// Total simulated time.
    pub stop: Time,
    /// Fixed time step.
    pub step: Time,
    /// Integration scheme.
    pub integration: Integration,
    /// Whether to start from the DC operating point (`true`, default) or
    /// from all-zero node voltages.
    pub from_dc: bool,
    /// Node voltages to force as initial conditions *after* the DC solve —
    /// used to seed dynamic storage nodes (e.g. a DRAM cell's state).
    pub initial_voltages: Vec<(crate::NodeId, Voltage)>,
    /// Bound on the whole analysis (initial DC solve plus every time
    /// step). Checked between time steps; unlimited by default.
    pub budget: SolverBudget,
}

impl TransientConfig {
    /// Creates a configuration with the default scheme (trapezoidal) and a
    /// DC-derived initial state.
    pub fn new(stop: Time, step: Time) -> Self {
        Self {
            stop,
            step,
            integration: Integration::default(),
            from_dc: true,
            initial_voltages: Vec::new(),
            budget: SolverBudget::unlimited(),
        }
    }

    /// Builder: bounds the whole analysis by a [`SolverBudget`]. The budget
    /// is checked between time steps; an exhausted budget returns
    /// [`SpiceError::SolverBudgetExceeded`] with `analysis = "transient"`.
    #[must_use]
    pub fn with_budget(mut self, budget: SolverBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder: sets the integration scheme.
    #[must_use]
    pub fn with_integration(mut self, integration: Integration) -> Self {
        self.integration = integration;
        self
    }

    /// Builder: forces a node's initial voltage (applied after the DC solve).
    #[must_use]
    pub fn with_initial_voltage(mut self, node: crate::NodeId, v: Voltage) -> Self {
        self.initial_voltages.push((node, v));
        self
    }

    /// Builder: starts from all-zero node voltages instead of the DC point.
    #[must_use]
    pub fn without_dc(mut self) -> Self {
        self.from_dc = false;
        self
    }
}

impl Circuit {
    /// Runs a fixed-step transient analysis.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidTimeAxis`] for non-positive `stop`/`step`,
    /// [`SpiceError::SolverBudgetExceeded`] when [`TransientConfig::budget`]
    /// trips between time steps, otherwise any solver error from the
    /// per-step Newton iterations.
    pub fn transient(&self, cfg: &TransientConfig) -> Result<Trace, SpiceError> {
        let h = cfg.step.as_seconds();
        let stop = cfg.stop.as_seconds();
        if !h.is_finite() || h <= 0.0 || !stop.is_finite() || stop <= 0.0 {
            return Err(SpiceError::InvalidTimeAxis);
        }
        // Snap `stop / h` to the nearest integer when it lands within a few
        // ULPs of one: an exact-multiple stop time whose division comes out
        // at `k + 1e-16` must run k steps, not k + 1. The tolerance sits at
        // f64 rounding scale (~1e-12 relative) so an intentionally tiny
        // fractional final step (e.g. stop/h = 1500.000001) still ceils
        // instead of being silently dropped.
        let steps_exact = stop / h;
        let rounded = steps_exact.round();
        let n_steps = if rounded >= 1.0 && (steps_exact - rounded).abs() <= rounded * 1e-12 {
            rounded as usize
        } else {
            steps_exact.ceil() as usize
        };
        // Newton iterations spent so far (initial DC solve + all steps).
        let mut spent = 0_usize;

        // One compiled stamp plan + linear-system workspace serves the
        // initial DC solve and every time step.
        let mut scratch = self.newton_scratch();

        // Initial state.
        let mut x = vec![0.0; self.unknowns()];
        if cfg.from_dc {
            spent += self.newton_solve(&mut scratch, &mut x, 0.0, None, "dc")?;
        }
        for &(node, v) in &cfg.initial_voltages {
            if let Some(i) = self.node_index(node) {
                x[i] = v.as_volts();
            }
        }

        // Per-capacitor state: previous voltage across it and previous
        // current through it (for trapezoidal).
        let caps: Vec<(crate::NodeId, crate::NodeId, f64)> = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Capacitor { a, b, farads } => Some((*a, *b, *farads)),
                _ => None,
            })
            .collect();
        let mut v_prev: Vec<f64> = caps
            .iter()
            .map(|&(a, b, _)| self.voltage_of(&x, a) - self.voltage_of(&x, b))
            .collect();
        let mut i_prev: Vec<f64> = vec![0.0; caps.len()];

        let mut trace = Trace::new(self, n_steps + 1);
        trace.record(self, 0.0, &x);

        let mut companion = vec![(0.0, 0.0); caps.len()];
        for k in 1..=n_steps {
            if cfg.budget.exhausted(spent) {
                return Err(SpiceError::SolverBudgetExceeded {
                    analysis: "transient",
                    iterations: spent,
                    log: crate::dc::RecoveryLog::default(),
                });
            }
            let t = (k as f64) * h;
            // Backward-Euler start-up step even under trapezoidal: the DC
            // point carries no capacitor-current history.
            let use_trap = cfg.integration == Integration::Trapezoidal && k > 1;
            for (ci, &(_, _, c)) in caps.iter().enumerate() {
                if use_trap {
                    let g_eq = 2.0 * c / h;
                    let i_eq = -(g_eq * v_prev[ci] + i_prev[ci]);
                    companion[ci] = (g_eq, i_eq);
                } else {
                    let g_eq = c / h;
                    companion[ci] = (g_eq, -g_eq * v_prev[ci]);
                }
            }
            spent += self.newton_solve(&mut scratch, &mut x, t, Some(&companion), "transient")?;
            for (ci, &(a, b, _)) in caps.iter().enumerate() {
                let v_now = self.voltage_of(&x, a) - self.voltage_of(&x, b);
                let (g_eq, i_eq) = companion[ci];
                i_prev[ci] = g_eq * v_now + i_eq;
                v_prev[ci] = v_now;
            }
            trace.record(self, t, &x);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, Waveform};
    use ppatc_device::{si, SiVtFlavor};
    use ppatc_units::{approx_eq, Capacitance, Length, Resistance};

    fn rc_circuit() -> (Circuit, crate::NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.voltage_source(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(Voltage::from_volts(1.0)),
        );
        c.resistor("R1", vin, vout, Resistance::from_kilo_ohms(1.0));
        c.capacitor(
            "C1",
            vout,
            Circuit::GROUND,
            Capacitance::from_femtofarads(1000.0),
        );
        (c, vout)
    }

    #[test]
    fn rc_charging_follows_exponential() {
        let (c, out) = rc_circuit();
        let cfg = TransientConfig::new(Time::from_nanoseconds(3.0), Time::from_picoseconds(2.0));
        let trace = c.transient(&cfg).expect("RC transient should run");
        // At t = tau = 1 ns: 1 - 1/e ≈ 0.632.
        let v_tau = trace.voltage_at(out, Time::from_nanoseconds(1.0));
        assert!(approx_eq(v_tau.as_volts(), 0.632, 0.02), "v(tau) = {v_tau}");
    }

    #[test]
    fn backward_euler_also_converges_to_final_value() {
        let (c, out) = rc_circuit();
        let cfg = TransientConfig::new(Time::from_nanoseconds(8.0), Time::from_picoseconds(4.0))
            .with_integration(Integration::BackwardEuler);
        let trace = c.transient(&cfg).expect("RC transient should run");
        assert!(approx_eq(trace.last_voltage(out).as_volts(), 1.0, 1e-3));
    }

    #[test]
    fn initial_condition_holds_on_floating_cap() {
        // A capacitor to ground with no DC path keeps its seeded voltage.
        let mut c = Circuit::new();
        let store = c.node("store");
        c.capacitor(
            "C1",
            store,
            Circuit::GROUND,
            Capacitance::from_femtofarads(10.0),
        );
        let cfg = TransientConfig::new(Time::from_nanoseconds(1.0), Time::from_picoseconds(10.0))
            .with_initial_voltage(store, Voltage::from_volts(0.5));
        let trace = c.transient(&cfg).expect("floating cap should simulate");
        // GMIN discharge over 1 ns is negligible for 10 fF.
        assert!(approx_eq(trace.last_voltage(store).as_volts(), 0.5, 1e-6));
    }

    #[test]
    fn inverter_switches_dynamically() {
        let vdd = Voltage::from_volts(0.7);
        let w = Length::from_nanometers(100.0);
        let mut c = Circuit::new();
        let nvdd = c.node("vdd");
        let nin = c.node("in");
        let nout = c.node("out");
        c.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
        c.voltage_source(
            "VIN",
            nin,
            Circuit::GROUND,
            Waveform::step_at(
                vdd,
                Time::from_picoseconds(50.0),
                Time::from_picoseconds(10.0),
            ),
        );
        c.fet("MP", nout, nin, nvdd, si::pfet(SiVtFlavor::Rvt).sized(w));
        c.fet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            si::nfet(SiVtFlavor::Rvt).sized(w),
        );
        c.capacitor(
            "CL",
            nout,
            Circuit::GROUND,
            Capacitance::from_femtofarads(1.0),
        );
        let cfg = TransientConfig::new(Time::from_picoseconds(500.0), Time::from_picoseconds(0.25));
        let trace = c.transient(&cfg).expect("inverter transient should run");
        // Starts high (input low), ends low.
        assert!(
            trace
                .voltage_at(nout, Time::from_picoseconds(40.0))
                .as_volts()
                > 0.65
        );
        assert!(trace.last_voltage(nout).as_volts() < 0.05);
    }

    #[test]
    fn exact_multiple_stop_does_not_overshoot_a_step() {
        // 3 ns / 2 ps = 1500 exactly, but the f64 division can land at
        // 1500.0000000000002; the step count must still be 1500 (so the
        // trace holds 1501 points, t = 0 included).
        let (c, _) = rc_circuit();
        let cfg = TransientConfig::new(Time::from_nanoseconds(3.0), Time::from_picoseconds(2.0));
        let trace = c.transient(&cfg).expect("RC transient should run");
        assert_eq!(
            trace.len(),
            1501,
            "stop/h = 1500 exactly must run 1500 steps"
        );
        // A non-multiple stop still rounds up: 3.001 ns / 2 ps = 1500.5.
        let cfg = TransientConfig::new(Time::from_picoseconds(3001.0), Time::from_picoseconds(2.0));
        let trace = c.transient(&cfg).expect("RC transient should run");
        assert_eq!(trace.len(), 1502, "fractional stop/h still ceils");
    }

    #[test]
    fn tiny_fractional_final_step_still_ceils() {
        // stop/h = 1500.000001 is an intentional hair past 1500 steps —
        // far outside f64 division round-off — so it must ceil to 1501
        // steps, not get snapped down to 1500 by the exact-multiple snap.
        let (c, _) = rc_circuit();
        let cfg = TransientConfig::new(
            Time::from_picoseconds(3000.000002),
            Time::from_picoseconds(2.0),
        );
        let trace = c.transient(&cfg).expect("RC transient should run");
        assert_eq!(
            trace.len(),
            1502,
            "stop/h = 1500.000001 must run 1501 steps, not snap to 1500"
        );
    }

    #[test]
    fn invalid_axis_is_rejected() {
        let (c, _) = rc_circuit();
        let bad = TransientConfig::new(Time::zero(), Time::from_picoseconds(1.0));
        assert_eq!(c.transient(&bad), Err(SpiceError::InvalidTimeAxis));
    }

    #[test]
    fn iteration_budget_stops_the_transient_between_steps() {
        let (c, _) = rc_circuit();
        let cfg = TransientConfig::new(Time::from_nanoseconds(3.0), Time::from_picoseconds(2.0))
            .with_budget(SolverBudget::unlimited().with_max_newton_iterations(1));
        let err = c
            .transient(&cfg)
            .expect_err("a 1-iteration budget cannot run 1500 steps");
        match err {
            SpiceError::SolverBudgetExceeded {
                analysis,
                iterations,
                log,
            } => {
                assert_eq!(analysis, "transient");
                assert!(iterations >= 1, "the initial DC solve was counted");
                assert_eq!(log.total_attempts(), 0, "transients run no ladder");
            }
            other => panic!("expected SolverBudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn unlimited_budget_leaves_results_unchanged() {
        let (c, out) = rc_circuit();
        let plain = TransientConfig::new(Time::from_nanoseconds(1.0), Time::from_picoseconds(4.0));
        let budgeted = plain.clone().with_budget(SolverBudget::unlimited());
        let a = c.transient(&plain).expect("plain transient runs");
        let b = c.transient(&budgeted).expect("budgeted transient runs");
        assert_eq!(
            a.last_voltage(out).as_volts().to_bits(),
            b.last_voltage(out).as_volts().to_bits()
        );
    }
}
