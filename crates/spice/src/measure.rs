//! Waveform traces and timing/energy measurements.

use crate::circuit::{Circuit, Element, ElementId, NodeId};
use crate::waveform::Waveform;
use ppatc_units::{Charge, Energy, Time, Voltage};

/// Signal-edge selector for crossing searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// The signal crosses the level from below.
    Rising,
    /// The signal crosses the level from above.
    Falling,
    /// Either direction.
    Either,
}

/// The sampled result of a transient analysis.
///
/// Provides the measurements a characterisation flow needs: interpolated
/// node voltages, threshold-crossing times, delays between edges, and the
/// energy/charge delivered by each voltage source (how access energies are
/// extracted from the eDRAM netlists).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    times: Vec<f64>,
    /// Node voltages indexed `[node.0][sample]`; ground row stays zero.
    volts: Vec<Vec<f64>>,
    /// Branch currents indexed `[branch][sample]`.
    branch: Vec<Vec<f64>>,
    /// Voltage-source metadata for energy integration.
    sources: Vec<(ElementId, usize, Waveform)>,
}

impl Trace {
    pub(crate) fn new(circuit: &Circuit, capacity: usize) -> Self {
        let sources = circuit
            .elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Element::VSource { wave, branch, .. } => {
                    Some((ElementId(i), *branch, wave.clone()))
                }
                _ => None,
            })
            .collect();
        Self {
            times: Vec::with_capacity(capacity),
            volts: vec![Vec::with_capacity(capacity); circuit.node_count()],
            branch: vec![Vec::with_capacity(capacity); circuit.n_branches],
            sources,
        }
    }

    pub(crate) fn record(&mut self, circuit: &Circuit, t: f64, x: &[f64]) {
        self.times.push(t);
        self.volts[0].push(0.0);
        for node_idx in 1..circuit.node_count() {
            self.volts[node_idx].push(x[node_idx - 1]);
        }
        for b in 0..circuit.n_branches {
            self.branch[b].push(x[circuit.branch_index(b)]);
        }
    }

    /// Number of samples (time points).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sampled time axis, in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The raw samples of one node, in volts.
    pub fn samples(&self, node: NodeId) -> &[f64] {
        &self.volts[node.0]
    }

    /// Linearly interpolated voltage of `node` at time `t` (clamped to the
    /// simulated interval).
    pub fn voltage_at(&self, node: NodeId, t: Time) -> Voltage {
        let ts = t.as_seconds();
        let v = &self.volts[node.0];
        if self.times.is_empty() {
            return Voltage::zero();
        }
        if ts <= self.times[0] {
            return Voltage::from_volts(v[0]);
        }
        match self.times.windows(2).position(|w| ts <= w[1]) {
            Some(k) => {
                let (t0, t1) = (self.times[k], self.times[k + 1]);
                let frac = if t1 > t0 { (ts - t0) / (t1 - t0) } else { 1.0 };
                Voltage::from_volts(v[k] + (v[k + 1] - v[k]) * frac)
            }
            None => Voltage::from_volts(v.last().copied().unwrap_or(0.0)),
        }
    }

    /// Voltage of `node` at the final sample.
    pub fn last_voltage(&self, node: NodeId) -> Voltage {
        Voltage::from_volts(*self.volts[node.0].last().unwrap_or(&0.0))
    }

    /// Extreme voltages of `node` over the whole trace.
    pub fn voltage_range(&self, node: NodeId) -> (Voltage, Voltage) {
        let v = &self.volts[node.0];
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (Voltage::from_volts(lo), Voltage::from_volts(hi))
    }

    /// First time after `after` at which `node` crosses `level` with the
    /// requested [`Edge`], linearly interpolated. `None` if it never does.
    pub fn crossing(&self, node: NodeId, level: Voltage, edge: Edge, after: Time) -> Option<Time> {
        let lvl = level.as_volts();
        let start = after.as_seconds();
        let v = &self.volts[node.0];
        for k in 0..self.times.len().saturating_sub(1) {
            let (t0, t1) = (self.times[k], self.times[k + 1]);
            if t1 < start {
                continue;
            }
            let (v0, v1) = (v[k], v[k + 1]);
            let rising = v0 < lvl && v1 >= lvl;
            let falling = v0 > lvl && v1 <= lvl;
            let hit = match edge {
                Edge::Rising => rising,
                Edge::Falling => falling,
                Edge::Either => rising || falling,
            };
            if hit {
                let frac = if (v1 - v0).abs() > 0.0 {
                    (lvl - v0) / (v1 - v0)
                } else {
                    0.0
                };
                let t_cross = t0 + (t1 - t0) * frac;
                if t_cross >= start {
                    return Some(Time::from_seconds(t_cross));
                }
            }
        }
        None
    }

    /// Delay from `from` crossing `from_level` to the *next* `to` crossing
    /// `to_level`, or `None` if either crossing is missing.
    pub fn delay(
        &self,
        from: NodeId,
        from_level: Voltage,
        from_edge: Edge,
        to: NodeId,
        to_level: Voltage,
        to_edge: Edge,
    ) -> Option<Time> {
        let t0 = self.crossing(from, from_level, from_edge, Time::zero())?;
        let t1 = self.crossing(to, to_level, to_edge, t0)?;
        Some(t1 - t0)
    }

    /// Energy delivered *by* the voltage source `source` over the trace
    /// (trapezoidal integral of `−v·i_branch`).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a voltage source of this circuit.
    pub fn source_energy(&self, source: ElementId) -> Energy {
        let (branch, wave) = self.source_branch(source);
        let mut e = 0.0;
        for k in 0..self.times.len().saturating_sub(1) {
            let dt = self.times[k + 1] - self.times[k];
            let p0 = -wave.at(self.times[k]) * self.branch[branch][k];
            let p1 = -wave.at(self.times[k + 1]) * self.branch[branch][k + 1];
            e += 0.5 * (p0 + p1) * dt;
        }
        Energy::from_joules(e)
    }

    /// Charge delivered *by* the voltage source `source` over the trace.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a voltage source of this circuit.
    pub fn source_charge(&self, source: ElementId) -> Charge {
        let (branch, _) = self.source_branch(source);
        let mut q = 0.0;
        for k in 0..self.times.len().saturating_sub(1) {
            let dt = self.times[k + 1] - self.times[k];
            q += -0.5 * (self.branch[branch][k] + self.branch[branch][k + 1]) * dt;
        }
        Charge::from_coulombs(q)
    }

    /// # Panics
    ///
    /// If `source` does not name a voltage source in this result.
    fn source_branch(&self, source: ElementId) -> (usize, &Waveform) {
        self.sources
            .iter()
            .find(|(id, _, _)| *id == source)
            .map(|(_, b, w)| (*b, w))
            .unwrap_or_else(|| panic!("element {source:?} is not a voltage source"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, TransientConfig};
    use ppatc_units::{approx_eq, Capacitance, Resistance};

    fn charged_rc() -> (Circuit, NodeId, ElementId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        let src = c.voltage_source(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(Voltage::from_volts(1.0)),
        );
        c.resistor("R1", vin, vout, Resistance::from_kilo_ohms(1.0));
        c.capacitor(
            "C1",
            vout,
            Circuit::GROUND,
            Capacitance::from_femtofarads(100.0),
        );
        (c, vout, src)
    }

    #[test]
    fn crossing_and_delay() {
        let (c, out, _) = charged_rc();
        let cfg = TransientConfig::new(Time::from_nanoseconds(1.0), Time::from_picoseconds(1.0));
        let trace = c.transient(&cfg).expect("transient should run");
        let t50 = trace
            .crossing(out, Voltage::from_volts(0.5), Edge::Rising, Time::zero())
            .expect("should cross 50%");
        // RC = 100 ps; 50% crossing at 0.693·RC ≈ 69.3 ps.
        assert!(approx_eq(t50.as_picoseconds(), 69.3, 0.05), "t50 {t50:?}");
        // No falling crossing ever happens.
        assert!(trace
            .crossing(out, Voltage::from_volts(0.5), Edge::Falling, Time::zero())
            .is_none());
    }

    #[test]
    fn source_energy_charging_a_cap() {
        let (c, _, src) = charged_rc();
        // Fully charge: >> 5 tau.
        let cfg = TransientConfig::new(Time::from_nanoseconds(2.0), Time::from_picoseconds(1.0));
        let trace = c.transient(&cfg).expect("transient should run");
        // An ideal source charging C to V through R delivers C·V² total
        // (half stored, half burned in R): 100 fF × 1 V² = 100 fJ.
        let e = trace.source_energy(src);
        assert!(approx_eq(e.as_femtojoules(), 100.0, 0.02), "E = {e:?}");
        let q = trace.source_charge(src);
        assert!(approx_eq(q.as_femtocoulombs(), 100.0, 0.02), "Q = {q:?}");
    }

    #[test]
    fn voltage_range_and_interp() {
        let (c, out, _) = charged_rc();
        let cfg = TransientConfig::new(Time::from_nanoseconds(1.0), Time::from_picoseconds(1.0));
        let trace = c.transient(&cfg).expect("transient should run");
        let (lo, hi) = trace.voltage_range(out);
        assert!(lo.as_volts() >= -1e-9);
        assert!(hi.as_volts() <= 1.0 + 1e-9);
        // Interpolation clamps beyond the simulated window.
        let v_end = trace.voltage_at(out, Time::from_nanoseconds(99.0));
        assert!(approx_eq(
            v_end.as_volts(),
            trace.last_voltage(out).as_volts(),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "not a voltage source")]
    fn energy_of_non_source_panics() {
        let (c, _, _) = charged_rc();
        let cfg = TransientConfig::new(Time::from_nanoseconds(0.1), Time::from_picoseconds(1.0));
        let trace = c.transient(&cfg).expect("transient should run");
        let _ = trace.source_energy(ElementId(1)); // R1
    }
}
