//! Simulator error type.

/// Error returned by circuit analyses.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The MNA matrix was singular — usually a floating node or a loop of
    /// ideal voltage sources.
    SingularMatrix {
        /// Index of the pivot row where elimination failed.
        row: usize,
    },
    /// Newton iteration failed to converge within the iteration limit.
    NoConvergence {
        /// Analysis that failed (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Simulated time at which convergence failed (seconds; 0 for DC).
        time: f64,
        /// Worst node-voltage update in the final iteration, in volts.
        residual: f64,
    },
    /// The MNA matrix was numerically ill-conditioned: elimination met a
    /// pivot vanishingly small relative to the matrix's magnitude, or the
    /// computed solution failed the post-solve residual check. The
    /// "solution" would be finite garbage, so it is rejected instead.
    IllConditioned {
        /// Pivot row where conditioning collapsed (or the worst-residual
        /// row when the post-solve check tripped).
        row: usize,
        /// Offending ratio: pivot magnitude over the matrix max-magnitude,
        /// or residual over the solution scale. Dimensionless; smaller is
        /// worse for pivots, larger is worse for residuals.
        ratio: f64,
    },
    /// A transient was requested with a non-positive step or stop time.
    InvalidTimeAxis,
    /// The analysis exceeded its [`SolverBudget`](crate::SolverBudget)
    /// (wall-clock deadline or total Newton-iteration bound) before
    /// converging.
    SolverBudgetExceeded {
        /// Analysis that was cut short (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Newton iterations spent before the budget tripped.
        iterations: usize,
        /// Recovery-ladder attempts made before the budget tripped (always
        /// empty for transient analyses, which run no ladder).
        log: crate::dc::RecoveryLog,
    },
}

impl core::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpiceError::SingularMatrix { row } => {
                write!(f, "singular MNA matrix at pivot {row} (floating node or voltage-source loop?)")
            }
            SpiceError::NoConvergence {
                analysis,
                time,
                residual,
            } => write!(
                f,
                "{analysis} analysis failed to converge at t = {time:.3e} s (residual {residual:.3e} V)"
            ),
            SpiceError::IllConditioned { row, ratio } => {
                write!(
                    f,
                    "ill-conditioned MNA matrix at row {row} (ratio {ratio:.3e}); \
                     the computed voltages would be numerically meaningless"
                )
            }
            SpiceError::InvalidTimeAxis => {
                write!(f, "transient stop time and step must both be positive")
            }
            SpiceError::SolverBudgetExceeded {
                analysis,
                iterations,
                log,
            } => {
                write!(
                    f,
                    "{analysis} analysis exceeded its solver budget after {iterations} Newton iteration(s)"
                )?;
                if log.total_attempts() > 0 {
                    write!(f, " ({log})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpiceError::NoConvergence {
            analysis: "dc",
            time: 0.0,
            residual: 0.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("dc") && msg.contains("converge"));
    }

    #[test]
    fn ill_conditioned_display_reports_row_and_ratio() {
        let e = SpiceError::IllConditioned {
            row: 3,
            ratio: 1e-17,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("ill-conditioned") && msg.contains('3'),
            "{msg}"
        );
    }

    #[test]
    fn budget_display_reports_analysis_and_iterations() {
        let e = SpiceError::SolverBudgetExceeded {
            analysis: "transient",
            iterations: 17,
            log: crate::dc::RecoveryLog::default(),
        };
        let msg = e.to_string();
        assert!(msg.contains("transient") && msg.contains("17"), "{msg}");
    }
}
