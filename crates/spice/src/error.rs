//! Simulator error type.

/// Error returned by circuit analyses.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The MNA matrix was singular — usually a floating node or a loop of
    /// ideal voltage sources.
    SingularMatrix {
        /// Index of the pivot row where elimination failed.
        row: usize,
    },
    /// Newton iteration failed to converge within the iteration limit.
    NoConvergence {
        /// Analysis that failed (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Simulated time at which convergence failed (seconds; 0 for DC).
        time: f64,
        /// Worst node-voltage update in the final iteration, in volts.
        residual: f64,
    },
    /// A transient was requested with a non-positive step or stop time.
    InvalidTimeAxis,
}

impl core::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpiceError::SingularMatrix { row } => {
                write!(f, "singular MNA matrix at pivot {row} (floating node or voltage-source loop?)")
            }
            SpiceError::NoConvergence {
                analysis,
                time,
                residual,
            } => write!(
                f,
                "{analysis} analysis failed to converge at t = {time:.3e} s (residual {residual:.3e} V)"
            ),
            SpiceError::InvalidTimeAxis => {
                write!(f, "transient stop time and step must both be positive")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpiceError::NoConvergence {
            analysis: "dc",
            time: 0.0,
            residual: 0.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("dc") && msg.contains("converge"));
    }
}
