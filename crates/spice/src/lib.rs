//! A small modified-nodal-analysis (MNA) circuit simulator.
//!
//! The PPAtC paper validates eDRAM timing with "SPICE simulations of eDRAM
//! circuit netlists (including wire parasitics)". This crate is that
//! substrate: a compact, dependency-free circuit solver sufficient for the
//! bit-cell and peripheral-circuit transient analyses the carbon models
//! consume.
//!
//! Supported elements: resistors, capacitors, independent voltage and
//! current sources (DC / pulse / piece-wise-linear waveforms), and nonlinear
//! FETs through the [`ppatc_device`] virtual-source model (quasi-static:
//! device capacitances are added to the netlist as explicit capacitors,
//! which is how the eDRAM macro model builds its netlists).
//!
//! Analyses:
//! - [`Circuit::dc_operating_point`] — damped Newton–Raphson with GMIN
//!   regularisation.
//! - [`Circuit::transient`] — fixed-step backward-Euler / trapezoidal
//!   integration with a Newton solve per step, producing a [`Trace`] with
//!   delay/slew/charge/energy measurement helpers.
//!
//! # Example: RC low-pass step response
//!
//! ```
//! use ppatc_spice::{Circuit, TransientConfig, Waveform};
//! use ppatc_units::{Capacitance, Resistance, Time, Voltage};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.voltage_source("V1", vin, Circuit::GROUND, Waveform::step(Voltage::from_volts(1.0)));
//! ckt.resistor("R1", vin, vout, Resistance::from_kilo_ohms(1.0));
//! ckt.capacitor("C1", vout, Circuit::GROUND, Capacitance::from_femtofarads(1000.0));
//!
//! // tau = 1 ns; simulate 5 tau.
//! let cfg = TransientConfig::new(Time::from_nanoseconds(5.0), Time::from_picoseconds(5.0));
//! let trace = ckt.transient(&cfg)?;
//! let v_end = trace.last_voltage(vout);
//! assert!((v_end.as_volts() - 1.0).abs() < 0.01);
//! # Ok::<(), ppatc_spice::SpiceError>(())
//! ```

#![warn(missing_docs)]

mod budget;
mod circuit;
mod dc;
mod error;
mod measure;
mod solver;
mod sweep;
mod transient;
mod waveform;

pub use budget::SolverBudget;
pub use circuit::{Circuit, ElementId, NodeId};
pub use dc::{recovery_counters, DcOptions, RecoveryAttempt, RecoveryLog, RecoveryStage};
pub use error::SpiceError;
pub use measure::{Edge, Trace};
pub use sweep::SweepResult;
pub use transient::{Integration, TransientConfig};
pub use waveform::Waveform;
