//! Dense linear solver for the MNA system.
//!
//! Circuits in this workspace are bit cells and small peripheral blocks —
//! tens of unknowns — so dense Gaussian elimination with partial pivoting is
//! simpler and faster than a sparse factorisation would be at this scale.
//!
//! The stamped matrix `a` and right-hand side `b` are never mutated by
//! [`LinearSystem::solve`]: elimination runs on internal workspace copies,
//! so a failed solve leaves the system exactly as stamped and a
//! recovery-ladder retry can re-stamp (or even re-solve) safely. Solutions
//! are vetted twice — pivots are compared against the matrix's own
//! magnitude rather than an absolute floor, and the computed `x` is checked
//! against the pristine `A·x = b` residual — so a nearly-singular system
//! surfaces [`SpiceError::IllConditioned`] instead of finite garbage.

use crate::error::SpiceError;

/// Pivots smaller than this fraction of the matrix's largest entry mean the
/// elimination is dividing by numerical noise: with f64's ~1e-16 relative
/// rounding, a pivot 14 orders below the matrix scale carries no signal.
/// Exactly-zero pivots (structurally singular systems) keep reporting
/// [`SpiceError::SingularMatrix`].
const PIVOT_RTOL: f64 = 1e-14;

/// Post-solve bound on `‖b − A·x‖∞` relative to the solution scale
/// `max(‖b‖∞, ‖A‖max·‖x‖∞)`. Partial-pivoting LU is backward stable, so a
/// genuine solve of a well-conditioned system lands many orders below this;
/// only ill-conditioned garbage (or a NaN that leaked through) trips it.
const RESIDUAL_RTOL: f64 = 1e-6;

/// A dense square matrix stored row-major, paired with a right-hand side,
/// representing `A·x = b`.
#[derive(Clone, Debug)]
pub(crate) struct LinearSystem {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    /// Elimination workspace: `a` is copied here each solve so the stamped
    /// matrix survives the factorisation untouched.
    lu: Vec<f64>,
    /// Elimination workspace for `b`.
    rhs: Vec<f64>,
    /// Solution vector, reused across solves (no per-call allocation).
    x: Vec<f64>,
}

impl LinearSystem {
    /// Creates an all-zero `n × n` system.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
            b: vec![0.0; n],
            lu: vec![0.0; n * n],
            rhs: vec![0.0; n],
            x: vec![0.0; n],
        }
    }

    /// Resets all stamped entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.a.fill(0.0);
        self.b.fill(0.0);
    }

    /// Adds `v` to `A[row, col]`.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        self.a[row * self.n + col] += v;
    }

    /// Adds `v` to `b[row]`.
    #[inline]
    pub fn add_rhs(&mut self, row: usize, v: f64) {
        self.b[row] += v;
    }

    /// Solves `A·x = b`, returning the solution slice. The stamped `a`/`b`
    /// are left untouched (elimination works on internal copies), so the
    /// caller may retry — with different GMIN or source scaling — after any
    /// error without re-building the system from scratch.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] when a pivot column is exactly zero
    /// (floating node, voltage-source loop), and
    /// [`SpiceError::IllConditioned`] when the best pivot is vanishingly
    /// small relative to the matrix's magnitude or the computed solution
    /// fails the `A·x ≈ b` residual check.
    pub fn solve(&mut self) -> Result<&[f64], SpiceError> {
        let n = self.n;
        // Copy the stamped system into the elimination workspace, tracking
        // the largest matrix entry for the relative pivot threshold.
        let mut a_max = 0.0_f64;
        for (dst, &src) in self.lu.iter_mut().zip(self.a.iter()) {
            *dst = src;
            let mag = src.abs();
            if mag > a_max {
                a_max = mag;
            }
        }
        self.rhs.copy_from_slice(&self.b);
        let a = &mut self.lu;
        let b = &mut self.rhs;

        for k in 0..n {
            // Partial pivoting.
            let mut pivot_row = k;
            let mut pivot_mag = a[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = a[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag <= 0.0 {
                return Err(SpiceError::SingularMatrix { row: k });
            }
            // `a_max >= pivot_mag > 0` here, so the guard never changes
            // which systems are rejected — it only makes the positivity of
            // the divisor explicit.
            if a_max > 0.0 && pivot_mag < a_max * PIVOT_RTOL {
                return Err(SpiceError::IllConditioned {
                    row: k,
                    ratio: pivot_mag / a_max,
                });
            }
            if pivot_row != k {
                for c in 0..n {
                    a.swap(k * n + c, pivot_row * n + c);
                }
                b.swap(k, pivot_row);
            }

            let pivot = a[k * n + k];
            for r in (k + 1)..n {
                let factor = a[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    a[r * n + c] -= factor * a[k * n + c];
                }
                b[r] -= factor * b[k];
            }
        }

        // Back substitution into the reused solution vector.
        for k in (0..n).rev() {
            let mut acc = b[k];
            for c in (k + 1)..n {
                acc -= a[k * n + c] * self.x[c];
            }
            self.x[k] = acc / a[k * n + k];
        }

        // Residual check against the *pristine* inputs: `r = b − A·x`. A
        // NaN residual is "sticky" in the running maximum — once a row
        // produces one, a later finite row must not mask it.
        let mut r_inf = 0.0_f64;
        let mut worst_row = 0;
        let mut b_inf = 0.0_f64;
        let mut x_inf = 0.0_f64;
        for i in 0..n {
            let mut acc = self.b[i];
            let row = &self.a[i * n..(i + 1) * n];
            for (c, &a_ic) in row.iter().enumerate() {
                acc -= a_ic * self.x[c];
            }
            let r_mag = acc.abs();
            if r_mag.is_nan() || (r_mag > r_inf && !r_inf.is_nan()) {
                r_inf = r_mag;
                worst_row = i;
            }
            let b_mag = self.b[i].abs();
            if b_mag > b_inf {
                b_inf = b_mag;
            }
            let x_mag = self.x[i].abs();
            if x_mag.is_nan() || (x_mag > x_inf && !x_inf.is_nan()) {
                x_inf = x_mag;
            }
        }
        let scale = b_inf.max(a_max * x_inf);
        if r_inf.is_nan() || r_inf > RESIDUAL_RTOL * scale {
            // A zero scale only reaches here with a non-finite residual
            // (an all-zero system has an exactly-zero residual), so the
            // honest ratio for that degenerate case is infinite.
            let ratio = if scale > 0.0 {
                r_inf / scale
            } else {
                f64::INFINITY
            };
            return Err(SpiceError::IllConditioned {
                row: worst_row,
                ratio,
            });
        }
        Ok(&self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;
    use ppatc_units::rng::SplitMix64;

    #[test]
    fn solves_identity() {
        let mut sys = LinearSystem::new(3);
        for i in 0..3 {
            sys.add(i, i, 1.0);
            sys.add_rhs(i, (i + 1) as f64);
        }
        let x = sys.solve().expect("identity should solve");
        assert_eq!(x, &[1.0, 2.0, 3.0][..]);
    }

    #[test]
    fn solves_with_pivoting() {
        // Requires a row swap: leading zero pivot.
        let mut sys = LinearSystem::new(2);
        sys.add(0, 1, 2.0); // [0 2; 3 1] x = [4; 5]
        sys.add(1, 0, 3.0);
        sys.add(1, 1, 1.0);
        sys.add_rhs(0, 4.0);
        sys.add_rhs(1, 5.0);
        let x = sys.solve().expect("pivoted system should solve");
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 2.0, 1e-12));
    }

    #[test]
    fn reports_singular() {
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 2.0);
        sys.add(1, 1, 2.0);
        sys.add_rhs(0, 1.0);
        assert!(matches!(
            sys.solve(),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn nearly_singular_is_a_typed_error_not_garbage() {
        // Rows differ by 1e-15 — no pivot is exactly zero, so the old
        // absolute 1e-300 threshold accepted this and returned voltages
        // that were pure cancellation noise.
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 1.0 + 1e-15);
        sys.add_rhs(0, 1.0);
        sys.add_rhs(1, 2.0);
        match sys.solve() {
            Err(SpiceError::IllConditioned { ratio, .. }) => {
                assert!(ratio < PIVOT_RTOL, "pivot ratio should be tiny: {ratio:e}");
            }
            other => panic!("expected IllConditioned, got {other:?}"),
        }
    }

    #[test]
    fn wildly_mismatched_scales_are_rejected() {
        // A pico-ohm "wire" next to a kilo-ohm load: eliminating the huge
        // conductance leaves the load pivot buried below the matrix's own
        // rounding noise (relative pivot ~1e-15).
        let g_wire = 1e12;
        let g_load = 1e-3;
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, g_wire);
        sys.add(0, 1, -g_wire);
        sys.add(1, 0, -g_wire);
        sys.add(1, 1, g_wire + g_load);
        sys.add_rhs(0, 1.0);
        assert!(matches!(
            sys.solve(),
            Err(SpiceError::IllConditioned { .. })
        ));
    }

    #[test]
    fn failed_solve_leaves_the_stamped_system_intact() {
        // A singular matrix used to early-return mid-elimination with `a`
        // and `b` half-mutated; the stamped entries must now survive so a
        // ladder retry can re-stamp (or inspect) the original system.
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 2.0);
        sys.add(1, 1, 2.0);
        sys.add_rhs(0, 1.0);
        sys.add_rhs(1, 3.0);
        let before_a = sys.a.clone();
        let before_b = sys.b.clone();
        assert!(sys.solve().is_err());
        assert_eq!(sys.a, before_a, "matrix must not be half-eliminated");
        assert_eq!(sys.b, before_b, "rhs must not be half-eliminated");
        // The same holds after a successful solve.
        sys.clear();
        sys.add(0, 0, 2.0);
        sys.add(1, 1, 4.0);
        sys.add_rhs(0, 1.0);
        sys.add_rhs(1, 2.0);
        let before_a = sys.a.clone();
        let before_b = sys.b.clone();
        assert!(sys.solve().is_ok());
        assert_eq!(sys.a, before_a);
        assert_eq!(sys.b, before_b);
    }

    #[test]
    fn random_well_conditioned_systems_reconstruct_their_rhs() {
        // Property: for diagonally dominant random systems, the solution
        // must reproduce `b` through the *original* `A` within a tight
        // residual bound (the solver's own check uses a much looser one).
        for trial in 0..200_u64 {
            let rng = &mut SplitMix64::stream(0x50_1E_CE, trial);
            let n = 1 + (rng.next_f64() * 8.0) as usize;
            let mut sys = LinearSystem::new(n);
            let mut dense = vec![0.0; n * n];
            let mut rhs = vec![0.0; n];
            for r in 0..n {
                let mut off_diag = 0.0;
                for c in 0..n {
                    if c != r {
                        let v = 2.0 * rng.next_f64() - 1.0;
                        dense[r * n + c] = v;
                        off_diag += v.abs();
                    }
                }
                // Strict diagonal dominance keeps the system well away
                // from singularity.
                dense[r * n + r] = off_diag + 1.0 + rng.next_f64();
                rhs[r] = 10.0 * (2.0 * rng.next_f64() - 1.0);
                for c in 0..n {
                    sys.add(r, c, dense[r * n + c]);
                }
                sys.add_rhs(r, rhs[r]);
            }
            let x = sys.solve().expect("dominant system should solve");
            for r in 0..n {
                let mut acc = 0.0;
                for c in 0..n {
                    acc += dense[r * n + c] * x[c];
                }
                assert!(
                    (acc - rhs[r]).abs() <= 1e-9 * rhs[r].abs().max(1.0),
                    "trial {trial} row {r}: A·x = {acc}, b = {}",
                    rhs[r]
                );
            }
        }
    }

    #[test]
    fn clear_resets_but_keeps_size() {
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, 5.0);
        sys.add_rhs(0, 5.0);
        sys.clear();
        sys.add(0, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.add_rhs(0, 7.0);
        let x = sys.solve().expect("cleared system should solve");
        assert!(approx_eq(x[0], 7.0, 1e-12));
        assert!(approx_eq(x[1], 0.0, 1e-12));
    }
}
