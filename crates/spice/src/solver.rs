//! Dense linear solver for the MNA system.
//!
//! Circuits in this workspace are bit cells and small peripheral blocks —
//! tens of unknowns — so dense Gaussian elimination with partial pivoting is
//! simpler and faster than a sparse factorisation would be at this scale.

use crate::error::SpiceError;

/// A dense square matrix stored row-major, paired with a right-hand side,
/// representing `A·x = b`.
#[derive(Clone, Debug)]
pub(crate) struct LinearSystem {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl LinearSystem {
    /// Creates an all-zero `n × n` system.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
            b: vec![0.0; n],
        }
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.a.fill(0.0);
        self.b.fill(0.0);
    }

    /// Adds `v` to `A[row, col]`.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        self.a[row * self.n + col] += v;
    }

    /// Adds `v` to `b[row]`.
    #[inline]
    pub fn add_rhs(&mut self, row: usize, v: f64) {
        self.b[row] += v;
    }

    /// Solves the system in place, returning `x`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if no usable pivot exists.
    pub fn solve(&mut self) -> Result<Vec<f64>, SpiceError> {
        let n = self.n;
        let a = &mut self.a;
        let b = &mut self.b;

        for k in 0..n {
            // Partial pivoting.
            let mut pivot_row = k;
            let mut pivot_mag = a[k * n + k].abs();
            for r in (k + 1)..n {
                let mag = a[r * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(SpiceError::SingularMatrix { row: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    a.swap(k * n + c, pivot_row * n + c);
                }
                b.swap(k, pivot_row);
            }

            let pivot = a[k * n + k];
            for r in (k + 1)..n {
                let factor = a[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    a[r * n + c] -= factor * a[k * n + c];
                }
                b[r] -= factor * b[k];
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = b[k];
            for c in (k + 1)..n {
                acc -= a[k * n + c] * x[c];
            }
            x[k] = acc / a[k * n + k];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn solves_identity() {
        let mut sys = LinearSystem::new(3);
        for i in 0..3 {
            sys.add(i, i, 1.0);
            sys.add_rhs(i, (i + 1) as f64);
        }
        let x = sys.solve().expect("identity should solve");
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // Requires a row swap: leading zero pivot.
        let mut sys = LinearSystem::new(2);
        sys.add(0, 1, 2.0); // [0 2; 3 1] x = [4; 5]
        sys.add(1, 0, 3.0);
        sys.add(1, 1, 1.0);
        sys.add_rhs(0, 4.0);
        sys.add_rhs(1, 5.0);
        let x = sys.solve().expect("pivoted system should solve");
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 2.0, 1e-12));
    }

    #[test]
    fn reports_singular() {
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 2.0);
        sys.add(1, 1, 2.0);
        sys.add_rhs(0, 1.0);
        assert!(matches!(
            sys.solve(),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn clear_resets_but_keeps_size() {
        let mut sys = LinearSystem::new(2);
        sys.add(0, 0, 5.0);
        sys.add_rhs(0, 5.0);
        sys.clear();
        sys.add(0, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.add_rhs(0, 7.0);
        let x = sys.solve().expect("cleared system should solve");
        assert!(approx_eq(x[0], 7.0, 1e-12));
        assert!(approx_eq(x[1], 0.0, 1e-12));
    }
}
