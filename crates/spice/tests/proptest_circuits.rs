//! Property tests of the circuit solver against closed-form analysis,
//! driven by the deterministic in-repo PRNG.

use ppatc_spice::{Circuit, TransientConfig, Waveform};
use ppatc_units::rng::SplitMix64;
use ppatc_units::{approx_eq, Capacitance, Resistance, Time, Voltage};

/// A random resistive ladder's DC node voltages satisfy the analytic
/// series-divider formula.
#[test]
fn resistor_ladder_matches_divider_formula() {
    let mut rng = SplitMix64::new(0x5B1C_E001);
    for case in 0..64 {
        let n = 2 + rng.next_below(6) as usize;
        let r_kohms: Vec<f64> = (0..n).map(|_| rng.uniform(0.1, 100.0)).collect();
        let v_in = rng.uniform(0.1, 5.0);

        let mut ckt = Circuit::new();
        let top = ckt.node("n0");
        ckt.voltage_source(
            "V",
            top,
            Circuit::GROUND,
            Waveform::dc(Voltage::from_volts(v_in)),
        );
        let mut prev = top;
        let mut nodes = Vec::new();
        for (i, &r) in r_kohms.iter().enumerate() {
            let next = if i + 1 == r_kohms.len() {
                Circuit::GROUND
            } else {
                ckt.node(&format!("n{}", i + 1))
            };
            ckt.resistor(&format!("R{i}"), prev, next, Resistance::from_kilo_ohms(r));
            nodes.push(next);
            prev = next;
        }
        let x = ckt.dc_operating_point().expect("ladder solves");
        let total: f64 = r_kohms.iter().sum();
        let mut below: f64 = total;
        for (i, &node) in nodes.iter().enumerate() {
            below -= r_kohms[i];
            if node == Circuit::GROUND {
                continue; // the bottom of the ladder is the reference
            }
            let expected = v_in * below / total;
            let v = ckt.dc_voltage(node).expect("solves").as_volts();
            // GMIN introduces a tiny systematic error; 0.1% is plenty.
            let _ = &x;
            assert!(
                approx_eq(v, expected, 1e-3),
                "case {case}, node {i}: {v} vs {expected}"
            );
        }
    }
}

/// Any RC low-pass settles to the source voltage, and its 63% point
/// lands near the analytic time constant.
#[test]
fn rc_settling_matches_tau() {
    let mut rng = SplitMix64::new(0x5B1C_E002);
    for case in 0..64 {
        let r_kohm = rng.uniform(0.5, 50.0);
        let c_ff = rng.uniform(10.0, 2000.0);
        let v = rng.uniform(0.2, 2.0);

        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(
            "V",
            vin,
            Circuit::GROUND,
            Waveform::step(Voltage::from_volts(v)),
        );
        ckt.resistor("R", vin, out, Resistance::from_kilo_ohms(r_kohm));
        ckt.capacitor(
            "C",
            out,
            Circuit::GROUND,
            Capacitance::from_femtofarads(c_ff),
        );
        let tau_s = r_kohm * 1e3 * c_ff * 1e-15;
        let cfg = TransientConfig::new(
            Time::from_seconds(8.0 * tau_s),
            Time::from_seconds(tau_s / 200.0),
        );
        let trace = ckt.transient(&cfg).expect("rc runs");
        assert!(
            approx_eq(trace.last_voltage(out).as_volts(), v, 2e-3),
            "case {case}"
        );
        let t63 = trace
            .crossing(
                out,
                Voltage::from_volts(v * 0.632),
                ppatc_spice::Edge::Rising,
                Time::zero(),
            )
            .expect("63% crossing exists");
        assert!(
            approx_eq(t63.as_seconds(), tau_s, 0.03),
            "case {case}: tau {} vs {tau_s}",
            t63.as_seconds()
        );
    }
}

/// Charge conservation: the charge delivered by the source equals C·ΔV
/// on the load within integration error.
#[test]
fn source_charge_equals_cv() {
    let mut rng = SplitMix64::new(0x5B1C_E003);
    for case in 0..64 {
        let c_ff = rng.uniform(10.0, 1000.0);
        let v = rng.uniform(0.2, 2.0);

        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let src = ckt.voltage_source(
            "V",
            vin,
            Circuit::GROUND,
            Waveform::step(Voltage::from_volts(v)),
        );
        ckt.resistor("R", vin, out, Resistance::from_kilo_ohms(1.0));
        ckt.capacitor(
            "C",
            out,
            Circuit::GROUND,
            Capacitance::from_femtofarads(c_ff),
        );
        let tau_s = 1e3 * c_ff * 1e-15;
        let cfg = TransientConfig::new(
            Time::from_seconds(10.0 * tau_s),
            Time::from_seconds(tau_s / 100.0),
        );
        let trace = ckt.transient(&cfg).expect("rc runs");
        let q = trace.source_charge(src).as_femtocoulombs();
        assert!(
            approx_eq(q, c_ff * v, 0.02),
            "case {case}: Q {q} vs {}",
            c_ff * v
        );
    }
}
