//! Property tests of the circuit solver against closed-form analysis.

use ppatc_spice::{Circuit, TransientConfig, Waveform};
use ppatc_units::{approx_eq, Capacitance, Resistance, Time, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A random resistive ladder's DC node voltages satisfy the analytic
    /// series-divider formula.
    #[test]
    fn resistor_ladder_matches_divider_formula(
        r_kohms in prop::collection::vec(0.1..100.0f64, 2..8),
        v_in in 0.1..5.0f64,
    ) {
        let mut ckt = Circuit::new();
        let top = ckt.node("n0");
        ckt.voltage_source("V", top, Circuit::GROUND, Waveform::dc(Voltage::from_volts(v_in)));
        let mut prev = top;
        let mut nodes = Vec::new();
        for (i, &r) in r_kohms.iter().enumerate() {
            let next = if i + 1 == r_kohms.len() {
                Circuit::GROUND
            } else {
                ckt.node(&format!("n{}", i + 1))
            };
            ckt.resistor(&format!("R{i}"), prev, next, Resistance::from_kilo_ohms(r));
            nodes.push(next);
            prev = next;
        }
        let x = ckt.dc_operating_point().expect("ladder solves");
        let total: f64 = r_kohms.iter().sum();
        let mut below: f64 = total;
        for (i, &node) in nodes.iter().enumerate() {
            below -= r_kohms[i];
            if node == Circuit::GROUND {
                continue; // the bottom of the ladder is the reference
            }
            let expected = v_in * below / total;
            let v = ckt.dc_voltage(node).expect("solves").as_volts();
            // GMIN introduces a tiny systematic error; 0.1% is plenty.
            let _ = &x;
            prop_assert!(approx_eq(v, expected, 1e-3), "node {i}: {v} vs {expected}");
        }
    }

    /// Any RC low-pass settles to the source voltage, and its 63% point
    /// lands near the analytic time constant.
    #[test]
    fn rc_settling_matches_tau(
        r_kohm in 0.5..50.0f64,
        c_ff in 10.0..2000.0f64,
        v in 0.2..2.0f64,
    ) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("V", vin, Circuit::GROUND, Waveform::step(Voltage::from_volts(v)));
        ckt.resistor("R", vin, out, Resistance::from_kilo_ohms(r_kohm));
        ckt.capacitor("C", out, Circuit::GROUND, Capacitance::from_femtofarads(c_ff));
        let tau_s = r_kohm * 1e3 * c_ff * 1e-15;
        let cfg = TransientConfig::new(
            Time::from_seconds(8.0 * tau_s),
            Time::from_seconds(tau_s / 200.0),
        );
        let trace = ckt.transient(&cfg).expect("rc runs");
        prop_assert!(approx_eq(trace.last_voltage(out).as_volts(), v, 2e-3));
        let t63 = trace
            .crossing(out, Voltage::from_volts(v * 0.632), ppatc_spice::Edge::Rising, Time::zero())
            .expect("63% crossing exists");
        prop_assert!(approx_eq(t63.as_seconds(), tau_s, 0.03), "tau {} vs {}", t63.as_seconds(), tau_s);
    }

    /// Charge conservation: the charge delivered by the source equals C·ΔV
    /// on the load within integration error.
    #[test]
    fn source_charge_equals_cv(
        c_ff in 10.0..1000.0f64,
        v in 0.2..2.0f64,
    ) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let src = ckt.voltage_source("V", vin, Circuit::GROUND, Waveform::step(Voltage::from_volts(v)));
        ckt.resistor("R", vin, out, Resistance::from_kilo_ohms(1.0));
        ckt.capacitor("C", out, Circuit::GROUND, Capacitance::from_femtofarads(c_ff));
        let tau_s = 1e3 * c_ff * 1e-15;
        let cfg = TransientConfig::new(
            Time::from_seconds(10.0 * tau_s),
            Time::from_seconds(tau_s / 100.0),
        );
        let trace = ckt.transient(&cfg).expect("rc runs");
        let q = trace.source_charge(src).as_femtocoulombs();
        prop_assert!(approx_eq(q, c_ff * v, 0.02), "Q {q} vs {}", c_ff * v);
    }
}
