//! ASAP7-style 7 nm Si FinFET presets.
//!
//! The ASAP7 predictive PDK (Clark et al., MEJ 2016) offers standard cells
//! in four threshold-voltage flavors. Lower V_T buys drive current (speed)
//! at an exponential cost in sub-threshold leakage; the paper's Fig. 4
//! sweeps all four flavors when mapping the Cortex-M0 energy/frequency
//! trade-off.

use crate::vs::{Polarity, VirtualSourceModel};
use ppatc_units::Length;

/// Threshold-voltage flavor of an ASAP7-style standard cell or device.
///
/// Ordered from highest threshold (slowest, least leaky) to lowest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SiVtFlavor {
    /// High V_T: minimum leakage, lowest drive.
    Hvt,
    /// Regular V_T: the nominal corner.
    Rvt,
    /// Low V_T: faster, leakier.
    Lvt,
    /// Super-low V_T: maximum drive, maximum leakage.
    Slvt,
}

impl SiVtFlavor {
    /// All four flavors, ordered from `Hvt` to `Slvt`.
    pub const ALL: [SiVtFlavor; 4] = [
        SiVtFlavor::Hvt,
        SiVtFlavor::Rvt,
        SiVtFlavor::Lvt,
        SiVtFlavor::Slvt,
    ];

    /// Threshold-voltage magnitude for this flavor, in volts.
    pub fn v_t0(self) -> f64 {
        match self {
            SiVtFlavor::Hvt => 0.34,
            SiVtFlavor::Rvt => 0.28,
            SiVtFlavor::Lvt => 0.23,
            SiVtFlavor::Slvt => 0.18,
        }
    }

    /// Short library name (`"HVT"`, `"RVT"`, `"LVT"`, `"SLVT"`).
    pub fn library_suffix(self) -> &'static str {
        match self {
            SiVtFlavor::Hvt => "HVT",
            SiVtFlavor::Rvt => "RVT",
            SiVtFlavor::Lvt => "LVT",
            SiVtFlavor::Slvt => "SLVT",
        }
    }
}

impl core::fmt::Display for SiVtFlavor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.library_suffix())
    }
}

/// ASAP7-style drawn gate length (nm).
const L_GATE_NM: f64 = 21.0;

fn si_model(polarity: Polarity, flavor: SiVtFlavor) -> VirtualSourceModel {
    // FinFET electrostatics: steep slope, small DIBL. Hole injection
    // velocity and mobility trail the electron values, giving the usual
    // ~1.2–1.5× N/P drive imbalance.
    let (v_x0, mobility) = match polarity {
        Polarity::N => (1.10e5, 0.0200), // m/s, m^2/(V*s)
        Polarity::P => (0.85e5, 0.0150), // m/s, m^2/(V*s)
    };
    // Junction/GIDL-limited leakage floor grows as threshold drops.
    let floor = match flavor {
        SiVtFlavor::Hvt => 3.0e-6, // A/m
        SiVtFlavor::Rvt => 1.0e-5,
        SiVtFlavor::Lvt => 3.0e-5, // A/m
        SiVtFlavor::Slvt => 1.0e-4,
    };
    VirtualSourceModel {
        name: format!(
            "asap7-{}fet-{}",
            match polarity {
                Polarity::N => "n",
                Polarity::P => "p",
            },
            flavor.library_suffix().to_lowercase()
        ),
        polarity,
        v_t0: flavor.v_t0(),
        dibl: 0.030,
        ss_mv_per_dec: 63.0,
        c_inv: 2.2e-2, // F/m^2
        v_x0,
        mobility,
        l_gate: Length::from_nanometers(L_GATE_NM),
        beta: 1.8,
        i_floor_per_width: floor,
        floor_activation_ev: 0.60,
        cap_parasitic_factor: 1.35,
        temperature_k: 300.0,
    }
}

/// An ASAP7-style n-channel Si FinFET model of the given threshold flavor.
///
/// ```
/// use ppatc_device::{si, SiVtFlavor};
/// use ppatc_units::{Length, Voltage};
///
/// let fet = si::nfet(SiVtFlavor::Rvt).sized(Length::from_nanometers(100.0));
/// let ion = fet.i_on(Voltage::from_volts(0.7)).as_microamperes();
/// assert!(ion > 20.0 && ion < 200.0); // ~hundreds of µA/µm
/// ```
pub fn nfet(flavor: SiVtFlavor) -> VirtualSourceModel {
    si_model(Polarity::N, flavor)
}

/// An ASAP7-style p-channel Si FinFET model of the given threshold flavor.
pub fn pfet(flavor: SiVtFlavor) -> VirtualSourceModel {
    si_model(Polarity::P, flavor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::Voltage;

    const W: f64 = 100.0; // nm
    const VDD: f64 = 0.7;

    #[test]
    fn lower_vt_means_more_drive_and_more_leak() {
        let vdd = Voltage::from_volts(VDD);
        let w = Length::from_nanometers(W);
        let mut last_ion = 0.0;
        let mut last_ioff = 0.0;
        for flavor in SiVtFlavor::ALL {
            let fet = nfet(flavor).sized(w);
            let ion = fet.i_on(vdd).as_amperes();
            let ioff = fet.i_off(vdd).as_amperes();
            assert!(ion > last_ion, "{flavor}: I_ON should increase");
            assert!(ioff > last_ioff, "{flavor}: I_OFF should increase");
            last_ion = ion;
            last_ioff = ioff;
        }
    }

    #[test]
    fn on_off_ratio_is_healthy() {
        let vdd = Voltage::from_volts(VDD);
        let fet = nfet(SiVtFlavor::Rvt).sized(Length::from_nanometers(W));
        let ratio = fet.i_on(vdd) / fet.i_off(vdd);
        assert!(ratio > 1e4, "on/off ratio {ratio:.2e}");
    }

    #[test]
    fn all_flavors_validate() {
        for flavor in SiVtFlavor::ALL {
            nfet(flavor).validate().expect("nfet should be valid");
            pfet(flavor).validate().expect("pfet should be valid");
        }
    }

    #[test]
    fn flavor_ordering_and_display() {
        assert!(SiVtFlavor::Hvt < SiVtFlavor::Slvt);
        assert_eq!(SiVtFlavor::Slvt.to_string(), "SLVT");
    }

    #[test]
    fn nominal_drive_current_density() {
        // Sanity: RVT NFET on-current per width in the few-hundred µA/µm
        // range typical for 7 nm class devices at 0.7 V.
        let fet = nfet(SiVtFlavor::Rvt).sized(Length::from_micrometers(1.0));
        let ion = fet.i_on(Voltage::from_volts(VDD)).as_microamperes();
        assert!(ion > 200.0 && ion < 1500.0, "I_ON {ion} µA/µm");
    }
}
