//! Indium-gallium-zinc-oxide (IGZO) thin-film FET preset.
//!
//! IGZO's wide bandgap (E_g ≈ 3.5 eV) suppresses every band-related leakage
//! path, enabling the record off-currents (< 3×10⁻²¹ A/µm, Belmonte VLSI'23)
//! that make capacitor-less eDRAM with >1000 s retention possible. The cost
//! is carrier mobility around 1 cm²/V·s — two orders of magnitude below
//! silicon — so IGZO FETs are used where leakage matters and drive does not:
//! the *write* transistor of the paper's 3T bit cell (overdriven to
//! V_WWL = 1.3 V to compensate).

use crate::vs::{Polarity, VirtualSourceModel};
use ppatc_units::Length;

/// Long-channel IGZO Hall mobility quoted by the paper (Samanta VLSI'20),
/// cm²/V·s.
pub const MOBILITY_CM2_PER_VS: f64 = 1.0;

/// Effective transport mobility used for drive calibration, cm²/V·s.
///
/// The scaled devices the paper builds on (refs. \[33\]–\[38\]: sub-100 nm
/// self-aligned top-gate IGZO with record g_m = 125 µS/µm) deliver far more
/// current than the long-channel µ = 1 cm²/V·s figure alone would allow;
/// an effective µ of ~5 cm²/V·s reproduces their measured on-currents at
/// the modeled gate length.
pub const EFFECTIVE_MOBILITY_CM2_PER_VS: f64 = 5.0;

/// Paper-quoted sub-threshold slope for scaled IGZO FETs, in mV/decade.
pub const SS_MV_PER_DEC: f64 = 90.0;

/// Record IGZO off-current (Belmonte VLSI'23), amperes per µm of width.
pub const I_OFF_FLOOR_A_PER_UM: f64 = 3.0e-21;

/// An n-type IGZO thin-film FET model.
///
/// There is no p-type preset: IGZO is natively n-type (hole transport is
/// poor in amorphous oxide semiconductors), which is why the bit cell uses
/// a single NMOS IGZO write device.
///
/// ```
/// use ppatc_device::igzo;
/// use ppatc_units::{Length, Voltage};
///
/// let fet = igzo::nfet().sized(Length::from_nanometers(100.0));
/// let vdd = Voltage::from_volts(0.7);
/// // With the write wordline held below the source (the hold state of the
/// // 3T cell), leakage collapses toward the 3e-21 A/µm floor and a DRAM
/// // node retains its charge for >1000 s.
/// let hold = fet.i_off_underdriven(vdd, Voltage::from_volts(1.0));
/// assert!(hold.as_amperes() < 1e-18);
/// // Overdriving the gate to 1.3 V recovers useful write current.
/// let overdriven = fet.drain_current(
///     Voltage::from_volts(1.3),
///     Voltage::from_volts(0.7),
/// );
/// assert!(overdriven.as_microamperes() > 0.5);
/// ```
pub fn nfet() -> VirtualSourceModel {
    VirtualSourceModel {
        name: "igzo-nfet".into(),
        polarity: Polarity::N,
        v_t0: 0.65,
        dibl: 0.020,
        ss_mv_per_dec: SS_MV_PER_DEC,
        c_inv: 1.5e-2, // ~4 nm ALD AlOx/HfOx gate insulator
        // Mobility-limited transport: the virtual-source velocity for the
        // effective scaled-device mobility at a 30 nm channel is in the
        // ~10 km/s range — two orders below Si injection velocities.
        v_x0: 1.2e4, // m/s
        mobility: EFFECTIVE_MOBILITY_CM2_PER_VS * 1e-4,
        l_gate: Length::from_nanometers(30.0),
        beta: 1.4,
        i_floor_per_width: I_OFF_FLOOR_A_PER_UM * 1e6, // per µm → per m
        floor_activation_ev: 0.85,
        cap_parasitic_factor: 1.25,
        temperature_k: 300.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si::{self, SiVtFlavor};
    use ppatc_units::Voltage;

    #[test]
    fn ultra_low_leakage() {
        let fet = nfet().sized(Length::from_micrometers(1.0));
        let ioff = fet.i_off(Voltage::from_volts(0.7)).as_amperes();
        // The sub-threshold term decays below the 3e-21 A/µm floor only for
        // large negative gate underdrive; at V_GS = 0 the VS subthreshold
        // current still dominates but remains far below any Si device.
        let si_hvt = si::nfet(SiVtFlavor::Hvt).sized(Length::from_micrometers(1.0));
        assert!(ioff < 1e-3 * si_hvt.i_off(Voltage::from_volts(0.7)).as_amperes());
    }

    #[test]
    fn underdrive_reaches_the_record_floor() {
        let fet = nfet().sized(Length::from_micrometers(1.0));
        // Hold the write wordline below the source: the floor takes over.
        let i = fet
            .i_off_underdriven(Voltage::from_volts(0.7), Voltage::from_volts(1.0))
            .as_amperes();
        assert!(i < 1e-17, "underdriven leak {i:.2e} A/µm");
    }

    #[test]
    fn low_drive_compared_to_si() {
        let w = Length::from_nanometers(100.0);
        let vdd = Voltage::from_volts(0.7);
        let ig = nfet().sized(w);
        let si_hvt = si::nfet(SiVtFlavor::Hvt).sized(w);
        assert!(ig.i_eff(vdd).as_amperes() < 0.2 * si_hvt.i_eff(vdd).as_amperes());
    }

    #[test]
    fn overdrive_multiplies_write_current() {
        let fet = nfet().sized(Length::from_nanometers(100.0));
        let nominal = fet.drain_current(Voltage::from_volts(0.7), Voltage::from_volts(0.35));
        let overdriven = fet.drain_current(Voltage::from_volts(1.3), Voltage::from_volts(0.35));
        assert!(overdriven.as_amperes() > 2.0 * nominal.as_amperes());
    }

    #[test]
    fn model_validates() {
        nfet().validate().expect("IGZO model should be valid");
    }
}
