//! A sized FET instance and its figures of merit.

use crate::vs::{ModelParameterError, Polarity, VirtualSourceModel};
use ppatc_units::{Capacitance, Current, Length, Voltage};

/// Why a transistor instance could not be constructed.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The compact model itself violates a physical invariant.
    Model(ModelParameterError),
    /// The requested width (in meters) is not finite and positive.
    InvalidWidth(f64),
}

impl core::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Model(e) => write!(f, "{e}"),
            Self::InvalidWidth(w) => {
                write!(f, "width must be positive (got {w} m)")
            }
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::InvalidWidth(_) => None,
        }
    }
}

impl From<ModelParameterError> for DeviceError {
    fn from(e: ModelParameterError) -> Self {
        Self::Model(e)
    }
}

/// A transistor instance: a [`VirtualSourceModel`] with a physical width.
///
/// Construct with [`VirtualSourceModel::sized`] (via the technology presets)
/// and query the drive/leakage/capacitance figures of merit used by the
/// eDRAM and standard-cell models.
///
/// ```
/// use ppatc_device::{si, SiVtFlavor};
/// use ppatc_units::{Length, Voltage};
///
/// let fet = si::nfet(SiVtFlavor::Slvt).sized(Length::from_nanometers(81.0));
/// let vdd = Voltage::from_volts(0.7);
/// assert!(fet.i_on(vdd) > fet.i_eff(vdd));
/// assert!(fet.i_eff(vdd) > fet.i_off(vdd));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Fet {
    model: VirtualSourceModel,
    width: Length,
}

impl VirtualSourceModel {
    /// Creates a sized transistor instance of this model, rejecting invalid
    /// model parameters (see [`VirtualSourceModel::validate`]) and
    /// non-positive or non-finite widths with a structured [`DeviceError`].
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_sized(self, width: Length) -> Result<Fet, DeviceError> {
        self.validate()?;
        let w = width.as_meters();
        if !w.is_finite() || w <= 0.0 {
            return Err(DeviceError::InvalidWidth(w));
        }
        Ok(Fet { model: self, width })
    }

    /// Panicking convenience wrapper around
    /// [`VirtualSourceModel::try_sized`].
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are invalid
    /// (see [`VirtualSourceModel::validate`]) or `width` is not positive.
    pub fn sized(self, width: Length) -> Fet {
        match self.try_sized(width) {
            Ok(fet) => fet,
            Err(e) => panic!("{e}"),
        }
    }
}

impl Fet {
    /// Returns the underlying compact model.
    #[inline]
    pub fn model(&self) -> &VirtualSourceModel {
        &self.model
    }

    /// Returns a copy of this transistor re-derived at `kelvin` (see
    /// [`VirtualSourceModel::at_temperature`]).
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is outside the model's 200–500 K range.
    #[must_use]
    pub fn at_temperature(&self, kelvin: f64) -> Fet {
        Fet {
            model: self.model.at_temperature(kelvin),
            width: self.width,
        }
    }

    /// Returns the transistor width.
    #[inline]
    pub fn width(&self) -> Length {
        self.width
    }

    /// Channel polarity of the device.
    #[inline]
    pub fn polarity(&self) -> Polarity {
        self.model.polarity
    }

    /// Drain current at the given terminal voltages (signed, volts).
    pub fn drain_current(&self, v_gs: Voltage, v_ds: Voltage) -> Current {
        Current::from_amperes(
            self.model
                .current_per_width(v_gs.as_volts(), v_ds.as_volts())
                * self.width.as_meters(),
        )
    }

    /// On-state drive current `I_ON = |I_D(V_GS = ±V_DD, V_DS = ±V_DD)|`.
    pub fn i_on(&self, vdd: Voltage) -> Current {
        let s = self.model.polarity.sign();
        self.drain_current(vdd * s, vdd * s).abs()
    }

    /// Effective drive current
    /// `I_EFF = (I_H + I_L) / 2` with
    /// `I_H = |I_D(V_GS = V_DD, V_DS = V_DD/2)|` and
    /// `I_L = |I_D(V_GS = V_DD/2, V_DS = V_DD)|` — the metric the paper's
    /// Table I uses to rank FET drive strength during switching.
    pub fn i_eff(&self, vdd: Voltage) -> Current {
        let s = self.model.polarity.sign();
        let i_h = self.drain_current(vdd * s, vdd * (0.5 * s)).abs();
        let i_l = self.drain_current(vdd * (0.5 * s), vdd * s).abs();
        (i_h + i_l) * 0.5
    }

    /// Off-state leakage `I_OFF = |I_D(V_GS = 0, V_DS = ±V_DD)|`.
    pub fn i_off(&self, vdd: Voltage) -> Current {
        let s = self.model.polarity.sign();
        self.drain_current(Voltage::zero(), vdd * s).abs()
    }

    /// Leakage with the gate underdriven **below** the source by `v_under`
    /// (e.g. a negative hold voltage on an eDRAM write wordline).
    pub fn i_off_underdriven(&self, vdd: Voltage, v_under: Voltage) -> Current {
        let s = self.model.polarity.sign();
        self.drain_current(-v_under * s, vdd * s).abs()
    }

    /// Total gate capacitance including fringe/overlap parasitics.
    pub fn gate_capacitance(&self) -> Capacitance {
        Capacitance::from_farads(
            self.model.c_inv
                * self.width.as_meters()
                * self.model.l_gate.as_meters()
                * self.model.cap_parasitic_factor,
        )
    }

    /// Drain-side junction/contact parasitic capacitance, approximated as a
    /// fixed fraction of the gate capacitance (typical for FinFET-era
    /// technologies where parasitics rival the intrinsic channel).
    pub fn drain_capacitance(&self) -> Capacitance {
        self.gate_capacitance() * 0.6
    }

    /// Effective on-resistance `V_DD / I_ON` — a convenient RC-delay proxy.
    ///
    /// # Panics
    ///
    /// Panics if the on-current is zero.
    pub fn on_resistance(&self, vdd: Voltage) -> ppatc_units::Resistance {
        let i_on = self.i_on(vdd);
        assert!(
            i_on.as_amperes() > 0.0,
            "device has no on-current at this VDD"
        );
        vdd / i_on
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si::{self, SiVtFlavor};
    use ppatc_units::approx_eq;

    fn nmos() -> Fet {
        si::nfet(SiVtFlavor::Rvt).sized(Length::from_nanometers(100.0))
    }

    fn pmos() -> Fet {
        si::pfet(SiVtFlavor::Rvt).sized(Length::from_nanometers(100.0))
    }

    #[test]
    fn current_scales_with_width() {
        let vdd = Voltage::from_volts(0.7);
        let narrow = si::nfet(SiVtFlavor::Rvt).sized(Length::from_nanometers(50.0));
        let wide = si::nfet(SiVtFlavor::Rvt).sized(Length::from_nanometers(100.0));
        assert!(approx_eq(
            wide.i_on(vdd).as_amperes(),
            2.0 * narrow.i_on(vdd).as_amperes(),
            1e-12
        ));
    }

    #[test]
    fn figures_of_merit_are_ordered() {
        let vdd = Voltage::from_volts(0.7);
        let fet = nmos();
        assert!(fet.i_on(vdd) > fet.i_eff(vdd));
        assert!(fet.i_eff(vdd).as_amperes() > 1e3 * fet.i_off(vdd).as_amperes());
    }

    #[test]
    fn pmos_matches_nmos_shape() {
        let vdd = Voltage::from_volts(0.7);
        let n = nmos();
        let p = pmos();
        assert!(p.i_on(vdd).as_amperes() > 0.0);
        // PMOS drive is weaker but within ~3x of NMOS.
        let ratio = n.i_on(vdd) / p.i_on(vdd);
        assert!((1.0..3.0).contains(&ratio), "N/P ratio {ratio}");
    }

    #[test]
    fn underdrive_reduces_leakage() {
        let vdd = Voltage::from_volts(0.7);
        let fet = nmos();
        let nominal = fet.i_off(vdd);
        let under = fet.i_off_underdriven(vdd, Voltage::from_volts(0.3));
        assert!(under < nominal);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = si::nfet(SiVtFlavor::Rvt).sized(Length::zero());
    }

    #[test]
    fn try_sized_rejects_bad_widths_without_panicking() {
        for bad in [0.0, -50.0, f64::NAN, f64::INFINITY] {
            let err = si::nfet(SiVtFlavor::Rvt)
                .try_sized(Length::from_nanometers(bad))
                .expect_err("bad width rejected");
            assert!(matches!(err, DeviceError::InvalidWidth(_)), "{err}");
        }
    }

    #[test]
    fn try_sized_accepts_valid_widths() {
        let fet = si::nfet(SiVtFlavor::Rvt)
            .try_sized(Length::from_nanometers(81.0))
            .expect("valid width");
        assert!(approx_eq(fet.width().as_nanometers(), 81.0, 1e-12));
    }

    #[test]
    fn gate_cap_is_positive_and_small() {
        let fet = nmos();
        let c = fet.gate_capacitance().as_attofarads();
        assert!(c > 1.0 && c < 1000.0, "gate cap {c} aF");
        assert!(fet.drain_capacitance() < fet.gate_capacitance());
    }

    #[test]
    fn on_resistance_is_kilo_ohm_scale() {
        let r = nmos().on_resistance(Voltage::from_volts(0.7)).as_ohms();
        assert!(r > 1e3 && r < 1e6, "Ron {r} ohms");
    }
}
