//! Carbon-nanotube FET (CNFET) presets.
//!
//! CNFETs offer the highest effective drive current of the three FET types
//! the paper considers (Table I), thanks to quasi-ballistic transport in the
//! nanotube channel, and they are BEOL-compatible (fabricated below 300 °C).
//! Their drawback is elevated off-state leakage: the 1–2 nm diameter tubes
//! targeted for energy-efficient digital logic have bandgaps of only
//! 0.43–0.85 eV, and any *metallic* CNTs (E_g ≈ 0) that survive removal act
//! as resistors shorting source to drain.

use crate::vs::{Polarity, VirtualSourceModel};
use ppatc_units::Length;

/// Physical description of the CNT population in a CNFET channel, used to
/// derive the metallic-CNT leakage floor.
///
/// ```
/// use ppatc_device::cnfet::CntPopulation;
///
/// let pop = CntPopulation::default();
/// // As-grown CNTs are ~1/3 metallic; removal leaves almost none.
/// assert!(pop.surviving_metallic_per_meter() < 1.0e3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CntPopulation {
    /// Deposited CNT areal density along the device width, tubes per metre.
    ///
    /// High-performance digital CNFETs target ~200 CNTs/µm (2×10⁸ /m).
    pub tubes_per_meter: f64,
    /// Fraction of as-grown tubes that are metallic (≈ 1/3 for unsorted CNTs).
    pub metallic_fraction: f64,
    /// Fraction of metallic tubes eliminated by removal techniques
    /// (solution sorting + on-chip removal, e.g. Shulaker IEDM 2015).
    pub removal_efficiency: f64,
    /// Conductance of one surviving metallic tube, in siemens
    /// (~1/(30 kΩ) for a short metallic CNT).
    pub metallic_tube_conductance: f64,
}

impl Default for CntPopulation {
    fn default() -> Self {
        Self {
            tubes_per_meter: 2.0e8, // 200 CNTs/µm
            metallic_fraction: 1.0 / 3.0,
            removal_efficiency: 0.999_999,
            metallic_tube_conductance: 1.0 / 30.0e3, // S (one metallic tube ~ 30 kOhm)
        }
    }
}

impl CntPopulation {
    /// Metallic tubes per metre of width that survive removal.
    pub fn surviving_metallic_per_meter(&self) -> f64 {
        self.tubes_per_meter * self.metallic_fraction * (1.0 - self.removal_efficiency)
    }

    /// Leakage-floor current per unit width (A/m) from surviving metallic
    /// tubes at drain bias `vdd` volts, plus the semiconducting-tube
    /// band-to-band floor.
    pub fn leakage_floor_per_width(&self, vdd: f64) -> f64 {
        let metallic = self.surviving_metallic_per_meter() * self.metallic_tube_conductance * vdd;
        // Small-bandgap semiconducting tubes leak more than Si junctions do:
        // ~0.1 nA/µm ambipolar/band-to-band floor.
        let semiconducting = 1.0e-4;
        metallic + semiconducting
    }
}

const L_GATE_NM: f64 = 30.0; // paper: 30 nm gate length, as in ASAP7

fn cn_model(polarity: Polarity, population: CntPopulation) -> VirtualSourceModel {
    VirtualSourceModel {
        name: format!(
            "vs-cnfet-{}",
            match polarity {
                Polarity::N => "n",
                Polarity::P => "p",
            }
        ),
        polarity,
        v_t0: 0.30,
        dibl: 0.040,
        ss_mv_per_dec: 70.0,
        c_inv: 2.4e-2, // F/m^2
        // Quasi-ballistic injection: ~3× the Si FinFET virtual-source
        // velocity (Lee et al., VS-CNFET part I). CNFETs are naturally
        // ambipolar, so N and P are symmetric.
        v_x0: 3.2e5, // m/s
        mobility: 0.15,
        l_gate: Length::from_nanometers(L_GATE_NM),
        beta: 1.6,
        i_floor_per_width: population.leakage_floor_per_width(0.7),
        floor_activation_ev: 0.30,
        cap_parasitic_factor: 1.30,
        temperature_k: 300.0,
    }
}

/// An n-type VS-CNFET model with the default CNT population.
///
/// ```
/// use ppatc_device::cnfet;
/// use ppatc_units::{Length, Voltage};
///
/// let fet = cnfet::nfet().sized(Length::from_micrometers(1.0));
/// let ion = fet.i_on(Voltage::from_volts(0.7)).as_microamperes();
/// assert!(ion > 800.0); // CNFETs out-drive Si at the same footprint
/// ```
pub fn nfet() -> VirtualSourceModel {
    cn_model(Polarity::N, CntPopulation::default())
}

/// A p-type VS-CNFET model with the default CNT population.
pub fn pfet() -> VirtualSourceModel {
    cn_model(Polarity::P, CntPopulation::default())
}

/// An n-type VS-CNFET with an explicit CNT population, for studying the
/// sensitivity of leakage to metallic-CNT removal efficiency.
pub fn nfet_with_population(population: CntPopulation) -> VirtualSourceModel {
    cn_model(Polarity::N, population)
}

/// A p-type VS-CNFET with an explicit CNT population.
pub fn pfet_with_population(population: CntPopulation) -> VirtualSourceModel {
    cn_model(Polarity::P, population)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si::{self, SiVtFlavor};
    use ppatc_units::Voltage;

    #[test]
    fn out_drives_si_at_same_width() {
        let w = Length::from_nanometers(100.0);
        let vdd = Voltage::from_volts(0.7);
        let cn = nfet().sized(w);
        let slvt = si::nfet(SiVtFlavor::Slvt).sized(w);
        assert!(cn.i_eff(vdd) > slvt.i_eff(vdd));
    }

    #[test]
    fn leakier_than_si() {
        let w = Length::from_nanometers(100.0);
        let vdd = Voltage::from_volts(0.7);
        let cn = nfet().sized(w);
        let rvt = si::nfet(SiVtFlavor::Rvt).sized(w);
        assert!(cn.i_off(vdd) > rvt.i_off(vdd));
    }

    #[test]
    fn worse_removal_means_more_leak() {
        let w = Length::from_nanometers(100.0);
        let vdd = Voltage::from_volts(0.7);
        let good = nfet_with_population(CntPopulation {
            removal_efficiency: 0.999_999_9,
            ..CntPopulation::default()
        })
        .sized(w);
        let bad = nfet_with_population(CntPopulation {
            removal_efficiency: 0.999,
            ..CntPopulation::default()
        })
        .sized(w);
        assert!(bad.i_off(vdd).as_amperes() > 10.0 * good.i_off(vdd).as_amperes());
    }

    #[test]
    fn population_floor_is_metallic_dominated_at_poor_removal() {
        let pop = CntPopulation {
            removal_efficiency: 0.99,
            ..CntPopulation::default()
        };
        let floor = pop.leakage_floor_per_width(0.7);
        assert!(floor > 1e-2, "floor {floor} A/m");
    }

    #[test]
    fn models_validate() {
        nfet().validate().expect("n-CNFET should be valid");
        pfet().validate().expect("p-CNFET should be valid");
    }
}
