//! Virtual-source compact FET models for Si FinFETs, carbon-nanotube FETs
//! (CNFETs), and IGZO thin-film FETs.
//!
//! The PPAtC paper validates its eDRAM timing with SPICE simulations using
//! "compact device models for Si CMOS \[ASAP7\], CNFETs \[VS-CNFET\], and
//! IGZO FETs (using a virtual source model with experimentally measured
//! values: IGZO mobility = 1 cm²/V·s and sub-threshold slope = 90 mV/decade)".
//! This crate implements that stack:
//!
//! - [`VirtualSourceModel`] — the semi-empirical virtual-source MOSFET model
//!   of Khakifirooz et al. (TED 2009): a charge × injection-velocity product
//!   with a saturation-blending function, continuous across all regions of
//!   operation.
//! - [`Fet`] — a sized instance (model + width) exposing the figures of merit
//!   the paper's Table I compares: effective drive current `I_EFF`, off-state
//!   leakage `I_OFF`, and gate capacitance.
//! - Technology presets: [`si::nfet`]/[`si::pfet`] (four ASAP7-style
//!   threshold flavors), [`cnfet::nfet`]/[`cnfet::pfet`] (with a metallic-CNT
//!   leakage penalty), and [`igzo::nfet`] (wide-bandgap, ultra-low leakage,
//!   low mobility).
//!
//! # Example
//!
//! Reproduce the qualitative ordering of Table I — CNFETs have the highest
//! drive, IGZO the lowest leakage:
//!
//! ```
//! use ppatc_device::{cnfet, igzo, si, SiVtFlavor};
//! use ppatc_units::{Length, Voltage};
//!
//! let w = Length::from_nanometers(100.0);
//! let vdd = Voltage::from_volts(0.7);
//! let si = si::nfet(SiVtFlavor::Rvt).sized(w);
//! let cn = cnfet::nfet().sized(w);
//! let ig = igzo::nfet().sized(w);
//!
//! assert!(cn.i_eff(vdd) > si.i_eff(vdd));
//! assert!(si.i_eff(vdd) > ig.i_eff(vdd));
//! assert!(ig.i_off(vdd) < si.i_off(vdd));
//! assert!(si.i_off(vdd) < cn.i_off(vdd));
//! ```

#![warn(missing_docs)]

pub mod cnfet;
mod fet;
pub mod igzo;
pub mod si;
mod vs;

pub use fet::{DeviceError, Fet};
pub use si::SiVtFlavor;
pub use vs::{ModelParameterError, Polarity, VirtualSourceModel, VsDerived};
