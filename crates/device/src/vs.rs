//! The virtual-source (VS) compact MOSFET model.

use ppatc_units::Length;

/// Thermal voltage k·T/q at 300 K, in volts.
pub(crate) const PHI_T: f64 = 0.02585;

/// Boltzmann constant over elementary charge, V/K.
const K_OVER_Q: f64 = 8.617e-5;

/// Reference temperature for all parameter sets, kelvin.
pub const T_REF_K: f64 = 300.0;

/// Channel conduction polarity of a FET.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// n-channel: conducts when the gate is pulled high.
    N,
    /// p-channel: conducts when the gate is pulled low.
    P,
}

impl Polarity {
    /// Returns `+1.0` for n-channel and `-1.0` for p-channel devices.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Polarity::N => 1.0,
            Polarity::P => -1.0,
        }
    }
}

impl core::fmt::Display for Polarity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Polarity::N => f.write_str("NMOS"),
            Polarity::P => f.write_str("PMOS"),
        }
    }
}

/// Parameters of the virtual-source MOSFET model (Khakifirooz et al., IEEE
/// TED 2009), extended with an off-state leakage floor to capture
/// bandgap-limited leakage (ultra-low for IGZO, elevated for CNFETs with
/// residual metallic CNTs).
///
/// The drain current per unit width is
///
/// ```text
/// I_D/W = Q_ix0 · v_x0 · F_sat + I_floor
/// Q_ix0 = C_inv · n · φ_t · ln(1 + exp((V_GS − V_T(V_DS)) / (n · φ_t)))
/// V_T(V_DS) = V_T0 − δ · V_DS                        (DIBL)
/// F_sat = (V_DS/V_dsat) / (1 + (V_DS/V_dsat)^β)^(1/β)
/// V_dsat = max(v_x0 · L / µ, 2·φ_t)                  (velocity saturation)
/// ```
///
/// All fields are public because the type is a parameter record; invariants
/// are validated by [`VirtualSourceModel::validate`], which the constructors
/// in [`crate::si`], [`crate::cnfet`], and [`crate::igzo`] run for you.
#[derive(Clone, Debug, PartialEq)]
pub struct VirtualSourceModel {
    /// Human-readable technology name, e.g. `"asap7-nfet-rvt"`.
    pub name: String,
    /// Channel polarity.
    pub polarity: Polarity,
    /// Zero-bias threshold voltage magnitude, in volts.
    pub v_t0: f64,
    /// Drain-induced barrier lowering coefficient (V/V).
    pub dibl: f64,
    /// Sub-threshold slope, in millivolts per decade at 300 K.
    pub ss_mv_per_dec: f64,
    /// Effective inversion capacitance, in farads per square metre.
    pub c_inv: f64,
    /// Virtual-source injection velocity, in metres per second.
    pub v_x0: f64,
    /// Low-field carrier mobility, in m²/(V·s).
    pub mobility: f64,
    /// Gate (channel) length.
    pub l_gate: Length,
    /// Saturation-blending exponent β (typically 1.4–1.8).
    pub beta: f64,
    /// Bandgap/defect-limited minimum leakage per unit width, in A/m,
    /// quoted at the reference temperature (300 K).
    pub i_floor_per_width: f64,
    /// Thermal activation energy of the leakage floor, eV. Junction/GIDL
    /// leakage in Si activates around 0.6 eV; wide-bandgap IGZO much
    /// higher; small-gap CNTs lower.
    pub floor_activation_ev: f64,
    /// Multiplier on the intrinsic gate capacitance `C_inv·W·L` accounting
    /// for fringe/overlap parasitics (≥ 1).
    pub cap_parasitic_factor: f64,
    /// Operating temperature, kelvin. Parameter sets are quoted at 300 K;
    /// use [`VirtualSourceModel::at_temperature`] to re-derive.
    pub temperature_k: f64,
}

/// Bias-independent intermediates of the virtual-source model — thermal
/// voltage, ideality-scaled thermal voltage, and saturation voltage — which
/// depend only on the parameter record, never on the terminal voltages.
///
/// Computing them once via [`VirtualSourceModel::derive`] and passing them
/// to [`VirtualSourceModel::current_per_width_with`] /
/// [`VirtualSourceModel::current_triplet_per_width`] gives bit-identical
/// currents to the plain [`VirtualSourceModel::current_per_width`] while
/// skipping the per-call re-derivation; a SPICE stamp plan caches one
/// `VsDerived` per FET for the life of a topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VsDerived {
    /// Thermal voltage k·T/q at the operating temperature, volts.
    pub phi_t: f64,
    /// Ideality-scaled thermal voltage `n·φ_t`, volts.
    pub n_phi_t: f64,
    /// Saturation voltage `V_dsat`, volts.
    pub v_dsat: f64,
}

/// Drain-bias-dependent intermediates shared by every current evaluation at
/// a common `v_ds` (the operating point and the gate-derivative probe see
/// the same drain bias, so these are computed once per pair).
struct NParts {
    v_t: f64,
    f_sat: f64,
    floor: f64,
}

impl VirtualSourceModel {
    /// Thermal voltage k·T/q at the model's operating temperature, volts.
    #[inline]
    pub fn phi_t(&self) -> f64 {
        K_OVER_Q * self.temperature_k
    }

    /// Precomputes the bias-independent intermediates ([`VsDerived`]) used
    /// by the `*_with` current evaluators. The values are exactly the ones
    /// [`VirtualSourceModel::current_per_width`] recomputes internally, so
    /// results are bit-identical either way.
    #[inline]
    pub fn derive(&self) -> VsDerived {
        VsDerived {
            phi_t: self.phi_t(),
            n_phi_t: self.ideality() * self.phi_t(),
            v_dsat: self.v_dsat(),
        }
    }

    /// Sub-threshold ideality factor `n = SS / (φ_t(300 K) · ln 10)` —
    /// the slope parameter is quoted at the reference temperature; the
    /// physical slope then widens as k·T/q with temperature.
    #[inline]
    pub fn ideality(&self) -> f64 {
        (self.ss_mv_per_dec / 1e3) / (PHI_T * core::f64::consts::LN_10)
    }

    /// Saturation voltage `V_dsat` in volts.
    #[inline]
    pub fn v_dsat(&self) -> f64 {
        (self.v_x0 * self.l_gate.as_meters() / self.mobility).max(2.0 * self.phi_t())
    }

    /// Returns a copy of the model re-derived at `kelvin`:
    ///
    /// - sub-threshold slope widens with k·T/q;
    /// - threshold drops ~1 mV/K (bandgap narrowing + Fermi shift);
    /// - injection velocity degrades as `(300/T)^1.5` (phonon scattering);
    /// - the leakage floor activates as `exp(−E_a/k · (1/T − 1/300))`.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is outside the model's sane range (200–500 K).
    #[must_use]
    pub fn at_temperature(&self, kelvin: f64) -> Self {
        assert!(
            (200.0..=500.0).contains(&kelvin),
            "temperature {kelvin} K outside the model's 200-500 K range"
        );
        let dt = kelvin - T_REF_K;
        let arrhenius =
            (-self.floor_activation_ev / K_OVER_Q * (1.0 / kelvin - 1.0 / T_REF_K)).exp();
        Self {
            name: self.name.clone(),
            v_t0: (self.v_t0 - 1.0e-3 * dt).max(0.0),
            v_x0: self.v_x0 * (T_REF_K / kelvin).powf(1.5),
            i_floor_per_width: self.i_floor_per_width * arrhenius,
            temperature_k: kelvin,
            ..self.clone()
        }
    }

    /// Checks parameter invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: non-positive
    /// capacitance, velocity, mobility, gate length, slope, or β; a DIBL or
    /// threshold magnitude outside sensible bounds; a negative leakage floor;
    /// or a parasitic factor below 1.
    // The negated comparisons are deliberate: `!(x > 0.0)` also rejects
    // NaN, which a rewritten `x <= 0.0` would silently accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), ModelParameterError> {
        fn err(model: &VirtualSourceModel, what: &'static str) -> Result<(), ModelParameterError> {
            Err(ModelParameterError {
                model: model.name.clone(),
                what,
            })
        }
        if !(self.c_inv > 0.0) {
            return err(self, "inversion capacitance must be positive");
        }
        if !(self.v_x0 > 0.0) {
            return err(self, "injection velocity must be positive");
        }
        if !(self.mobility > 0.0) {
            return err(self, "mobility must be positive");
        }
        if !(self.l_gate.as_meters() > 0.0) {
            return err(self, "gate length must be positive");
        }
        if !(self.ss_mv_per_dec >= 59.5) {
            return err(
                self,
                "sub-threshold slope cannot beat the thermionic limit (~60 mV/dec)",
            );
        }
        if !(self.beta >= 1.0) {
            return err(self, "saturation exponent must be at least 1");
        }
        if !(0.0..=1.5).contains(&self.v_t0) {
            return err(self, "threshold magnitude out of range [0, 1.5] V");
        }
        if !(0.0..=0.5).contains(&self.dibl) {
            return err(self, "DIBL coefficient out of range [0, 0.5] V/V");
        }
        if self.i_floor_per_width < 0.0 {
            return err(self, "leakage floor must be non-negative");
        }
        if self.cap_parasitic_factor < 1.0 {
            return err(self, "parasitic capacitance factor must be at least 1");
        }
        if self.floor_activation_ev < 0.0 {
            return err(self, "leakage activation energy must be non-negative");
        }
        if !(200.0..=500.0).contains(&self.temperature_k) {
            return err(self, "temperature outside the model's 200-500 K range");
        }
        Ok(())
    }

    /// Drain current per unit width, in amperes per metre, for **terminal**
    /// voltages `v_gs` and `v_ds` (volts, signed; for p-channel devices pass
    /// the physically negative values).
    ///
    /// The model is symmetric under source/drain exchange: negative
    /// drain-source bias (for the device polarity) swaps the roles of source
    /// and drain, which matters for pass-transistor write paths.
    pub fn current_per_width(&self, v_gs: f64, v_ds: f64) -> f64 {
        self.current_per_width_with(&self.derive(), v_gs, v_ds)
    }

    /// Like [`VirtualSourceModel::current_per_width`], but reusing a cached
    /// [`VsDerived`] (obtained from [`VirtualSourceModel::derive`] on this
    /// same model) instead of re-deriving it per call. Bit-identical.
    pub fn current_per_width_with(&self, d: &VsDerived, v_gs: f64, v_ds: f64) -> f64 {
        let s = self.polarity.sign();
        // Work in n-equivalent coordinates.
        let (vgs_n, vds_n) = (s * v_gs, s * v_ds);
        if vds_n >= 0.0 {
            let p = self.n_parts(d, vds_n);
            s * self.n_current(d, vgs_n, &p)
        } else {
            // Source/drain swap: gate-to-(true source) voltage is vgs - vds.
            let p = self.n_parts(d, -vds_n);
            -s * self.n_current(d, vgs_n - vds_n, &p)
        }
    }

    /// Evaluates the operating point and both finite-difference probes a
    /// Newton linearisation needs in one call, sharing the drain-bias
    /// intermediates between the operating point and the gate probe (both
    /// see the same `v_ds`). Returns `(I(v_gs, v_ds), I(v_gs + dv, v_ds),
    /// I(v_gs, v_ds + dv))`, each bit-identical to a separate
    /// [`VirtualSourceModel::current_per_width`] call.
    pub fn current_triplet_per_width(
        &self,
        d: &VsDerived,
        v_gs: f64,
        v_ds: f64,
        dv: f64,
    ) -> (f64, f64, f64) {
        let s = self.polarity.sign();
        let (vgs_n, vds_n) = (s * v_gs, s * v_ds);
        let vgp_n = s * (v_gs + dv);
        // The gate probe shifts only v_gs, so it takes the same
        // polarity/swap branch as the operating point and can share its
        // NParts (functions of vds_n alone).
        let (i0, i_gate) = if vds_n >= 0.0 {
            let p = self.n_parts(d, vds_n);
            (
                s * self.n_current(d, vgs_n, &p),
                s * self.n_current(d, vgp_n, &p),
            )
        } else {
            let p = self.n_parts(d, -vds_n);
            (
                -s * self.n_current(d, vgs_n - vds_n, &p),
                -s * self.n_current(d, vgp_n - vds_n, &p),
            )
        };
        // The drain probe changes v_ds (and possibly the swap branch), so
        // it is a full evaluation.
        let i_drain = self.current_per_width_with(d, v_gs, v_ds + dv);
        (i0, i_gate, i_drain)
    }

    /// Drain-bias intermediates for the n-equivalent model at `v_ds >= 0`.
    fn n_parts(&self, d: &VsDerived, v_ds: f64) -> NParts {
        debug_assert!(v_ds >= 0.0);
        let v_t = self.v_t0 - self.dibl * v_ds;
        let ratio = v_ds / d.v_dsat;
        let f_sat = ratio / (1.0 + ratio.powf(self.beta)).powf(1.0 / self.beta);
        // Leakage floor switches smoothly with V_DS so the device truly has
        // no current at V_DS = 0.
        let floor = self.i_floor_per_width * (v_ds / (v_ds + d.phi_t));
        NParts { v_t, f_sat, floor }
    }

    /// N-equivalent current per width given precomputed drain-bias parts.
    fn n_current(&self, d: &VsDerived, v_gs: f64, p: &NParts) -> f64 {
        let x = (v_gs - p.v_t) / d.n_phi_t;
        // softplus(x) without overflow for large x
        let softplus = if x > 40.0 { x } else { x.exp().ln_1p() };
        let q_ix0 = self.c_inv * d.n_phi_t * softplus;
        q_ix0 * self.v_x0 * p.f_sat + p.floor
    }
}

/// Error returned by [`VirtualSourceModel::validate`] when a parameter
/// violates a physical invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelParameterError {
    model: String,
    what: &'static str,
}

impl core::fmt::Display for ModelParameterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid parameter for model `{}`: {}",
            self.model, self.what
        )
    }
}

impl std::error::Error for ModelParameterError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    fn test_model() -> VirtualSourceModel {
        VirtualSourceModel {
            name: "test-n".into(),
            polarity: Polarity::N,
            v_t0: 0.2,
            dibl: 0.1,
            ss_mv_per_dec: 70.0,
            c_inv: 2.0e-2,
            v_x0: 1.0e5,
            mobility: 0.02,
            l_gate: Length::from_nanometers(21.0),
            beta: 1.8,
            i_floor_per_width: 1e-7,
            floor_activation_ev: 0.6,
            cap_parasitic_factor: 1.3,
            temperature_k: 300.0,
        }
    }

    #[test]
    fn validates() {
        test_model().validate().expect("test model should be valid");
    }

    #[test]
    fn rejects_sub_thermionic_slope() {
        let mut m = test_model();
        m.ss_mv_per_dec = 40.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = test_model();
        assert!(approx_eq(m.current_per_width(0.7, 0.0), 0.0, 1e-30));
    }

    #[test]
    fn current_increases_with_vgs() {
        let m = test_model();
        let lo = m.current_per_width(0.3, 0.7);
        let hi = m.current_per_width(0.7, 0.7);
        assert!(hi > lo && lo > 0.0);
    }

    #[test]
    fn current_saturates_with_vds() {
        let m = test_model();
        let lin = m.current_per_width(0.7, 0.05);
        let sat1 = m.current_per_width(0.7, 0.6);
        let sat2 = m.current_per_width(0.7, 0.7);
        assert!(sat1 > lin);
        // Deep saturation: increase from 0.6 V to 0.7 V is small apart from
        // the DIBL contribution.
        assert!((sat2 - sat1) / sat1 < 0.25);
    }

    #[test]
    fn source_drain_symmetry() {
        let m = test_model();
        // Reverse conduction equals forward conduction with swapped
        // terminals: I(vg - vd_true_source...) — check anti-symmetry around
        // the same gate overdrive.
        let fwd = m.current_per_width(0.7, 0.3);
        let rev = m.current_per_width(0.7 - 0.3, -0.3);
        assert!(approx_eq(fwd, -rev, 1e-12));
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let mut p = test_model();
        p.polarity = Polarity::P;
        let n = test_model();
        let i_n = n.current_per_width(0.7, 0.7);
        let i_p = p.current_per_width(-0.7, -0.7);
        assert!(approx_eq(i_n, -i_p, 1e-12));
        assert!(i_p < 0.0);
    }

    #[test]
    fn triplet_is_bit_identical_to_three_scalar_calls() {
        const DV: f64 = 1e-6;
        let n = test_model();
        let mut p = test_model();
        p.polarity = Polarity::P;
        for m in [&n, &p] {
            let d = m.derive();
            for gi in -4..=4_i32 {
                for di in -4..=4_i32 {
                    let v_gs = 0.2 * f64::from(gi);
                    let v_ds = 0.2 * f64::from(di);
                    let (i0, ig, id) = m.current_triplet_per_width(&d, v_gs, v_ds, DV);
                    assert_eq!(
                        i0.to_bits(),
                        m.current_per_width(v_gs, v_ds).to_bits(),
                        "{} i0 at ({v_gs}, {v_ds})",
                        m.name
                    );
                    assert_eq!(
                        ig.to_bits(),
                        m.current_per_width(v_gs + DV, v_ds).to_bits(),
                        "{} gate probe at ({v_gs}, {v_ds})",
                        m.name
                    );
                    assert_eq!(
                        id.to_bits(),
                        m.current_per_width(v_gs, v_ds + DV).to_bits(),
                        "{} drain probe at ({v_gs}, {v_ds})",
                        m.name
                    );
                }
            }
        }
    }

    #[test]
    fn subthreshold_slope_matches_parameter() {
        let m = test_model();
        // Measure decades of current change per 100 mV of gate swing well
        // below threshold.
        let i1 = m.current_per_width(0.00, 0.7) - 1e-7; // remove floor contribution
        let i2 = m.current_per_width(0.10, 0.7) - 1e-7;
        let decades = (i2 / i1).log10();
        let ss_measured = 100.0 / decades; // mV per decade
        assert!(
            approx_eq(ss_measured, 70.0, 0.05),
            "measured SS {ss_measured}"
        );
    }

    #[test]
    fn ideality_from_slope() {
        let m = test_model();
        assert!(approx_eq(
            m.ideality(),
            0.070 / (PHI_T * core::f64::consts::LN_10),
            1e-12
        ));
    }

    #[test]
    fn display_polarity() {
        assert_eq!(Polarity::N.to_string(), "NMOS");
        assert_eq!(Polarity::P.to_string(), "PMOS");
    }
}

#[cfg(test)]
mod temperature_tests {
    use crate::si::{self, SiVtFlavor};
    use crate::{cnfet, igzo};
    use ppatc_units::{Length, Voltage};

    #[test]
    fn leakage_grows_steeply_with_temperature() {
        let w = Length::from_micrometers(1.0);
        let vdd = Voltage::from_volts(0.7);
        let cold = si::nfet(SiVtFlavor::Rvt).sized(w);
        let hot = cold.at_temperature(360.0);
        let ratio = hot.i_off(vdd) / cold.i_off(vdd);
        // 60 K of heating buys well over an order of magnitude of leakage.
        assert!(ratio > 10.0, "hot/cold leakage ratio {ratio:.1}");
    }

    #[test]
    fn drive_degrades_mildly_with_temperature() {
        let w = Length::from_micrometers(1.0);
        let vdd = Voltage::from_volts(0.7);
        let cold = cnfet::nfet().sized(w);
        let hot = cold.at_temperature(360.0);
        let ratio = hot.i_on(vdd) / cold.i_on(vdd);
        // Velocity degradation and V_T drop partially cancel: small change.
        assert!(
            (0.7..1.15).contains(&ratio),
            "hot/cold drive ratio {ratio:.2}"
        );
    }

    #[test]
    fn igzo_floor_activates_hard() {
        // E_a = 1.2 eV: an 85C floor is orders of magnitude above 27C, yet
        // still far below any Si leakage.
        let w = Length::from_micrometers(1.0);
        let vdd = Voltage::from_volts(0.7);
        let cold = igzo::nfet().sized(w);
        let hot = cold.at_temperature(358.0);
        let cold_hold = cold.i_off_underdriven(vdd, Voltage::from_volts(1.0));
        let hot_hold = hot.i_off_underdriven(vdd, Voltage::from_volts(1.0));
        assert!(hot_hold.as_amperes() > 50.0 * cold_hold.as_amperes());
        let si_hot = si::nfet(SiVtFlavor::Hvt)
            .sized(w)
            .at_temperature(358.0)
            .i_off_underdriven(vdd, Voltage::from_volts(1.0));
        assert!(hot_hold.as_amperes() < 1e-3 * si_hot.as_amperes());
    }

    #[test]
    fn reference_temperature_is_identity() {
        let base = si::nfet(SiVtFlavor::Lvt);
        let same = base.at_temperature(300.0);
        assert_eq!(base, same);
    }

    #[test]
    #[should_panic(expected = "outside the model's 200-500 K range")]
    fn absurd_temperature_panics() {
        let _ = si::nfet(SiVtFlavor::Rvt).at_temperature(1000.0);
    }
}
