//! Unified error taxonomy for the evaluation pipeline.
//!
//! Every fallible step of the five-step PPAtC flow — SPICE characterization,
//! eDRAM design, logic synthesis, workload simulation, system composition,
//! and the statistical analyses on top — reports failure through its own
//! crate-local error type. [`PpatcError`] wraps all of them so pipeline-level
//! code (case studies, optimizers, Monte-Carlo sweeps, CLI tools) can return
//! one `Result` type, match on the cause, and walk `Error::source` chains
//! down to the physical detail.
//!
//! Invalid *inputs* (NaN lifetimes, negative powers, yields above 1, ...)
//! are reported as structured [`ValidationError`]s carrying the parameter
//! name, the offending value, and the allowed range — never as panics.

use crate::system::DesignError;
use ppatc_edram::EdramError;
use ppatc_pdk::synthesis::TimingError;
use ppatc_spice::SpiceError;
use ppatc_workloads::WorkloadError;

/// A structured report of an invalid model input.
///
/// Carries enough to render a precise message (`invalid 'yield': 1.7 is not
/// in (0, 1]`) and for callers to react programmatically to the field name
/// or offending value.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct ValidationError {
    /// Name of the offending parameter, e.g. `"m3d_yield"`.
    pub field: &'static str,
    /// The value that was rejected.
    pub value: f64,
    /// Statement of the allowed range, e.g. `"in (0, 1]"` or
    /// `"finite and > 0"`.
    pub requirement: &'static str,
}

impl ValidationError {
    /// Creates a validation error for `field` with the given `value` and
    /// `requirement` description.
    // ppatc-lint: allow(raw-unit-api) — generic validation over any raw float
    pub fn new(field: &'static str, value: f64, requirement: &'static str) -> Self {
        Self {
            field,
            value,
            requirement,
        }
    }
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid '{}': {} is not {}",
            self.field, self.value, self.requirement
        )
    }
}

impl std::error::Error for ValidationError {}

/// Input-validation helpers shared by the model constructors.
///
/// Each returns the value on success so checks compose as expressions; on
/// failure they build the [`ValidationError`] with the caller's field name.
pub mod check {
    use super::ValidationError;

    /// Requires `value` to be finite (neither NaN nor ±∞).
    // ppatc-lint: allow(raw-unit-api) — generic validation over any raw float
    pub fn finite(field: &'static str, value: f64) -> Result<f64, ValidationError> {
        if value.is_finite() {
            Ok(value)
        } else {
            Err(ValidationError::new(field, value, "finite"))
        }
    }

    /// Requires `value` to be finite and strictly positive.
    // ppatc-lint: allow(raw-unit-api) — generic validation over any raw float
    pub fn positive(field: &'static str, value: f64) -> Result<f64, ValidationError> {
        if value.is_finite() && value > 0.0 {
            Ok(value)
        } else {
            Err(ValidationError::new(field, value, "finite and > 0"))
        }
    }

    /// Requires `value` to be finite and non-negative.
    // ppatc-lint: allow(raw-unit-api) — generic validation over any raw float
    pub fn non_negative(field: &'static str, value: f64) -> Result<f64, ValidationError> {
        if value.is_finite() && value >= 0.0 {
            Ok(value)
        } else {
            Err(ValidationError::new(field, value, "finite and >= 0"))
        }
    }

    /// Requires `lo < value <= hi` (the shape of a yield or duty-cycle
    /// bound). The `requirement` string should spell the range, e.g.
    /// `"in (0, 1]"`.
    // ppatc-lint: allow(raw-unit-api) — generic validation over any raw float
    pub fn in_open_closed(
        field: &'static str,
        value: f64,
        lo: f64,
        hi: f64,
        requirement: &'static str,
    ) -> Result<f64, ValidationError> {
        if value.is_finite() && value > lo && value <= hi {
            Ok(value)
        } else {
            Err(ValidationError::new(field, value, requirement))
        }
    }
}

/// The unified error type of the PPAtC evaluation pipeline.
///
/// Wraps every crate-local error the five-step flow can produce, plus the
/// analysis-level failures (invalid inputs, exceeded Monte-Carlo failure
/// budgets). `Error::source` exposes the wrapped cause where one exists.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PpatcError {
    /// System composition failed (timing, memory speed, eDRAM, workload).
    Design(DesignError),
    /// A SPICE analysis failed (singular matrix, non-convergence).
    Spice(SpiceError),
    /// eDRAM macro characterization failed.
    Edram(EdramError),
    /// Workload assembly, execution, or checksum verification failed.
    Workload(WorkloadError),
    /// Logic synthesis could not close timing.
    Timing(TimingError),
    /// A model input was rejected before evaluation started.
    Validation(ValidationError),
    /// A Monte-Carlo sweep discarded more samples than its failure budget
    /// allows.
    FailureBudgetExceeded {
        /// Number of samples that failed to evaluate.
        failed: usize,
        /// Total number of samples drawn.
        samples: usize,
        /// The configured maximum tolerated failed fraction.
        budget: f64,
    },
    /// Every sample of a Monte-Carlo sweep failed to evaluate, leaving no
    /// survivors to compute statistics over. Distinct from
    /// [`PpatcError::FailureBudgetExceeded`]: this is reported when the
    /// configured budget *tolerates* the failures (e.g. `failure_budget =
    /// 1.0`) but the statistics are still undefined.
    NoSurvivingSamples {
        /// Total number of samples drawn (all of which failed).
        samples: usize,
    },
    /// A supervised run was stopped before finishing — by a
    /// [`CancelToken`](crate::eval::CancelToken) or an expired
    /// [`RunBudget`](crate::eval::RunBudget) deadline — and carries the
    /// partial work completed so far instead of discarding it.
    Interrupted {
        /// What stopped the run.
        reason: InterruptReason,
        /// Completed item indices as sorted, disjoint half-open `[start,
        /// end)` runs. Items journaled to a checkpoint are included, so a
        /// resume skips exactly this set.
        completed: Vec<(usize, usize)>,
        /// Total number of items the run was asked to evaluate.
        total: usize,
    },
    /// One work item's closure panicked inside a supervised parallel run.
    /// The panic was caught at the item boundary; sibling items are
    /// unaffected. In Monte-Carlo sweeps this counts against the failure
    /// budget like any other discarded sample.
    WorkerPanic {
        /// Index of the item whose evaluation panicked.
        index: usize,
    },
    /// The checkpoint journal could not be created, read, or appended to.
    /// Carries a rendered description because `std::io::Error` is neither
    /// `Clone` nor `PartialEq`.
    Checkpoint {
        /// Human-readable description of the journal failure.
        detail: String,
    },
}

/// Why a supervised run stopped early (see [`PpatcError::Interrupted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptReason {
    /// A [`CancelToken`](crate::eval::CancelToken) was cancelled.
    Cancelled,
    /// The [`RunBudget`](crate::eval::RunBudget) deadline expired.
    DeadlineExpired,
}

impl core::fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Cancelled => write!(f, "cancelled"),
            Self::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

impl core::fmt::Display for PpatcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Design(e) => write!(f, "design error: {e}"),
            Self::Spice(e) => write!(f, "spice error: {e}"),
            Self::Edram(e) => write!(f, "edram error: {e}"),
            Self::Workload(e) => write!(f, "workload error: {e}"),
            Self::Timing(e) => write!(f, "timing error: {e}"),
            Self::Validation(e) => write!(f, "{e}"),
            Self::FailureBudgetExceeded {
                failed,
                samples,
                budget,
            } => write!(
                f,
                "{failed} of {samples} Monte-Carlo samples failed, exceeding the \
                 failure budget of {:.1}%",
                budget * 100.0
            ),
            Self::NoSurvivingSamples { samples } => write!(
                f,
                "all {samples} Monte-Carlo samples failed to evaluate; no \
                 survivors to compute statistics over"
            ),
            Self::Interrupted {
                reason,
                completed,
                total,
            } => {
                let done: usize = completed.iter().map(|&(s, e)| e.saturating_sub(s)).sum();
                write!(
                    f,
                    "run interrupted ({reason}): {done} of {total} items completed"
                )
            }
            Self::WorkerPanic { index } => {
                write!(f, "worker panicked while evaluating item {index}")
            }
            Self::Checkpoint { detail } => write!(f, "checkpoint journal error: {detail}"),
        }
    }
}

impl std::error::Error for PpatcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Design(e) => Some(e),
            Self::Spice(e) => Some(e),
            Self::Edram(e) => Some(e),
            Self::Workload(e) => Some(e),
            Self::Timing(e) => Some(e),
            Self::Validation(e) => Some(e),
            Self::FailureBudgetExceeded { .. }
            | Self::NoSurvivingSamples { .. }
            | Self::Interrupted { .. }
            | Self::WorkerPanic { .. }
            | Self::Checkpoint { .. } => None,
        }
    }
}

impl From<DesignError> for PpatcError {
    fn from(e: DesignError) -> Self {
        Self::Design(e)
    }
}

impl From<SpiceError> for PpatcError {
    fn from(e: SpiceError) -> Self {
        Self::Spice(e)
    }
}

impl From<EdramError> for PpatcError {
    fn from(e: EdramError) -> Self {
        Self::Edram(e)
    }
}

impl From<WorkloadError> for PpatcError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}

impl From<TimingError> for PpatcError {
    fn from(e: TimingError) -> Self {
        Self::Timing(e)
    }
}

impl From<ValidationError> for PpatcError {
    fn from(e: ValidationError) -> Self {
        Self::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn validation_error_renders_field_value_and_range() {
        let e = ValidationError::new("m3d_yield", 1.7, "in (0, 1]");
        let text = e.to_string();
        assert!(text.contains("m3d_yield"), "{text}");
        assert!(text.contains("1.7"), "{text}");
        assert!(text.contains("(0, 1]"), "{text}");
    }

    #[test]
    fn check_helpers_accept_and_reject() {
        assert_eq!(check::finite("x", 1.0), Ok(1.0));
        assert!(check::finite("x", f64::NAN).is_err());
        assert!(check::finite("x", f64::INFINITY).is_err());
        assert_eq!(check::positive("x", 0.5), Ok(0.5));
        assert!(check::positive("x", 0.0).is_err());
        assert!(check::positive("x", -1.0).is_err());
        assert!(check::positive("x", f64::NAN).is_err());
        assert_eq!(check::non_negative("x", 0.0), Ok(0.0));
        assert!(check::non_negative("x", -1e-300).is_err());
        assert_eq!(
            check::in_open_closed("y", 1.0, 0.0, 1.0, "in (0, 1]"),
            Ok(1.0)
        );
        assert!(check::in_open_closed("y", 0.0, 0.0, 1.0, "in (0, 1]").is_err());
        assert!(check::in_open_closed("y", f64::NAN, 0.0, 1.0, "in (0, 1]").is_err());
    }

    #[test]
    fn source_chain_reaches_the_wrapped_error() {
        let v = ValidationError::new("n", 0.0, "finite and > 0");
        let e = PpatcError::from(v.clone());
        let src = e.source().expect("validation has a source");
        assert_eq!(src.to_string(), v.to_string());
        assert!(PpatcError::FailureBudgetExceeded {
            failed: 3,
            samples: 10,
            budget: 0.1
        }
        .source()
        .is_none());
    }

    #[test]
    fn display_covers_budget_variant() {
        let e = PpatcError::FailureBudgetExceeded {
            failed: 7,
            samples: 100,
            budget: 0.05,
        };
        let text = e.to_string();
        assert!(text.contains("7 of 100"), "{text}");
        assert!(text.contains("5.0%"), "{text}");
    }

    #[test]
    fn display_covers_no_survivors_variant() {
        let e = PpatcError::NoSurvivingSamples { samples: 42 };
        let text = e.to_string();
        assert!(text.contains("all 42"), "{text}");
        assert!(text.contains("no"), "{text}");
        assert!(e.source().is_none());
    }

    #[test]
    fn display_covers_supervision_variants() {
        let e = PpatcError::Interrupted {
            reason: InterruptReason::Cancelled,
            completed: vec![(0, 10), (20, 25)],
            total: 100,
        };
        let text = e.to_string();
        assert!(text.contains("cancelled"), "{text}");
        assert!(text.contains("15 of 100"), "{text}");
        assert!(e.source().is_none());

        let e = PpatcError::Interrupted {
            reason: InterruptReason::DeadlineExpired,
            completed: Vec::new(),
            total: 7,
        };
        let text = e.to_string();
        assert!(text.contains("deadline expired"), "{text}");
        assert!(text.contains("0 of 7"), "{text}");

        let e = PpatcError::WorkerPanic { index: 37 };
        let text = e.to_string();
        assert!(text.contains("37"), "{text}");
        assert!(e.source().is_none());

        let e = PpatcError::Checkpoint {
            detail: "short read".to_owned(),
        };
        assert!(e.to_string().contains("short read"));
        assert!(e.source().is_none());
    }
}
