//! Carbon-efficiency design-space optimization.
//!
//! The tCDP metric the paper adopts comes from the CORDOBA
//! carbon-efficient-optimization framework (its ref. \[18\]); this module
//! provides that workflow on top of the PPAtC models: enumerate a design
//! space (technology × threshold flavor × clock), apply engineering
//! constraints (latency / area / power), and rank the feasible designs by
//! tCDP at the target lifetime.
//!
//! ```no_run
//! use ppatc::optimize::{Constraints, DesignSpace, Optimizer};
//! use ppatc::{Lifetime, UsagePattern};
//! use ppatc_units::Time;
//! use ppatc_workloads::Workload;
//!
//! let run = Workload::matmul_int().execute()?;
//! let best = Optimizer::new(DesignSpace::paper_default(), Lifetime::months(24.0))
//!     .with_constraints(Constraints::new().with_max_execution_time(Time::from_seconds(0.05)))
//!     .run(&run)
//!     .into_iter()
//!     .find(|c| c.feasible)
//!     .ok_or("no feasible design")?;
//! println!("best: {} @ {:.0} MHz, tCDP {:.4} gCO2e/Hz",
//!     best.technology, best.f_clk.as_megahertz(), best.tcdp.as_grams_per_hertz());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::embodied::EmbodiedPipeline;
use crate::error::PpatcError;
use crate::lifetime::Lifetime;
use crate::system::SystemDesign;
use crate::usage::UsagePattern;
use ppatc_pdk::{SiVtFlavor, Technology};
use ppatc_units::{Area, CarbonDelay, Frequency, Power, Time};
use ppatc_workloads::WorkloadRun;

/// The candidate axes an [`Optimizer`] enumerates.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpace {
    technologies: Vec<Technology>,
    flavors: Vec<SiVtFlavor>,
    clocks: Vec<Frequency>,
}

impl DesignSpace {
    /// The paper-adjacent space: both technologies, all four flavors, and
    /// the Fig. 4 clock sweep (100 MHz – 1 GHz in 100 MHz steps).
    pub fn paper_default() -> Self {
        Self {
            technologies: Technology::ALL.to_vec(),
            flavors: SiVtFlavor::ALL.to_vec(),
            clocks: (1..=10)
                .map(|i| Frequency::from_megahertz(100.0 * f64::from(i)))
                .collect(),
        }
    }

    /// A custom space.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn new(
        technologies: Vec<Technology>,
        flavors: Vec<SiVtFlavor>,
        clocks: Vec<Frequency>,
    ) -> Self {
        assert!(
            !technologies.is_empty() && !flavors.is_empty() && !clocks.is_empty(),
            "design space axes must be non-empty"
        );
        Self {
            technologies,
            flavors,
            clocks,
        }
    }

    /// Number of candidate points.
    pub fn len(&self) -> usize {
        self.technologies.len() * self.flavors.len() * self.clocks.len()
    }

    /// Whether the space is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Feasibility constraints applied to each candidate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Constraints {
    max_execution_time: Option<Time>,
    max_area: Option<Area>,
    max_power: Option<Power>,
}

impl Constraints {
    /// No constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latency constraint: the application must finish within `t`.
    #[must_use]
    pub fn with_max_execution_time(mut self, t: Time) -> Self {
        self.max_execution_time = Some(t);
        self
    }

    /// Die-area constraint.
    #[must_use]
    pub fn with_max_area(mut self, a: Area) -> Self {
        self.max_area = Some(a);
        self
    }

    /// Busy-power constraint.
    #[must_use]
    pub fn with_max_power(mut self, p: Power) -> Self {
        self.max_power = Some(p);
        self
    }
}

/// One evaluated candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Technology of the candidate.
    pub technology: Technology,
    /// Logic threshold flavor.
    pub flavor: SiVtFlavor,
    /// Clock frequency.
    pub f_clk: Frequency,
    /// tCDP at the optimizer's lifetime.
    pub tcdp: CarbonDelay,
    /// Application execution time.
    pub execution_time: Time,
    /// Die area.
    pub area: Area,
    /// Busy power.
    pub power: Power,
    /// Whether all constraints are met.
    pub feasible: bool,
}

/// Ranks a design space by tCDP for one workload.
#[derive(Clone, Debug)]
pub struct Optimizer {
    space: DesignSpace,
    lifetime: Lifetime,
    constraints: Constraints,
    usage: UsagePattern,
    embodied: EmbodiedPipeline,
}

impl Optimizer {
    /// Creates an optimizer over `space` evaluating tCDP at `lifetime`,
    /// with the paper's usage pattern and embodied pipeline.
    pub fn new(space: DesignSpace, lifetime: Lifetime) -> Self {
        Self {
            space,
            lifetime,
            constraints: Constraints::default(),
            usage: UsagePattern::paper_default(),
            embodied: EmbodiedPipeline::paper_default(),
        }
    }

    /// Sets the constraints.
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the usage pattern.
    #[must_use]
    pub fn with_usage(mut self, usage: UsagePattern) -> Self {
        self.usage = usage;
        self
    }

    /// Sets the embodied pipeline.
    #[must_use]
    pub fn with_embodied(mut self, embodied: EmbodiedPipeline) -> Self {
        self.embodied = embodied;
        self
    }

    /// Evaluates every candidate that can be designed at all (logic and
    /// memory close timing), ranking feasible candidates first, each group
    /// by ascending tCDP.
    pub fn run(&self, workload: &WorkloadRun) -> Vec<Candidate> {
        self.run_jobs(workload, 1)
    }

    /// [`Optimizer::run`] with candidate evaluation sharded across `jobs`
    /// workers. The ranking is byte-identical to the serial run for any
    /// worker count: candidates are evaluated at fixed enumeration indices
    /// and merged back into enumeration order before the (stable) sort.
    /// Repeated eDRAM characterizations across candidates sharing a
    /// `(technology, organization)` pair are served from
    /// [`ppatc_edram::EdramMacro`]'s memo cache.
    pub fn run_jobs(&self, workload: &WorkloadRun, jobs: usize) -> Vec<Candidate> {
        let points = self.enumerate_points();
        let evaluated = crate::eval::par_map_indexed(points.len(), jobs, |k| {
            let (tech, flavor, f_clk) = points[k];
            self.evaluate_candidate(tech, flavor, f_clk, workload)
        });
        Self::rank(evaluated.into_iter().flatten().collect())
    }

    /// [`Optimizer::run_jobs`] under a [`crate::eval::RunBudget`]: the sweep
    /// honors a cancellation token and deadline (checked at chunk
    /// boundaries) and isolates worker panics. A completed run is
    /// byte-identical to [`Optimizer::run_jobs`] for any worker count.
    ///
    /// # Errors
    ///
    /// [`PpatcError::Interrupted`] when the budget stops the sweep and
    /// [`PpatcError::WorkerPanic`] if a candidate evaluation panics — a
    /// partial design-space ranking would silently misreport the optimum,
    /// so unlike Monte-Carlo sampling no failure budget applies here.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_run_supervised(
        &self,
        workload: &WorkloadRun,
        jobs: usize,
        budget: &crate::eval::RunBudget,
    ) -> Result<Vec<Candidate>, PpatcError> {
        let points = self.enumerate_points();
        let evaluated = crate::eval::try_par_map_indexed(points.len(), jobs, budget, |k| {
            let (tech, flavor, f_clk) = points[k];
            self.evaluate_candidate(tech, flavor, f_clk, workload)
        })?;
        let mut out = Vec::with_capacity(evaluated.len());
        for candidate in evaluated {
            if let Some(c) = candidate? {
                out.push(c);
            }
        }
        Ok(Self::rank(out))
    }

    /// Enumerates the candidate grid in the fixed
    /// technology-major/clock-minor order that pins parallel determinism.
    fn enumerate_points(&self) -> Vec<(Technology, SiVtFlavor, Frequency)> {
        let mut points = Vec::with_capacity(self.space.len());
        for &tech in &self.space.technologies {
            for &flavor in &self.space.flavors {
                for &f_clk in &self.space.clocks {
                    points.push((tech, flavor, f_clk));
                }
            }
        }
        points
    }

    /// Stable-sorts candidates feasible-first, each group by ascending
    /// tCDP.
    fn rank(mut out: Vec<Candidate>) -> Vec<Candidate> {
        out.sort_by(|a, b| {
            b.feasible.cmp(&a.feasible).then(f64::total_cmp(
                &a.tcdp.as_grams_per_hertz(),
                &b.tcdp.as_grams_per_hertz(),
            ))
        });
        out
    }

    /// Evaluates one design point; `None` when it cannot close timing (not
    /// a design at all).
    fn evaluate_candidate(
        &self,
        tech: Technology,
        flavor: SiVtFlavor,
        f_clk: Frequency,
        workload: &WorkloadRun,
    ) -> Option<Candidate> {
        let design = SystemDesign::with_flavor(tech, f_clk, flavor).ok()?;
        let eval = design.evaluate(workload);
        let embodied = self.embodied.per_good_die(&design);
        let trajectory = crate::lifetime::CarbonTrajectory::new(
            embodied.per_good_die(),
            eval.operational_power,
            self.usage,
            eval.execution_time,
        );
        let feasible = self
            .constraints
            .max_execution_time
            .is_none_or(|t| eval.execution_time <= t)
            && self.constraints.max_area.is_none_or(|a| design.area() <= a)
            && self
                .constraints
                .max_power
                .is_none_or(|p| eval.operational_power <= p);
        Some(Candidate {
            technology: tech,
            flavor,
            f_clk,
            tcdp: trajectory.tcdp(self.lifetime),
            execution_time: eval.execution_time,
            area: design.area(),
            power: eval.operational_power,
            feasible,
        })
    }

    /// The Pareto front over (execution time, tCDP) among feasible
    /// candidates: no returned design is beaten on both axes by another.
    pub fn pareto_front(&self, workload: &WorkloadRun) -> Vec<Candidate> {
        self.pareto_front_jobs(workload, 1)
    }

    /// [`Optimizer::pareto_front`] with candidate evaluation sharded across
    /// `jobs` workers; byte-identical to the serial front for any worker
    /// count.
    pub fn pareto_front_jobs(&self, workload: &WorkloadRun, jobs: usize) -> Vec<Candidate> {
        let all = self.run_jobs(workload, jobs);
        let feasible: Vec<&Candidate> = all.iter().filter(|c| c.feasible).collect();
        let mut front: Vec<Candidate> = Vec::new();
        for c in &feasible {
            let dominated = feasible.iter().any(|o| {
                (o.execution_time < c.execution_time && o.tcdp <= c.tcdp)
                    || (o.execution_time <= c.execution_time && o.tcdp < c.tcdp)
            });
            if !dominated {
                front.push((*c).clone());
            }
        }
        front.sort_by(|a, b| {
            f64::total_cmp(
                &a.execution_time.as_seconds(),
                &b.execution_time.as_seconds(),
            )
        });
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_workloads::Workload;
    use std::sync::OnceLock;

    fn run() -> &'static WorkloadRun {
        static RUN: OnceLock<WorkloadRun> = OnceLock::new();
        RUN.get_or_init(|| {
            Workload::matmul_int()
                .execute_with_reps(4)
                .expect("matmul runs")
        })
    }

    fn small_space() -> DesignSpace {
        DesignSpace::new(
            Technology::ALL.to_vec(),
            vec![SiVtFlavor::Rvt],
            vec![
                Frequency::from_megahertz(250.0),
                Frequency::from_megahertz(500.0),
            ],
        )
    }

    #[test]
    fn ranks_feasible_designs_by_tcdp() {
        let opt = Optimizer::new(small_space(), Lifetime::months(24.0));
        let ranked = opt.run(run());
        assert_eq!(ranked.len(), 4);
        for pair in ranked.windows(2) {
            if pair[0].feasible == pair[1].feasible {
                assert!(pair[0].tcdp <= pair[1].tcdp);
            } else {
                assert!(pair[0].feasible);
            }
        }
    }

    #[test]
    fn latency_constraint_excludes_slow_clocks() {
        // matmul at 4 reps ≈ 438k cycles: 250 MHz needs 1.75 ms, 500 MHz
        // 0.88 ms. Constrain to 1 ms.
        let opt = Optimizer::new(small_space(), Lifetime::months(24.0)).with_constraints(
            Constraints::new().with_max_execution_time(Time::from_seconds(1.0e-3)),
        );
        let ranked = opt.run(run());
        for c in &ranked {
            if c.f_clk.as_megahertz() < 300.0 {
                assert!(!c.feasible, "250 MHz cannot meet 1 ms");
            } else {
                assert!(c.feasible);
            }
        }
    }

    #[test]
    fn m3d_wins_at_long_lifetimes_and_loses_early() {
        let opt_late = Optimizer::new(small_space(), Lifetime::months(24.0));
        let best_late = &opt_late.run(run())[0];
        assert_eq!(best_late.technology, Technology::M3dIgzoCnfetSi);

        let opt_early = Optimizer::new(small_space(), Lifetime::months(3.0));
        let best_early = &opt_early.run(run())[0];
        assert_eq!(best_early.technology, Technology::AllSi);
    }

    #[test]
    fn infeasible_timing_candidates_are_dropped() {
        // HVT at 1 GHz cannot even be designed — the space shrinks.
        let space = DesignSpace::new(
            vec![Technology::AllSi],
            vec![SiVtFlavor::Hvt],
            vec![
                Frequency::from_megahertz(500.0),
                Frequency::from_gigahertz(1.0),
            ],
        );
        let ranked = Optimizer::new(space, Lifetime::months(24.0)).run(run());
        assert_eq!(ranked.len(), 1);
        assert!((ranked[0].f_clk.as_megahertz() - 500.0).abs() < 1.0);
    }

    #[test]
    fn pareto_front_is_nondominated_and_sorted() {
        let opt = Optimizer::new(DesignSpace::paper_default(), Lifetime::months(24.0));
        let front = opt.pareto_front(run());
        assert!(!front.is_empty());
        for pair in front.windows(2) {
            assert!(pair[0].execution_time < pair[1].execution_time);
            // Along the front, slower designs must be strictly better in tCDP.
            assert!(pair[0].tcdp > pair[1].tcdp);
        }
    }

    #[test]
    fn supervised_run_matches_unsupervised() {
        let opt = Optimizer::new(small_space(), Lifetime::months(24.0));
        let plain = opt.run_jobs(run(), 2);
        let supervised = opt
            .try_run_supervised(run(), 2, &crate::eval::RunBudget::unlimited())
            .expect("unlimited budget completes");
        assert_eq!(plain, supervised);
    }

    #[test]
    fn cancelled_sweep_reports_an_interrupt() {
        let token = crate::eval::CancelToken::new();
        token.cancel();
        let budget = crate::eval::RunBudget::unlimited().with_cancel(&token);
        let opt = Optimizer::new(small_space(), Lifetime::months(24.0));
        let e = opt
            .try_run_supervised(run(), 2, &budget)
            .expect_err("pre-cancelled sweep stops");
        assert!(matches!(
            e,
            crate::error::PpatcError::Interrupted {
                reason: crate::error::InterruptReason::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn area_constraint_prefers_m3d() {
        // Only the M3D die fits under 0.09 mm².
        let opt = Optimizer::new(small_space(), Lifetime::months(24.0)).with_constraints(
            Constraints::new().with_max_area(ppatc_units::Area::from_square_millimeters(0.09)),
        );
        let ranked = opt.run(run());
        for c in ranked {
            assert_eq!(c.feasible, c.technology == Technology::M3dIgzoCnfetSi);
        }
    }
}
