//! Crash-safe, line-oriented checkpoint journals for supervised runs.
//!
//! A [`Journal`] records completed work items of one supervised parallel
//! run (see [`crate::eval::try_par_map_journaled`]) as plain text lines:
//! a header identifying the run, then one line per completed chunk. Each
//! item's value is serialized as fixed-width hexadecimal `u64` words, so
//! the format is append-only, human-inspectable, and torn-write safe — a
//! partial trailing line (the only damage a crash can cause to an
//! append-and-flush writer) fails to parse and is simply skipped on
//! resume, costing at most one chunk of recomputation.
//!
//! # Determinism
//!
//! Every journaled run maps an index space `0..n` through a pure function
//! of the index (Monte-Carlo samples are pure in `(seed, i)`, raster cells
//! in their grid coordinates), and the engine merges results back into
//! index order. Replaying journaled items therefore yields *byte-identical*
//! results to recomputing them: the journal stores exact `f64` bit
//! patterns, and which items came from the journal cannot be observed in
//! the output. A [`JournalSpec`] fingerprint of the run parameters guards
//! against resuming with a different configuration.

use crate::error::PpatcError;
use ppatc_units::rng::SplitMix64;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Tag word marking a journaled item that evaluated successfully.
const TAG_OK: u64 = 0;
/// Tag word marking a journaled item whose closure panicked (the panic is
/// deterministic, so it is journaled and replayed as
/// [`PpatcError::WorkerPanic`] instead of re-unwinding on resume).
const TAG_PANICKED: u64 = 1;

/// Seed for the run-parameter fingerprint (the SplitMix64 golden-gamma
/// constant; any fixed odd value works).
const FINGERPRINT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// One fold step of the run-parameter fingerprint.
fn fold(acc: u64, word: u64) -> u64 {
    let mut s = SplitMix64::new(acc ^ word);
    s.next_u64()
}

/// A value that can be journaled as a fixed number of `u64` words.
///
/// `encode` must push exactly [`Checkpointable::WIDTH`] words and `decode`
/// must invert it bit-exactly; floating-point values round-trip through
/// `to_bits`/`from_bits` so NaN payloads and signed zeros survive.
pub trait Checkpointable: Sized {
    /// Number of `u64` words one value occupies in the journal.
    const WIDTH: usize;
    /// Appends exactly [`Checkpointable::WIDTH`] words to `out`.
    fn encode(&self, out: &mut Vec<u64>);
    /// Rebuilds a value from [`Checkpointable::WIDTH`] words; `None` if the
    /// words are malformed (wrong count or unrepresentable payload).
    fn decode(words: &[u64]) -> Option<Self>;
}

impl Checkpointable for f64 {
    const WIDTH: usize = 1;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits());
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [w] => Some(f64::from_bits(*w)),
            _ => None,
        }
    }
}

impl Checkpointable for (f64, f64, f64) {
    const WIDTH: usize = 3;

    fn encode(&self, out: &mut Vec<u64>) {
        out.extend([self.0.to_bits(), self.1.to_bits(), self.2.to_bits()]);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [a, b, c] => Some((f64::from_bits(*a), f64::from_bits(*b), f64::from_bits(*c))),
            _ => None,
        }
    }
}

impl Checkpointable for usize {
    const WIDTH: usize = 1;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [w] => usize::try_from(*w).ok(),
            _ => None,
        }
    }
}

/// Identity of one journaled run: what kind of run it is, how many items
/// it spans, how wide each item is, and a fingerprint of every parameter
/// that influences item values.
///
/// Two runs with the same spec are guaranteed to produce identical items
/// (each item is a pure function of its index and the fingerprinted
/// parameters), which is what makes replaying a journal sound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalSpec {
    /// Short run-kind label, e.g. `"montecarlo"` or `"raster"`.
    pub kind: &'static str,
    /// Number of items in the run's index space.
    pub items: usize,
    /// `u64` words per item (the item type's [`Checkpointable::WIDTH`]).
    pub item_width: usize,
    /// Fold of `kind`, `items`, `item_width`, and the caller's parameter
    /// words; a resumed journal must match it exactly.
    pub fingerprint: u64,
}

impl JournalSpec {
    /// Builds the spec for a run of `items` values of type `T`, folding
    /// `params` (every seed, bound, and knob that influences item values,
    /// as raw `u64`/bit-pattern words) into the fingerprint.
    pub fn for_run<T: Checkpointable>(kind: &'static str, items: usize, params: &[u64]) -> Self {
        let mut acc = FINGERPRINT_SEED;
        for b in kind.bytes() {
            acc = fold(acc, u64::from(b));
        }
        acc = fold(acc, items as u64);
        acc = fold(acc, T::WIDTH as u64);
        for &p in params {
            acc = fold(acc, p);
        }
        Self {
            kind,
            items,
            item_width: T::WIDTH,
            fingerprint: acc,
        }
    }

    /// The exact header line this spec writes and expects.
    fn header_line(&self) -> String {
        format!(
            "ppatc-journal v1 kind={} items={} width={} fingerprint={:016x}",
            self.kind, self.items, self.item_width, self.fingerprint
        )
    }
}

/// Wraps an I/O failure on the journal file as a [`PpatcError::Checkpoint`].
fn journal_error(path: &Path, action: &str, e: &std::io::Error) -> PpatcError {
    PpatcError::Checkpoint {
        detail: format!("could not {action} {}: {e}", path.display()),
    }
}

/// An append-only checkpoint journal bound to one run spec.
///
/// Create with [`Journal::try_create`] (fresh run) or
/// [`Journal::try_resume`] (reload completed items, then keep appending),
/// then pass to [`crate::eval::try_par_map_journaled`]. Appends are
/// line-buffered and flushed per chunk, so a crash loses at most the
/// in-flight line.
pub struct Journal {
    path: PathBuf,
    spec: JournalSpec,
    writer: Mutex<BufWriter<File>>,
    /// Items reloaded by [`Journal::try_resume`], keyed by index; each
    /// value is the `[tag, payload...]` word run from the file.
    preloaded: HashMap<usize, Vec<u64>>,
}

impl core::fmt::Debug for Journal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("spec", &self.spec)
            .field("preloaded", &self.preloaded.len())
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates (truncating) a fresh journal at `path` and writes its
    /// header.
    ///
    /// # Errors
    ///
    /// [`PpatcError::Checkpoint`] if the file cannot be created or written.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_create(path: impl Into<PathBuf>, spec: &JournalSpec) -> Result<Self, PpatcError> {
        let path = path.into();
        let file = File::create(&path).map_err(|e| journal_error(&path, "create", &e))?;
        let mut writer = BufWriter::new(file);
        writer
            .write_all(spec.header_line().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| journal_error(&path, "write the header of", &e))?;
        Ok(Self {
            path,
            spec: spec.clone(),
            writer: Mutex::new(writer),
            preloaded: HashMap::new(),
        })
    }

    /// Opens an existing journal at `path`, reloads every parseable chunk
    /// line, and reopens the file for appending. A missing file falls back
    /// to [`Journal::try_create`]. Malformed or torn lines are skipped.
    ///
    /// # Errors
    ///
    /// [`PpatcError::Checkpoint`] if the file cannot be read or reopened,
    /// if its header does not match `spec` (resuming a different run would
    /// silently splice unrelated results), or if a *complete* chunk line
    /// indexes past the end of the run — that cannot result from a torn
    /// write, so the journal belongs to some other run and skipping the
    /// line would silently discard evidence of corruption.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_resume(path: impl Into<PathBuf>, spec: &JournalSpec) -> Result<Self, PpatcError> {
        let path = path.into();
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Self::try_create(path, spec);
            }
            Err(e) => return Err(journal_error(&path, "open", &e)),
        };

        let mut preloaded = HashMap::new();
        let mut lines = BufReader::new(file).lines();
        let header = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => return Err(journal_error(&path, "read the header of", &e)),
            None => String::new(),
        };
        let expected = spec.header_line();
        if header != expected {
            return Err(PpatcError::Checkpoint {
                detail: format!(
                    "journal {} belongs to a different run: found header '{header}', \
                     expected '{expected}'",
                    path.display()
                ),
            });
        }
        for line in lines {
            let line = line.map_err(|e| journal_error(&path, "read", &e))?;
            match parse_chunk_line(&line, spec) {
                ChunkLine::Chunk(start, items) => {
                    for (offset, words) in items.into_iter().enumerate() {
                        preloaded.insert(start + offset, words);
                    }
                }
                ChunkLine::OutOfRange { start, count } => {
                    return Err(PpatcError::Checkpoint {
                        detail: format!(
                            "journal {} is corrupt: a complete chunk line claims items \
                             {start}..{} but the run spans only {} items — refusing to \
                             resume from a journal that does not belong to this run",
                            path.display(),
                            start.saturating_add(count),
                            spec.items
                        ),
                    });
                }
                ChunkLine::Malformed => {}
            }
        }

        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| journal_error(&path, "reopen for append", &e))?;
        Ok(Self {
            path,
            spec: spec.clone(),
            writer: Mutex::new(BufWriter::new(file)),
            preloaded,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The spec this journal was opened with.
    pub fn spec(&self) -> &JournalSpec {
        &self.spec
    }

    /// Number of distinct items reloaded from disk by
    /// [`Journal::try_resume`] (zero for a fresh journal).
    pub fn completed_items(&self) -> usize {
        self.preloaded.len()
    }

    /// The reloaded value of item `index`, if present: `Ok` with the
    /// decoded value, or `Err(WorkerPanic)` for an item journaled as a
    /// deterministic panic. `None` (recompute) if absent or undecodable.
    pub(crate) fn preloaded_item<T: Checkpointable>(
        &self,
        index: usize,
    ) -> Option<Result<T, PpatcError>> {
        let words = self.preloaded.get(&index)?;
        let (tag, payload) = words.split_first()?;
        if *tag == TAG_PANICKED {
            return Some(Err(PpatcError::WorkerPanic { index }));
        }
        T::decode(payload).map(Ok)
    }

    /// Appends one completed chunk (items `start..start + run.len()`) as a
    /// single flushed line.
    pub(crate) fn append_chunk<T: Checkpointable>(
        &self,
        start: usize,
        run: &[Result<T, PpatcError>],
    ) -> Result<(), PpatcError> {
        use std::fmt::Write as _;
        let mut line = format!("c {start} {}", run.len());
        let mut words: Vec<u64> = Vec::with_capacity(T::WIDTH);
        for item in run {
            words.clear();
            let tag = match item {
                Ok(v) => {
                    v.encode(&mut words);
                    TAG_OK
                }
                Err(_) => {
                    words.resize(T::WIDTH, 0);
                    TAG_PANICKED
                }
            };
            debug_assert_eq!(
                words.len(),
                T::WIDTH,
                "encode must push exactly WIDTH words"
            );
            // Writing into a String cannot fail.
            let _ = write!(line, " {tag:016x}");
            for w in &words {
                let _ = write!(line, " {w:016x}");
            }
        }
        line.push('\n');
        let mut writer = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| journal_error(&self.path, "append to", &e))
    }

    /// Guards against using a journal with an item type of a different
    /// width than it was opened for.
    pub(crate) fn require_width<T: Checkpointable>(&self) -> Result<(), PpatcError> {
        if self.spec.item_width == T::WIDTH {
            Ok(())
        } else {
            Err(PpatcError::Checkpoint {
                detail: format!(
                    "journal {} stores items of width {}, but the run produces width {}",
                    self.path.display(),
                    self.spec.item_width,
                    T::WIDTH
                ),
            })
        }
    }
}

/// Classification of one journal body line on resume.
#[derive(Debug, PartialEq)]
enum ChunkLine {
    /// A well-formed, in-range chunk: items `start..start + values.len()`.
    Chunk(usize, Vec<Vec<u64>>),
    /// A *complete, well-formed* chunk line whose index range does not fit
    /// the run (`start + count > items`). A torn write cannot produce
    /// this — every word is present and parses — so it means the journal
    /// does not belong to this run (hand-edited, spliced, or a fingerprint
    /// collision) and resume must refuse rather than silently drop it.
    OutOfRange { start: usize, count: usize },
    /// Torn or garbage line (truncated words, bad hex, trailing junk);
    /// skipped on resume at the cost of recomputing that chunk.
    Malformed,
}

/// Parses one `c <start> <count> <words...>` chunk line; see [`ChunkLine`]
/// for how damage is distinguished from corruption.
fn parse_chunk_line(line: &str, spec: &JournalSpec) -> ChunkLine {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("c") {
        return ChunkLine::Malformed;
    }
    let Some(start) = toks.next().and_then(|t| t.parse::<usize>().ok()) else {
        return ChunkLine::Malformed;
    };
    let Some(count) = toks.next().and_then(|t| t.parse::<usize>().ok()) else {
        return ChunkLine::Malformed;
    };
    if count == 0 {
        return ChunkLine::Malformed;
    }
    let Some(stride) = spec.item_width.checked_add(1) else {
        return ChunkLine::Malformed;
    };
    let mut items = Vec::with_capacity(count.min(spec.items));
    for _ in 0..count {
        let mut words = Vec::with_capacity(stride);
        for _ in 0..stride {
            match toks.next().map(|t| u64::from_str_radix(t, 16)) {
                Some(Ok(w)) => words.push(w),
                _ => return ChunkLine::Malformed,
            }
        }
        items.push(words);
    }
    if toks.next().is_some() {
        return ChunkLine::Malformed;
    }
    // Only now that the whole line is known to be complete does an index
    // range past the end of the run mean corruption rather than a tear.
    if start.checked_add(count).is_none_or(|end| end > spec.items) {
        return ChunkLine::OutOfRange { start, count };
    }
    ChunkLine::Chunk(start, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A collision-free scratch path for one test.
    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ppatc-journal-{}-{name}.txt", std::process::id()))
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        for v in [0.0_f64, -0.0, 1.5, f64::NAN, f64::NEG_INFINITY, 1e-300] {
            let mut words = Vec::new();
            v.encode(&mut words);
            let back = f64::decode(&words).expect("width matches");
            assert_eq!(v.to_bits(), back.to_bits());
        }
        type Triple = (f64, f64, f64);
        let cell: Triple = (1.0_f64, f64::NAN, -3.25_f64);
        let mut words = Vec::new();
        cell.encode(&mut words);
        let back = Triple::decode(&words).expect("width matches");
        assert_eq!(cell.0.to_bits(), back.0.to_bits());
        assert_eq!(cell.1.to_bits(), back.1.to_bits());
        assert_eq!(cell.2.to_bits(), back.2.to_bits());
        assert_eq!(f64::decode(&[]), None);
        assert_eq!(Triple::decode(&[0, 0]), None);
        assert_eq!(usize::decode(&[7]), Some(7));
    }

    #[test]
    fn create_append_resume_reloads_every_item() {
        let path = scratch("roundtrip");
        let spec = JournalSpec::for_run::<f64>("test", 10, &[42]);
        {
            let j = Journal::try_create(&path, &spec).expect("create");
            j.append_chunk::<f64>(0, &[Ok(1.5), Ok(f64::NAN)])
                .expect("append");
            j.append_chunk::<f64>(5, &[Ok(-0.0), Err(PpatcError::WorkerPanic { index: 6 })])
                .expect("append");
        }
        let j = Journal::try_resume(&path, &spec).expect("resume");
        assert_eq!(j.completed_items(), 4);
        assert_eq!(j.preloaded_item::<f64>(0), Some(Ok(1.5)));
        match j.preloaded_item::<f64>(1) {
            Some(Ok(v)) => assert!(v.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
        assert_eq!(
            j.preloaded_item::<f64>(5).map(|r| r.map(f64::to_bits)),
            Some(Ok((-0.0_f64).to_bits()))
        );
        assert_eq!(
            j.preloaded_item::<f64>(6),
            Some(Err(PpatcError::WorkerPanic { index: 6 }))
        );
        assert_eq!(j.preloaded_item::<f64>(2), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_missing_file_creates_a_fresh_journal() {
        let path = scratch("fresh");
        let _ = std::fs::remove_file(&path);
        let spec = JournalSpec::for_run::<f64>("test", 4, &[]);
        let j = Journal::try_resume(&path, &spec).expect("fresh resume");
        assert_eq!(j.completed_items(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_spec_is_rejected_on_resume() {
        let path = scratch("mismatch");
        let spec = JournalSpec::for_run::<f64>("test", 10, &[1]);
        drop(Journal::try_create(&path, &spec).expect("create"));
        let other = JournalSpec::for_run::<f64>("test", 10, &[2]);
        let err = Journal::try_resume(&path, &other).expect_err("fingerprint differs");
        assert!(matches!(err, PpatcError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("different run"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = scratch("torn");
        let spec = JournalSpec::for_run::<f64>("test", 10, &[]);
        {
            let j = Journal::try_create(&path, &spec).expect("create");
            j.append_chunk::<f64>(0, &[Ok(2.0)]).expect("append");
        }
        // Simulate a crash mid-append: a truncated chunk line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen");
            write!(f, "c 3 2 00000000000").expect("torn write");
        }
        let j = Journal::try_resume(&path, &spec).expect("resume survives the tear");
        assert_eq!(j.completed_items(), 1);
        assert_eq!(j.preloaded_item::<f64>(0), Some(Ok(2.0)));
        assert_eq!(j.preloaded_item::<f64>(3), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_lines_are_skipped_but_complete_out_of_range_lines_are_corruption() {
        let spec = JournalSpec::for_run::<f64>("test", 4, &[]);
        assert_eq!(parse_chunk_line("", &spec), ChunkLine::Malformed);
        assert_eq!(
            parse_chunk_line("x 0 1 0000000000000000 0000000000000000", &spec),
            ChunkLine::Malformed
        );
        // Trailing garbage.
        assert_eq!(
            parse_chunk_line("c 0 1 0000000000000000 0000000000000000 junk", &spec),
            ChunkLine::Malformed
        );
        // A *complete* line indexing past the end of the run is not tear
        // damage — it is evidence the journal belongs to another run.
        assert_eq!(
            parse_chunk_line(
                "c 3 2 0000000000000000 0000000000000000 0000000000000000 0000000000000000",
                &spec
            ),
            ChunkLine::OutOfRange { start: 3, count: 2 }
        );
        // ... but the same range *truncated* is an ordinary torn line.
        assert_eq!(
            parse_chunk_line("c 3 2 0000000000000000 0000000000000000 00000000", &spec),
            ChunkLine::Malformed
        );
        // A well-formed line parses.
        match parse_chunk_line("c 1 1 0000000000000000 3ff8000000000000", &spec) {
            ChunkLine::Chunk(start, items) => {
                assert_eq!(start, 1);
                assert_eq!(items, vec![vec![0, 1.5_f64.to_bits()]]);
            }
            other => panic!("expected a chunk, got {other:?}"),
        }
    }

    #[test]
    fn resume_refuses_a_journal_with_out_of_range_chunks() {
        let path = scratch("out-of-range");
        let spec = JournalSpec::for_run::<f64>("test", 4, &[]);
        {
            let j = Journal::try_create(&path, &spec).expect("create");
            j.append_chunk::<f64>(0, &[Ok(2.0)]).expect("append");
        }
        // Splice in a complete chunk line from a longer run: same header
        // shape, indices past the end of this run's 4-item space.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen");
            writeln!(
                f,
                "c 6 2 0000000000000000 3ff0000000000000 0000000000000000 4000000000000000"
            )
            .expect("splice");
        }
        let err = Journal::try_resume(&path, &spec).expect_err("corruption is fatal");
        assert!(matches!(err, PpatcError::Checkpoint { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("corrupt"), "{msg}");
        assert!(
            msg.contains("6..8") && msg.contains("only 4 items"),
            "the error names the offending counts: {msg}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_distinguishes_kind_items_and_params() {
        let a = JournalSpec::for_run::<f64>("montecarlo", 100, &[1, 2]);
        let b = JournalSpec::for_run::<f64>("raster", 100, &[1, 2]);
        let c = JournalSpec::for_run::<f64>("montecarlo", 101, &[1, 2]);
        let d = JournalSpec::for_run::<f64>("montecarlo", 100, &[1, 3]);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
        assert_ne!(a.fingerprint, d.fingerprint);
        assert_eq!(
            a,
            JournalSpec::for_run::<f64>("montecarlo", 100, &[1, 2]),
            "specs are deterministic"
        );
    }
}
