//! The parallel evaluation engine.
//!
//! Every headline exhibit — the Fig. 6b isoline uncertainty band, the joint
//! Monte-Carlo summary, the capacity sweep, the design-space ranking —
//! reduces to thousands of *independent* tCDP evaluations. This module
//! shards such index spaces across `std::thread::scope` workers (the
//! pattern proven by `ppatc-lint`'s per-file stage) while keeping the
//! results **byte-identical to a serial run for any worker count**:
//!
//! - each work item is a pure function of its index (Monte-Carlo samples
//!   draw from counter-indexed [`SplitMix64::stream`]s, grid points from
//!   their coordinates), so no draw-order coupling exists to begin with;
//! - workers steal fixed-size *chunks* of the index range and return
//!   `(start, results)` runs, which are merged back into index order before
//!   any reduction — so sorts, sums, and quantiles see exactly the serial
//!   operand order.
//!
//! The engine is dependency-free: work stealing is one `AtomicUsize`, the
//! merge is a sort by chunk start.
//!
//! [`SplitMix64::stream`]: ppatc_units::rng::SplitMix64::stream

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Smallest number of items a worker claims at once. Large enough that the
/// fetch-add and the per-run allocation amortize over real work; small
/// enough that a 5-point capacity sweep still spreads across workers.
const MIN_CHUNK: usize = 1;

/// Upper bound on the chunk size, keeping late-arriving workers from
/// starving on very large index spaces.
const MAX_CHUNK: usize = 1024;

/// The default worker count: one per available core (1 when parallelism
/// cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Evaluates `f(i)` for every `i in 0..n` across `jobs` workers and returns
/// the results **in index order** — byte-identical to
/// `(0..n).map(f).collect()` for every worker count.
///
/// `jobs` is clamped to `[1, n]`; `jobs <= 1` runs inline without spawning
/// threads. Chunked work stealing keeps workers busy even when per-item
/// cost varies (a design point that fails timing returns much faster than
/// one that characterizes a memory macro).
pub fn par_map_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    // Aim for several chunks per worker so the tail balances.
    let chunk = (n / (jobs * 8)).clamp(MIN_CHUNK, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let runs: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    local.push((start, (start..end).map(&f).collect()));
                }
                if let Ok(mut all) = runs.lock() {
                    all.append(&mut local);
                }
            });
        }
    });
    let mut all = match runs.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    all.sort_by_key(|(start, _)| *start);
    all.into_iter().flat_map(|(_, run)| run).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_for_any_worker_count() {
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let parallel = par_map_indexed(1000, jobs, |i| i * i);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn small_inputs_and_edge_counts() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map_indexed(3, 100, |i| i), vec![0, 1, 2]);
        assert_eq!(par_map_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn float_results_are_bit_identical_across_worker_counts() {
        let f = |i: usize| (i as f64).sqrt().sin() / (i as f64 + 0.5);
        let serial: Vec<u64> = (0..5000).map(|i| f(i).to_bits()).collect();
        for jobs in [2, 4, 16] {
            let parallel: Vec<u64> = par_map_indexed(5000, jobs, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
