//! The parallel evaluation engine.
//!
//! Every headline exhibit — the Fig. 6b isoline uncertainty band, the joint
//! Monte-Carlo summary, the capacity sweep, the design-space ranking —
//! reduces to thousands of *independent* tCDP evaluations. This module
//! shards such index spaces across `std::thread::scope` workers (the
//! pattern proven by `ppatc-lint`'s per-file stage) while keeping the
//! results **byte-identical to a serial run for any worker count**:
//!
//! - each work item is a pure function of its index (Monte-Carlo samples
//!   draw from counter-indexed [`SplitMix64::stream`]s, grid points from
//!   their coordinates), so no draw-order coupling exists to begin with;
//! - workers steal fixed-size *chunks* of the index range and return
//!   `(start, results)` runs, which are merged back into index order before
//!   any reduction — so sorts, sums, and quantiles see exactly the serial
//!   operand order.
//!
//! The engine is dependency-free: work stealing is one `AtomicUsize`, the
//! merge is a sort by chunk start.
//!
//! # Supervision
//!
//! [`try_par_map_indexed`] is the supervised variant: a [`RunBudget`]
//! (cooperative [`CancelToken`] + polled wall-clock deadline) is checked at
//! every chunk boundary, a panicking item is caught at the item boundary
//! and returned as [`PpatcError::WorkerPanic`] instead of unwinding the
//! scope, and an interrupted run returns
//! [`PpatcError::Interrupted`] carrying the completed-index set instead of
//! discarding partial work. [`try_par_map_journaled`] additionally streams
//! completed chunks to a crash-safe [`Journal`](crate::checkpoint::Journal)
//! and replays journaled items on resume — byte-identical to an
//! uninterrupted run because every item is a pure function of its index.
//!
//! [`SplitMix64::stream`]: ppatc_units::rng::SplitMix64::stream

use crate::checkpoint::{Checkpointable, Journal, JournalSpec};
use crate::error::{InterruptReason, PpatcError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Smallest number of items a worker claims at once. Large enough that the
/// fetch-add and the per-run allocation amortize over real work; small
/// enough that a 5-point capacity sweep still spreads across workers.
const MIN_CHUNK: usize = 1;

/// Upper bound on the chunk size, keeping late-arriving workers from
/// starving on very large index spaces.
const MAX_CHUNK: usize = 1024;

/// The default worker count: one per available core (1 when parallelism
/// cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Evaluates `f(i)` for every `i in 0..n` across `jobs` workers and returns
/// the results **in index order** — byte-identical to
/// `(0..n).map(f).collect()` for every worker count.
///
/// `jobs` is clamped to `[1, n]`; `jobs <= 1` runs inline without spawning
/// threads. Chunked work stealing keeps workers busy even when per-item
/// cost varies (a design point that fails timing returns much faster than
/// one that characterizes a memory macro).
pub fn par_map_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    // Aim for several chunks per worker so the tail balances.
    let chunk = (n / (jobs * 8)).clamp(MIN_CHUNK, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let runs: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    local.push((start, (start..end).map(&f).collect()));
                }
                if let Ok(mut all) = runs.lock() {
                    all.append(&mut local);
                }
            });
        }
    });
    let mut all = match runs.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    all.sort_by_key(|(start, _)| *start);
    all.into_iter().flat_map(|(_, run)| run).collect()
}

/// Batched [`par_map_indexed`]: instead of one call per index, `f(start,
/// end)` evaluates the half-open index range `[start, end)` in one pass and
/// returns exactly `end - start` results.
///
/// **Contract:** `f(start, end)` must be bit-identical to
/// `(start..end).map(per_index).collect()` for the per-index function it
/// batches — chunk boundaries differ between worker counts, so any
/// cross-item coupling inside a batch would break the engine's
/// byte-identical-for-any-worker-count guarantee. Batch implementations
/// may hoist work that is constant across items (the hoisted values are
/// the same ones a per-index evaluation would recompute), but must not
/// reassociate per-item arithmetic.
///
/// `jobs <= 1` runs inline, feeding `f` ranges of at most [`MAX_CHUNK`]
/// items so batch buffers stay cache-sized.
pub fn par_map_indexed_batched<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> Vec<T> + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        let mut out: Vec<T> = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + MAX_CHUNK).min(n);
            let run = f(start, end);
            debug_assert_eq!(run.len(), end - start, "batch returned a wrong-size run");
            out.extend(run);
            start = end;
        }
        return out;
    }
    let chunk = (n / (jobs * 8)).clamp(MIN_CHUNK, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let runs: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let run = f(start, end);
                    debug_assert_eq!(run.len(), end - start, "batch returned a wrong-size run");
                    local.push((start, run));
                }
                if let Ok(mut all) = runs.lock() {
                    all.append(&mut local);
                }
            });
        }
    });
    let mut all = match runs.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    all.sort_by_key(|(start, _)| *start);
    all.into_iter().flat_map(|(_, run)| run).collect()
}

/// A cooperative cancellation handle: clone it, hand one clone to a
/// [`RunBudget`], and call [`CancelToken::cancel`] from any thread (a
/// signal handler, a UI, a watchdog) to stop supervised runs at their next
/// chunk boundary.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Bounds one supervised run: an optional [`CancelToken`] and an optional
/// wall-clock deadline, both polled at chunk boundaries (cheap: one atomic
/// load and one `Instant::now`). The default budget is unlimited.
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl RunBudget {
    /// A budget with no bounds (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Attaches a cancellation token (stored as a clone; cancelling the
    /// caller's token stops the run).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Bounds the run by an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the run by a wall-clock timeout from now.
    #[must_use]
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Whether this budget imposes no bounds at all.
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// Polls the budget: `Err` with the reason once cancelled or past the
    /// deadline. Called by the engine at every chunk boundary.
    pub fn check(&self) -> Result<(), InterruptReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(InterruptReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(InterruptReason::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// The matching per-solve [`ppatc_spice::SolverBudget`], sharing this
    /// budget's deadline — so a run-level deadline also stops a SPICE
    /// recovery ladder or transient loop stuck inside one work item.
    pub fn solver_budget(&self) -> ppatc_spice::SolverBudget {
        match self.deadline {
            Some(d) => ppatc_spice::SolverBudget::unlimited().with_deadline(d),
            None => ppatc_spice::SolverBudget::unlimited(),
        }
    }
}

/// Everything a supervised entry point needs beyond its inputs: the
/// [`RunBudget`], and optionally a checkpoint journal path plus whether to
/// resume from it. The default supervisor is unlimited and journal-free,
/// making supervised entry points drop-in equivalents of their unsupervised
/// counterparts.
#[derive(Clone, Debug, Default)]
pub struct Supervisor {
    budget: RunBudget,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

impl Supervisor {
    /// An unlimited supervisor with no checkpoint journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the run budget.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Journals completed chunks to `path` (created fresh unless
    /// [`Supervisor::resuming`] is set).
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Whether to reload completed items from an existing checkpoint
    /// journal instead of truncating it.
    #[must_use]
    pub fn resuming(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The run budget.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Opens this supervisor's journal for a run described by `spec`:
    /// `None` when no checkpoint path is configured, a fresh journal when
    /// not resuming, a reloaded one otherwise.
    ///
    /// # Errors
    ///
    /// [`PpatcError::Checkpoint`] on I/O failure or a spec mismatch with an
    /// existing journal.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_open_journal(&self, spec: &JournalSpec) -> Result<Option<Journal>, PpatcError> {
        match &self.checkpoint {
            None => Ok(None),
            Some(path) if self.resume => Journal::try_resume(path, spec).map(Some),
            Some(path) => Journal::try_create(path, spec).map(Some),
        }
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock (a worker that
/// panicked between the item boundary and the push cannot corrupt a
/// `Vec`/`Option` in a way we care about — partial chunks are re-run).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Whether a shared `Option` slot has been set.
fn slot_is_set<T>(slot: &Mutex<Option<T>>) -> bool {
    lock_unpoisoned(slot).is_some()
}

/// First-writer-wins store into a shared `Option` slot.
fn set_slot_once<T>(slot: &Mutex<Option<T>>, value: T) {
    let mut guard = lock_unpoisoned(slot);
    if guard.is_none() {
        *guard = Some(value);
    }
}

/// Coalesces index-sorted disjoint `(start, run)` chunks into sorted,
/// disjoint half-open `[start, end)` runs for
/// [`PpatcError::Interrupted::completed`].
fn coalesce_completed<T>(runs: &[(usize, Vec<T>)]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (start, run) in runs {
        let end = start + run.len();
        match spans.last_mut() {
            Some(last) if last.1 == *start => last.1 = end,
            _ => spans.push((*start, end)),
        }
    }
    spans
}

/// How journaled items enter and leave one supervised run. `NoJournal` is
/// the zero-cost stub for unjournaled runs.
trait JournalHooks<T>: Sync {
    /// A previously journaled value for item `i`, if any.
    fn preloaded(&self, i: usize) -> Option<Result<T, PpatcError>>;
    /// Persists one completed chunk.
    fn append(&self, start: usize, run: &[Result<T, PpatcError>]) -> Result<(), PpatcError>;
}

struct NoJournal;

impl<T> JournalHooks<T> for NoJournal {
    fn preloaded(&self, _i: usize) -> Option<Result<T, PpatcError>> {
        None
    }

    fn append(&self, _start: usize, _run: &[Result<T, PpatcError>]) -> Result<(), PpatcError> {
        Ok(())
    }
}

struct WithJournal<'a>(&'a Journal);

impl<T: Checkpointable> JournalHooks<T> for WithJournal<'_> {
    fn preloaded(&self, i: usize) -> Option<Result<T, PpatcError>> {
        self.0.preloaded_item(i)
    }

    fn append(&self, start: usize, run: &[Result<T, PpatcError>]) -> Result<(), PpatcError> {
        self.0.append_chunk(start, run)
    }
}

/// The shared supervised engine: chunked work stealing exactly like
/// [`par_map_indexed`], plus budget polls at chunk boundaries, per-item
/// `catch_unwind`, and journal preload/append hooks.
fn supervised_map<T, F, J>(
    n: usize,
    jobs: usize,
    budget: &RunBudget,
    journal: &J,
    f: F,
) -> Result<Vec<Result<T, PpatcError>>, PpatcError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    J: JournalHooks<T>,
{
    type ChunkRuns<T> = Vec<(usize, Vec<Result<T, PpatcError>>)>;
    let jobs = jobs.max(1).min(n.max(1));
    let chunk = (n / (jobs * 8).max(1)).clamp(MIN_CHUNK, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let runs: Mutex<ChunkRuns<T>> = Mutex::new(Vec::new());
    let interrupted: Mutex<Option<InterruptReason>> = Mutex::new(None);
    let fault: Mutex<Option<PpatcError>> = Mutex::new(None);

    let worker = || {
        let mut local: ChunkRuns<T> = Vec::new();
        loop {
            if slot_is_set(&interrupted) || slot_is_set(&fault) {
                break;
            }
            if let Err(reason) = budget.check() {
                set_slot_once(&interrupted, reason);
                break;
            }
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            let mut run: Vec<Result<T, PpatcError>> = Vec::with_capacity(end - start);
            let mut any_fresh = false;
            for i in start..end {
                match journal.preloaded(i) {
                    Some(item) => run.push(item),
                    None => {
                        any_fresh = true;
                        // Each item is a pure function of its index over
                        // read-only inputs, so no broken invariant can leak
                        // across the unwind boundary: AssertUnwindSafe is
                        // sound here.
                        run.push(
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                                .map_err(|_| PpatcError::WorkerPanic { index: i }),
                        );
                    }
                }
            }
            if any_fresh {
                if let Err(e) = journal.append(start, &run) {
                    // The chunk is still good in memory; fail the run (the
                    // user asked for a checkpoint they are not getting) but
                    // let siblings wind down cooperatively.
                    set_slot_once(&fault, e);
                }
            }
            local.push((start, run));
        }
        let mut all = lock_unpoisoned(&runs);
        all.append(&mut local);
    };

    if jobs <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
    }

    let mut all = match runs.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    all.sort_by_key(|(start, _)| *start);
    if let Some(e) = lock_unpoisoned(&fault).take() {
        return Err(e);
    }
    if let Some(reason) = lock_unpoisoned(&interrupted).take() {
        return Err(PpatcError::Interrupted {
            reason,
            completed: coalesce_completed(&all),
            total: n,
        });
    }
    Ok(all.into_iter().flat_map(|(_, run)| run).collect())
}

/// The batched supervised engine: like [`supervised_map`], but a chunk
/// whose items are all fresh (nothing preloaded from the journal) is
/// evaluated in one `f_batch(start, end)` call. Chunks that mix preloaded
/// and fresh items — and batches that panic or return a wrong-size run —
/// fall back to the per-item `f_item` path, so failure classification
/// (which index panicked) is identical to the scalar engine.
///
/// `f_batch(start, end)` must be bit-identical to
/// `(start..end).map(f_item).collect()`; see [`par_map_indexed_batched`].
fn supervised_map_batched<T, FI, FB, J>(
    n: usize,
    jobs: usize,
    budget: &RunBudget,
    journal: &J,
    f_item: FI,
    f_batch: FB,
) -> Result<Vec<Result<T, PpatcError>>, PpatcError>
where
    T: Send,
    FI: Fn(usize) -> T + Sync,
    FB: Fn(usize, usize) -> Vec<T> + Sync,
    J: JournalHooks<T>,
{
    type ChunkRuns<T> = Vec<(usize, Vec<Result<T, PpatcError>>)>;
    let jobs = jobs.max(1).min(n.max(1));
    let chunk = (n / (jobs * 8).max(1)).clamp(MIN_CHUNK, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let runs: Mutex<ChunkRuns<T>> = Mutex::new(Vec::new());
    let interrupted: Mutex<Option<InterruptReason>> = Mutex::new(None);
    let fault: Mutex<Option<PpatcError>> = Mutex::new(None);

    // Per-item evaluation with the same unwind boundary as the scalar
    // engine; used for mixed chunks and as the fallback when a batch
    // misbehaves. Soundness of AssertUnwindSafe: each item is a pure
    // function of its index over read-only inputs.
    let eval_item = |i: usize| -> Result<T, PpatcError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f_item(i)))
            .map_err(|_| PpatcError::WorkerPanic { index: i })
    };

    let worker = || {
        let mut local: ChunkRuns<T> = Vec::new();
        loop {
            if slot_is_set(&interrupted) || slot_is_set(&fault) {
                break;
            }
            if let Err(reason) = budget.check() {
                set_slot_once(&interrupted, reason);
                break;
            }
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            let mut pre: Vec<Option<Result<T, PpatcError>>> =
                (start..end).map(|i| journal.preloaded(i)).collect();
            let all_fresh = pre.iter().all(Option::is_none);
            let mut run: Vec<Result<T, PpatcError>> = Vec::with_capacity(end - start);
            let mut any_fresh = false;
            if all_fresh {
                any_fresh = end > start;
                let batch =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f_batch(start, end)));
                match batch {
                    Ok(vals) if vals.len() == end - start => {
                        run.extend(vals.into_iter().map(Ok));
                    }
                    // A panicking (or wrong-size) batch cannot tell us which
                    // item is at fault; re-run the chunk item by item so the
                    // guilty index is pinned exactly as the scalar engine
                    // would pin it.
                    _ => run.extend((start..end).map(&eval_item)),
                }
            } else {
                for (offset, slot) in pre.iter_mut().enumerate() {
                    match slot.take() {
                        Some(item) => run.push(item),
                        None => {
                            any_fresh = true;
                            run.push(eval_item(start + offset));
                        }
                    }
                }
            }
            if any_fresh {
                if let Err(e) = journal.append(start, &run) {
                    set_slot_once(&fault, e);
                }
            }
            local.push((start, run));
        }
        let mut all = lock_unpoisoned(&runs);
        all.append(&mut local);
    };

    if jobs <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
    }

    let mut all = match runs.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    all.sort_by_key(|(start, _)| *start);
    if let Some(e) = lock_unpoisoned(&fault).take() {
        return Err(e);
    }
    if let Some(reason) = lock_unpoisoned(&interrupted).take() {
        return Err(PpatcError::Interrupted {
            reason,
            completed: coalesce_completed(&all),
            total: n,
        });
    }
    Ok(all.into_iter().flat_map(|(_, run)| run).collect())
}

/// Supervised [`par_map_indexed`]: evaluates `f(i)` for every `i in 0..n`
/// across `jobs` workers under `budget`, returning per-item results in
/// index order.
///
/// Differences from the unsupervised engine:
/// - `budget` is polled at every chunk boundary; a cancelled or expired run
///   returns [`PpatcError::Interrupted`] carrying the completed-index set.
/// - A panicking item is caught at the item boundary and surfaces as
///   `Err(PpatcError::WorkerPanic { index })` in its slot; sibling items
///   and workers are unaffected.
///
/// For any worker count, the `Ok` items are byte-identical to a serial
/// `(0..n).map(f)` run.
///
/// # Errors
///
/// [`PpatcError::Interrupted`] when the budget stops the run.
#[must_use = "this returns a Result that must be handled"]
pub fn try_par_map_indexed<T, F>(
    n: usize,
    jobs: usize,
    budget: &RunBudget,
    f: F,
) -> Result<Vec<Result<T, PpatcError>>, PpatcError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    supervised_map(n, jobs, budget, &NoJournal, f)
}

/// [`try_par_map_indexed`] with crash-safe checkpointing: completed chunks
/// stream to `journal` (when given), and items already journaled are
/// replayed instead of recomputed — including items journaled as
/// deterministic panics. Pass `None` to run unjournaled.
///
/// # Errors
///
/// [`PpatcError::Interrupted`] when the budget stops the run (items
/// completed before the interrupt *are* journaled, so a resumed run skips
/// them), [`PpatcError::Checkpoint`] when the journal cannot be written or
/// does not match the run.
#[must_use = "this returns a Result that must be handled"]
pub fn try_par_map_journaled<T, F>(
    n: usize,
    jobs: usize,
    budget: &RunBudget,
    journal: Option<&Journal>,
    f: F,
) -> Result<Vec<Result<T, PpatcError>>, PpatcError>
where
    T: Send + Checkpointable,
    F: Fn(usize) -> T + Sync,
{
    match journal {
        None => supervised_map(n, jobs, budget, &NoJournal, f),
        Some(j) => {
            j.require_width::<T>()?;
            if j.spec().items != n {
                return Err(PpatcError::Checkpoint {
                    detail: format!(
                        "journal {} spans {} items, but the run has {n}",
                        j.path().display(),
                        j.spec().items
                    ),
                });
            }
            supervised_map(n, jobs, budget, &WithJournal(j), f)
        }
    }
}

/// [`try_par_map_journaled`] with a batched fast path: chunks with no
/// journaled items run through `f_batch(start, end)` in one call, while
/// resume replay, mixed chunks, and misbehaving batches fall back to the
/// per-item `f_item`. Both closures must agree bitwise (`f_batch(s, e)` ≡
/// `(s..e).map(f_item).collect()`), so results — including which index a
/// deterministic panic is pinned to — are byte-identical to
/// [`try_par_map_journaled`] for any worker count.
///
/// # Errors
///
/// [`PpatcError::Interrupted`] when the budget stops the run,
/// [`PpatcError::Checkpoint`] when the journal cannot be written or does
/// not match the run.
#[must_use = "this returns a Result that must be handled"]
pub fn try_par_map_journaled_batched<T, FI, FB>(
    n: usize,
    jobs: usize,
    budget: &RunBudget,
    journal: Option<&Journal>,
    f_item: FI,
    f_batch: FB,
) -> Result<Vec<Result<T, PpatcError>>, PpatcError>
where
    T: Send + Checkpointable,
    FI: Fn(usize) -> T + Sync,
    FB: Fn(usize, usize) -> Vec<T> + Sync,
{
    match journal {
        None => supervised_map_batched(n, jobs, budget, &NoJournal, f_item, f_batch),
        Some(j) => {
            j.require_width::<T>()?;
            if j.spec().items != n {
                return Err(PpatcError::Checkpoint {
                    detail: format!(
                        "journal {} spans {} items, but the run has {n}",
                        j.path().display(),
                        j.spec().items
                    ),
                });
            }
            supervised_map_batched(n, jobs, budget, &WithJournal(j), f_item, f_batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_for_any_worker_count() {
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let parallel = par_map_indexed(1000, jobs, |i| i * i);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn small_inputs_and_edge_counts() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map_indexed(3, 100, |i| i), vec![0, 1, 2]);
        assert_eq!(par_map_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn float_results_are_bit_identical_across_worker_counts() {
        let f = |i: usize| (i as f64).sqrt().sin() / (i as f64 + 0.5);
        let serial: Vec<u64> = (0..5000).map(|i| f(i).to_bits()).collect();
        for jobs in [2, 4, 16] {
            let parallel: Vec<u64> = par_map_indexed(5000, jobs, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    /// A collision-free scratch path for one test.
    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ppatc-eval-{}-{name}.txt", std::process::id()))
    }

    fn unwrap_items<T>(items: Vec<Result<T, PpatcError>>) -> Vec<T> {
        items
            .into_iter()
            .map(|r| r.expect("no item failed"))
            .collect()
    }

    #[test]
    fn supervised_run_matches_unsupervised_for_any_worker_count() {
        let f = |i: usize| (i as f64).sqrt().sin() / (i as f64 + 0.5);
        let reference: Vec<u64> = par_map_indexed(3000, 1, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for jobs in [1, 2, 8] {
            let supervised = try_par_map_indexed(3000, jobs, &RunBudget::unlimited(), f)
                .expect("unlimited budget never interrupts");
            let bits: Vec<u64> = unwrap_items(supervised)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(bits, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn a_panicking_item_is_isolated_not_fatal() {
        let results = try_par_map_indexed(100, 8, &RunBudget::unlimited(), |i| {
            assert!(i != 37, "deterministic injected panic");
            i * 2
        })
        .expect("a panicking item does not interrupt the run");
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            if i == 37 {
                assert_eq!(r, &Err(PpatcError::WorkerPanic { index: 37 }));
            } else {
                assert_eq!(r, &Ok(i * 2), "sibling items are unaffected");
            }
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let budget = RunBudget::unlimited().with_cancel(&token);
        let calls = AtomicUsize::new(0);
        let err = try_par_map_indexed(1000, 4, &budget, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        })
        .expect_err("cancelled before the first chunk");
        match err {
            PpatcError::Interrupted {
                reason,
                completed,
                total,
            } => {
                assert_eq!(reason, InterruptReason::Cancelled);
                assert!(completed.is_empty(), "{completed:?}");
                assert_eq!(total, 1000);
            }
            other => panic!("expected Interrupted, got {other}"),
        }
        assert_eq!(calls.load(Ordering::Relaxed), 0, "no item was evaluated");
    }

    #[test]
    fn expired_deadline_interrupts_with_a_typed_reason() {
        let budget = RunBudget::unlimited().with_deadline(Instant::now());
        let err = try_par_map_indexed(100, 2, &budget, |i| i)
            .expect_err("an already-expired deadline stops the run");
        assert!(
            matches!(
                err,
                PpatcError::Interrupted {
                    reason: InterruptReason::DeadlineExpired,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn mid_run_cancellation_keeps_partial_work() {
        // The closure itself trips the token after 96 calls; jobs = 1 makes
        // the call count deterministic. Cancellation is observed at the
        // next chunk boundary, so the in-flight chunk still completes.
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_cancel(&token);
        let calls = AtomicUsize::new(0);
        let err = try_par_map_indexed(1000, 1, &budget, |i| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == 96 {
                token.cancel();
            }
            i
        })
        .expect_err("cancelled mid-run");
        match err {
            PpatcError::Interrupted {
                reason, completed, ..
            } => {
                assert_eq!(reason, InterruptReason::Cancelled);
                let done: usize = completed.iter().map(|&(s, e)| e - s).sum();
                assert!(done >= 96 && done < 1000, "partial work kept: {done}");
            }
            other => panic!("expected Interrupted, got {other}"),
        }
    }

    #[test]
    fn coalesce_merges_adjacent_chunks() {
        let runs = vec![(0, vec![0, 1]), (2, vec![2]), (5, vec![5, 6])];
        assert_eq!(coalesce_completed(&runs), vec![(0, 3), (5, 7)]);
        assert_eq!(coalesce_completed::<u8>(&[]), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn journaled_run_resumes_entirely_from_disk() {
        let path = scratch("replay");
        let spec = JournalSpec::for_run::<f64>("evaltest", 500, &[7]);
        let f = |i: usize| (i as f64) * 1.5;
        let first = {
            let journal = Journal::try_create(&path, &spec).expect("create journal");
            unwrap_items(
                try_par_map_journaled(500, 4, &RunBudget::unlimited(), Some(&journal), f)
                    .expect("journaled run completes"),
            )
        };
        // Resume with a closure that would panic if any item were
        // recomputed: every value must come from the journal.
        let journal = Journal::try_resume(&path, &spec).expect("resume journal");
        assert_eq!(journal.completed_items(), 500);
        let replayed = unwrap_items(
            try_par_map_journaled(500, 4, &RunBudget::unlimited(), Some(&journal), |i| {
                panic!("item {i} must be replayed, not recomputed")
            })
            .expect("replay completes"),
        );
        let first_bits: Vec<u64> = first.into_iter().map(f64::to_bits).collect();
        let replayed_bits: Vec<u64> = replayed.into_iter().map(f64::to_bits).collect();
        assert_eq!(first_bits, replayed_bits);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupt_then_resume_is_identical_to_uninterrupted() {
        let path = scratch("resume");
        let n = 800;
        let spec = JournalSpec::for_run::<f64>("evaltest", n, &[11]);
        let f = |i: usize| (i as f64).cos() * 3.0;
        let reference: Vec<u64> = (0..n).map(|i| f(i).to_bits()).collect();

        // Interrupted first leg: cancel after ~a third of the items.
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_cancel(&token);
        let calls = AtomicUsize::new(0);
        {
            let journal = Journal::try_create(&path, &spec).expect("create journal");
            let err = try_par_map_journaled(n, 1, &budget, Some(&journal), |i| {
                if calls.fetch_add(1, Ordering::Relaxed) + 1 == n / 3 {
                    token.cancel();
                }
                f(i)
            })
            .expect_err("first leg is cancelled");
            match err {
                PpatcError::Interrupted { completed, .. } => {
                    let done: usize = completed.iter().map(|&(s, e)| e - s).sum();
                    assert!(done > 0 && done < n, "partial first leg: {done}");
                }
                other => panic!("expected Interrupted, got {other}"),
            }
        }

        // Resumed second leg: unlimited budget, journaled items replayed.
        let journal = Journal::try_resume(&path, &spec).expect("resume journal");
        let replayed_before = journal.completed_items();
        assert!(replayed_before > 0, "the first leg journaled its chunks");
        let resumed = unwrap_items(
            try_par_map_journaled(n, 4, &RunBudget::unlimited(), Some(&journal), f)
                .expect("second leg completes"),
        );
        let resumed_bits: Vec<u64> = resumed.into_iter().map(f64::to_bits).collect();
        assert_eq!(resumed_bits, reference, "resume is byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_item_count_mismatch_is_rejected() {
        let path = scratch("mismatch");
        let spec = JournalSpec::for_run::<f64>("evaltest", 10, &[]);
        let journal = Journal::try_create(&path, &spec).expect("create journal");
        let err =
            try_par_map_journaled(11, 1, &RunBudget::unlimited(), Some(&journal), |i| i as f64)
                .expect_err("item count differs from the spec");
        assert!(matches!(err, PpatcError::Checkpoint { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batched_map_is_bit_identical_to_per_index_for_any_worker_count() {
        let f = |i: usize| (i as f64).sqrt().sin() / (i as f64 + 0.5);
        let serial: Vec<u64> = (0..5000).map(|i| f(i).to_bits()).collect();
        for jobs in [1, 2, 4, 16] {
            let batched: Vec<u64> =
                par_map_indexed_batched(5000, jobs, |s, e| (s..e).map(f).collect())
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
            assert_eq!(batched, serial, "jobs = {jobs}");
        }
        assert_eq!(
            par_map_indexed_batched(0, 4, |s, e| (s..e).collect::<Vec<_>>()),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn supervised_batched_matches_the_scalar_engine() {
        let f = |i: usize| (i as f64).cos() * 3.0;
        let reference: Vec<u64> = (0..3000).map(|i| f(i).to_bits()).collect();
        for jobs in [1, 2, 8] {
            let batched = try_par_map_journaled_batched(
                3000,
                jobs,
                &RunBudget::unlimited(),
                None,
                f,
                |s, e| (s..e).map(f).collect(),
            )
            .expect("unlimited budget never interrupts");
            let bits: Vec<u64> = unwrap_items(batched)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(bits, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn a_panicking_batch_falls_back_and_pins_the_guilty_index() {
        let f_item = |i: usize| {
            if i == 137 {
                panic!("item 137 is bad");
            }
            i as f64
        };
        let results =
            try_par_map_journaled_batched(300, 4, &RunBudget::unlimited(), None, f_item, |s, e| {
                (s..e).map(f_item).collect()
            })
            .expect("a panicking item is isolated, not fatal");
        assert_eq!(results.len(), 300);
        for (i, r) in results.iter().enumerate() {
            if i == 137 {
                assert!(
                    matches!(r, Err(PpatcError::WorkerPanic { index: 137 })),
                    "index 137 carries the panic, got {r:?}"
                );
            } else {
                assert_eq!(*r.as_ref().expect("healthy item"), i as f64);
            }
        }
    }

    #[test]
    fn a_wrong_size_batch_falls_back_to_per_item_results() {
        let f_item = |i: usize| i as f64 + 0.25;
        let results = try_par_map_journaled_batched(
            100,
            1,
            &RunBudget::unlimited(),
            None,
            f_item,
            |s, e| (s..e).map(f_item).skip(1).collect(), // one short: must be discarded
        )
        .expect("fallback completes the run");
        let got = unwrap_items(results);
        let want: Vec<f64> = (0..100).map(f_item).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn batched_resume_replays_journaled_items_without_recomputing() {
        let path = scratch("batched-resume");
        let n = 600;
        let spec = JournalSpec::for_run::<f64>("evaltest", n, &[3]);
        let f = |i: usize| (i as f64) * 1.25;
        {
            let journal = Journal::try_create(&path, &spec).expect("create journal");
            try_par_map_journaled_batched(
                n,
                4,
                &RunBudget::unlimited(),
                Some(&journal),
                f,
                |s, e| (s..e).map(f).collect(),
            )
            .expect("first leg completes");
        }
        let journal = Journal::try_resume(&path, &spec).expect("resume journal");
        assert_eq!(journal.completed_items(), n);
        let replayed = unwrap_items(
            try_par_map_journaled_batched(
                n,
                4,
                &RunBudget::unlimited(),
                Some(&journal),
                |i: usize| -> f64 { panic!("item {i} must be replayed, not recomputed") },
                |s, _e| -> Vec<f64> { panic!("batch at {s} must be replayed, not recomputed") },
            )
            .expect("replay completes"),
        );
        let want: Vec<u64> = (0..n).map(|i| f(i).to_bits()).collect();
        let got: Vec<u64> = replayed.into_iter().map(f64::to_bits).collect();
        assert_eq!(got, want);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_budget_reports_reasons_in_priority_order() {
        assert!(RunBudget::unlimited().is_unlimited());
        assert_eq!(RunBudget::unlimited().check(), Ok(()));
        let token = CancelToken::new();
        let both = RunBudget::unlimited()
            .with_cancel(&token)
            .with_deadline_in(Duration::ZERO);
        assert!(!both.is_unlimited());
        // Deadline already expired, token not yet cancelled.
        assert_eq!(both.check(), Err(InterruptReason::DeadlineExpired));
        token.cancel();
        // Cancellation is checked first.
        assert_eq!(both.check(), Err(InterruptReason::Cancelled));
        // The derived solver budget shares the deadline.
        assert!(both.solver_budget().exhausted(0));
        assert!(RunBudget::unlimited().solver_budget().is_unlimited());
    }
}
