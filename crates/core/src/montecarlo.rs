//! Monte-Carlo uncertainty analysis — the continuous generalization of
//! Fig. 6b.
//!
//! Fig. 6b perturbs one uncertainty source at a time; in reality lifetime,
//! use-phase carbon intensity, M3D yield, and the embodied/operational
//! model errors are *jointly* uncertain. This module samples all of them
//! at once and reports the probability that the M3D design ends up more
//! carbon-efficient, together with quantiles of the tCDP ratio — a
//! decision-grade summary ("M3D wins in 74% of futures") instead of a
//! family of isolines.
//!
//! Sampling is deterministic given a seed, so results are reproducible.
//!
//! # Fault isolation
//!
//! A sweep is only as robust as its worst sample: one NaN from a perturbed
//! model must not abort the other 9 999 samples. [`try_run_with`] therefore
//! evaluates each sample in isolation, classifies failures into a
//! [`FailureBreakdown`] by cause, and computes the statistics over the
//! survivors. A configurable [`MonteCarloConfig::failure_budget`] bounds the
//! tolerated failed fraction; exceeding it returns
//! [`PpatcError::FailureBudgetExceeded`] instead of silently reporting
//! statistics from a crippled sweep.

use crate::error::{check, PpatcError, ValidationError};
use crate::isoline::TcdpMap;
use crate::lifetime::Lifetime;
use ppatc_units::rng::SplitMix64;

/// Joint uncertainty ranges. Scales are sampled log-uniformly (a factor of
/// 2 up is as likely as a factor of 2 down); lifetimes and yields
/// uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintyRanges {
    /// System lifetime, months (min, max).
    pub lifetime_months: (f64, f64),
    /// Scale on CI_use (min, max), log-uniform.
    pub ci_use_scale: (f64, f64),
    /// M3D die yield (min, max).
    pub m3d_yield: (f64, f64),
    /// Scale on the M3D embodied-carbon model (min, max), log-uniform.
    pub m3d_embodied_scale: (f64, f64),
    /// Scale on the M3D operational energy (min, max), log-uniform.
    pub m3d_eop_scale: (f64, f64),
}

impl UncertaintyRanges {
    /// The Fig. 6b-inspired ranges: lifetime 24 ± 6 months, CI ÷3..×3,
    /// yield 10–90%, and ±30%-ish model error on the M3D embodied and
    /// operational terms.
    pub fn paper_default() -> Self {
        Self {
            lifetime_months: (18.0, 30.0),
            ci_use_scale: (1.0 / 3.0, 3.0),
            m3d_yield: (0.10, 0.90),
            m3d_embodied_scale: (0.77, 1.30),
            m3d_eop_scale: (0.80, 1.25),
        }
    }

    /// Checks that every range is finite, positive, and ordered, and that
    /// the yield range stays within (0, 1].
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (name, (lo, hi)) in [
            ("lifetime_months", self.lifetime_months),
            ("ci_use_scale", self.ci_use_scale),
            ("m3d_yield", self.m3d_yield),
            ("m3d_embodied_scale", self.m3d_embodied_scale),
            ("m3d_eop_scale", self.m3d_eop_scale),
        ] {
            check::positive(name, lo)?;
            check::finite(name, hi)?;
            if hi < lo {
                return Err(ValidationError::new(
                    name,
                    hi,
                    "an ordered range (hi >= lo)",
                ));
            }
        }
        if self.m3d_yield.1 > 1.0 {
            return Err(ValidationError::new(
                "m3d_yield",
                self.m3d_yield.1,
                "in (0, 1]",
            ));
        }
        Ok(())
    }
}

/// One sampled future.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintySample {
    /// Sampled lifetime.
    pub lifetime: Lifetime,
    /// Sampled CI_use scale.
    pub ci_scale: f64,
    /// Sampled M3D yield.
    pub m3d_yield: f64,
    /// Sampled M3D embodied scale.
    pub embodied_scale: f64,
    /// Sampled M3D operational scale.
    pub eop_scale: f64,
}

/// Anything that maps an [`UncertaintySample`] to a tCDP ratio
/// (M3D / all-Si).
///
/// [`TcdpMap`] is the production implementation; the fault-injection test
/// harness substitutes sources that return NaN or non-positive ratios on
/// selected samples to exercise the isolation machinery.
pub trait RatioSource {
    /// The tCDP ratio of the two designs under this sampled future.
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64;
}

impl RatioSource for TcdpMap {
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
        self.ratio_sampled(sample)
    }
}

/// Configuration of a Monte-Carlo sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples to draw. Always at least 1.
    samples: usize,
    /// PRNG seed; equal seeds reproduce the sweep exactly.
    seed: u64,
    /// Maximum tolerated fraction of failed samples, in `[0, 1]`.
    failure_budget: f64,
}

impl MonteCarloConfig {
    /// Creates a configuration with a zero failure budget (any failed
    /// sample aborts the sweep).
    pub fn new(samples: usize, seed: u64) -> Result<Self, ValidationError> {
        if samples == 0 {
            return Err(ValidationError::new("samples", 0.0, ">= 1"));
        }
        Ok(Self {
            samples,
            seed,
            failure_budget: 0.0,
        })
    }

    /// Sets the maximum tolerated fraction of failed samples.
    // ppatc-lint: allow(raw-unit-api) — dimensionless fraction of samples
    pub fn with_failure_budget(self, budget: f64) -> Result<Self, ValidationError> {
        if !(budget.is_finite() && (0.0..=1.0).contains(&budget)) {
            return Err(ValidationError::new("failure_budget", budget, "in [0, 1]"));
        }
        Ok(Self {
            failure_budget: budget,
            ..self
        })
    }

    /// The number of samples this sweep will draw.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The maximum tolerated fraction of failed samples.
    // ppatc-lint: allow(raw-unit-api) — dimensionless fraction of samples
    pub fn failure_budget(&self) -> f64 {
        self.failure_budget
    }
}

/// Per-cause counts of samples discarded by a sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FailureBreakdown {
    /// Samples whose tCDP ratio came back NaN or infinite.
    pub non_finite_ratio: usize,
    /// Samples whose tCDP ratio was zero or negative (a physically
    /// meaningless carbon ratio).
    pub non_positive_ratio: usize,
}

impl FailureBreakdown {
    /// Total number of discarded samples.
    pub fn total(&self) -> usize {
        self.non_finite_ratio + self.non_positive_ratio
    }

    fn record(&mut self, ratio: f64) {
        if !ratio.is_finite() {
            self.non_finite_ratio += 1;
        } else {
            self.non_positive_ratio += 1;
        }
    }
}

impl core::fmt::Display for FailureBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} failed ({} non-finite, {} non-positive)",
            self.total(),
            self.non_finite_ratio,
            self.non_positive_ratio
        )
    }
}

/// Summary of a Monte-Carlo run.
#[derive(Clone, Debug, PartialEq)]
pub struct MonteCarloResult {
    /// Number of samples drawn.
    pub samples: usize,
    /// Number of samples that evaluated successfully (the statistics below
    /// are computed over these survivors).
    pub evaluated: usize,
    /// Per-cause counts of discarded samples.
    pub failures: FailureBreakdown,
    /// Fraction of surviving futures in which the M3D design has lower
    /// tCDP.
    pub p_m3d_wins: f64,
    /// 5th / 50th / 95th percentiles of the tCDP ratio (M3D / all-Si) over
    /// the survivors.
    pub ratio_quantiles: (f64, f64, f64),
}

impl core::fmt::Display for MonteCarloResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "M3D wins in {:.1}% of {} sampled futures; tCDP ratio p5/p50/p95 = {:.3}/{:.3}/{:.3}",
            self.p_m3d_wins * 100.0,
            self.samples,
            self.ratio_quantiles.0,
            self.ratio_quantiles.1,
            self.ratio_quantiles.2
        )?;
        if self.failures.total() > 0 {
            write!(f, " ({} over survivors)", self.failures)?;
        }
        Ok(())
    }
}

/// Runs a Monte-Carlo sweep over a [`TcdpMap`]'s underlying designs.
///
/// This is the panicking convenience wrapper around [`try_run`] with a zero
/// failure budget, kept for call sites whose inputs are statically known to
/// be valid.
///
/// # Panics
///
/// Panics if `n` is zero, a range is invalid, or any sample fails to
/// evaluate.
pub fn run(map: &TcdpMap, ranges: &UncertaintyRanges, n: usize, seed: u64) -> MonteCarloResult {
    let config = match MonteCarloConfig::new(n, seed) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    };
    match try_run(map, ranges, &config) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Runs a Monte-Carlo sweep over a [`TcdpMap`]'s underlying designs,
/// isolating per-sample failures.
#[must_use = "this returns a Result that must be handled"]
pub fn try_run(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult, PpatcError> {
    try_run_with(map, ranges, config)
}

/// Runs a Monte-Carlo sweep over any [`RatioSource`], isolating per-sample
/// failures.
///
/// Each drawn sample is evaluated independently; samples producing
/// non-finite or non-positive ratios are recorded in the result's
/// [`FailureBreakdown`] instead of aborting the sweep. Statistics are
/// computed over the survivors. Returns
/// [`PpatcError::FailureBudgetExceeded`] when the failed fraction exceeds
/// [`MonteCarloConfig::failure_budget`], or when no sample survives at all.
#[must_use = "this returns a Result that must be handled"]
pub fn try_run_with(
    source: &dyn RatioSource,
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult, PpatcError> {
    ranges.validate()?;
    let n = config.samples;
    let mut rng = SplitMix64::new(config.seed);
    let mut ratios = Vec::with_capacity(n);
    let mut failures = FailureBreakdown::default();
    let mut wins = 0usize;
    for _ in 0..n {
        let sample = draw(&mut rng, ranges);
        let r = source.tcdp_ratio(&sample);
        if !r.is_finite() || r <= 0.0 {
            failures.record(r);
            continue;
        }
        if r < 1.0 {
            wins += 1;
        }
        ratios.push(r);
    }
    let failed = failures.total();
    if ratios.is_empty() || failed as f64 / n as f64 > config.failure_budget {
        return Err(PpatcError::FailureBudgetExceeded {
            failed,
            samples: n,
            budget: config.failure_budget,
        });
    }
    ratios.sort_by(f64::total_cmp);
    let survivors = ratios.len();
    let q = |p: f64| ratios[(p * (survivors - 1) as f64).round() as usize];
    Ok(MonteCarloResult {
        samples: n,
        evaluated: survivors,
        failures,
        p_m3d_wins: wins as f64 / survivors as f64,
        ratio_quantiles: (q(0.05), q(0.50), q(0.95)),
    })
}

/// Variance-based sensitivity: for each uncertainty source, the fraction of
/// the tCDP-ratio variance that disappears when that source is pinned to
/// its nominal value (a freeze-one-at-a-time importance measure).
///
/// Returns `(source name, variance share in [0, 1])`, sorted descending.
///
/// This is the panicking convenience wrapper around [`try_sensitivity`].
///
/// # Panics
///
/// Panics if `n` is zero or a range is invalid.
pub fn sensitivity(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    match try_sensitivity(map, ranges, n, seed) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Variance-based sensitivity (see [`sensitivity`]), returning structured
/// errors for invalid inputs. Non-finite sample ratios are skipped in the
/// variance estimates.
#[must_use = "this returns a Result that must be handled"]
pub fn try_sensitivity(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
) -> Result<Vec<(&'static str, f64)>, PpatcError> {
    if n == 0 {
        return Err(ValidationError::new("samples", 0.0, ">= 1").into());
    }
    ranges.validate()?;
    let variance_of = |ranges: &UncertaintyRanges, seed: u64| {
        let mut rng = SplitMix64::new(seed);
        let ratios: Vec<f64> = (0..n)
            .map(|_| map.ratio_sampled(&draw(&mut rng, ranges)))
            .filter(|r| r.is_finite())
            .collect();
        if ratios.is_empty() {
            return 0.0;
        }
        let m = ratios.len() as f64;
        let mean = ratios.iter().sum::<f64>() / m;
        ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / m
    };
    let base = variance_of(ranges, seed);
    if base <= 0.0 {
        return Ok(vec![
            ("lifetime", 0.0),
            ("CI_use", 0.0),
            ("M3D yield", 0.0),
            ("embodied model", 0.0),
            ("operational model", 0.0),
        ]);
    }
    let mid = |(lo, hi): (f64, f64)| ((lo + hi) / 2.0, (lo + hi) / 2.0);
    let mid_log = |(lo, hi): (f64, f64)| {
        let g = (lo * hi).sqrt();
        (g, g)
    };
    let variants: [(&'static str, UncertaintyRanges); 5] = [
        (
            "lifetime",
            UncertaintyRanges {
                lifetime_months: mid(ranges.lifetime_months),
                ..*ranges
            },
        ),
        (
            "CI_use",
            UncertaintyRanges {
                ci_use_scale: mid_log(ranges.ci_use_scale),
                ..*ranges
            },
        ),
        (
            "M3D yield",
            UncertaintyRanges {
                m3d_yield: mid(ranges.m3d_yield),
                ..*ranges
            },
        ),
        (
            "embodied model",
            UncertaintyRanges {
                m3d_embodied_scale: mid_log(ranges.m3d_embodied_scale),
                ..*ranges
            },
        ),
        (
            "operational model",
            UncertaintyRanges {
                m3d_eop_scale: mid_log(ranges.m3d_eop_scale),
                ..*ranges
            },
        ),
    ];
    let mut out: Vec<(&'static str, f64)> = variants
        .iter()
        .map(|(name, v)| {
            let reduced = variance_of(v, seed);
            (*name, ((base - reduced) / base).max(0.0))
        })
        .collect();
    out.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
    Ok(out)
}

fn draw(rng: &mut SplitMix64, r: &UncertaintyRanges) -> UncertaintySample {
    UncertaintySample {
        lifetime: Lifetime::months(rng.uniform(r.lifetime_months.0, r.lifetime_months.1)),
        ci_scale: rng.log_uniform(r.ci_use_scale.0, r.ci_use_scale.1),
        m3d_yield: rng.uniform(r.m3d_yield.0, r.m3d_yield.1),
        embodied_scale: rng.log_uniform(r.m3d_embodied_scale.0, r.m3d_embodied_scale.1),
        eop_scale: rng.log_uniform(r.m3d_eop_scale.0, r.m3d_eop_scale.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::UsagePattern;
    use crate::CarbonTrajectory;
    use ppatc_units::{CarbonMass, Power, Time};

    fn map() -> TcdpMap {
        let exec = Time::from_seconds(0.04);
        let usage = UsagePattern::paper_default();
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(3.08),
            Power::from_milliwatts(9.7),
            usage,
            exec,
        );
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(3.52),
            Power::from_milliwatts(8.5),
            usage,
            exec,
        );
        TcdpMap::new(si, m3d, Lifetime::months(24.0), 0.50)
    }

    #[test]
    fn deterministic_given_seed() {
        let m = map();
        let r1 = run(&m, &UncertaintyRanges::paper_default(), 2000, 42);
        let r2 = run(&m, &UncertaintyRanges::paper_default(), 2000, 42);
        assert_eq!(r1, r2);
        let r3 = run(&m, &UncertaintyRanges::paper_default(), 2000, 43);
        assert_ne!(r1.ratio_quantiles, r3.ratio_quantiles);
    }

    #[test]
    fn probabilities_are_sane() {
        let r = run(&map(), &UncertaintyRanges::paper_default(), 5000, 7);
        assert!((0.0..=1.0).contains(&r.p_m3d_wins));
        assert_eq!(r.evaluated, r.samples);
        assert_eq!(r.failures.total(), 0);
        // The decision is genuinely uncertain under the full Fig. 6b joint
        // ranges: neither side should win more than ~95% of futures.
        assert!(
            (0.05..0.95).contains(&r.p_m3d_wins),
            "P(M3D wins) = {:.2}",
            r.p_m3d_wins
        );
        let (p5, p50, p95) = r.ratio_quantiles;
        assert!(p5 < p50 && p50 < p95);
    }

    #[test]
    fn tight_ranges_collapse_to_the_nominal() {
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            m3d_yield: (0.50, 0.50),
            m3d_embodied_scale: (1.0, 1.0),
            m3d_eop_scale: (1.0, 1.0),
        };
        let m = map();
        let r = run(&m, &tight, 100, 1);
        let nominal = m.ratio(1.0, 1.0);
        assert!((r.ratio_quantiles.1 - nominal).abs() < 1e-9);
        assert!(r.p_m3d_wins == 0.0 || r.p_m3d_wins == 1.0);
    }

    #[test]
    fn better_yield_ranges_raise_the_win_rate() {
        let m = map();
        let pessimistic = UncertaintyRanges {
            m3d_yield: (0.10, 0.30),
            ..UncertaintyRanges::paper_default()
        };
        let optimistic = UncertaintyRanges {
            m3d_yield: (0.70, 0.90),
            ..UncertaintyRanges::paper_default()
        };
        let p_lo = run(&m, &pessimistic, 4000, 9).p_m3d_wins;
        let p_hi = run(&m, &optimistic, 4000, 9).p_m3d_wins;
        assert!(p_hi > p_lo + 0.2, "win rates {p_lo:.2} vs {p_hi:.2}");
    }

    #[test]
    fn sensitivity_identifies_the_yield_knob() {
        // Over the Fig. 6b ranges, the 10–90% yield span moves embodied
        // carbon by 5× — it must dominate the variance.
        let shares = sensitivity(&map(), &UncertaintyRanges::paper_default(), 4000, 5);
        assert_eq!(shares.len(), 5);
        assert_eq!(shares[0].0, "M3D yield", "ranking: {shares:?}");
        assert!(shares[0].1 > 0.4, "yield share {:.2}", shares[0].1);
        for (_, s) in &shares {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn pinning_everything_kills_the_variance() {
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            m3d_yield: (0.5, 0.5),
            m3d_embodied_scale: (1.0, 1.0),
            m3d_eop_scale: (1.0, 1.0),
        };
        let shares = sensitivity(&map(), &tight, 500, 1);
        for (_, s) in shares {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn display_is_informative() {
        let r = run(&map(), &UncertaintyRanges::paper_default(), 500, 3);
        let text = r.to_string();
        assert!(text.contains("sampled futures"));
        assert!(text.contains("p5/p50/p95"));
    }

    #[test]
    fn invalid_ranges_are_structured_errors_not_panics() {
        let mut bad = UncertaintyRanges::paper_default();
        bad.m3d_yield = (0.5, 1.7);
        let config = MonteCarloConfig::new(100, 1).expect("valid config");
        match try_run(&map(), &bad, &config) {
            Err(PpatcError::Validation(v)) => {
                assert_eq!(v.field, "m3d_yield");
                assert_eq!(v.value, 1.7);
            }
            other => panic!("expected validation error, got {other:?}"),
        }
        let mut nan = UncertaintyRanges::paper_default();
        nan.ci_use_scale.0 = f64::NAN;
        assert!(matches!(
            try_run(&map(), &nan, &config),
            Err(PpatcError::Validation(_))
        ));
    }

    #[test]
    fn zero_samples_is_a_structured_error() {
        let e = MonteCarloConfig::new(0, 1).expect_err("zero samples rejected");
        assert_eq!(e.field, "samples");
    }

    /// A source that fails (returns NaN) on every k-th sample.
    struct FlakySource {
        inner: TcdpMap,
        every: usize,
        calls: core::cell::Cell<usize>,
    }

    impl RatioSource for FlakySource {
        fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
            let n = self.calls.get();
            self.calls.set(n + 1);
            if n % self.every == 0 {
                f64::NAN
            } else {
                self.inner.ratio_sampled(sample)
            }
        }
    }

    #[test]
    fn failures_are_isolated_and_counted() {
        let flaky = FlakySource {
            inner: map(),
            every: 10,
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(1000, 7)
            .expect("valid")
            .with_failure_budget(0.2)
            .expect("valid budget");
        let r = try_run_with(&flaky, &UncertaintyRanges::paper_default(), &config)
            .expect("within budget");
        assert_eq!(r.failures.non_finite_ratio, 100);
        assert_eq!(r.evaluated, 900);
        assert_eq!(r.samples, 1000);
        let (p5, p50, p95) = r.ratio_quantiles;
        assert!(p5.is_finite() && p50.is_finite() && p95.is_finite());
        assert!(p5 <= p50 && p50 <= p95);
    }

    #[test]
    fn exceeding_the_budget_is_an_error() {
        let flaky = FlakySource {
            inner: map(),
            every: 2,
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(1000, 7)
            .expect("valid")
            .with_failure_budget(0.2)
            .expect("valid budget");
        match try_run_with(&flaky, &UncertaintyRanges::paper_default(), &config) {
            Err(PpatcError::FailureBudgetExceeded {
                failed,
                samples,
                budget,
            }) => {
                assert_eq!(failed, 500);
                assert_eq!(samples, 1000);
                assert_eq!(budget, 0.2);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn survivors_statistics_ignore_failed_samples() {
        // With a generous budget, the quantiles over survivors must match a
        // clean run over the same surviving draws' distribution shape:
        // every survivor ratio is finite and positive.
        let flaky = FlakySource {
            inner: map(),
            every: 3,
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(900, 11)
            .expect("valid")
            .with_failure_budget(0.5)
            .expect("valid budget");
        let r = try_run_with(&flaky, &UncertaintyRanges::paper_default(), &config)
            .expect("within budget");
        assert_eq!(r.evaluated + r.failures.total(), r.samples);
        assert!((0.0..=1.0).contains(&r.p_m3d_wins));
    }
}
