//! Monte-Carlo uncertainty analysis — the continuous generalization of
//! Fig. 6b.
//!
//! Fig. 6b perturbs one uncertainty source at a time; in reality lifetime,
//! use-phase carbon intensity, M3D yield, and the embodied/operational
//! model errors are *jointly* uncertain. This module samples all of them
//! at once and reports the probability that the M3D design ends up more
//! carbon-efficient, together with quantiles of the tCDP ratio — a
//! decision-grade summary ("M3D wins in 74% of futures") instead of a
//! family of isolines.
//!
//! Sampling is deterministic given a seed, so results are reproducible.

use crate::isoline::TcdpMap;
use crate::lifetime::Lifetime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Joint uncertainty ranges. Scales are sampled log-uniformly (a factor of
/// 2 up is as likely as a factor of 2 down); lifetimes and yields
/// uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintyRanges {
    /// System lifetime, months (min, max).
    pub lifetime_months: (f64, f64),
    /// Scale on CI_use (min, max), log-uniform.
    pub ci_use_scale: (f64, f64),
    /// M3D die yield (min, max).
    pub m3d_yield: (f64, f64),
    /// Scale on the M3D embodied-carbon model (min, max), log-uniform.
    pub m3d_embodied_scale: (f64, f64),
    /// Scale on the M3D operational energy (min, max), log-uniform.
    pub m3d_eop_scale: (f64, f64),
}

impl UncertaintyRanges {
    /// The Fig. 6b-inspired ranges: lifetime 24 ± 6 months, CI ÷3..×3,
    /// yield 10–90%, and ±30%-ish model error on the M3D embodied and
    /// operational terms.
    pub fn paper_default() -> Self {
        Self {
            lifetime_months: (18.0, 30.0),
            ci_use_scale: (1.0 / 3.0, 3.0),
            m3d_yield: (0.10, 0.90),
            m3d_embodied_scale: (0.77, 1.30),
            m3d_eop_scale: (0.80, 1.25),
        }
    }

    fn validate(&self) {
        for (name, (lo, hi)) in [
            ("lifetime", self.lifetime_months),
            ("ci scale", self.ci_use_scale),
            ("yield", self.m3d_yield),
            ("embodied scale", self.m3d_embodied_scale),
            ("eop scale", self.m3d_eop_scale),
        ] {
            assert!(lo > 0.0 && hi >= lo, "invalid {name} range ({lo}, {hi})");
        }
        assert!(self.m3d_yield.1 <= 1.0, "yield cannot exceed 1");
    }
}

/// One sampled future.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintySample {
    /// Sampled lifetime.
    pub lifetime: Lifetime,
    /// Sampled CI_use scale.
    pub ci_scale: f64,
    /// Sampled M3D yield.
    pub m3d_yield: f64,
    /// Sampled M3D embodied scale.
    pub embodied_scale: f64,
    /// Sampled M3D operational scale.
    pub eop_scale: f64,
}

/// Summary of a Monte-Carlo run.
#[derive(Clone, Debug, PartialEq)]
pub struct MonteCarloResult {
    /// Number of samples drawn.
    pub samples: usize,
    /// Fraction of futures in which the M3D design has lower tCDP.
    pub p_m3d_wins: f64,
    /// 5th / 50th / 95th percentiles of the tCDP ratio (M3D / all-Si).
    pub ratio_quantiles: (f64, f64, f64),
}

impl core::fmt::Display for MonteCarloResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "M3D wins in {:.1}% of {} sampled futures; tCDP ratio p5/p50/p95 = {:.3}/{:.3}/{:.3}",
            self.p_m3d_wins * 100.0,
            self.samples,
            self.ratio_quantiles.0,
            self.ratio_quantiles.1,
            self.ratio_quantiles.2
        )
    }
}

/// Runs a Monte-Carlo sweep over a [`TcdpMap`]'s underlying designs.
///
/// # Panics
///
/// Panics if `n` is zero or a range is invalid.
pub fn run(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
) -> MonteCarloResult {
    assert!(n > 0, "need at least one sample");
    ranges.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratios = Vec::with_capacity(n);
    let mut wins = 0usize;
    for _ in 0..n {
        let sample = draw(&mut rng, ranges);
        let r = map.ratio_sampled(&sample);
        if r < 1.0 {
            wins += 1;
        }
        ratios.push(r);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let q = |p: f64| ratios[(p * (n - 1) as f64).round() as usize];
    MonteCarloResult {
        samples: n,
        p_m3d_wins: wins as f64 / n as f64,
        ratio_quantiles: (q(0.05), q(0.50), q(0.95)),
    }
}

/// Variance-based sensitivity: for each uncertainty source, the fraction of
/// the tCDP-ratio variance that disappears when that source is pinned to
/// its nominal value (a freeze-one-at-a-time importance measure).
///
/// Returns `(source name, variance share in [0, 1])`, sorted descending.
///
/// # Panics
///
/// Panics if `n` is zero or a range is invalid.
pub fn sensitivity(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    assert!(n > 0, "need at least one sample");
    ranges.validate();
    let variance_of = |ranges: &UncertaintyRanges, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let ratios: Vec<f64> = (0..n)
            .map(|_| map.ratio_sampled(&draw(&mut rng, ranges)))
            .collect();
        let mean = ratios.iter().sum::<f64>() / n as f64;
        ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n as f64
    };
    let base = variance_of(ranges, seed);
    if base <= 0.0 {
        return vec![
            ("lifetime", 0.0),
            ("CI_use", 0.0),
            ("M3D yield", 0.0),
            ("embodied model", 0.0),
            ("operational model", 0.0),
        ];
    }
    let mid = |(lo, hi): (f64, f64)| ((lo + hi) / 2.0, (lo + hi) / 2.0);
    let mid_log = |(lo, hi): (f64, f64)| {
        let g = (lo * hi).sqrt();
        (g, g)
    };
    let variants: [(&'static str, UncertaintyRanges); 5] = [
        ("lifetime", UncertaintyRanges { lifetime_months: mid(ranges.lifetime_months), ..*ranges }),
        ("CI_use", UncertaintyRanges { ci_use_scale: mid_log(ranges.ci_use_scale), ..*ranges }),
        ("M3D yield", UncertaintyRanges { m3d_yield: mid(ranges.m3d_yield), ..*ranges }),
        (
            "embodied model",
            UncertaintyRanges { m3d_embodied_scale: mid_log(ranges.m3d_embodied_scale), ..*ranges },
        ),
        (
            "operational model",
            UncertaintyRanges { m3d_eop_scale: mid_log(ranges.m3d_eop_scale), ..*ranges },
        ),
    ];
    let mut out: Vec<(&'static str, f64)> = variants
        .iter()
        .map(|(name, v)| {
            let reduced = variance_of(v, seed);
            (*name, ((base - reduced) / base).max(0.0))
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
    out
}

fn draw(rng: &mut StdRng, r: &UncertaintyRanges) -> UncertaintySample {
    let uniform = |rng: &mut StdRng, (lo, hi): (f64, f64)| {
        if hi > lo {
            rng.gen_range(lo..hi)
        } else {
            lo
        }
    };
    let log_uniform = |rng: &mut StdRng, (lo, hi): (f64, f64)| {
        if hi > lo {
            (rng.gen_range(lo.ln()..hi.ln())).exp()
        } else {
            lo
        }
    };
    UncertaintySample {
        lifetime: Lifetime::months(uniform(rng, r.lifetime_months)),
        ci_scale: log_uniform(rng, r.ci_use_scale),
        m3d_yield: uniform(rng, r.m3d_yield),
        embodied_scale: log_uniform(rng, r.m3d_embodied_scale),
        eop_scale: log_uniform(rng, r.m3d_eop_scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::UsagePattern;
    use crate::CarbonTrajectory;
    use ppatc_units::{CarbonMass, Power, Time};

    fn map() -> TcdpMap {
        let exec = Time::from_seconds(0.04);
        let usage = UsagePattern::paper_default();
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(3.08),
            Power::from_milliwatts(9.7),
            usage,
            exec,
        );
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(3.52),
            Power::from_milliwatts(8.5),
            usage,
            exec,
        );
        TcdpMap::new(si, m3d, Lifetime::months(24.0), 0.50)
    }

    #[test]
    fn deterministic_given_seed() {
        let m = map();
        let r1 = run(&m, &UncertaintyRanges::paper_default(), 2000, 42);
        let r2 = run(&m, &UncertaintyRanges::paper_default(), 2000, 42);
        assert_eq!(r1, r2);
        let r3 = run(&m, &UncertaintyRanges::paper_default(), 2000, 43);
        assert_ne!(r1.ratio_quantiles, r3.ratio_quantiles);
    }

    #[test]
    fn probabilities_are_sane() {
        let r = run(&map(), &UncertaintyRanges::paper_default(), 5000, 7);
        assert!((0.0..=1.0).contains(&r.p_m3d_wins));
        // The decision is genuinely uncertain under the full Fig. 6b joint
        // ranges: neither side should win more than ~95% of futures.
        assert!(
            (0.05..0.95).contains(&r.p_m3d_wins),
            "P(M3D wins) = {:.2}",
            r.p_m3d_wins
        );
        let (p5, p50, p95) = r.ratio_quantiles;
        assert!(p5 < p50 && p50 < p95);
    }

    #[test]
    fn tight_ranges_collapse_to_the_nominal() {
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            m3d_yield: (0.50, 0.50),
            m3d_embodied_scale: (1.0, 1.0),
            m3d_eop_scale: (1.0, 1.0),
        };
        let m = map();
        let r = run(&m, &tight, 100, 1);
        let nominal = m.ratio(1.0, 1.0);
        assert!((r.ratio_quantiles.1 - nominal).abs() < 1e-9);
        assert!(r.p_m3d_wins == 0.0 || r.p_m3d_wins == 1.0);
    }

    #[test]
    fn better_yield_ranges_raise_the_win_rate() {
        let m = map();
        let pessimistic = UncertaintyRanges {
            m3d_yield: (0.10, 0.30),
            ..UncertaintyRanges::paper_default()
        };
        let optimistic = UncertaintyRanges {
            m3d_yield: (0.70, 0.90),
            ..UncertaintyRanges::paper_default()
        };
        let p_lo = run(&m, &pessimistic, 4000, 9).p_m3d_wins;
        let p_hi = run(&m, &optimistic, 4000, 9).p_m3d_wins;
        assert!(p_hi > p_lo + 0.2, "win rates {p_lo:.2} vs {p_hi:.2}");
    }

    #[test]
    fn sensitivity_identifies_the_yield_knob() {
        // Over the Fig. 6b ranges, the 10–90% yield span moves embodied
        // carbon by 5× — it must dominate the variance.
        let shares = sensitivity(&map(), &UncertaintyRanges::paper_default(), 4000, 5);
        assert_eq!(shares.len(), 5);
        assert_eq!(shares[0].0, "M3D yield", "ranking: {shares:?}");
        assert!(shares[0].1 > 0.4, "yield share {:.2}", shares[0].1);
        for (_, s) in &shares {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn pinning_everything_kills_the_variance() {
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            m3d_yield: (0.5, 0.5),
            m3d_embodied_scale: (1.0, 1.0),
            m3d_eop_scale: (1.0, 1.0),
        };
        let shares = sensitivity(&map(), &tight, 500, 1);
        for (_, s) in shares {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn display_is_informative() {
        let r = run(&map(), &UncertaintyRanges::paper_default(), 500, 3);
        let text = r.to_string();
        assert!(text.contains("sampled futures"));
        assert!(text.contains("p5/p50/p95"));
    }
}
