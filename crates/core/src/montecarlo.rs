//! Monte-Carlo uncertainty analysis — the continuous generalization of
//! Fig. 6b.
//!
//! Fig. 6b perturbs one uncertainty source at a time; in reality lifetime,
//! use-phase carbon intensity, M3D yield, and the embodied/operational
//! model errors are *jointly* uncertain. This module samples all of them
//! at once and reports the probability that the M3D design ends up more
//! carbon-efficient, together with quantiles of the tCDP ratio — a
//! decision-grade summary ("M3D wins in 74% of futures") instead of a
//! family of isolines.
//!
//! # Sampling discipline
//!
//! Sample *i* is a **pure function of `(seed, i)`**: each sample draws from
//! its own counter-indexed [`SplitMix64::stream`], and each of the five
//! uncertainty sources always consumes exactly one draw (even when its
//! range is degenerate). Consequences:
//!
//! - results are reproducible from a seed, and sample *i* is identical
//!   whether the sweep draws 100 or 10 000 samples;
//! - the freeze-one-at-a-time sensitivity in [`try_sensitivity`] is
//!   properly *paired*: pinning one source leaves every other source's
//!   draws untouched, so the variance reduction it measures is exactly the
//!   pinned source's share;
//! - sweeps can be sharded across workers ([`try_run_jobs`]) with results
//!   byte-identical to the serial run for any worker count.
//!
//! # Fault isolation
//!
//! A sweep is only as robust as its worst sample: one NaN from a perturbed
//! model must not abort the other 9 999 samples. [`try_run_with`] therefore
//! evaluates each sample in isolation, classifies failures into a
//! [`FailureBreakdown`] by cause, and computes the statistics over the
//! survivors. A configurable [`MonteCarloConfig::failure_budget`] bounds the
//! tolerated failed fraction; exceeding it returns
//! [`PpatcError::FailureBudgetExceeded`] instead of silently reporting
//! statistics from a crippled sweep.

use crate::checkpoint::JournalSpec;
use crate::error::{check, PpatcError, ValidationError};
use crate::eval::{RunBudget, Supervisor};
use crate::isoline::TcdpMap;
use crate::lifetime::Lifetime;
use ppatc_units::rng::SplitMix64;

/// Samples per [`SampleBatch`] on the serial path — matches the parallel
/// engine's largest chunk so batch buffers stay cache-sized. Chunk
/// boundaries are unobservable: batches are bit-identical to per-sample
/// evaluation regardless of where they split.
const MC_BATCH: usize = 1024;

/// Joint uncertainty ranges. Scales are sampled log-uniformly (a factor of
/// 2 up is as likely as a factor of 2 down); lifetimes and yields
/// uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintyRanges {
    /// System lifetime, months (min, max).
    pub lifetime_months: (f64, f64),
    /// Scale on CI_use (min, max), log-uniform.
    pub ci_use_scale: (f64, f64),
    /// M3D die yield (min, max).
    pub m3d_yield: (f64, f64),
    /// Scale on the M3D embodied-carbon model (min, max), log-uniform.
    pub m3d_embodied_scale: (f64, f64),
    /// Scale on the M3D operational energy (min, max), log-uniform.
    pub m3d_eop_scale: (f64, f64),
}

impl UncertaintyRanges {
    /// The Fig. 6b-inspired ranges: lifetime 24 ± 6 months, CI ÷3..×3,
    /// yield 10–90%, and ±30%-ish model error on the M3D embodied and
    /// operational terms.
    pub fn paper_default() -> Self {
        Self {
            lifetime_months: (18.0, 30.0),
            ci_use_scale: (1.0 / 3.0, 3.0),
            m3d_yield: (0.10, 0.90),
            m3d_embodied_scale: (0.77, 1.30),
            m3d_eop_scale: (0.80, 1.25),
        }
    }

    /// Checks that every range is finite, positive, and ordered, and that
    /// the yield range stays within (0, 1].
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (name, (lo, hi)) in [
            ("lifetime_months", self.lifetime_months),
            ("ci_use_scale", self.ci_use_scale),
            ("m3d_yield", self.m3d_yield),
            ("m3d_embodied_scale", self.m3d_embodied_scale),
            ("m3d_eop_scale", self.m3d_eop_scale),
        ] {
            check::positive(name, lo)?;
            check::finite(name, hi)?;
            if hi < lo {
                return Err(ValidationError::new(
                    name,
                    hi,
                    "an ordered range (hi >= lo)",
                ));
            }
        }
        if self.m3d_yield.1 > 1.0 {
            return Err(ValidationError::new(
                "m3d_yield",
                self.m3d_yield.1,
                "in (0, 1]",
            ));
        }
        Ok(())
    }
}

/// One sampled future.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintySample {
    /// Sampled lifetime.
    pub lifetime: Lifetime,
    /// Sampled CI_use scale.
    pub ci_scale: f64,
    /// Sampled M3D yield.
    pub m3d_yield: f64,
    /// Sampled M3D embodied scale.
    pub embodied_scale: f64,
    /// Sampled M3D operational scale.
    pub eop_scale: f64,
}

/// A structure-of-arrays run of consecutive samples: column `i` across the
/// five vectors is exactly [`draw_sample`]`(seed, start + i, ranges)`.
///
/// Batches exist so the hot Monte-Carlo loop can hoist per-sweep constants
/// (range spans, log endpoints, embodied masses) out of the per-sample
/// path while staying bit-identical to the scalar engine: every column is
/// filled with the same expression trees [`draw_sample`] evaluates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SampleBatch {
    /// Sampled lifetimes.
    pub lifetime: Vec<Lifetime>,
    /// Sampled CI_use scales.
    pub ci_scale: Vec<f64>,
    /// Sampled M3D yields.
    pub m3d_yield: Vec<f64>,
    /// Sampled M3D embodied scales.
    pub embodied_scale: Vec<f64>,
    /// Sampled M3D operational scales.
    pub eop_scale: Vec<f64>,
}

impl SampleBatch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.lifetime.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.lifetime.is_empty()
    }

    /// Row `i` reassembled as an [`UncertaintySample`] — bit-identical to
    /// the [`draw_sample`] call the column fill mirrors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> UncertaintySample {
        UncertaintySample {
            lifetime: self.lifetime[i],
            ci_scale: self.ci_scale[i],
            m3d_yield: self.m3d_yield[i],
            embodied_scale: self.embodied_scale[i],
            eop_scale: self.eop_scale[i],
        }
    }

    fn clear_and_reserve(&mut self, len: usize) {
        self.lifetime.clear();
        self.ci_scale.clear();
        self.m3d_yield.clear();
        self.embodied_scale.clear();
        self.eop_scale.clear();
        self.lifetime.reserve(len);
        self.ci_scale.reserve(len);
        self.m3d_yield.reserve(len);
        self.embodied_scale.reserve(len);
        self.eop_scale.reserve(len);
    }
}

/// A uniform draw with its span precomputed: `lo + span * u` is the same
/// expression tree as [`lerp`]'s `lo + (hi - lo) * u`, so precomputing
/// `hi - lo` once per sweep changes no bits.
#[derive(Clone, Copy, Debug)]
struct UniDraw {
    lo: f64,
    span: f64,
}

impl UniDraw {
    fn new((lo, hi): (f64, f64)) -> Self {
        Self { lo, span: hi - lo }
    }

    fn draw(&self, u: f64) -> f64 {
        self.lo + self.span * u
    }
}

/// A log-uniform draw with its log endpoints precomputed; mirrors
/// [`lerp_log`] exactly, including the degenerate-range branch (which
/// still consumes the variate but returns `lo`).
#[derive(Clone, Copy, Debug)]
struct LogDraw {
    a: f64,
    span: f64,
    lo: f64,
    degenerate: bool,
}

impl LogDraw {
    fn new((lo, hi): (f64, f64)) -> Self {
        if hi > lo {
            Self {
                a: lo.ln(),
                span: hi.ln() - lo.ln(),
                lo,
                degenerate: false,
            }
        } else {
            Self {
                a: 0.0,
                span: 0.0,
                lo,
                degenerate: true,
            }
        }
    }

    fn draw(&self, u: f64) -> f64 {
        if self.degenerate {
            self.lo
        } else {
            (self.a + self.span * u).exp()
        }
    }
}

/// Per-sweep sampling constants hoisted out of the per-sample loop: one
/// [`SamplePlan`] per `(seed, ranges)` pair fills any run of consecutive
/// sample indices, in the exact draw order of [`draw_sample`]
/// (lifetime, CI, yield, embodied, operational — one variate each).
#[derive(Clone, Copy, Debug)]
struct SamplePlan {
    seed: u64,
    lifetime: UniDraw,
    ci: LogDraw,
    m3d_yield: UniDraw,
    embodied: LogDraw,
    eop: LogDraw,
}

impl SamplePlan {
    fn new(seed: u64, r: &UncertaintyRanges) -> Self {
        Self {
            seed,
            lifetime: UniDraw::new(r.lifetime_months),
            ci: LogDraw::new(r.ci_use_scale),
            m3d_yield: UniDraw::new(r.m3d_yield),
            embodied: LogDraw::new(r.m3d_embodied_scale),
            eop: LogDraw::new(r.m3d_eop_scale),
        }
    }

    /// Fills `out` with samples `start .. start + len`, each drawn from its
    /// own counter-indexed stream exactly like [`draw_sample`].
    fn fill(&self, start: u64, len: usize, out: &mut SampleBatch) {
        out.clear_and_reserve(len);
        for k in 0..len {
            let rng = &mut SplitMix64::stream(self.seed, start + k as u64);
            out.lifetime
                .push(Lifetime::months(self.lifetime.draw(rng.next_f64())));
            out.ci_scale.push(self.ci.draw(rng.next_f64()));
            out.m3d_yield.push(self.m3d_yield.draw(rng.next_f64()));
            out.embodied_scale.push(self.embodied.draw(rng.next_f64()));
            out.eop_scale.push(self.eop.draw(rng.next_f64()));
        }
    }
}

/// Anything that maps an [`UncertaintySample`] to a tCDP ratio
/// (M3D / all-Si).
///
/// [`TcdpMap`] is the production implementation; the fault-injection test
/// harness substitutes sources that return NaN or non-positive ratios on
/// selected samples to exercise the isolation machinery.
pub trait RatioSource {
    /// The tCDP ratio of the two designs under this sampled future.
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64;

    /// Evaluates a whole batch, appending one ratio per sample to `ratios`
    /// in index order.
    ///
    /// The default forwards to [`RatioSource::tcdp_ratio`] one sample at a
    /// time in ascending order, so sources whose output depends on call
    /// order behave exactly as under the scalar engine. Overrides may hoist
    /// per-batch constants but must stay bit-identical to the default —
    /// the sweep entry points batch at internal chunk boundaries and
    /// guarantee results byte-identical to the scalar path.
    fn tcdp_ratio_batch(&self, batch: &SampleBatch, ratios: &mut Vec<f64>) {
        for i in 0..batch.len() {
            ratios.push(self.tcdp_ratio(&batch.sample(i)));
        }
    }
}

impl RatioSource for TcdpMap {
    fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
        self.ratio_sampled(sample)
    }

    fn tcdp_ratio_batch(&self, batch: &SampleBatch, ratios: &mut Vec<f64>) {
        self.ratio_batch(batch, ratios);
    }
}

/// Configuration of a Monte-Carlo sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples to draw. Always at least 1.
    samples: usize,
    /// PRNG seed; equal seeds reproduce the sweep exactly.
    seed: u64,
    /// Maximum tolerated fraction of failed samples, in `[0, 1]`.
    failure_budget: f64,
}

impl MonteCarloConfig {
    /// Creates a configuration with a zero failure budget (any failed
    /// sample aborts the sweep).
    pub fn new(samples: usize, seed: u64) -> Result<Self, ValidationError> {
        if samples == 0 {
            return Err(ValidationError::new("samples", 0.0, ">= 1"));
        }
        Ok(Self {
            samples,
            seed,
            failure_budget: 0.0,
        })
    }

    /// Sets the maximum tolerated fraction of failed samples.
    // ppatc-lint: allow(raw-unit-api) — dimensionless fraction of samples
    pub fn with_failure_budget(self, budget: f64) -> Result<Self, ValidationError> {
        if !(budget.is_finite() && (0.0..=1.0).contains(&budget)) {
            return Err(ValidationError::new("failure_budget", budget, "in [0, 1]"));
        }
        Ok(Self {
            failure_budget: budget,
            ..self
        })
    }

    /// The number of samples this sweep will draw.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The maximum tolerated fraction of failed samples.
    // ppatc-lint: allow(raw-unit-api) — dimensionless fraction of samples
    pub fn failure_budget(&self) -> f64 {
        self.failure_budget
    }
}

/// Per-cause counts of samples discarded by a sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FailureBreakdown {
    /// Samples whose tCDP ratio came back NaN or infinite.
    pub non_finite_ratio: usize,
    /// Samples whose tCDP ratio was zero or negative (a physically
    /// meaningless carbon ratio).
    pub non_positive_ratio: usize,
    /// Samples whose evaluation panicked (caught at the item boundary by
    /// the supervised engine and converted to
    /// [`PpatcError::WorkerPanic`]).
    pub worker_panic: usize,
}

impl FailureBreakdown {
    /// Total number of discarded samples.
    pub fn total(&self) -> usize {
        self.non_finite_ratio + self.non_positive_ratio + self.worker_panic
    }

    fn record(&mut self, ratio: f64) {
        if !ratio.is_finite() {
            self.non_finite_ratio += 1;
        } else {
            self.non_positive_ratio += 1;
        }
    }
}

impl core::fmt::Display for FailureBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} failed ({} non-finite, {} non-positive, {} panicked)",
            self.total(),
            self.non_finite_ratio,
            self.non_positive_ratio,
            self.worker_panic
        )
    }
}

/// SPICE recovery pressure observed during one sweep: how many DC solves
/// needed the GMIN/source-stepping ladder and how many gave up, differenced
/// from the process-wide [`ppatc_spice::recovery_counters`] around the run.
///
/// The nominal exhibits evaluate pure arithmetic (no SPICE per sample), so
/// both counts are normally zero; nonzero counts flag a sweep whose
/// characterization work is straining the solver. The counters are
/// process-global, so concurrent solves elsewhere in the process (e.g.
/// parallel test threads) can inflate a run's attribution — treat the
/// counts as an upper bound, not an exact per-run tally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverRecoveryPressure {
    /// Solves rescued by a recovery rung during the sweep.
    pub recovered_solves: u64,
    /// Solves that exhausted the ladder or a solver budget.
    pub exhausted_solves: u64,
}

impl SolverRecoveryPressure {
    /// Whether any solve needed recovery or gave up.
    pub fn any(&self) -> bool {
        self.recovered_solves > 0 || self.exhausted_solves > 0
    }
}

/// The pressure accumulated since a [`ppatc_spice::recovery_counters`]
/// snapshot taken before the run.
fn pressure_since(before: (u64, u64)) -> SolverRecoveryPressure {
    let (recovered_0, exhausted_0) = before;
    let (recovered_1, exhausted_1) = ppatc_spice::recovery_counters();
    SolverRecoveryPressure {
        recovered_solves: recovered_1.saturating_sub(recovered_0),
        exhausted_solves: exhausted_1.saturating_sub(exhausted_0),
    }
}

/// Summary of a Monte-Carlo run.
#[derive(Clone, Debug, PartialEq)]
pub struct MonteCarloResult {
    /// Number of samples drawn.
    pub samples: usize,
    /// Number of samples that evaluated successfully (the statistics below
    /// are computed over these survivors).
    pub evaluated: usize,
    /// Per-cause counts of discarded samples.
    pub failures: FailureBreakdown,
    /// Fraction of surviving futures in which the M3D design has lower
    /// tCDP.
    pub p_m3d_wins: f64,
    /// 5th / 50th / 95th percentiles of the tCDP ratio (M3D / all-Si) over
    /// the survivors.
    pub ratio_quantiles: (f64, f64, f64),
    /// SPICE recovery pressure observed while the sweep ran (zero for the
    /// pure-arithmetic nominal exhibits).
    pub recovery: SolverRecoveryPressure,
}

impl core::fmt::Display for MonteCarloResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "M3D wins in {:.1}% of {} sampled futures; tCDP ratio p5/p50/p95 = {:.3}/{:.3}/{:.3}",
            self.p_m3d_wins * 100.0,
            self.samples,
            self.ratio_quantiles.0,
            self.ratio_quantiles.1,
            self.ratio_quantiles.2
        )?;
        if self.failures.total() > 0 {
            write!(f, " ({} over survivors)", self.failures)?;
        }
        if self.recovery.any() {
            write!(
                f,
                " [solver recovery: {} rescued, {} exhausted]",
                self.recovery.recovered_solves, self.recovery.exhausted_solves
            )?;
        }
        Ok(())
    }
}

/// Runs a Monte-Carlo sweep over a [`TcdpMap`]'s underlying designs.
///
/// This is the panicking convenience wrapper around [`try_run`] with a zero
/// failure budget, kept for call sites whose inputs are statically known to
/// be valid.
///
/// # Panics
///
/// Panics if `n` is zero, a range is invalid, or any sample fails to
/// evaluate.
pub fn run(map: &TcdpMap, ranges: &UncertaintyRanges, n: usize, seed: u64) -> MonteCarloResult {
    let config = match MonteCarloConfig::new(n, seed) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    };
    match try_run(map, ranges, &config) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Runs a Monte-Carlo sweep over a [`TcdpMap`]'s underlying designs,
/// isolating per-sample failures.
#[must_use = "this returns a Result that must be handled"]
pub fn try_run(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult, PpatcError> {
    try_run_with(map, ranges, config)
}

/// [`try_run`] sharded across `jobs` workers; byte-identical to the serial
/// run for any worker count (each sample is a pure function of
/// `(seed, index)` and the reduction sees ratios in index order).
#[must_use = "this returns a Result that must be handled"]
pub fn try_run_jobs(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
    jobs: usize,
) -> Result<MonteCarloResult, PpatcError> {
    try_run_with_jobs(map, ranges, config, jobs)
}

/// Runs a Monte-Carlo sweep over any [`RatioSource`], isolating per-sample
/// failures.
///
/// Each drawn sample is evaluated independently; samples producing
/// non-finite or non-positive ratios are recorded in the result's
/// [`FailureBreakdown`] instead of aborting the sweep. Statistics are
/// computed over the survivors. Returns
/// [`PpatcError::FailureBudgetExceeded`] when the failed fraction exceeds
/// [`MonteCarloConfig::failure_budget`], or
/// [`PpatcError::NoSurvivingSamples`] when the budget tolerates the
/// failures but every sample failed.
#[must_use = "this returns a Result that must be handled"]
pub fn try_run_with(
    source: &dyn RatioSource,
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult, PpatcError> {
    ranges.validate()?;
    let n = config.samples;
    let before = ppatc_spice::recovery_counters();
    let plan = SamplePlan::new(config.seed, ranges);
    let mut ratios: Vec<f64> = Vec::with_capacity(n);
    let mut batch = SampleBatch::default();
    let mut start = 0usize;
    while start < n {
        let end = (start + MC_BATCH).min(n);
        plan.fill(start as u64, end - start, &mut batch);
        source.tcdp_ratio_batch(&batch, &mut ratios);
        start = end;
    }
    summarize(ratios, config, pressure_since(before))
}

/// The exact scalar per-sample path — [`draw_sample`] plus one
/// [`RatioSource::tcdp_ratio`] call per index — kept as the bit-identity
/// oracle for the batched engine: every batched entry point must agree
/// with this byte-for-byte for any worker count.
#[must_use = "this returns a Result that must be handled"]
pub fn try_run_scalar(
    source: &(dyn RatioSource + Sync),
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
    jobs: usize,
) -> Result<MonteCarloResult, PpatcError> {
    ranges.validate()?;
    let n = config.samples;
    let before = ppatc_spice::recovery_counters();
    let ratios = crate::eval::par_map_indexed(n, jobs, |i| {
        source.tcdp_ratio(&draw_sample(config.seed, i as u64, ranges))
    });
    summarize(ratios, config, pressure_since(before))
}

/// [`try_run_with`] sharded across `jobs` workers. Requires a thread-safe
/// source; results are byte-identical to [`try_run_with`] for any worker
/// count *provided the source is a pure function of the sample* (sources
/// whose output depends on call order — e.g. call-counting fault
/// injectors — should use the serial entry point).
#[must_use = "this returns a Result that must be handled"]
pub fn try_run_with_jobs(
    source: &(dyn RatioSource + Sync),
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
    jobs: usize,
) -> Result<MonteCarloResult, PpatcError> {
    ranges.validate()?;
    let n = config.samples;
    let before = ppatc_spice::recovery_counters();
    let plan = SamplePlan::new(config.seed, ranges);
    let ratios = crate::eval::par_map_indexed_batched(n, jobs, |start, end| {
        let mut batch = SampleBatch::default();
        plan.fill(start as u64, end - start, &mut batch);
        let mut out = Vec::with_capacity(end - start);
        source.tcdp_ratio_batch(&batch, &mut out);
        out
    });
    summarize(ratios, config, pressure_since(before))
}

/// The checkpoint-journal identity of one sweep: seed and every range bound
/// (as exact bit patterns) fingerprinted, so a journal from a different
/// seed or different ranges is rejected on resume. The failure budget is
/// deliberately excluded — it only gates the final summary, never the
/// per-sample values a journal stores.
fn journal_spec(config: &MonteCarloConfig, r: &UncertaintyRanges) -> JournalSpec {
    let params = [
        config.seed,
        r.lifetime_months.0.to_bits(),
        r.lifetime_months.1.to_bits(),
        r.ci_use_scale.0.to_bits(),
        r.ci_use_scale.1.to_bits(),
        r.m3d_yield.0.to_bits(),
        r.m3d_yield.1.to_bits(),
        r.m3d_embodied_scale.0.to_bits(),
        r.m3d_embodied_scale.1.to_bits(),
        r.m3d_eop_scale.0.to_bits(),
        r.m3d_eop_scale.1.to_bits(),
    ];
    JournalSpec::for_run::<f64>("montecarlo", config.samples, &params)
}

/// Supervised [`try_run_with_jobs`]: the sweep honors `supervisor`'s
/// [`RunBudget`] at chunk boundaries, journals completed chunks when a
/// checkpoint path is configured, isolates panicking samples as
/// [`FailureBreakdown::worker_panic`] entries that count against the
/// failure budget, and — when resuming — replays journaled samples instead
/// of recomputing them.
///
/// With a default [`Supervisor`] this is byte-identical to
/// [`try_run_with_jobs`] for any worker count (modulo the engine's
/// panic-isolation wrapper, which is unobservable for panic-free sources).
///
/// # Errors
///
/// Everything [`try_run_with_jobs`] can return, plus
/// [`PpatcError::Interrupted`] (cancelled or past deadline; completed
/// samples are journaled first, so `--resume` continues where it stopped)
/// and [`PpatcError::Checkpoint`] for journal I/O or identity mismatches.
#[must_use = "this returns a Result that must be handled"]
pub fn try_run_supervised(
    source: &(dyn RatioSource + Sync),
    ranges: &UncertaintyRanges,
    config: &MonteCarloConfig,
    jobs: usize,
    supervisor: &Supervisor,
) -> Result<MonteCarloResult, PpatcError> {
    ranges.validate()?;
    let n = config.samples;
    let spec = journal_spec(config, ranges);
    let journal = supervisor.try_open_journal(&spec)?;
    let before = ppatc_spice::recovery_counters();
    let plan = SamplePlan::new(config.seed, ranges);
    let outcomes = crate::eval::try_par_map_journaled_batched(
        n,
        jobs,
        supervisor.budget(),
        journal.as_ref(),
        // The per-item path: resume replay chunks and batches that panic
        // fall back to this, pinning a panicking sample to its exact index.
        |i| source.tcdp_ratio(&draw_sample(config.seed, i as u64, ranges)),
        |start, end| {
            let mut batch = SampleBatch::default();
            plan.fill(start as u64, end - start, &mut batch);
            let mut out = Vec::with_capacity(end - start);
            source.tcdp_ratio_batch(&batch, &mut out);
            out
        },
    )?;
    summarize_outcomes(outcomes, config, pressure_since(before))
}

/// The serial reduction shared by the unsupervised sweep entry points.
fn summarize(
    ratios: Vec<f64>,
    config: &MonteCarloConfig,
    recovery: SolverRecoveryPressure,
) -> Result<MonteCarloResult, PpatcError> {
    summarize_outcomes(ratios.into_iter().map(Ok).collect(), config, recovery)
}

/// The serial reduction shared by every sweep entry point: classifies the
/// index-ordered per-sample outcomes (a panicked sample counts as one more
/// discarded sample), applies the failure budget, and computes survivor
/// statistics with linearly interpolated quantiles.
fn summarize_outcomes(
    outcomes: Vec<Result<f64, PpatcError>>,
    config: &MonteCarloConfig,
    recovery: SolverRecoveryPressure,
) -> Result<MonteCarloResult, PpatcError> {
    let n = outcomes.len();
    let mut survivors = Vec::with_capacity(n);
    let mut failures = FailureBreakdown::default();
    let mut wins = 0usize;
    for outcome in outcomes {
        let r = match outcome {
            Ok(r) => r,
            Err(_) => {
                failures.worker_panic += 1;
                continue;
            }
        };
        if !r.is_finite() || r <= 0.0 {
            failures.record(r);
            continue;
        }
        if r < 1.0 {
            wins += 1;
        }
        survivors.push(r);
    }
    let failed = failures.total();
    if failed as f64 / n as f64 > config.failure_budget {
        return Err(PpatcError::FailureBudgetExceeded {
            failed,
            samples: n,
            budget: config.failure_budget,
        });
    }
    if survivors.is_empty() {
        return Err(PpatcError::NoSurvivingSamples { samples: n });
    }
    let m = survivors.len();
    let ps = [0.05, 0.50, 0.95];
    select_ranks(&mut survivors, &quantile_ranks(m, &ps));
    let q = |p: f64| interpolated_quantile(&survivors, p);
    Ok(MonteCarloResult {
        samples: n,
        evaluated: m,
        failures,
        p_m3d_wins: wins as f64 / m as f64,
        ratio_quantiles: (q(0.05), q(0.50), q(0.95)),
        recovery,
    })
}

/// The ranks [`interpolated_quantile`] will read for quantiles `ps` over
/// `m` survivors: floor and ceiling of each rank `p·(m−1)`, ascending and
/// deduplicated.
fn quantile_ranks(m: usize, ps: &[f64]) -> Vec<usize> {
    let mut ranks: Vec<usize> = Vec::with_capacity(2 * ps.len());
    for &p in ps {
        let rank = p * (m - 1) as f64;
        ranks.push(rank.floor() as usize);
        ranks.push(rank.ceil() as usize);
    }
    ranks.sort_unstable();
    ranks.dedup();
    ranks
}

/// Partially orders `values` so every rank in `ranks` (ascending,
/// deduplicated, in range) holds the value a full ascending sort would
/// put there. Under [`f64::total_cmp`] the k-th order statistic is a
/// unique bit pattern, so this replaces the former full sort with an
/// O(n · ranks) selection while leaving the reported quantiles
/// bit-identical. Each selection narrows to the tail strictly above the
/// previously selected position — `select_nth_unstable_by` only pins the
/// selected index, so a later pass over a tail that still contained it
/// would be free to move it. Excluding it keeps every settled rank in
/// place, and the remaining tail holds exactly the elements belonging at
/// the remaining positions (an adjacent rank selects index 0 of it).
fn select_ranks(values: &mut [f64], ranks: &[usize]) {
    let mut offset = 0;
    for &rank in ranks {
        let tail = &mut values[offset..];
        tail.select_nth_unstable_by(rank - offset, f64::total_cmp);
        offset = rank + 1;
        if offset >= values.len() {
            break;
        }
    }
}

/// Linearly interpolated quantile over a non-empty slice partially ordered
/// by [`select_ranks`] at the floor/ceiling ranks this reads (the "type 7"
/// estimator): rank `p·(m−1)` split into its integer floor and fractional
/// part. Unlike nearest-rank rounding, p05/p95 do not collapse onto
/// min/max for small survivor sets, and the estimate varies continuously
/// with `p`.
fn interpolated_quantile(sorted: &[f64], p: f64) -> f64 {
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Variance-based sensitivity: for each uncertainty source, the fraction of
/// the tCDP-ratio variance that disappears when that source is pinned to
/// its nominal value (a freeze-one-at-a-time importance measure).
///
/// Returns `(source name, variance share in [0, 1])`, sorted descending.
///
/// This is the panicking convenience wrapper around [`try_sensitivity`].
///
/// # Panics
///
/// Panics if `n` is zero or a range is invalid.
pub fn sensitivity(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    match try_sensitivity(map, ranges, n, seed) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Variance-based sensitivity (see [`sensitivity`]), returning structured
/// errors for invalid inputs. Non-finite sample ratios are skipped in the
/// variance estimates.
#[must_use = "this returns a Result that must be handled"]
pub fn try_sensitivity(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
) -> Result<Vec<(&'static str, f64)>, PpatcError> {
    try_sensitivity_jobs(map, ranges, n, seed, 1)
}

/// [`try_sensitivity`] sharded across `jobs` workers; byte-identical to the
/// serial run for any worker count.
///
/// Because every sample is a pure function of `(seed, index)` and every
/// source always consumes exactly one draw, the frozen variants are
/// *paired* with the base sweep: sample *i* of a frozen variant differs
/// from base sample *i* only in the pinned source.
#[must_use = "this returns a Result that must be handled"]
pub fn try_sensitivity_jobs(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
    jobs: usize,
) -> Result<Vec<(&'static str, f64)>, PpatcError> {
    try_sensitivity_supervised(map, ranges, n, seed, jobs, &RunBudget::unlimited())
}

/// [`try_sensitivity_jobs`] under a [`RunBudget`]: the base sweep and every
/// frozen variant poll `budget` at chunk boundaries, so a cancellation or
/// deadline stops the whole analysis with [`PpatcError::Interrupted`].
///
/// Sensitivity sweeps are not checkpointed: the six constituent sweeps are
/// an order of magnitude cheaper than the headline Monte-Carlo run, and a
/// variance share is not a per-index value a journal could resume.
/// Panicking samples are skipped in the variance estimates exactly like
/// non-finite ratios.
///
/// # Errors
///
/// Everything [`try_sensitivity_jobs`] can return, plus
/// [`PpatcError::Interrupted`] when the budget stops a constituent sweep.
#[must_use = "this returns a Result that must be handled"]
pub fn try_sensitivity_supervised(
    map: &TcdpMap,
    ranges: &UncertaintyRanges,
    n: usize,
    seed: u64,
    jobs: usize,
    budget: &RunBudget,
) -> Result<Vec<(&'static str, f64)>, PpatcError> {
    if n == 0 {
        return Err(ValidationError::new("samples", 0.0, ">= 1").into());
    }
    ranges.validate()?;
    let variance_of = |ranges: &UncertaintyRanges, seed: u64| -> Result<f64, PpatcError> {
        let ratios: Vec<f64> = crate::eval::try_par_map_indexed(n, jobs, budget, |i| {
            map.ratio_sampled(&draw_sample(seed, i as u64, ranges))
        })?
        .into_iter()
        .filter_map(Result::ok)
        .filter(|r| r.is_finite())
        .collect();
        if ratios.is_empty() {
            return Ok(0.0);
        }
        let m = ratios.len() as f64;
        let mean = ratios.iter().sum::<f64>() / m;
        Ok(ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / m)
    };
    let base = variance_of(ranges, seed)?;
    if base <= 0.0 {
        return Ok(vec![
            ("lifetime", 0.0),
            ("CI_use", 0.0),
            ("M3D yield", 0.0),
            ("embodied model", 0.0),
            ("operational model", 0.0),
        ]);
    }
    let mid = |(lo, hi): (f64, f64)| ((lo + hi) / 2.0, (lo + hi) / 2.0);
    let mid_log = |(lo, hi): (f64, f64)| {
        let g = (lo * hi).sqrt();
        (g, g)
    };
    let variants: [(&'static str, UncertaintyRanges); 5] = [
        (
            "lifetime",
            UncertaintyRanges {
                lifetime_months: mid(ranges.lifetime_months),
                ..*ranges
            },
        ),
        (
            "CI_use",
            UncertaintyRanges {
                ci_use_scale: mid_log(ranges.ci_use_scale),
                ..*ranges
            },
        ),
        (
            "M3D yield",
            UncertaintyRanges {
                m3d_yield: mid(ranges.m3d_yield),
                ..*ranges
            },
        ),
        (
            "embodied model",
            UncertaintyRanges {
                m3d_embodied_scale: mid_log(ranges.m3d_embodied_scale),
                ..*ranges
            },
        ),
        (
            "operational model",
            UncertaintyRanges {
                m3d_eop_scale: mid_log(ranges.m3d_eop_scale),
                ..*ranges
            },
        ),
    ];
    let mut out: Vec<(&'static str, f64)> = Vec::with_capacity(variants.len());
    for (name, v) in &variants {
        let reduced = variance_of(v, seed)?;
        out.push((*name, ((base - reduced) / base).max(0.0)));
    }
    out.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
    Ok(out)
}

/// Draws sample `index` of the sweep seeded with `seed` — a pure function
/// of `(seed, index)`, independent of the total sample count and of any
/// other sample.
///
/// Each of the five sources consumes exactly one draw from the sample's
/// counter-indexed stream, even when its range is degenerate (`hi == lo`),
/// so pinning one source never shifts another source's draw — the property
/// the paired sensitivity freezes in [`try_sensitivity`] rely on.
///
/// `ranges` are used as given; sweep entry points validate them first.
pub fn draw_sample(seed: u64, index: u64, r: &UncertaintyRanges) -> UncertaintySample {
    let rng = &mut SplitMix64::stream(seed, index);
    UncertaintySample {
        lifetime: Lifetime::months(lerp(rng, r.lifetime_months)),
        ci_scale: lerp_log(rng, r.ci_use_scale),
        m3d_yield: lerp(rng, r.m3d_yield),
        embodied_scale: lerp_log(rng, r.m3d_embodied_scale),
        eop_scale: lerp_log(rng, r.m3d_eop_scale),
    }
}

/// Uniform draw over `[lo, hi)` that always consumes exactly one variate
/// (returns `lo` exactly when the range is degenerate).
fn lerp(rng: &mut SplitMix64, (lo, hi): (f64, f64)) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Log-uniform draw over `[lo, hi)` that always consumes exactly one
/// variate (returns `lo` exactly when the range is degenerate).
fn lerp_log(rng: &mut SplitMix64, (lo, hi): (f64, f64)) -> f64 {
    let u = rng.next_f64();
    if hi > lo {
        (lo.ln() + (hi.ln() - lo.ln()) * u).exp()
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::UsagePattern;
    use crate::CarbonTrajectory;
    use ppatc_units::{CarbonMass, Power, Time};

    fn map() -> TcdpMap {
        let exec = Time::from_seconds(0.04);
        let usage = UsagePattern::paper_default();
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(3.08),
            Power::from_milliwatts(9.7),
            usage,
            exec,
        );
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(3.52),
            Power::from_milliwatts(8.5),
            usage,
            exec,
        );
        TcdpMap::new(si, m3d, Lifetime::months(24.0), 0.50)
    }

    #[test]
    fn select_ranks_matches_a_full_sort_on_random_data() {
        // Every rank the quantile estimator reads must hold exactly the
        // value a full ascending sort would put there, across many random
        // slices — including the small sizes where floor/ceil ranks are
        // adjacent or coincide. This pins the regression where each
        // selection's tail still contained the previously selected
        // position, letting `select_nth_unstable_by` move it.
        let ps = [0.05, 0.50, 0.95];
        for trial in 0..200_u64 {
            let rng = &mut SplitMix64::stream(0xC0FFEE, trial);
            let m = 1 + (rng.next_f64() * 400.0) as usize;
            let values: Vec<f64> = (0..m).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
            let mut sorted = values.clone();
            sorted.sort_unstable_by(f64::total_cmp);
            let mut selected = values;
            let ranks = quantile_ranks(m, &ps);
            select_ranks(&mut selected, &ranks);
            for &r in &ranks {
                assert_eq!(
                    selected[r].to_bits(),
                    sorted[r].to_bits(),
                    "rank {r} of {m} diverged from the full sort (trial {trial})"
                );
            }
            for &p in &ps {
                assert_eq!(
                    interpolated_quantile(&selected, p).to_bits(),
                    interpolated_quantile(&sorted, p).to_bits(),
                    "p{:02} diverged from the full-sort reference (m = {m}, trial {trial})",
                    (p * 100.0) as u32
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = map();
        let r1 = run(&m, &UncertaintyRanges::paper_default(), 2000, 42);
        let r2 = run(&m, &UncertaintyRanges::paper_default(), 2000, 42);
        assert_eq!(r1, r2);
        let r3 = run(&m, &UncertaintyRanges::paper_default(), 2000, 43);
        assert_ne!(r1.ratio_quantiles, r3.ratio_quantiles);
    }

    #[test]
    fn probabilities_are_sane() {
        let r = run(&map(), &UncertaintyRanges::paper_default(), 5000, 7);
        assert!((0.0..=1.0).contains(&r.p_m3d_wins));
        assert_eq!(r.evaluated, r.samples);
        assert_eq!(r.failures.total(), 0);
        // The decision is genuinely uncertain under the full Fig. 6b joint
        // ranges: neither side should win more than ~95% of futures.
        assert!(
            (0.05..0.95).contains(&r.p_m3d_wins),
            "P(M3D wins) = {:.2}",
            r.p_m3d_wins
        );
        let (p5, p50, p95) = r.ratio_quantiles;
        assert!(p5 < p50 && p50 < p95);
    }

    #[test]
    fn tight_ranges_collapse_to_the_nominal() {
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            m3d_yield: (0.50, 0.50),
            m3d_embodied_scale: (1.0, 1.0),
            m3d_eop_scale: (1.0, 1.0),
        };
        let m = map();
        let r = run(&m, &tight, 100, 1);
        let nominal = m.ratio(1.0, 1.0);
        assert!((r.ratio_quantiles.1 - nominal).abs() < 1e-9);
        assert!(r.p_m3d_wins == 0.0 || r.p_m3d_wins == 1.0);
    }

    #[test]
    fn better_yield_ranges_raise_the_win_rate() {
        let m = map();
        let pessimistic = UncertaintyRanges {
            m3d_yield: (0.10, 0.30),
            ..UncertaintyRanges::paper_default()
        };
        let optimistic = UncertaintyRanges {
            m3d_yield: (0.70, 0.90),
            ..UncertaintyRanges::paper_default()
        };
        let p_lo = run(&m, &pessimistic, 4000, 9).p_m3d_wins;
        let p_hi = run(&m, &optimistic, 4000, 9).p_m3d_wins;
        assert!(p_hi > p_lo + 0.2, "win rates {p_lo:.2} vs {p_hi:.2}");
    }

    #[test]
    fn sensitivity_identifies_the_yield_knob() {
        // Over the Fig. 6b ranges, the 10–90% yield span moves embodied
        // carbon by 5× — it must dominate the variance.
        let shares = sensitivity(&map(), &UncertaintyRanges::paper_default(), 4000, 5);
        assert_eq!(shares.len(), 5);
        assert_eq!(shares[0].0, "M3D yield", "ranking: {shares:?}");
        assert!(shares[0].1 > 0.4, "yield share {:.2}", shares[0].1);
        for (_, s) in &shares {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn pinning_everything_kills_the_variance() {
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            m3d_yield: (0.5, 0.5),
            m3d_embodied_scale: (1.0, 1.0),
            m3d_eop_scale: (1.0, 1.0),
        };
        let shares = sensitivity(&map(), &tight, 500, 1);
        for (_, s) in shares {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn display_is_informative() {
        let r = run(&map(), &UncertaintyRanges::paper_default(), 500, 3);
        let text = r.to_string();
        assert!(text.contains("sampled futures"));
        assert!(text.contains("p5/p50/p95"));
    }

    #[test]
    fn invalid_ranges_are_structured_errors_not_panics() {
        let mut bad = UncertaintyRanges::paper_default();
        bad.m3d_yield = (0.5, 1.7);
        let config = MonteCarloConfig::new(100, 1).expect("valid config");
        match try_run(&map(), &bad, &config) {
            Err(PpatcError::Validation(v)) => {
                assert_eq!(v.field, "m3d_yield");
                assert_eq!(v.value, 1.7);
            }
            other => panic!("expected validation error, got {other:?}"),
        }
        let mut nan = UncertaintyRanges::paper_default();
        nan.ci_use_scale.0 = f64::NAN;
        assert!(matches!(
            try_run(&map(), &nan, &config),
            Err(PpatcError::Validation(_))
        ));
    }

    #[test]
    fn zero_samples_is_a_structured_error() {
        let e = MonteCarloConfig::new(0, 1).expect_err("zero samples rejected");
        assert_eq!(e.field, "samples");
    }

    /// A source that records every sample it is asked to evaluate.
    struct RecordingSource {
        inner: TcdpMap,
        seen: core::cell::RefCell<Vec<UncertaintySample>>,
    }

    impl RatioSource for RecordingSource {
        fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
            self.seen.borrow_mut().push(*sample);
            self.inner.ratio_sampled(sample)
        }
    }

    #[test]
    fn sample_i_is_identical_for_100_and_10_000_samples() {
        // Regression: samples used to share one sequential stream, so
        // sample i depended on the draw history of samples 0..i and (via
        // buffer reuse bugs elsewhere) on the configured total. Each sample
        // is now a pure function of (seed, i).
        let ranges = UncertaintyRanges::paper_default();
        let record = |n: usize| {
            let source = RecordingSource {
                inner: map(),
                seen: core::cell::RefCell::new(Vec::new()),
            };
            let config = MonteCarloConfig::new(n, 12345).expect("valid config");
            let _ = try_run_with(&source, &ranges, &config).expect("sweep runs");
            source.seen.into_inner()
        };
        let small = record(100);
        let large = record(10_000);
        assert_eq!(small.len(), 100);
        assert_eq!(large.len(), 10_000);
        for (i, (a, b)) in small.iter().zip(&large).enumerate() {
            assert_eq!(a, b, "sample {i} depends on the sample count");
        }
        // And directly: the public draw is pure in (seed, index).
        assert_eq!(
            draw_sample(12345, 77, &ranges),
            draw_sample(12345, 77, &ranges)
        );
    }

    #[test]
    fn degenerate_ranges_do_not_shift_other_sources_draws() {
        // Pinning one source must leave every other source's draw at
        // sample i untouched (the paired-freeze property).
        let ranges = UncertaintyRanges::paper_default();
        let frozen = UncertaintyRanges {
            ci_use_scale: (1.0, 1.0),
            ..ranges
        };
        for i in 0..50 {
            let a = draw_sample(9, i, &ranges);
            let b = draw_sample(9, i, &frozen);
            assert_eq!(a.lifetime, b.lifetime);
            assert_eq!(b.ci_scale, 1.0);
            assert_eq!(a.m3d_yield, b.m3d_yield);
            assert_eq!(a.embodied_scale, b.embodied_scale);
            assert_eq!(a.eop_scale, b.eop_scale);
        }
    }

    /// A source that replays a fixed ratio sequence in call order.
    struct SequenceSource {
        values: Vec<f64>,
        calls: core::cell::Cell<usize>,
    }

    impl RatioSource for SequenceSource {
        fn tcdp_ratio(&self, _: &UncertaintySample) -> f64 {
            let i = self.calls.get();
            self.calls.set(i + 1);
            self.values[i % self.values.len()]
        }
    }

    #[test]
    fn quantiles_are_linearly_interpolated() {
        // Regression: nearest-rank rounding collapsed p05/p95 onto min/max
        // for small survivor sets. For the 10-sample set {1..10} the type-7
        // estimator gives rank p·9: p05 → 1.45, p50 → 5.5, p95 → 9.55.
        let source = SequenceSource {
            values: vec![10.0, 1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0, 5.0],
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(10, 1).expect("valid config");
        let r = try_run_with(&source, &UncertaintyRanges::paper_default(), &config)
            .expect("all samples survive");
        let (q05, q50, q95) = r.ratio_quantiles;
        assert!((q05 - 1.45).abs() < 1e-12, "q05 = {q05}");
        assert!((q50 - 5.5).abs() < 1e-12, "q50 = {q50}");
        assert!((q95 - 9.55).abs() < 1e-12, "q95 = {q95}");
    }

    #[test]
    fn all_samples_failing_is_distinguished_from_a_blown_budget() {
        struct AlwaysNan;
        impl RatioSource for AlwaysNan {
            fn tcdp_ratio(&self, _: &UncertaintySample) -> f64 {
                f64::NAN
            }
        }
        let ranges = UncertaintyRanges::paper_default();
        // With a budget that tolerates every failure, the honest report is
        // "no survivors", not "budget exceeded".
        let tolerant = MonteCarloConfig::new(40, 1)
            .expect("valid")
            .with_failure_budget(1.0)
            .expect("valid budget");
        match try_run_with(&AlwaysNan, &ranges, &tolerant) {
            Err(PpatcError::NoSurvivingSamples { samples }) => assert_eq!(samples, 40),
            other => panic!("expected NoSurvivingSamples, got {other:?}"),
        }
        // With a zero budget, the budget violation is the primary cause.
        let strict = MonteCarloConfig::new(40, 1).expect("valid");
        match try_run_with(&AlwaysNan, &ranges, &strict) {
            Err(PpatcError::FailureBudgetExceeded {
                failed, samples, ..
            }) => {
                assert_eq!(failed, 40);
                assert_eq!(samples, 40);
            }
            other => panic!("expected FailureBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn batch_fill_matches_draw_sample_exactly() {
        let ranges = UncertaintyRanges::paper_default();
        let plan = SamplePlan::new(2025, &ranges);
        let mut batch = SampleBatch::default();
        plan.fill(300, 64, &mut batch);
        assert_eq!(batch.len(), 64);
        for k in 0..64 {
            let scalar = draw_sample(2025, 300 + k as u64, &ranges);
            assert_eq!(batch.sample(k), scalar, "sample {k}");
            assert_eq!(
                batch.lifetime[k].as_time().as_months().to_bits(),
                scalar.lifetime.as_time().as_months().to_bits()
            );
            assert_eq!(batch.ci_scale[k].to_bits(), scalar.ci_scale.to_bits());
            assert_eq!(batch.m3d_yield[k].to_bits(), scalar.m3d_yield.to_bits());
            assert_eq!(
                batch.embodied_scale[k].to_bits(),
                scalar.embodied_scale.to_bits()
            );
            assert_eq!(batch.eop_scale[k].to_bits(), scalar.eop_scale.to_bits());
        }
        // Degenerate ranges take the same branch as lerp/lerp_log.
        let tight = UncertaintyRanges {
            lifetime_months: (24.0, 24.0),
            ci_use_scale: (1.0, 1.0),
            ..ranges
        };
        let plan = SamplePlan::new(7, &tight);
        plan.fill(0, 8, &mut batch);
        for k in 0..8 {
            assert_eq!(batch.sample(k), draw_sample(7, k as u64, &tight));
        }
    }

    #[test]
    fn batched_sweep_is_bit_identical_to_the_scalar_oracle() {
        let m = map();
        let ranges = UncertaintyRanges::paper_default();
        let config = MonteCarloConfig::new(5000, 2025).expect("valid config");
        let oracle = try_run_scalar(&m, &ranges, &config, 1).expect("scalar oracle");
        let bits = |q: (f64, f64, f64)| (q.0.to_bits(), q.1.to_bits(), q.2.to_bits());
        for jobs in [1, 2, 4, 8] {
            let batched = try_run_jobs(&m, &ranges, &config, jobs).expect("batched sweep");
            assert_eq!(batched, oracle, "jobs = {jobs}");
            assert_eq!(
                bits(batched.ratio_quantiles),
                bits(oracle.ratio_quantiles),
                "jobs = {jobs}"
            );
            let supervised = try_run_supervised(&m, &ranges, &config, jobs, &Supervisor::new())
                .expect("supervised sweep");
            assert_eq!(supervised, oracle, "supervised, jobs = {jobs}");
        }
        let serial = try_run(&m, &ranges, &config).expect("serial batched sweep");
        assert_eq!(serial, oracle);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let m = map();
        let ranges = UncertaintyRanges::paper_default();
        let config = MonteCarloConfig::new(3000, 2024).expect("valid config");
        let serial = try_run_jobs(&m, &ranges, &config, 1).expect("serial");
        for jobs in [2, 5, 8] {
            let parallel = try_run_jobs(&m, &ranges, &config, jobs).expect("parallel");
            assert_eq!(serial, parallel, "jobs = {jobs}");
            let bits = |q: (f64, f64, f64)| (q.0.to_bits(), q.1.to_bits(), q.2.to_bits());
            assert_eq!(
                bits(serial.ratio_quantiles),
                bits(parallel.ratio_quantiles),
                "jobs = {jobs}"
            );
        }
    }

    /// A source that fails (returns NaN) on every k-th sample.
    struct FlakySource {
        inner: TcdpMap,
        every: usize,
        calls: core::cell::Cell<usize>,
    }

    impl RatioSource for FlakySource {
        fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
            let n = self.calls.get();
            self.calls.set(n + 1);
            if n % self.every == 0 {
                f64::NAN
            } else {
                self.inner.ratio_sampled(sample)
            }
        }
    }

    #[test]
    fn failures_are_isolated_and_counted() {
        let flaky = FlakySource {
            inner: map(),
            every: 10,
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(1000, 7)
            .expect("valid")
            .with_failure_budget(0.2)
            .expect("valid budget");
        let r = try_run_with(&flaky, &UncertaintyRanges::paper_default(), &config)
            .expect("within budget");
        assert_eq!(r.failures.non_finite_ratio, 100);
        assert_eq!(r.evaluated, 900);
        assert_eq!(r.samples, 1000);
        let (p5, p50, p95) = r.ratio_quantiles;
        assert!(p5.is_finite() && p50.is_finite() && p95.is_finite());
        assert!(p5 <= p50 && p50 <= p95);
    }

    #[test]
    fn exceeding_the_budget_is_an_error() {
        let flaky = FlakySource {
            inner: map(),
            every: 2,
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(1000, 7)
            .expect("valid")
            .with_failure_budget(0.2)
            .expect("valid budget");
        match try_run_with(&flaky, &UncertaintyRanges::paper_default(), &config) {
            Err(PpatcError::FailureBudgetExceeded {
                failed,
                samples,
                budget,
            }) => {
                assert_eq!(failed, 500);
                assert_eq!(samples, 1000);
                assert_eq!(budget, 0.2);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn quantiles_interpolate_with_a_single_survivor() {
        // m = 1: rank p·0 = 0 for every p, so all three quantiles are the
        // lone survivor.
        let source = SequenceSource {
            values: vec![f64::NAN, 5.0, f64::NAN],
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(3, 1)
            .expect("valid")
            .with_failure_budget(1.0)
            .expect("valid budget");
        let r = try_run_with(&source, &UncertaintyRanges::paper_default(), &config)
            .expect("one survivor is enough for statistics");
        assert_eq!(r.evaluated, 1);
        assert_eq!(r.failures.non_finite_ratio, 2);
        assert_eq!(r.ratio_quantiles, (5.0, 5.0, 5.0));
    }

    #[test]
    fn quantiles_interpolate_with_two_survivors() {
        // m = 2: rank p·1 = p, so p05/p50/p95 interpolate between the two
        // survivors (sorted [1, 2]) at 1.05 / 1.5 / 1.95.
        let source = SequenceSource {
            values: vec![2.0, f64::NAN, 1.0],
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(3, 1)
            .expect("valid")
            .with_failure_budget(1.0)
            .expect("valid budget");
        let r = try_run_with(&source, &UncertaintyRanges::paper_default(), &config)
            .expect("two survivors");
        assert_eq!(r.evaluated, 2);
        let (q05, q50, q95) = r.ratio_quantiles;
        assert!((q05 - 1.05).abs() < 1e-12, "q05 = {q05}");
        assert!((q50 - 1.5).abs() < 1e-12, "q50 = {q50}");
        assert!((q95 - 1.95).abs() < 1e-12, "q95 = {q95}");
    }

    #[test]
    fn no_surviving_samples_surfaces_identically_for_any_worker_count() {
        struct AlwaysNan;
        impl RatioSource for AlwaysNan {
            fn tcdp_ratio(&self, _: &UncertaintySample) -> f64 {
                f64::NAN
            }
        }
        let ranges = UncertaintyRanges::paper_default();
        let config = MonteCarloConfig::new(64, 5)
            .expect("valid")
            .with_failure_budget(1.0)
            .expect("valid budget");
        let reference =
            try_run_with_jobs(&AlwaysNan, &ranges, &config, 1).expect_err("nothing survives");
        assert_eq!(reference, PpatcError::NoSurvivingSamples { samples: 64 });
        for jobs in [2, 8] {
            let err = try_run_with_jobs(&AlwaysNan, &ranges, &config, jobs)
                .expect_err("nothing survives");
            assert_eq!(err, reference, "jobs = {jobs}");
        }
    }

    /// A thread-safe source that panics deterministically on low-yield
    /// futures (a pure function of the sample, so parallel runs agree).
    struct PanickyBelowYield {
        inner: TcdpMap,
        threshold: f64,
    }

    impl RatioSource for PanickyBelowYield {
        fn tcdp_ratio(&self, sample: &UncertaintySample) -> f64 {
            assert!(
                sample.m3d_yield >= self.threshold,
                "injected panic at yield {}",
                sample.m3d_yield
            );
            self.inner.ratio_sampled(sample)
        }
    }

    #[test]
    fn panicking_samples_count_against_the_failure_budget() {
        let source = PanickyBelowYield {
            inner: map(),
            threshold: 0.14,
        };
        let ranges = UncertaintyRanges::paper_default();
        let config = MonteCarloConfig::new(1000, 17)
            .expect("valid")
            .with_failure_budget(0.25)
            .expect("valid budget");
        let r = try_run_supervised(&source, &ranges, &config, 8, &Supervisor::new())
            .expect("panics stay within the budget");
        assert!(
            r.failures.worker_panic > 0,
            "some futures draw yield < 0.14"
        );
        assert_eq!(r.failures.worker_panic, r.failures.total());
        assert_eq!(r.evaluated + r.failures.total(), r.samples);
        assert!(r.to_string().contains("panicked"), "{r}");
        // The same sweep with jobs = 1 classifies the same samples.
        let serial = try_run_supervised(&source, &ranges, &config, 1, &Supervisor::new())
            .expect("serial run agrees");
        assert_eq!(serial, r);
    }

    #[test]
    fn panicking_samples_over_a_zero_budget_are_an_error() {
        let source = PanickyBelowYield {
            inner: map(),
            threshold: 0.14,
        };
        let ranges = UncertaintyRanges::paper_default();
        let config = MonteCarloConfig::new(1000, 17).expect("valid");
        match try_run_supervised(&source, &ranges, &config, 4, &Supervisor::new()) {
            Err(PpatcError::FailureBudgetExceeded {
                failed, samples, ..
            }) => {
                assert!(failed > 0);
                assert_eq!(samples, 1000);
            }
            other => panic!("expected FailureBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn supervised_with_default_supervisor_matches_unsupervised() {
        let m = map();
        let ranges = UncertaintyRanges::paper_default();
        let config = MonteCarloConfig::new(2000, 99).expect("valid");
        let unsupervised = try_run_jobs(&m, &ranges, &config, 4).expect("unsupervised");
        let supervised =
            try_run_supervised(&m, &ranges, &config, 4, &Supervisor::new()).expect("supervised");
        assert_eq!(unsupervised, supervised);
    }

    #[test]
    fn journal_spec_excludes_the_failure_budget() {
        let ranges = UncertaintyRanges::paper_default();
        let strict = MonteCarloConfig::new(100, 1).expect("valid");
        let tolerant = strict.with_failure_budget(0.5).expect("valid budget");
        assert_eq!(
            journal_spec(&strict, &ranges),
            journal_spec(&tolerant, &ranges),
            "the budget gates the summary, not per-sample values"
        );
        let other_seed = MonteCarloConfig::new(100, 2).expect("valid");
        assert_ne!(
            journal_spec(&strict, &ranges).fingerprint,
            journal_spec(&other_seed, &ranges).fingerprint
        );
    }

    #[test]
    fn survivors_statistics_ignore_failed_samples() {
        // With a generous budget, the quantiles over survivors must match a
        // clean run over the same surviving draws' distribution shape:
        // every survivor ratio is finite and positive.
        let flaky = FlakySource {
            inner: map(),
            every: 3,
            calls: core::cell::Cell::new(0),
        };
        let config = MonteCarloConfig::new(900, 11)
            .expect("valid")
            .with_failure_budget(0.5)
            .expect("valid budget");
        let r = try_run_with(&flaky, &UncertaintyRanges::paper_default(), &config)
            .expect("within budget");
        assert_eq!(r.evaluated + r.failures.total(), r.samples);
        assert!((0.0..=1.0).contains(&r.p_m3d_wins));
    }
}
