//! Total carbon and tCDP as functions of system lifetime (Fig. 5).

use ppatc_units::{CarbonDelay, CarbonMass, Power, Time};

use crate::error::{check, ValidationError};
use crate::usage::UsagePattern;

/// A system lifetime — months of calendar deployment.
///
/// A thin wrapper over [`Time`] that keeps lifetimes from being confused
/// with execution times in the tCDP arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Lifetime(Time);

impl Lifetime {
    /// A lifetime in (mean Gregorian) months. Rejects negative or
    /// non-finite durations.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_months(months: f64) -> Result<Self, ValidationError> {
        check::non_negative("lifetime_months", months)?;
        Ok(Self(Time::from_months(months)))
    }

    /// Panicking convenience wrapper around [`Lifetime::try_months`].
    ///
    /// # Panics
    ///
    /// Panics if `months` is negative or non-finite.
    pub fn months(months: f64) -> Self {
        match Self::try_months(months) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// The lifetime as a plain duration.
    pub fn as_time(self) -> Time {
        self.0
    }

    /// The lifetime in months.
    pub fn as_months(self) -> f64 {
        self.0.as_months()
    }

    /// Shifts the lifetime by a (possibly negative) number of months,
    /// clamped at zero.
    #[must_use]
    pub fn shifted(self, delta_months: f64) -> Self {
        Self::months((self.as_months() + delta_months).max(0.0))
    }
}

/// The carbon trajectory of one deployed design: embodied carbon (paid at
/// t = 0) plus operational carbon accruing with use.
///
/// ```
/// use ppatc::{CarbonTrajectory, Lifetime, UsagePattern};
/// use ppatc_units::{CarbonMass, Power, Time};
///
/// let t = CarbonTrajectory::new(
///     CarbonMass::from_grams(3.11),
///     Power::from_milliwatts(9.7),
///     UsagePattern::paper_default(),
///     Time::from_seconds(0.04),
/// );
/// // Embodied dominates early...
/// assert!(t.embodied() > t.operational(Lifetime::months(1.0)));
/// // ...operational dominates late (Fig. 5: crossover ≈ 14 months).
/// assert!(t.operational(Lifetime::months(24.0)) > t.embodied());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CarbonTrajectory {
    embodied: CarbonMass,
    operational_power: Power,
    standby_power: Power,
    usage: UsagePattern,
    execution_time: Time,
}

impl CarbonTrajectory {
    /// Builds a trajectory from a per-good-die embodied footprint, the
    /// Eq. 6 busy power, a usage pattern, and the application's execution
    /// time (for tCDP). Rejects negative or non-finite carbon, power, and
    /// execution-time values.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_new(
        embodied: CarbonMass,
        operational_power: Power,
        usage: UsagePattern,
        execution_time: Time,
    ) -> Result<Self, ValidationError> {
        check::non_negative("embodied_carbon", embodied.as_grams())?;
        check::non_negative("operational_power", operational_power.as_watts())?;
        check::non_negative("execution_time", execution_time.as_seconds())?;
        Ok(Self {
            embodied,
            operational_power,
            standby_power: Power::zero(),
            usage,
            execution_time,
        })
    }

    /// Panicking convenience wrapper around [`CarbonTrajectory::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the embodied carbon, power, or execution time is negative
    /// or non-finite.
    pub fn new(
        embodied: CarbonMass,
        operational_power: Power,
        usage: UsagePattern,
        execution_time: Time,
    ) -> Self {
        match Self::try_new(embodied, operational_power, usage, execution_time) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds a standby power drawn during the *inactive* hours of the usage
    /// pattern (see [`crate::standby`]). The paper's Eq. 6 corresponds to
    /// zero standby power. Rejects negative or non-finite powers.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_with_standby_power(mut self, standby_power: Power) -> Result<Self, ValidationError> {
        check::non_negative("standby_power", standby_power.as_watts())?;
        self.standby_power = standby_power;
        Ok(self)
    }

    /// Panicking convenience wrapper around
    /// [`CarbonTrajectory::try_with_standby_power`].
    ///
    /// # Panics
    ///
    /// Panics if `standby_power` is negative or non-finite.
    #[must_use]
    pub fn with_standby_power(self, standby_power: Power) -> Self {
        match self.try_with_standby_power(standby_power) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// The standby power during inactive hours.
    pub fn standby_power(&self) -> Power {
        self.standby_power
    }

    /// The embodied carbon per good die.
    pub fn embodied(&self) -> CarbonMass {
        self.embodied
    }

    /// The busy (Eq. 6) power.
    pub fn operational_power(&self) -> Power {
        self.operational_power
    }

    /// The usage pattern.
    pub fn usage(&self) -> &UsagePattern {
        &self.usage
    }

    /// Application execution time (the delay in tCDP).
    pub fn execution_time(&self) -> Time {
        self.execution_time
    }

    /// Operational carbon accumulated by `lifetime`: the Eq. 8 active term
    /// plus any standby power integrated over the inactive hours.
    pub fn operational(&self, lifetime: Lifetime) -> CarbonMass {
        let active = self
            .usage
            .operational_carbon(self.operational_power, lifetime);
        if self.standby_power.as_watts() == 0.0 {
            return active;
        }
        let idle = lifetime.as_time() * (1.0 - self.usage.duty_cycle());
        active + self.usage.ci_use() * (self.standby_power * idle)
    }

    /// Total carbon at `lifetime`: embodied + operational.
    pub fn total(&self, lifetime: Lifetime) -> CarbonMass {
        self.embodied + self.operational(lifetime)
    }

    /// tCDP at `lifetime`: total carbon × execution time (gCO₂e/Hz).
    pub fn tcdp(&self, lifetime: Lifetime) -> CarbonDelay {
        self.total(lifetime) * self.execution_time
    }

    /// The lifetime at which operational carbon overtakes embodied carbon
    /// (Fig. 5's per-design stack crossover), or `None` if the system never
    /// draws power.
    pub fn embodied_dominance_crossover(&self) -> Option<Lifetime> {
        let monthly = self.operational(Lifetime::months(1.0)).as_grams();
        if monthly <= 0.0 {
            return None;
        }
        Some(Lifetime::months(self.embodied.as_grams() / monthly))
    }

    /// Samples the trajectory at integer months `1..=months`.
    pub fn sample_monthly(&self, months: u32) -> Vec<TrajectoryPoint> {
        (1..=months)
            .map(|m| {
                let life = Lifetime::months(f64::from(m));
                TrajectoryPoint {
                    lifetime: life,
                    embodied: self.embodied,
                    operational: self.operational(life),
                    total: self.total(life),
                    tcdp: self.tcdp(life),
                }
            })
            .collect()
    }

    /// The lifetime at which this design's total carbon crosses `other`'s
    /// (Fig. 5's between-design crossover). `None` if the curves never
    /// cross for a positive lifetime (one design dominates).
    pub fn crossover_with(&self, other: &CarbonTrajectory) -> Option<Lifetime> {
        // Both curves are affine in lifetime: c(t) = e + s·t.
        let s_self = self.operational(Lifetime::months(1.0)).as_grams();
        let s_other = other.operational(Lifetime::months(1.0)).as_grams();
        let de = other.embodied.as_grams() - self.embodied.as_grams();
        let ds = s_self - s_other;
        if ds.abs() < 1e-300 {
            return None;
        }
        let t = de / ds;
        (t > 0.0).then(|| Lifetime::months(t))
    }
}

/// One sampled point of a carbon trajectory (a Fig. 5 bar).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// Lifetime of this sample.
    pub lifetime: Lifetime,
    /// Embodied carbon (lifetime-independent).
    pub embodied: CarbonMass,
    /// Accumulated operational carbon.
    pub operational: CarbonMass,
    /// Total carbon.
    pub total: CarbonMass,
    /// tCDP at this lifetime.
    pub tcdp: CarbonDelay,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    fn paper_like(embodied_g: f64, power_mw: f64) -> CarbonTrajectory {
        CarbonTrajectory::new(
            CarbonMass::from_grams(embodied_g),
            Power::from_milliwatts(power_mw),
            UsagePattern::paper_default(),
            Time::from_seconds(20_036_652.0 / 500e6),
        )
    }

    #[test]
    fn fig5_embodied_dominance_crossovers() {
        // Paper: C_embodied dominates until ~14 months (all-Si) and
        // ~19 months (M3D).
        let si = paper_like(3.11, 9.7);
        let m3d = paper_like(3.63, 8.45);
        let t_si = si.embodied_dominance_crossover().expect("crossover exists");
        let t_m3d = m3d
            .embodied_dominance_crossover()
            .expect("crossover exists");
        assert!(
            approx_eq(t_si.as_months(), 13.9, 0.05),
            "all-Si {:.1} mo",
            t_si.as_months()
        );
        assert!(
            approx_eq(t_m3d.as_months(), 18.6, 0.05),
            "M3D {:.1} mo",
            t_m3d.as_months()
        );
    }

    #[test]
    fn design_crossover_exists() {
        let si = paper_like(3.11, 9.7);
        let m3d = paper_like(3.63, 8.45);
        let t = m3d.crossover_with(&si).expect("curves cross");
        // M3D starts higher (embodied) and grows slower → one crossover.
        assert!(
            t.as_months() > 6.0 && t.as_months() < 30.0,
            "{:.1} mo",
            t.as_months()
        );
        assert!(m3d.total(Lifetime::months(1.0)) > si.total(Lifetime::months(1.0)));
        assert!(m3d.total(t.shifted(6.0)) < si.total(t.shifted(6.0)));
    }

    #[test]
    fn no_crossover_for_parallel_curves() {
        let a = paper_like(3.0, 9.0);
        let b = paper_like(4.0, 9.0);
        assert!(a.crossover_with(&b).is_none());
    }

    #[test]
    fn monthly_sampling_is_monotone() {
        let t = paper_like(3.11, 9.7);
        let samples = t.sample_monthly(24);
        assert_eq!(samples.len(), 24);
        for pair in samples.windows(2) {
            assert!(pair[1].total > pair[0].total);
            assert!(pair[1].tcdp > pair[0].tcdp);
            assert_eq!(pair[1].embodied, pair[0].embodied);
        }
    }

    #[test]
    fn tcdp_units() {
        let t = paper_like(3.11, 9.7);
        let life = Lifetime::months(24.0);
        let expected = t.total(life).as_grams() * t.execution_time().as_seconds();
        assert!(approx_eq(
            t.tcdp(life).as_grams_per_hertz(),
            expected,
            1e-12
        ));
    }

    #[test]
    fn lifetime_shift_clamps_at_zero() {
        let l = Lifetime::months(3.0).shifted(-6.0);
        assert_eq!(l.as_months(), 0.0);
    }
}
