//! The usage model: duty-cycled operational carbon (Eqs. 6–8).

use crate::error::{check, ValidationError};
use crate::lifetime::Lifetime;
use ppatc_units::{CarbonIntensity, CarbonMass, Power};

/// How (and on which grid) the deployed system is used.
///
/// The paper's scenario runs the application 2 hours per day, every day,
/// during the 8–10 pm window; Eq. 8 collapses the CI_use(t) integral into
/// the window-averaged carbon intensity times the duty cycle:
///
/// ```text
/// C_operational = CI_use(avg, window) · P_operational · t_life · (hours/day ÷ 24)
/// ```
///
/// ```
/// use ppatc::{Lifetime, UsagePattern};
/// use ppatc_units::Power;
///
/// let usage = UsagePattern::paper_default();
/// let c = usage.operational_carbon(Power::from_milliwatts(9.7), Lifetime::months(24.0));
/// assert!((c.as_grams() - 5.4).abs() < 0.2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UsagePattern {
    hours_per_day: f64,
    ci_use: CarbonIntensity,
}

impl UsagePattern {
    /// The paper's scenario: 2 h/day on the U.S. grid (380 gCO₂e/kWh taken
    /// as the 8–10 pm window average).
    pub fn paper_default() -> Self {
        Self {
            hours_per_day: 2.0,
            ci_use: CarbonIntensity::from_g_per_kwh(380.0),
        }
    }

    /// A custom usage pattern.
    ///
    /// Rejects `hours_per_day` outside `(0, 24]` and negative or non-finite
    /// carbon intensities with a structured [`ValidationError`].
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_new(hours_per_day: f64, ci_use: CarbonIntensity) -> Result<Self, ValidationError> {
        check::in_open_closed("hours_per_day", hours_per_day, 0.0, 24.0, "in (0, 24]")?;
        check::non_negative("ci_use", ci_use.value())?;
        Ok(Self {
            hours_per_day,
            ci_use,
        })
    }

    /// Panicking convenience wrapper around [`UsagePattern::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `hours_per_day` is outside `(0, 24]` or the intensity is
    /// negative or non-finite.
    pub fn new(hours_per_day: f64, ci_use: CarbonIntensity) -> Self {
        match Self::try_new(hours_per_day, ci_use) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Hours of active use per day.
    pub fn hours_per_day(&self) -> f64 {
        self.hours_per_day
    }

    /// Average use-phase carbon intensity.
    pub fn ci_use(&self) -> CarbonIntensity {
        self.ci_use
    }

    /// Returns a copy with the carbon intensity scaled by `factor` — the
    /// Fig. 6b CI_use uncertainty knob (×3 / ÷3). Rejects negative or
    /// non-finite factors.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_with_ci_scaled(mut self, factor: f64) -> Result<Self, ValidationError> {
        check::non_negative("ci_scale_factor", factor)?;
        self.ci_use = CarbonIntensity::new(self.ci_use.value() * factor);
        Ok(self)
    }

    /// Panicking convenience wrapper around
    /// [`UsagePattern::try_with_ci_scaled`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn with_ci_scaled(self, factor: f64) -> Self {
        match self.try_with_ci_scaled(factor) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Duty cycle: the fraction of calendar time the system is active.
    pub fn duty_cycle(&self) -> f64 {
        self.hours_per_day / 24.0
    }

    /// Eq. 8: operational carbon over a lifetime, given the busy power from
    /// Eq. 6.
    pub fn operational_carbon(&self, p_operational: Power, lifetime: Lifetime) -> CarbonMass {
        let active = lifetime.as_time() * self.duty_cycle();
        self.ci_use * (p_operational * active)
    }

    /// Total active energy drawn over a lifetime.
    pub fn operational_energy(
        &self,
        p_operational: Power,
        lifetime: Lifetime,
    ) -> ppatc_units::Energy {
        p_operational * (lifetime.as_time() * self.duty_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn eq8_hand_check() {
        // 10 mW for 2 h/day over 12 months on a 500 g/kWh grid:
        // energy = 0.01 kW/1000... = 1e-5 kW × (365.25/2 × 2 h)? lifetime
        // 12 months = 365.25 days; active hours = 730.5.
        let usage = UsagePattern::new(2.0, CarbonIntensity::from_g_per_kwh(500.0));
        let c = usage.operational_carbon(Power::from_milliwatts(10.0), Lifetime::months(12.0));
        let expected = 500.0 * (0.01e-3 * 730.5); // g/kWh × kWh
        assert!(
            approx_eq(c.as_grams(), expected, 1e-9),
            "{} vs {expected}",
            c.as_grams()
        );
    }

    #[test]
    fn carbon_scales_linearly() {
        let usage = UsagePattern::paper_default();
        let p = Power::from_milliwatts(9.7);
        let one = usage.operational_carbon(p, Lifetime::months(6.0));
        let four = usage.operational_carbon(p, Lifetime::months(24.0));
        assert!(approx_eq(four.as_grams(), 4.0 * one.as_grams(), 1e-12));
    }

    #[test]
    fn ci_scaling() {
        let usage = UsagePattern::paper_default().with_ci_scaled(3.0);
        assert!(approx_eq(usage.ci_use().as_g_per_kwh(), 1140.0, 1e-12));
    }

    #[test]
    fn duty_cycle() {
        assert!(approx_eq(
            UsagePattern::paper_default().duty_cycle(),
            1.0 / 12.0,
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "invalid 'hours_per_day'")]
    fn invalid_hours_panics() {
        let _ = UsagePattern::new(25.0, CarbonIntensity::from_g_per_kwh(380.0));
    }

    #[test]
    fn invalid_inputs_are_structured_errors() {
        let e = UsagePattern::try_new(0.0, CarbonIntensity::from_g_per_kwh(380.0))
            .expect_err("zero hours rejected");
        assert_eq!(e.field, "hours_per_day");
        let e = UsagePattern::try_new(f64::NAN, CarbonIntensity::from_g_per_kwh(380.0))
            .expect_err("NaN hours rejected");
        assert_eq!(e.field, "hours_per_day");
        let e = UsagePattern::try_new(2.0, CarbonIntensity::from_g_per_kwh(-1.0))
            .expect_err("negative CI rejected");
        assert_eq!(e.field, "ci_use");
        let e = UsagePattern::paper_default()
            .try_with_ci_scaled(f64::INFINITY)
            .expect_err("infinite scale rejected");
        assert_eq!(e.field, "ci_scale_factor");
    }
}
