//! Standby policies: what the system does during the other 22 hours.
//!
//! The paper's Eq. 6 powers the system only while the application runs —
//! implicitly, the device is switched off between sessions and memory
//! contents are lost. Many embedded deployments instead need
//! **state-retentive standby**: the data must survive until tomorrow's
//! session. That requirement treats the two memories very differently:
//!
//! - the all-Si eDRAM retains for ~4 ms, so standby means refreshing the
//!   array around the clock (plus keeping part of the periphery awake);
//! - the IGZO eDRAM retains for ~10⁵ s — longer than the 22-hour gap — so
//!   it can be power-gated completely and still greet the next session
//!   with its data intact.
//!
//! This module quantifies that asymmetry, extending the paper's >1000 s
//! retention observation into an operational-carbon consequence.

use crate::lifetime::CarbonTrajectory;
use crate::system::SystemDesign;
use crate::usage::UsagePattern;
use ppatc_units::{Power, Time};

/// What happens between active sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StandbyPolicy {
    /// Power-gate everything; memory contents are lost (the paper's
    /// implicit assumption).
    #[default]
    PowerOff,
    /// Keep memory contents alive until the next session.
    StateRetentive,
}

/// Fraction of the periphery leakage that stays on in retentive sleep
/// (just the refresh engine and power management).
const SLEEP_PERIPHERY_FRACTION: f64 = 0.10;

/// Standby power of a design under a policy, given the longest idle gap
/// between sessions.
pub fn standby_power(design: &SystemDesign, policy: StandbyPolicy, idle_gap: Time) -> Power {
    match policy {
        StandbyPolicy::PowerOff => Power::zero(),
        StandbyPolicy::StateRetentive => {
            let mut total = Power::zero();
            for mem in [design.program_mem(), design.data_mem()] {
                if mem.retention() >= idle_gap {
                    // Retention outlasts the gap: fully power-gated.
                    continue;
                }
                total += mem.refresh_power() + mem.leakage_power() * SLEEP_PERIPHERY_FRACTION;
            }
            total
        }
    }
}

/// Builds a carbon trajectory that includes standby power during the
/// non-active hours of the usage pattern.
pub fn trajectory_with_standby(
    design: &SystemDesign,
    evaluation: &crate::system::Evaluation,
    embodied: ppatc_units::CarbonMass,
    usage: UsagePattern,
    policy: StandbyPolicy,
) -> CarbonTrajectory {
    let idle_gap = Time::from_hours(24.0 - usage.hours_per_day());
    let p_standby = standby_power(design, policy, idle_gap);
    CarbonTrajectory::new(
        embodied,
        evaluation.operational_power,
        usage,
        evaluation.execution_time,
    )
    .with_standby_power(p_standby)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lifetime, Technology};
    use ppatc_units::{approx_eq, Frequency};
    use ppatc_workloads::Workload;

    fn designs() -> (SystemDesign, SystemDesign) {
        let f = Frequency::from_megahertz(500.0);
        (
            SystemDesign::new(Technology::AllSi, f).expect("all-Si designs"),
            SystemDesign::new(Technology::M3dIgzoCnfetSi, f).expect("M3D designs"),
        )
    }

    #[test]
    fn igzo_retains_through_the_night_for_free() {
        let (si, m3d) = designs();
        let gap = Time::from_hours(22.0);
        let p_si = standby_power(&si, StandbyPolicy::StateRetentive, gap);
        let p_m3d = standby_power(&m3d, StandbyPolicy::StateRetentive, gap);
        assert!(p_si.as_microwatts() > 100.0, "all-Si standby {p_si:?}");
        assert!(
            approx_eq(p_m3d.as_watts(), 0.0, 1e-30),
            "M3D standby {p_m3d:?}"
        );
    }

    #[test]
    fn power_off_costs_nothing_for_either() {
        let (si, m3d) = designs();
        let gap = Time::from_hours(22.0);
        for d in [&si, &m3d] {
            assert_eq!(
                standby_power(d, StandbyPolicy::PowerOff, gap),
                Power::zero()
            );
        }
    }

    #[test]
    fn retentive_standby_widens_the_m3d_advantage() {
        let run = Workload::matmul_int()
            .execute_with_reps(4)
            .expect("matmul runs");
        let (si, m3d) = designs();
        let usage = UsagePattern::paper_default();
        let pipe = crate::EmbodiedPipeline::paper_default();
        let life = Lifetime::months(24.0);

        let ratio_of = |policy: StandbyPolicy| {
            let t_si = trajectory_with_standby(
                &si,
                &si.evaluate(&run),
                pipe.per_good_die(&si).per_good_die(),
                usage,
                policy,
            );
            let t_m3d = trajectory_with_standby(
                &m3d,
                &m3d.evaluate(&run),
                pipe.per_good_die(&m3d).per_good_die(),
                usage,
                policy,
            );
            t_m3d.tcdp(life) / t_si.tcdp(life)
        };

        let off = ratio_of(StandbyPolicy::PowerOff);
        let retentive = ratio_of(StandbyPolicy::StateRetentive);
        assert!(retentive < off, "retentive {retentive:.3} vs off {off:.3}");
        // The all-Si design pays 22 h/day of refresh: the M3D benefit
        // should grow well beyond the paper's 1.02×.
        assert!(
            1.0 / retentive > 1.05,
            "retentive benefit {:.3}",
            1.0 / retentive
        );
    }

    #[test]
    fn standby_scales_operational_carbon_linearly() {
        let run = Workload::edn().execute_with_reps(1).expect("edn runs");
        let (si, _) = designs();
        let usage = UsagePattern::paper_default();
        let pipe = crate::EmbodiedPipeline::paper_default();
        let t = trajectory_with_standby(
            &si,
            &si.evaluate(&run),
            pipe.per_good_die(&si).per_good_die(),
            usage,
            StandbyPolicy::StateRetentive,
        );
        let one = t.operational(Lifetime::months(6.0));
        let four = t.operational(Lifetime::months(24.0));
        assert!(approx_eq(four.as_grams(), 4.0 * one.as_grams(), 1e-12));
    }
}
