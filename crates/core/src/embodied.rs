//! Per-good-die embodied carbon: Eq. 2 (wafer) through Eq. 5 (good die).

use crate::error::{check, ValidationError};
use crate::system::SystemDesign;
use ppatc_fab::{EmbodiedModel, Grid};
use ppatc_units::CarbonMass;
use ppatc_wafer::WaferSpec;

/// The embodied-carbon pipeline: process model + wafer geometry + fab grid.
///
/// ```
/// use ppatc::{EmbodiedPipeline, SystemDesign, Technology};
/// use ppatc_units::Frequency;
///
/// let design = SystemDesign::new(Technology::AllSi, Frequency::from_megahertz(500.0))?;
/// let embodied = EmbodiedPipeline::paper_default().per_good_die(&design);
/// assert!((embodied.per_good_die().as_grams() - 3.11).abs() < 0.15);
/// # Ok::<(), ppatc::DesignError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EmbodiedPipeline {
    model: EmbodiedModel,
    wafer: WaferSpec,
    fab_grid: Grid,
    embodied_scale: f64,
}

impl EmbodiedPipeline {
    /// The paper's configuration: calibrated step energies, 300 mm wafers
    /// with 0.1 mm scribe / 5 mm edge clearance, U.S. fabrication grid.
    pub fn paper_default() -> Self {
        Self {
            model: EmbodiedModel::paper_default(),
            wafer: WaferSpec::paper_default(),
            fab_grid: ppatc_fab::grid::US,
            embodied_scale: 1.0,
        }
    }

    /// Replaces the fabrication grid.
    #[must_use]
    pub fn with_fab_grid(mut self, fab_grid: Grid) -> Self {
        self.fab_grid = fab_grid;
        self
    }

    /// Replaces the process model.
    #[must_use]
    pub fn with_model(mut self, model: EmbodiedModel) -> Self {
        self.model = model;
        self
    }

    /// Scales the final embodied carbon by `factor` — the x-axis of the
    /// Fig. 6 maps (uncertainty in C_embodied). Rejects non-positive or
    /// non-finite factors.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_with_embodied_scale(mut self, factor: f64) -> Result<Self, ValidationError> {
        check::positive("embodied_scale", factor)?;
        self.embodied_scale = factor;
        Ok(self)
    }

    /// Panicking convenience wrapper around
    /// [`EmbodiedPipeline::try_with_embodied_scale`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn with_embodied_scale(self, factor: f64) -> Self {
        match self.try_with_embodied_scale(factor) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fabrication grid in use.
    pub fn fab_grid(&self) -> Grid {
        self.fab_grid
    }

    /// Evaluates Eqs. 2–5 for a design.
    pub fn per_good_die(&self, design: &SystemDesign) -> EmbodiedPerDie {
        let breakdown = self
            .model
            .embodied_per_wafer(design.technology(), self.fab_grid);
        let per_wafer = breakdown.total() * self.embodied_scale;
        let die = design.die();
        let dies_per_wafer = self.wafer.dies_per_wafer(&die);
        let die_yield = design.yield_model().die_yield(die.area());
        let per_good_die = ppatc_wafer::embodied_per_good_die(
            per_wafer,
            dies_per_wafer,
            design.yield_model(),
            die.area(),
        );
        EmbodiedPerDie {
            per_wafer,
            dies_per_wafer,
            die_yield,
            per_good_die,
        }
    }
}

impl Default for EmbodiedPipeline {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of the embodied pipeline for one design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EmbodiedPerDie {
    per_wafer: CarbonMass,
    dies_per_wafer: u64,
    die_yield: f64,
    per_good_die: CarbonMass,
}

impl EmbodiedPerDie {
    /// Embodied carbon of the full wafer (Eq. 2, with facility overhead).
    pub fn per_wafer(&self) -> CarbonMass {
        self.per_wafer
    }

    /// Gross dies per wafer (Table II row).
    pub fn dies_per_wafer(&self) -> u64 {
        self.dies_per_wafer
    }

    /// Die yield used.
    pub fn die_yield(&self) -> f64 {
        self.die_yield
    }

    /// Embodied carbon per good die (Eq. 5, Table II row).
    pub fn per_good_die(&self) -> CarbonMass {
        self.per_good_die
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;
    use ppatc_units::{approx_eq, Frequency};

    fn designs() -> (SystemDesign, SystemDesign) {
        let f = Frequency::from_megahertz(500.0);
        (
            SystemDesign::new(Technology::AllSi, f).expect("all-Si designs"),
            SystemDesign::new(Technology::M3dIgzoCnfetSi, f).expect("M3D designs"),
        )
    }

    #[test]
    fn table2_dies_per_wafer() {
        let (si, m3d) = designs();
        let pipe = EmbodiedPipeline::paper_default();
        let n_si = pipe.per_good_die(&si).dies_per_wafer();
        let n_m3d = pipe.per_good_die(&m3d).dies_per_wafer();
        assert!(
            approx_eq(n_si as f64, 299_127.0, 0.02),
            "all-Si dies {n_si}"
        );
        assert!(approx_eq(n_m3d as f64, 606_238.0, 0.04), "M3D dies {n_m3d}");
    }

    #[test]
    fn table2_per_good_die() {
        let (si, m3d) = designs();
        let pipe = EmbodiedPipeline::paper_default();
        let c_si = pipe.per_good_die(&si).per_good_die().as_grams();
        let c_m3d = pipe.per_good_die(&m3d).per_good_die().as_grams();
        assert!(approx_eq(c_si, 3.11, 0.03), "all-Si per good die {c_si} g");
        assert!(approx_eq(c_m3d, 3.63, 0.05), "M3D per good die {c_m3d} g");
        // Sec. III-C: 1.17× embodied increase per good die for M3D.
        assert!(
            approx_eq(c_m3d / c_si, 1.17, 0.04),
            "ratio {}",
            c_m3d / c_si
        );
    }

    #[test]
    fn embodied_scale_is_linear() {
        let (si, _) = designs();
        let base = EmbodiedPipeline::paper_default().per_good_die(&si);
        let doubled = EmbodiedPipeline::paper_default()
            .with_embodied_scale(2.0)
            .per_good_die(&si);
        assert!(approx_eq(
            doubled.per_good_die().as_grams(),
            2.0 * base.per_good_die().as_grams(),
            1e-12
        ));
    }

    #[test]
    fn cleaner_fab_grid_cuts_embodied() {
        let (_, m3d) = designs();
        let us = EmbodiedPipeline::paper_default().per_good_die(&m3d);
        let solar = EmbodiedPipeline::paper_default()
            .with_fab_grid(ppatc_fab::grid::SOLAR)
            .per_good_die(&m3d);
        assert!(solar.per_good_die() < us.per_good_die());
    }
}
