//! The embedded system: Cortex-M0 + program/data eDRAM in one technology.

use crate::error::{check, ValidationError};
use ppatc_edram::{EdramError, EdramMacro};
use ppatc_m0::AccessStats;
use ppatc_pdk::synthesis::{LogicBlock, SynthesisResult, TimingError};
use ppatc_pdk::{SiVtFlavor, Technology};
use ppatc_units::{Area, Energy, Frequency, Power, Time};
use ppatc_wafer::{DieSpec, YieldModel};
use ppatc_workloads::{WorkloadError, WorkloadRun};

/// Die aspect ratio (height/width) used by the floorplan, matching the
/// paper's published die dimensions (270/515 ≈ 0.52).
const DIE_ASPECT: f64 = 0.524;

/// Error constructing or evaluating a system design.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DesignError {
    /// The M0 cannot close timing at the target clock in the chosen flavor.
    Timing(TimingError),
    /// eDRAM characterization failed.
    Edram(EdramError),
    /// The eDRAM cannot complete an access within one clock period.
    MemoryTooSlow {
        /// Technology of the failing macro.
        technology: Technology,
        /// Offending clock target.
        f_clk: Frequency,
    },
    /// Workload execution failed.
    Workload(WorkloadError),
    /// A design parameter was rejected before construction started.
    Invalid(ValidationError),
}

impl core::fmt::Display for DesignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DesignError::Timing(e) => write!(f, "{e}"),
            DesignError::Edram(e) => write!(f, "{e}"),
            DesignError::MemoryTooSlow { technology, f_clk } => write!(
                f,
                "{technology} eDRAM cannot complete a single-cycle access at {:.0} MHz",
                f_clk.as_megahertz()
            ),
            DesignError::Workload(e) => write!(f, "{e}"),
            DesignError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesignError::Timing(e) => Some(e),
            DesignError::Edram(e) => Some(e),
            DesignError::Workload(e) => Some(e),
            DesignError::Invalid(e) => Some(e),
            DesignError::MemoryTooSlow { .. } => None,
        }
    }
}

impl From<TimingError> for DesignError {
    fn from(e: TimingError) -> Self {
        DesignError::Timing(e)
    }
}

impl From<EdramError> for DesignError {
    fn from(e: EdramError) -> Self {
        DesignError::Edram(e)
    }
}

impl From<WorkloadError> for DesignError {
    fn from(e: WorkloadError) -> Self {
        DesignError::Workload(e)
    }
}

impl From<ValidationError> for DesignError {
    fn from(e: ValidationError) -> Self {
        DesignError::Invalid(e)
    }
}

/// The Fig. 1 system implemented in one technology: an ARM Cortex-M0 (always
/// Si CMOS) with 64 kB program and 64 kB data eDRAM macros (all-Si or
/// M3D IGZO/CNFET/Si).
#[derive(Clone, Debug)]
pub struct SystemDesign {
    technology: Technology,
    f_clk: Frequency,
    m0: SynthesisResult,
    program_mem: EdramMacro,
    data_mem: EdramMacro,
    yield_model: YieldModel,
}

impl SystemDesign {
    /// Designs the system at the given clock with the paper's defaults:
    /// RVT logic, 2 kB eDRAM sub-arrays, and demonstration yields of 90%
    /// (all-Si) / 50% (M3D).
    ///
    /// # Errors
    ///
    /// [`DesignError`] if logic or memory cannot close timing at `f_clk`,
    /// or eDRAM characterization fails.
    pub fn new(technology: Technology, f_clk: Frequency) -> Result<Self, DesignError> {
        Self::with_flavor(technology, f_clk, SiVtFlavor::Rvt)
    }

    /// Designs the system with an explicit logic threshold flavor.
    ///
    /// # Errors
    ///
    /// See [`SystemDesign::new`].
    pub fn with_flavor(
        technology: Technology,
        f_clk: Frequency,
        flavor: SiVtFlavor,
    ) -> Result<Self, DesignError> {
        Self::with_flavor_and_memory(
            technology,
            f_clk,
            flavor,
            ppatc_edram::Organization::paper_default(),
        )
    }

    /// Designs the system with a custom memory organization (the paper's
    /// Step 1 sizes memories to fit the workloads; other deployments may
    /// choose differently).
    ///
    /// The instruction-set simulator's memory map stays at 2 × 64 kB;
    /// smaller modeled capacities are valid as long as the workloads'
    /// footprints fit them.
    ///
    /// # Errors
    ///
    /// See [`SystemDesign::new`].
    pub fn with_flavor_and_memory(
        technology: Technology,
        f_clk: Frequency,
        flavor: SiVtFlavor,
        organization: ppatc_edram::Organization,
    ) -> Result<Self, DesignError> {
        check::positive("f_clk", f_clk.as_hertz())?;
        let m0 = LogicBlock::cortex_m0().synthesize(flavor, f_clk)?;
        let program_mem = EdramMacro::characterize_with(technology, organization)?;
        let data_mem = program_mem.clone();
        if !program_mem.meets_timing(f_clk) {
            return Err(DesignError::MemoryTooSlow { technology, f_clk });
        }
        let yield_model = match technology {
            Technology::AllSi => YieldModel::Fixed(0.90),
            Technology::M3dIgzoCnfetSi => YieldModel::Fixed(0.50),
        };
        Ok(Self {
            technology,
            f_clk,
            m0,
            program_mem,
            data_mem,
            yield_model,
        })
    }

    /// Replaces the yield model (the paper's Fig. 6b sweeps M3D yield from
    /// 10% to 90%).
    #[must_use]
    pub fn with_yield(mut self, yield_model: YieldModel) -> Self {
        self.yield_model = yield_model;
        self
    }

    /// Technology of this design.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Clock frequency.
    pub fn f_clk(&self) -> Frequency {
        self.f_clk
    }

    /// The synthesized M0 core.
    pub fn m0(&self) -> &SynthesisResult {
        &self.m0
    }

    /// The program-memory macro.
    pub fn program_mem(&self) -> &EdramMacro {
        &self.program_mem
    }

    /// The data-memory macro.
    pub fn data_mem(&self) -> &EdramMacro {
        &self.data_mem
    }

    /// The yield model used for per-good-die carbon.
    pub fn yield_model(&self) -> &YieldModel {
        &self.yield_model
    }

    /// One memory macro's footprint (Table II row "64 kB memory area").
    pub fn memory_area(&self) -> Area {
        self.program_mem.area()
    }

    /// Total die area: M0 + both memories (Table II row "total area").
    pub fn area(&self) -> Area {
        Area::from_square_meters(
            self.m0.area().as_square_meters()
                + self.program_mem.area().as_square_meters()
                + self.data_mem.area().as_square_meters(),
        )
    }

    /// Die outline implied by the floorplan aspect ratio.
    pub fn die(&self) -> DieSpec {
        let a = self.area().as_square_meters();
        let w = (a / DIE_ASPECT).sqrt();
        if w <= 0.0 {
            // Degenerate zero-area floorplan: a zero die outline, not a
            // 0/0 NaN that would poison every downstream wafer count.
            return DieSpec::new(
                ppatc_units::Length::from_meters(0.0),
                ppatc_units::Length::from_meters(0.0),
            );
        }
        let h = a / w;
        DieSpec::new(
            ppatc_units::Length::from_meters(w),
            ppatc_units::Length::from_meters(h),
        )
    }

    /// Evaluates power/performance for a completed workload run.
    pub fn evaluate(&self, run: &WorkloadRun) -> Evaluation {
        self.evaluate_counts(run.cycles, &run.stats)
    }

    /// Evaluates power/performance from raw cycle/access counts. Rejects a
    /// zero cycle count with a structured [`ValidationError`].
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_evaluate_counts(
        &self,
        cycles: u64,
        stats: &AccessStats,
    ) -> Result<Evaluation, ValidationError> {
        if cycles == 0 {
            return Err(ValidationError::new("cycles", 0.0, ">= 1"));
        }
        let f = self.f_clk;
        let period = f.period();
        let prog_accesses = stats.instruction_fetches + stats.program_reads;
        let data_accesses = stats.data_reads + stats.data_writes;
        let mem_energy_per_cycle =
            self.program_mem
                .average_energy_per_cycle(prog_accesses, cycles, f)
                + self
                    .data_mem
                    .average_energy_per_cycle(data_accesses, cycles, f);
        let m0_dynamic = self.m0.dynamic_energy();
        let m0_static = self.m0.leakage_power();
        // Eq. 6: busy power while the application executes.
        let operational_power =
            m0_static + m0_dynamic.per_cycle_power(f) + mem_energy_per_cycle.per_cycle_power(f);
        let required_retention = period * (stats.max_write_to_read_cycles as f64);
        let retention = self.data_mem.retention();
        let refreshed = self.data_mem.refresh_power().as_watts() > 0.0;
        Ok(Evaluation {
            cycles,
            execution_time: period * (cycles as f64),
            m0_dynamic_per_cycle: m0_dynamic,
            m0_static,
            mem_energy_per_cycle,
            operational_power,
            required_retention,
            retention_satisfied: refreshed || retention >= required_retention,
        })
    }

    /// Panicking convenience wrapper around
    /// [`SystemDesign::try_evaluate_counts`].
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn evaluate_counts(&self, cycles: u64, stats: &AccessStats) -> Evaluation {
        match self.try_evaluate_counts(cycles, stats) {
            Ok(eval) => eval,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Power/performance outcome of running one application on a design
/// (the dynamic rows of Table II).
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Clock cycles to run the application once.
    pub cycles: u64,
    /// Wall-clock execution time at the design's f_clk.
    pub execution_time: Time,
    /// M0 dynamic energy per cycle.
    pub m0_dynamic_per_cycle: Energy,
    /// M0 static (leakage) power.
    pub m0_static: Power,
    /// Average memory energy per cycle, both macros combined (access +
    /// leakage + refresh).
    pub mem_energy_per_cycle: Energy,
    /// Eq. 6 busy power: `P_static + (E_dyn + E_mem) / T_clk`.
    pub operational_power: Power,
    /// Longest write→read retention the workload demands of the data memory.
    pub required_retention: Time,
    /// Whether cell retention (or active refresh) covers that demand.
    pub retention_satisfied: bool,
}

impl Evaluation {
    /// Total operational energy for one execution of the application.
    pub fn energy_per_run(&self) -> Energy {
        self.operational_power * self.execution_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;
    use ppatc_workloads::Workload;

    fn f500() -> Frequency {
        Frequency::from_megahertz(500.0)
    }

    fn designs() -> (SystemDesign, SystemDesign) {
        (
            SystemDesign::new(Technology::AllSi, f500()).expect("all-Si designs"),
            SystemDesign::new(Technology::M3dIgzoCnfetSi, f500()).expect("M3D designs"),
        )
    }

    #[test]
    fn table2_total_area() {
        let (si, m3d) = designs();
        let a_si = si.area().as_square_millimeters();
        let a_m3d = m3d.area().as_square_millimeters();
        assert!(approx_eq(a_si, 0.139, 0.03), "all-Si area {a_si} mm²");
        assert!(approx_eq(a_m3d, 0.053, 0.05), "M3D area {a_m3d} mm²");
    }

    #[test]
    fn table2_die_dimensions() {
        let (si, _) = designs();
        let die = si.die();
        assert!(approx_eq(die.width().as_micrometers(), 515.0, 0.03));
        assert!(approx_eq(die.height().as_micrometers(), 270.0, 0.03));
    }

    #[test]
    fn table2_memory_energy_per_cycle() {
        // Use a short matmul run: per-cycle access *rates* converge within
        // a few repetitions, so the Table II averages appear without paying
        // for the full 2×10⁷-cycle simulation in a unit test.
        let run = Workload::matmul_int()
            .execute_with_reps(4)
            .expect("matmul runs");
        let (si, m3d) = designs();
        let e_si = si.evaluate(&run).mem_energy_per_cycle.as_picojoules();
        let e_m3d = m3d.evaluate(&run).mem_energy_per_cycle.as_picojoules();
        assert!(approx_eq(e_si, 18.0, 0.03), "all-Si memory {e_si} pJ/cycle");
        assert!(approx_eq(e_m3d, 15.5, 0.03), "M3D memory {e_m3d} pJ/cycle");
    }

    #[test]
    fn table2_m0_dynamic_energy() {
        let (si, m3d) = designs();
        for d in [&si, &m3d] {
            let pj = d.m0().dynamic_energy().as_picojoules();
            assert!(approx_eq(pj, 1.42, 0.08), "M0 dynamic {pj} pJ/cycle");
        }
        // The M0 is Si CMOS in both designs — identical energy.
        assert_eq!(si.m0().dynamic_energy(), m3d.m0().dynamic_energy());
    }

    #[test]
    fn operational_power_is_milliwatt_scale() {
        let run = Workload::matmul_int()
            .execute_with_reps(2)
            .expect("matmul runs");
        let (si, m3d) = designs();
        let p_si = si.evaluate(&run).operational_power.as_milliwatts();
        let p_m3d = m3d.evaluate(&run).operational_power.as_milliwatts();
        assert!((8.0..12.0).contains(&p_si), "all-Si P {p_si} mW");
        assert!(p_m3d < p_si, "M3D should draw less ({p_m3d} vs {p_si} mW)");
    }

    #[test]
    fn retention_check_matmul() {
        let run = Workload::matmul_int()
            .execute_with_reps(2)
            .expect("matmul runs");
        let (si, m3d) = designs();
        // The all-Si cell retains ~4 ms but refreshes, the IGZO cell holds
        // for ~10⁵ s outright; both satisfy the workload.
        assert!(si.evaluate(&run).retention_satisfied);
        assert!(m3d.evaluate(&run).retention_satisfied);
        assert!(m3d.data_mem().retention() > m3d.evaluate(&run).required_retention);
    }

    #[test]
    fn smaller_memories_shrink_the_die() {
        let f = f500();
        let small = SystemDesign::with_flavor_and_memory(
            Technology::AllSi,
            f,
            crate::SiVtFlavor::Rvt,
            ppatc_edram::Organization::new(16 * 1024, 2 * 1024, 32),
        )
        .expect("16 kB system designs");
        let full = SystemDesign::new(Technology::AllSi, f).expect("64 kB system designs");
        assert!(small.area().as_square_millimeters() < 0.5 * full.area().as_square_millimeters());
        assert!(small.die().area() < full.die().area());
    }

    #[test]
    fn default_yields_match_paper() {
        let (si, m3d) = designs();
        assert_eq!(si.yield_model(), &YieldModel::Fixed(0.90));
        assert_eq!(m3d.yield_model(), &YieldModel::Fixed(0.50));
    }

    #[test]
    fn memory_too_slow_at_extreme_clock() {
        // At 5 GHz the 500 ps periphery alone blows the period.
        let err = SystemDesign::with_flavor(
            Technology::AllSi,
            Frequency::from_gigahertz(5.0),
            SiVtFlavor::Slvt,
        )
        .expect_err("5 GHz must fail");
        // Either the logic or the memory trips first; both are reported.
        let msg = err.to_string();
        assert!(
            msg.contains("cannot close timing") || msg.contains("single-cycle access"),
            "unexpected error: {msg}"
        );
    }
}
