//! Multi-application usage mixes.
//!
//! The paper's design team targets "a variety of applications that are
//! well-represented by the workloads in Embench", then demonstrates with
//! `matmul-int` alone. This module evaluates a *mix*: each application gets
//! a share of the daily active window, the blended operational power is the
//! time-weighted mean, and the tCDP delay term is the weighted mean
//! execution time.
//!
//! ```no_run
//! use ppatc::mix::WorkloadMix;
//! use ppatc::{Lifetime, SystemDesign, Technology};
//! use ppatc_units::Frequency;
//! use ppatc_workloads::Workload;
//!
//! let design = SystemDesign::new(Technology::M3dIgzoCnfetSi, Frequency::from_megahertz(500.0))?;
//! let mix = WorkloadMix::new()
//!     .with(Workload::matmul_int().execute()?, 0.6)
//!     .with(Workload::crc32().execute()?, 0.4);
//! let blend = mix.evaluate(&design);
//! println!("blended power: {}", blend.operational_power);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::{check, ValidationError};
use crate::system::{Evaluation, SystemDesign};
use ppatc_units::{Power, Time};
use ppatc_workloads::WorkloadRun;

/// A weighted set of workload runs sharing the active window.
#[derive(Clone, Debug, Default)]
pub struct WorkloadMix {
    entries: Vec<(WorkloadRun, f64)>,
}

/// The blended outcome of a mix on one design.
#[derive(Clone, Debug, PartialEq)]
pub struct MixEvaluation {
    /// Time-weighted mean busy power across the mix.
    pub operational_power: Power,
    /// Weighted mean execution time (the tCDP delay term).
    pub execution_time: Time,
    /// Weighted mean memory energy per cycle.
    pub mem_energy_per_cycle: ppatc_units::Energy,
    /// Whether every application's retention demand is satisfied.
    pub retention_satisfied: bool,
    /// The per-application evaluations, in insertion order.
    pub per_app: Vec<Evaluation>,
}

impl WorkloadMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an application with a share of the active window. Rejects
    /// non-positive or non-finite weights.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_with(mut self, run: WorkloadRun, weight: f64) -> Result<Self, ValidationError> {
        check::positive("mix_weight", weight)?;
        self.entries.push((run, weight));
        Ok(self)
    }

    /// Panicking convenience wrapper around [`WorkloadMix::try_with`].
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    #[must_use]
    pub fn with(self, run: WorkloadRun, weight: f64) -> Self {
        match self.try_with(run, weight) {
            Ok(mix) => mix,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of applications in the mix.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mix is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Normalized weights (summing to 1).
    pub fn weights(&self) -> Vec<f64> {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        self.entries.iter().map(|(_, w)| w / total).collect()
    }

    /// Evaluates the mix on a design. Rejects empty mixes with a
    /// structured [`ValidationError`].
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_evaluate(&self, design: &SystemDesign) -> Result<MixEvaluation, ValidationError> {
        if self.is_empty() {
            return Err(ValidationError::new("mix_len", 0.0, ">= 1 workload"));
        }
        let weights = self.weights();
        let per_app: Vec<Evaluation> = self
            .entries
            .iter()
            .map(|(run, _)| design.evaluate(run))
            .collect();
        let mut power_w = 0.0;
        let mut exec_s = 0.0;
        let mut mem_j = 0.0;
        let mut retention = true;
        for (eval, &w) in per_app.iter().zip(&weights) {
            power_w += w * eval.operational_power.as_watts();
            exec_s += w * eval.execution_time.as_seconds();
            mem_j += w * eval.mem_energy_per_cycle.as_joules();
            retention &= eval.retention_satisfied;
        }
        Ok(MixEvaluation {
            operational_power: Power::from_watts(power_w),
            execution_time: Time::from_seconds(exec_s),
            mem_energy_per_cycle: ppatc_units::Energy::from_joules(mem_j),
            retention_satisfied: retention,
            per_app,
        })
    }

    /// Panicking convenience wrapper around [`WorkloadMix::try_evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty.
    pub fn evaluate(&self, design: &SystemDesign) -> MixEvaluation {
        match self.try_evaluate(design) {
            Ok(blend) => blend,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a carbon trajectory for the mix on a design, using the
    /// standard embodied pipeline and usage pattern. Rejects empty mixes.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_trajectory(
        &self,
        design: &SystemDesign,
        embodied: &crate::EmbodiedPipeline,
        usage: crate::UsagePattern,
    ) -> Result<crate::CarbonTrajectory, ValidationError> {
        let blend = self.try_evaluate(design)?;
        crate::CarbonTrajectory::try_new(
            embodied.per_good_die(design).per_good_die(),
            blend.operational_power,
            usage,
            blend.execution_time,
        )
    }

    /// Panicking convenience wrapper around [`WorkloadMix::try_trajectory`].
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty.
    pub fn trajectory(
        &self,
        design: &SystemDesign,
        embodied: &crate::EmbodiedPipeline,
        usage: crate::UsagePattern,
    ) -> crate::CarbonTrajectory {
        match self.try_trajectory(design, embodied, usage) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmbodiedPipeline, Lifetime, Technology, UsagePattern};
    use ppatc_units::{approx_eq, Frequency};
    use ppatc_workloads::Workload;

    fn design() -> SystemDesign {
        SystemDesign::new(Technology::M3dIgzoCnfetSi, Frequency::from_megahertz(500.0))
            .expect("designs")
    }

    #[test]
    fn single_app_mix_equals_direct_evaluation() {
        let run = Workload::crc32().execute_with_reps(1).expect("runs");
        let d = design();
        let direct = d.evaluate(&run);
        let mix = WorkloadMix::new().with(run, 1.0).evaluate(&d);
        assert!(approx_eq(
            mix.operational_power.as_watts(),
            direct.operational_power.as_watts(),
            1e-12
        ));
        assert_eq!(mix.per_app.len(), 1);
    }

    #[test]
    fn weights_are_normalized() {
        let a = Workload::edn().execute_with_reps(1).expect("runs");
        let b = Workload::fir().execute_with_reps(1).expect("runs");
        let mix = WorkloadMix::new().with(a, 3.0).with(b, 1.0);
        let w = mix.weights();
        assert!(approx_eq(w[0], 0.75, 1e-12));
        assert!(approx_eq(w[1], 0.25, 1e-12));
    }

    #[test]
    fn blend_lies_between_the_extremes() {
        let a = Workload::matmul_int().execute_with_reps(2).expect("runs");
        let b = Workload::sieve().execute_with_reps(1).expect("runs");
        let d = design();
        let pa = d.evaluate(&a).operational_power.as_watts();
        let pb = d.evaluate(&b).operational_power.as_watts();
        let blend = WorkloadMix::new()
            .with(a, 0.5)
            .with(b, 0.5)
            .evaluate(&d)
            .operational_power
            .as_watts();
        let (lo, hi) = (pa.min(pb), pa.max(pb));
        assert!(blend > lo && blend < hi, "{blend} outside [{lo}, {hi}]");
    }

    #[test]
    fn mix_trajectory_produces_sane_tcdp() {
        let d = design();
        let mix = WorkloadMix::new()
            .with(Workload::crc32().execute_with_reps(1).expect("runs"), 1.0)
            .with(Workload::edn().execute_with_reps(1).expect("runs"), 1.0);
        let traj = mix.trajectory(
            &d,
            &EmbodiedPipeline::paper_default(),
            UsagePattern::paper_default(),
        );
        let tcdp = traj.tcdp(Lifetime::months(24.0));
        assert!(tcdp.as_grams_per_hertz() > 0.0);
        assert!(traj.embodied().as_grams() > 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid 'mix_len'")]
    fn empty_mix_panics() {
        let _ = WorkloadMix::new().evaluate(&design());
    }

    #[test]
    #[should_panic(expected = "invalid 'mix_weight'")]
    fn zero_weight_panics() {
        let run = Workload::edn().execute_with_reps(1).expect("runs");
        let _ = WorkloadMix::new().with(run, 0.0);
    }

    #[test]
    fn invalid_mixes_are_structured_errors() {
        let e = WorkloadMix::new()
            .try_evaluate(&design())
            .expect_err("empty mix rejected");
        assert_eq!(e.field, "mix_len");
        let run = Workload::edn().execute_with_reps(1).expect("runs");
        let e = WorkloadMix::new()
            .try_with(run.clone(), f64::NAN)
            .expect_err("NaN weight");
        assert_eq!(e.field, "mix_weight");
        let e = WorkloadMix::new()
            .try_with(run, -1.0)
            .expect_err("negative weight");
        assert_eq!(e.field, "mix_weight");
    }
}
