//! `ppatc` — Power, Performance, Area, and **total Carbon** evaluation of
//! embedded computing systems across fabrication technologies.
//!
//! This crate is the top of the reproduction stack for *"Quantifying
//! Trade-Offs in Power, Performance, Area, and Total Carbon Footprint of
//! Future Three-Dimensional Integrated Computing Systems"* (DATE 2025). It
//! wires the substrate crates together into the paper's five-step flow
//! (Sec. III-B):
//!
//! 1. **Memory sizing** — 2 × 64 kB eDRAM (program + data), enough for any
//!    kernel in [`ppatc_workloads`].
//! 2. **eDRAM design** — [`ppatc_edram`] characterizes the 2 kB-sub-array
//!    macro per technology, checking the single-cycle 500 MHz constraint.
//! 3. **M0 integration** — [`ppatc_pdk`]'s synthesis model maps the
//!    Cortex-M0 at the target clock and threshold flavor; [`SystemDesign`]
//!    floorplans core + memories into a die.
//! 4. **Application energy** — cycle counts and per-memory access counts
//!    come from the [`ppatc_m0`] instruction-set simulator.
//! 5. **Total carbon** — [`ppatc_fab`] + [`ppatc_wafer`] give embodied
//!    carbon per good die (Eqs. 2–5); [`UsagePattern`] gives operational
//!    carbon (Eqs. 6–8); [`CarbonTrajectory`] and [`TcdpMap`] produce the
//!    Fig. 5 lifetime curves and the Fig. 6 tCDP isoline maps.
//!
//! # Quickstart
//!
//! ```no_run
//! use ppatc::{CaseStudy, Lifetime};
//! use ppatc_workloads::Workload;
//!
//! let run = Workload::matmul_int().execute()?;
//! let study = CaseStudy::paper(&run)?;
//! let life = Lifetime::months(24.0);
//! let ratio = study.tcdp_ratio(life);
//! println!(
//!     "after 24 months the M3D design is {:.2}x more carbon-efficient",
//!     1.0 / ratio
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod embodied;
pub mod error;
pub mod eval;
mod isoline;
mod lifetime;
pub mod mix;
pub mod montecarlo;
pub mod optimize;
mod scenario;
pub mod standby;
mod system;
mod usage;

pub use checkpoint::{Journal, JournalSpec};
pub use embodied::{EmbodiedPerDie, EmbodiedPipeline};
pub use error::{InterruptReason, PpatcError, ValidationError};
pub use eval::{CancelToken, RunBudget, Supervisor};
pub use isoline::{IsolinePoint, Perturbation, TcdpMap};
pub use lifetime::{CarbonTrajectory, Lifetime, TrajectoryPoint};
pub use scenario::{CaseStudy, PpatcSummary};
pub use system::{DesignError, Evaluation, SystemDesign};
pub use usage::UsagePattern;

pub use ppatc_pdk::{SiVtFlavor, Technology};
pub use ppatc_wafer::YieldModel;
