//! tCDP-ratio maps, isolines, and uncertainty bands (Fig. 6).
//!
//! The Fig. 6 analysis asks: *over what range of (relative embodied carbon,
//! relative operational energy) does the M3D design stay more
//! carbon-efficient than the all-Si baseline?* The map's axes scale the M3D
//! design's C_embodied (x) and E_operational (y); the **isoline** is the
//! locus where the two designs' tCDP are equal. Because both designs run
//! the same application at the same clock, execution time cancels and the
//! isoline has the closed form
//!
//! ```text
//! y(x) = (tC_allSi(t) − x · C_emb_M3D) / C_op_M3D(t)
//! ```
//!
//! Uncertainty in lifetime, CI_use, or M3D yield (Fig. 6b) moves the
//! isoline; [`TcdpMap::isoline_with`] evaluates those perturbed variants.

use crate::checkpoint::JournalSpec;
use crate::error::{check, PpatcError, ValidationError};
use crate::eval::Supervisor;
use crate::lifetime::{CarbonTrajectory, Lifetime};

/// Uncertainty knobs of Fig. 6b.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Perturbation {
    /// Shift the evaluation lifetime by this many months (±6 in the paper).
    LifetimeDeltaMonths(f64),
    /// Scale the use-phase carbon intensity (×3 / ÷3 in the paper).
    CiUseScale(f64),
    /// Replace the M3D die yield (10% / 90% in the paper, vs. 50% nominal).
    M3dYield(f64),
}

/// One point of a tCDP isoline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsolinePoint {
    /// x: scale factor on the M3D design's embodied carbon.
    pub embodied_scale: f64,
    /// y: scale factor on the M3D design's operational energy at which the
    /// two designs' tCDP are equal. `None` means the all-Si design wins at
    /// every positive operational scale for this x.
    pub eop_scale: Option<f64>,
}

/// A tCDP comparison surface between the all-Si baseline and the M3D
/// design.
#[derive(Clone, Debug)]
pub struct TcdpMap {
    si: CarbonTrajectory,
    m3d: CarbonTrajectory,
    lifetime: Lifetime,
    m3d_nominal_yield: f64,
}

impl TcdpMap {
    /// Builds a map from two trajectories at an evaluation lifetime.
    /// `m3d_nominal_yield` is the yield already baked into the M3D
    /// trajectory's embodied carbon (needed for yield perturbations).
    ///
    /// Rejects yields outside `(0, 1]` (including NaN) and non-finite or
    /// non-positive lifetimes with a structured [`ValidationError`].
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_new(
        si: CarbonTrajectory,
        m3d: CarbonTrajectory,
        lifetime: Lifetime,
        m3d_nominal_yield: f64,
    ) -> Result<Self, ValidationError> {
        check::in_open_closed(
            "m3d_nominal_yield",
            m3d_nominal_yield,
            0.0,
            1.0,
            "in (0, 1]",
        )?;
        check::positive("lifetime", lifetime.as_time().as_months())?;
        Ok(Self {
            si,
            m3d,
            lifetime,
            m3d_nominal_yield,
        })
    }

    /// Panicking convenience wrapper around [`TcdpMap::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `m3d_nominal_yield` is outside `(0, 1]` or the lifetime is
    /// not a positive finite duration.
    pub fn new(
        si: CarbonTrajectory,
        m3d: CarbonTrajectory,
        lifetime: Lifetime,
        m3d_nominal_yield: f64,
    ) -> Self {
        match Self::try_new(si, m3d, lifetime, m3d_nominal_yield) {
            Ok(map) => map,
            Err(e) => panic!("{e}"),
        }
    }

    /// Evaluation lifetime of the map.
    pub fn lifetime(&self) -> Lifetime {
        self.lifetime
    }

    /// tCDP ratio `M3D / all-Si` at scale factors `(x, y)`; values below 1
    /// mean the M3D design is more carbon-efficient (the red region).
    pub fn ratio(&self, embodied_scale: f64, eop_scale: f64) -> f64 {
        self.ratio_with(embodied_scale, eop_scale, None)
    }

    /// tCDP ratio under an optional Fig. 6b perturbation, rejecting
    /// non-positive or non-finite scale factors and invalid perturbations
    /// with a structured [`ValidationError`].
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_ratio_with(
        &self,
        embodied_scale: f64,
        eop_scale: f64,
        perturbation: Option<Perturbation>,
    ) -> Result<f64, ValidationError> {
        check::positive("embodied_scale", embodied_scale)?;
        check::positive("eop_scale", eop_scale)?;
        let (life, ci_scale, yield_scale) = self.apply(perturbation)?;
        let e_si = self.si.embodied().as_grams();
        let o_si = self.si.operational(life).as_grams() * ci_scale;
        let e_m3d = self.m3d.embodied().as_grams() * yield_scale * embodied_scale;
        let o_m3d = self.m3d.operational(life).as_grams() * ci_scale * eop_scale;
        Ok((e_m3d + o_m3d) / (e_si + o_si))
    }

    /// Panicking convenience wrapper around [`TcdpMap::try_ratio_with`].
    ///
    /// # Panics
    ///
    /// Panics if a scale factor or yield perturbation is non-positive or
    /// non-finite.
    pub fn ratio_with(
        &self,
        embodied_scale: f64,
        eop_scale: f64,
        perturbation: Option<Perturbation>,
    ) -> f64 {
        match self.try_ratio_with(embodied_scale, eop_scale, perturbation) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// The y value where the isoline crosses a given x (closed form), under
    /// an optional perturbation. `Ok(None)` means the all-Si design wins at
    /// every positive operational scale for this x; `Err` reports an
    /// invalid perturbation.
    #[must_use = "this returns a Result that must be handled"]
    // ppatc-lint: allow(raw-unit-api) — Fig. 6 isoline axes are dimensionless scale factors
    pub fn try_isoline_y(
        &self,
        embodied_scale: f64,
        perturbation: Option<Perturbation>,
    ) -> Result<Option<f64>, ValidationError> {
        check::finite("embodied_scale", embodied_scale)?;
        let (life, ci_scale, yield_scale) = self.apply(perturbation)?;
        let tc_si = self.si.embodied().as_grams() + self.si.operational(life).as_grams() * ci_scale;
        let e_m3d = self.m3d.embodied().as_grams() * yield_scale * embodied_scale;
        let o_m3d = self.m3d.operational(life).as_grams() * ci_scale;
        if o_m3d <= 0.0 {
            return Ok(None);
        }
        let y = (tc_si - e_m3d) / o_m3d;
        Ok((y > 0.0).then_some(y))
    }

    /// Panicking convenience wrapper around [`TcdpMap::try_isoline_y`].
    ///
    /// # Panics
    ///
    /// Panics if `embodied_scale` is non-finite or the perturbation is
    /// invalid.
    // ppatc-lint: allow(raw-unit-api) — Fig. 6 isoline axes are dimensionless scale factors
    pub fn isoline_y(
        &self,
        embodied_scale: f64,
        perturbation: Option<Perturbation>,
    ) -> Option<f64> {
        match self.try_isoline_y(embodied_scale, perturbation) {
            Ok(y) => y,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples the nominal isoline at the given x values.
    // ppatc-lint: allow(raw-unit-api) — Fig. 6 isoline axes are dimensionless scale factors
    pub fn isoline(&self, xs: &[f64]) -> Vec<IsolinePoint> {
        self.isoline_with(xs, None)
    }

    /// Samples a perturbed isoline at the given x values.
    // ppatc-lint: allow(raw-unit-api) — Fig. 6 isoline axes are dimensionless scale factors
    pub fn isoline_with(
        &self,
        xs: &[f64],
        perturbation: Option<Perturbation>,
    ) -> Vec<IsolinePoint> {
        xs.iter()
            .map(|&x| IsolinePoint {
                embodied_scale: x,
                eop_scale: self.isoline_y(x, perturbation),
            })
            .collect()
    }

    /// Rasterizes the ratio colormap over `[x0, x1] × [y0, y1]` as
    /// `(x, y, ratio)` triples, row-major in y. Rejects resolutions below
    /// 2×2 and empty or non-finite ranges.
    #[must_use = "this returns a Result that must be handled"]
    // ppatc-lint: allow(raw-unit-api) — raster axes are dimensionless scale factors
    pub fn try_raster(
        &self,
        (x0, x1): (f64, f64),
        (y0, y1): (f64, f64),
        nx: usize,
        ny: usize,
    ) -> Result<Vec<(f64, f64, f64)>, ValidationError> {
        self.try_raster_jobs((x0, x1), (y0, y1), nx, ny, 1)
    }

    /// [`TcdpMap::try_raster`] sharded across `jobs` workers; the grid is
    /// byte-identical to the serial raster for any worker count (every
    /// point is a pure function of its grid index).
    #[must_use = "this returns a Result that must be handled"]
    // ppatc-lint: allow(raw-unit-api) — raster axes are dimensionless scale factors
    pub fn try_raster_jobs(
        &self,
        (x0, x1): (f64, f64),
        (y0, y1): (f64, f64),
        nx: usize,
        ny: usize,
        jobs: usize,
    ) -> Result<Vec<(f64, f64, f64)>, ValidationError> {
        check_raster_window((x0, x1), (y0, y1), nx, ny)?;
        Ok(crate::eval::par_map_indexed(nx * ny, jobs, |k| {
            self.raster_point((x0, x1), (y0, y1), nx, ny, k)
        }))
    }

    /// [`TcdpMap::try_raster_jobs`] under a [`Supervisor`]: honors the
    /// supervisor's cancellation token and deadline, isolates worker panics,
    /// and — when a checkpoint path is configured — journals every finished
    /// chunk so an interrupted raster resumes byte-identically (each grid
    /// point is a pure function of its index, and the journal stores exact
    /// `f64` bit patterns).
    ///
    /// # Errors
    ///
    /// [`PpatcError::Validation`] for a bad window or resolution,
    /// [`PpatcError::Interrupted`] when the budget stops the run,
    /// [`PpatcError::WorkerPanic`] if a grid point panics, and
    /// [`PpatcError::Checkpoint`] on journal I/O failure or a journal that
    /// was recorded for a different raster.
    #[must_use = "this returns a Result that must be handled"]
    // ppatc-lint: allow(raw-unit-api) — raster axes are dimensionless scale factors
    pub fn try_raster_supervised(
        &self,
        (x0, x1): (f64, f64),
        (y0, y1): (f64, f64),
        nx: usize,
        ny: usize,
        jobs: usize,
        supervisor: &Supervisor,
    ) -> Result<Vec<(f64, f64, f64)>, PpatcError> {
        check_raster_window((x0, x1), (y0, y1), nx, ny)?;
        let spec = self.raster_spec((x0, x1), (y0, y1), nx, ny);
        let journal = supervisor.try_open_journal(&spec)?;
        let outcomes = crate::eval::try_par_map_journaled(
            nx * ny,
            jobs,
            supervisor.budget(),
            journal.as_ref(),
            |k| self.raster_point((x0, x1), (y0, y1), nx, ny, k),
        )?;
        outcomes.into_iter().collect()
    }

    /// Journal identity of a raster run: the window, the resolution, and
    /// two corner-probe ratios that capture the map itself (two different
    /// maps rasterized over the same window get different fingerprints).
    fn raster_spec(
        &self,
        (x0, x1): (f64, f64),
        (y0, y1): (f64, f64),
        nx: usize,
        ny: usize,
    ) -> JournalSpec {
        JournalSpec::for_run::<(f64, f64, f64)>(
            "raster",
            nx * ny,
            &[
                nx as u64,
                ny as u64,
                x0.to_bits(),
                x1.to_bits(),
                y0.to_bits(),
                y1.to_bits(),
                self.ratio(x0, y0).to_bits(),
                self.ratio(x1, y1).to_bits(),
            ],
        )
    }

    /// The `k`-th point of the row-major raster grid — a pure function of
    /// the window, the resolution, and `k`, which is what makes journaled
    /// resumes byte-identical.
    fn raster_point(
        &self,
        (x0, x1): (f64, f64),
        (y0, y1): (f64, f64),
        nx: usize,
        ny: usize,
        k: usize,
    ) -> (f64, f64, f64) {
        let j = k / nx;
        let i = k % nx;
        let y = y0 + (y1 - y0) * (j as f64) / ((ny - 1) as f64);
        let x = x0 + (x1 - x0) * (i as f64) / ((nx - 1) as f64);
        (x, y, self.ratio(x, y))
    }

    /// Panicking convenience wrapper around [`TcdpMap::try_raster`].
    ///
    /// # Panics
    ///
    /// Panics if either resolution is below 2 or a range is empty or
    /// non-finite.
    // ppatc-lint: allow(raw-unit-api) — raster axes are dimensionless scale factors
    pub fn raster(
        &self,
        x_range: (f64, f64),
        y_range: (f64, f64),
        nx: usize,
        ny: usize,
    ) -> Vec<(f64, f64, f64)> {
        match self.try_raster(x_range, y_range, nx, ny) {
            Ok(grid) => grid,
            Err(e) => panic!("{e}"),
        }
    }

    /// tCDP ratio under a jointly sampled uncertainty point (see
    /// [`crate::montecarlo`]): all knobs applied at once.
    pub fn ratio_sampled(&self, sample: &crate::montecarlo::UncertaintySample) -> f64 {
        let life = sample.lifetime;
        let yield_scale = self.m3d_nominal_yield / sample.m3d_yield;
        let e_si = self.si.embodied().as_grams();
        let o_si = self.si.operational(life).as_grams() * sample.ci_scale;
        let e_m3d = self.m3d.embodied().as_grams() * yield_scale * sample.embodied_scale;
        let o_m3d = self.m3d.operational(life).as_grams() * sample.ci_scale * sample.eop_scale;
        (e_m3d + o_m3d) / (e_si + o_si)
    }

    /// Batched [`TcdpMap::ratio_sampled`] over a structure-of-arrays run of
    /// samples, appending one ratio per sample to `out` in index order.
    ///
    /// The embodied masses are constant across a sweep and are hoisted out
    /// of the per-sample loop; everything else evaluates the exact
    /// expression tree of [`TcdpMap::ratio_sampled`] (the operational terms
    /// depend on the sampled lifetime and cannot be hoisted without
    /// reassociating), so the appended ratios are bit-identical to the
    /// scalar path.
    pub(crate) fn ratio_batch(
        &self,
        batch: &crate::montecarlo::SampleBatch,
        ratios: &mut Vec<f64>,
    ) {
        let e_si = self.si.embodied().as_grams();
        let e_m3d_grams = self.m3d.embodied().as_grams();
        ratios.reserve(batch.len());
        for i in 0..batch.len() {
            let life = batch.lifetime[i];
            let yield_scale = self.m3d_nominal_yield / batch.m3d_yield[i];
            let o_si = self.si.operational(life).as_grams() * batch.ci_scale[i];
            let e_m3d = e_m3d_grams * yield_scale * batch.embodied_scale[i];
            let o_m3d =
                self.m3d.operational(life).as_grams() * batch.ci_scale[i] * batch.eop_scale[i];
            ratios.push((e_m3d + o_m3d) / (e_si + o_si));
        }
    }

    /// Resolves a perturbation into (lifetime, CI scale, embodied-yield
    /// scale), rejecting non-finite or out-of-range knob values.
    fn apply(
        &self,
        perturbation: Option<Perturbation>,
    ) -> Result<(Lifetime, f64, f64), ValidationError> {
        Ok(match perturbation {
            None => (self.lifetime, 1.0, 1.0),
            Some(Perturbation::LifetimeDeltaMonths(dm)) => {
                check::finite("lifetime_delta_months", dm)?;
                (self.lifetime.shifted(dm), 1.0, 1.0)
            }
            Some(Perturbation::CiUseScale(s)) => {
                check::positive("ci_use_scale", s)?;
                (self.lifetime, s, 1.0)
            }
            Some(Perturbation::M3dYield(y)) => {
                check::in_open_closed("m3d_yield", y, 0.0, 1.0, "in (0, 1]")?;
                // Embodied per good die scales inversely with yield.
                (self.lifetime, 1.0, self.m3d_nominal_yield / y)
            }
        })
    }
}

/// Shared raster-window validation: resolutions of at least 2×2 and
/// positive, finite, ordered axis ranges.
fn check_raster_window(
    (x0, x1): (f64, f64),
    (y0, y1): (f64, f64),
    nx: usize,
    ny: usize,
) -> Result<(), ValidationError> {
    if nx < 2 {
        return Err(ValidationError::new("nx", nx as f64, ">= 2"));
    }
    if ny < 2 {
        return Err(ValidationError::new("ny", ny as f64, ">= 2"));
    }
    check::positive("x0", x0)?;
    check::positive("y0", y0)?;
    if !(x1.is_finite() && x1 > x0) {
        return Err(ValidationError::new("x1", x1, "finite and > x0"));
    }
    if !(y1.is_finite() && y1 > y0) {
        return Err(ValidationError::new("y1", y1, "finite and > y0"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::UsagePattern;
    use ppatc_units::{approx_eq, CarbonMass, Power, Time};

    fn map() -> TcdpMap {
        let exec = Time::from_seconds(0.04);
        let usage = UsagePattern::paper_default();
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(3.11),
            Power::from_milliwatts(9.7),
            usage,
            exec,
        );
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(3.63),
            Power::from_milliwatts(8.45),
            usage,
            exec,
        );
        TcdpMap::new(si, m3d, Lifetime::months(24.0), 0.50)
    }

    #[test]
    fn nominal_point_favors_m3d() {
        // At (1, 1) the map reproduces the paper's 1.02× benefit.
        let r = map().ratio(1.0, 1.0);
        assert!(approx_eq(1.0 / r, 1.02, 0.01), "benefit {:.3}", 1.0 / r);
    }

    #[test]
    fn ratio_moves_the_right_way() {
        let m = map();
        assert!(m.ratio(2.0, 1.0) > m.ratio(1.0, 1.0), "more embodied hurts");
        assert!(m.ratio(1.0, 0.5) < m.ratio(1.0, 1.0), "less energy helps");
    }

    #[test]
    fn isoline_passes_between_regions() {
        let m = map();
        let y = m.isoline_y(1.0, None).expect("isoline exists at x=1");
        // Just below the isoline M3D wins, just above it loses.
        assert!(m.ratio(1.0, y * 0.95) < 1.0);
        assert!(m.ratio(1.0, y * 1.05) > 1.0);
        // At nominal (1,1) M3D already wins, so the isoline sits above 1.
        assert!(y > 1.0);
    }

    #[test]
    fn isoline_vanishes_for_huge_embodied() {
        let m = map();
        // With M3D embodied scaled far beyond the baseline's total carbon,
        // no positive operational scale can equalize.
        assert!(m.isoline_y(10.0, None).is_none());
    }

    #[test]
    fn lifetime_perturbation_shifts_isoline_up() {
        let m = map();
        let nominal = m.isoline_y(1.5, None).expect("nominal isoline");
        let longer = m
            .isoline_y(1.5, Some(Perturbation::LifetimeDeltaMonths(6.0)))
            .expect("longer-life isoline");
        // A longer lifetime amortizes embodied carbon: the M3D-favorable
        // region grows.
        assert!(longer > nominal);
    }

    #[test]
    fn ci_perturbation_shifts_isoline() {
        let m = map();
        let nominal = m.isoline_y(1.5, None).expect("nominal isoline");
        let dirty = m
            .isoline_y(1.5, Some(Perturbation::CiUseScale(3.0)))
            .expect("dirty-grid isoline");
        // Dirtier use-phase electricity also amortizes embodied carbon
        // faster, enlarging the M3D region.
        assert!(dirty > nominal);
    }

    #[test]
    fn yield_perturbation_moves_both_ways() {
        let m = map();
        let nominal = m.isoline_y(1.0, None).expect("nominal");
        let worse = m.isoline_y(1.0, Some(Perturbation::M3dYield(0.10)));
        let better = m
            .isoline_y(1.0, Some(Perturbation::M3dYield(0.90)))
            .expect("better-yield isoline");
        assert!(better > nominal);
        // At 10% yield the M3D embodied carbon quintuples; the region may
        // shrink dramatically or vanish.
        if let Some(w) = worse {
            assert!(w < nominal);
        }
    }

    #[test]
    fn invalid_inputs_are_structured_errors() {
        let m = map();
        let exec = Time::from_seconds(0.04);
        let usage = UsagePattern::paper_default();
        let t = |g: f64, mw: f64| {
            CarbonTrajectory::new(
                CarbonMass::from_grams(g),
                Power::from_milliwatts(mw),
                usage,
                exec,
            )
        };
        let e = TcdpMap::try_new(t(3.0, 9.0), t(3.5, 8.0), Lifetime::months(24.0), 1.7)
            .expect_err("yield above 1 rejected");
        assert_eq!(e.field, "m3d_nominal_yield");
        assert_eq!(e.value, 1.7);
        let e = TcdpMap::try_new(t(3.0, 9.0), t(3.5, 8.0), Lifetime::months(24.0), f64::NAN)
            .expect_err("NaN yield rejected");
        assert_eq!(e.field, "m3d_nominal_yield");
        let e = m
            .try_ratio_with(f64::NAN, 1.0, None)
            .expect_err("NaN scale rejected");
        assert_eq!(e.field, "embodied_scale");
        let e = m
            .try_ratio_with(1.0, -2.0, None)
            .expect_err("negative scale rejected");
        assert_eq!(e.field, "eop_scale");
        let e = m
            .try_ratio_with(1.0, 1.0, Some(Perturbation::M3dYield(0.0)))
            .expect_err("zero yield perturbation rejected");
        assert_eq!(e.field, "m3d_yield");
        let e = m
            .try_isoline_y(1.0, Some(Perturbation::CiUseScale(f64::INFINITY)))
            .expect_err("infinite CI scale rejected");
        assert_eq!(e.field, "ci_use_scale");
        let e = m
            .try_raster((0.5, 3.0), (0.25, 1.5), 1, 5)
            .expect_err("1-wide raster rejected");
        assert_eq!(e.field, "nx");
        let e = m
            .try_raster((3.0, 0.5), (0.25, 1.5), 6, 5)
            .expect_err("empty range rejected");
        assert_eq!(e.field, "x1");
    }

    #[test]
    fn parallel_raster_is_byte_identical_to_serial() {
        let m = map();
        let serial = m
            .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 40, 30, 1)
            .expect("serial raster");
        for jobs in [2, 8] {
            let parallel = m
                .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 40, 30, jobs)
                .expect("parallel raster");
            let bits = |grid: &[(f64, f64, f64)]| {
                grid.iter()
                    .map(|(x, y, r)| (x.to_bits(), y.to_bits(), r.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(bits(&serial), bits(&parallel), "jobs = {jobs}");
        }
    }

    #[test]
    fn supervised_raster_matches_unsupervised() {
        let m = map();
        let plain = m
            .try_raster_jobs((0.5, 3.0), (0.25, 1.5), 24, 18, 3)
            .expect("plain raster");
        let supervised = m
            .try_raster_supervised((0.5, 3.0), (0.25, 1.5), 24, 18, 3, &Supervisor::new())
            .expect("supervised raster");
        let bits = |grid: &[(f64, f64, f64)]| {
            grid.iter()
                .map(|(x, y, r)| (x.to_bits(), y.to_bits(), r.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&plain), bits(&supervised));
    }

    #[test]
    fn supervised_raster_still_validates_the_window() {
        let m = map();
        let e = m
            .try_raster_supervised((3.0, 0.5), (0.25, 1.5), 6, 5, 1, &Supervisor::new())
            .expect_err("empty range rejected");
        assert!(matches!(e, PpatcError::Validation(v) if v.field == "x1"));
    }

    #[test]
    fn raster_spec_distinguishes_windows_and_maps() {
        let m = map();
        let base = m.raster_spec((0.5, 3.0), (0.25, 1.5), 6, 5);
        let other_window = m.raster_spec((0.5, 2.0), (0.25, 1.5), 6, 5);
        let other_res = m.raster_spec((0.5, 3.0), (0.25, 1.5), 5, 6);
        assert_ne!(base.fingerprint, other_window.fingerprint);
        assert_ne!(base.fingerprint, other_res.fingerprint);

        // A different trajectory pair over the same window must not be able
        // to consume this map's journal: the corner probes differ.
        let exec = Time::from_seconds(0.04);
        let usage = UsagePattern::paper_default();
        let si = CarbonTrajectory::new(
            CarbonMass::from_grams(4.0),
            Power::from_milliwatts(11.0),
            usage,
            exec,
        );
        let m3d = CarbonTrajectory::new(
            CarbonMass::from_grams(4.4),
            Power::from_milliwatts(9.0),
            usage,
            exec,
        );
        let other_map = TcdpMap::new(si, m3d, Lifetime::months(24.0), 0.50);
        let other = other_map.raster_spec((0.5, 3.0), (0.25, 1.5), 6, 5);
        assert_ne!(base.fingerprint, other.fingerprint);
    }

    #[test]
    fn raster_covers_grid() {
        let m = map();
        let grid = m.raster((0.5, 3.0), (0.25, 1.5), 6, 5);
        assert_eq!(grid.len(), 30);
        let (x0, y0, _) = grid[0];
        let (x1, y1, _) = *grid.last().expect("non-empty");
        assert!(approx_eq(x0, 0.5, 1e-12) && approx_eq(y0, 0.25, 1e-12));
        assert!(approx_eq(x1, 3.0, 1e-12) && approx_eq(y1, 1.5, 1e-12));
    }
}
