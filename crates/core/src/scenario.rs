//! The paper's case study, end to end (Sec. III).

use crate::embodied::{EmbodiedPerDie, EmbodiedPipeline};
use crate::isoline::TcdpMap;
use crate::lifetime::{CarbonTrajectory, Lifetime, TrajectoryPoint};
use crate::system::{DesignError, Evaluation, SystemDesign};
use crate::usage::UsagePattern;
use ppatc_pdk::Technology;
use ppatc_units::Frequency;
use ppatc_wafer::YieldModel;
use ppatc_workloads::WorkloadRun;

/// The complete Sec. III case study: both designs, evaluated on one
/// workload, with embodied and operational carbon pipelines attached.
///
/// ```no_run
/// use ppatc::{CaseStudy, Lifetime};
/// use ppatc_workloads::Workload;
///
/// let run = Workload::matmul_int().execute()?;
/// let study = CaseStudy::paper(&run)?;
/// println!("{}", study.summary());
/// assert!(study.tcdp_ratio(Lifetime::months(24.0)) < 1.0); // M3D wins
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct CaseStudy {
    si: SystemDesign,
    m3d: SystemDesign,
    eval_si: Evaluation,
    eval_m3d: Evaluation,
    embodied_si: EmbodiedPerDie,
    embodied_m3d: EmbodiedPerDie,
    usage: UsagePattern,
}

impl CaseStudy {
    /// Builds the paper's exact scenario: both technologies at 500 MHz, RVT
    /// logic, paper yields (90%/50%), U.S. fab grid, 2 h/day usage, for the
    /// given workload run.
    ///
    /// # Errors
    ///
    /// Propagates any [`DesignError`] from constructing either design.
    pub fn paper(run: &WorkloadRun) -> Result<Self, DesignError> {
        Self::with_options(
            run,
            Frequency::from_megahertz(500.0),
            EmbodiedPipeline::paper_default(),
            UsagePattern::paper_default(),
        )
    }

    /// Builds the case study with custom clock, embodied pipeline, and
    /// usage pattern.
    ///
    /// # Errors
    ///
    /// Propagates any [`DesignError`] from constructing either design.
    pub fn with_options(
        run: &WorkloadRun,
        f_clk: Frequency,
        embodied: EmbodiedPipeline,
        usage: UsagePattern,
    ) -> Result<Self, DesignError> {
        let si = SystemDesign::new(Technology::AllSi, f_clk)?;
        let m3d = SystemDesign::new(Technology::M3dIgzoCnfetSi, f_clk)?;
        Ok(Self::from_designs(si, m3d, run, embodied, usage))
    }

    /// Assembles a case study from pre-built designs (e.g. with custom
    /// yield models).
    pub fn from_designs(
        si: SystemDesign,
        m3d: SystemDesign,
        run: &WorkloadRun,
        embodied: EmbodiedPipeline,
        usage: UsagePattern,
    ) -> Self {
        let eval_si = si.evaluate(run);
        let eval_m3d = m3d.evaluate(run);
        let embodied_si = embodied.per_good_die(&si);
        let embodied_m3d = embodied.per_good_die(&m3d);
        Self {
            si,
            m3d,
            eval_si,
            eval_m3d,
            embodied_si,
            embodied_m3d,
            usage,
        }
    }

    /// The design in the given technology.
    pub fn design(&self, technology: Technology) -> &SystemDesign {
        match technology {
            Technology::AllSi => &self.si,
            Technology::M3dIgzoCnfetSi => &self.m3d,
        }
    }

    /// The workload evaluation for the given technology.
    pub fn evaluation(&self, technology: Technology) -> &Evaluation {
        match technology {
            Technology::AllSi => &self.eval_si,
            Technology::M3dIgzoCnfetSi => &self.eval_m3d,
        }
    }

    /// The per-good-die embodied result for the given technology.
    pub fn embodied(&self, technology: Technology) -> &EmbodiedPerDie {
        match technology {
            Technology::AllSi => &self.embodied_si,
            Technology::M3dIgzoCnfetSi => &self.embodied_m3d,
        }
    }

    /// The usage pattern.
    pub fn usage(&self) -> &UsagePattern {
        &self.usage
    }

    /// The carbon trajectory (Fig. 5 curve) for the given technology.
    pub fn trajectory(&self, technology: Technology) -> CarbonTrajectory {
        let eval = self.evaluation(technology);
        CarbonTrajectory::new(
            self.embodied(technology).per_good_die(),
            eval.operational_power,
            self.usage,
            eval.execution_time,
        )
    }

    /// tCDP ratio `M3D / all-Si` at a lifetime; < 1 means M3D is more
    /// carbon-efficient.
    pub fn tcdp_ratio(&self, lifetime: Lifetime) -> f64 {
        let si = self.trajectory(Technology::AllSi).tcdp(lifetime);
        let m3d = self.trajectory(Technology::M3dIgzoCnfetSi).tcdp(lifetime);
        m3d / si
    }

    /// Monthly Fig. 5 series for both designs: `(all-Si, M3D)`.
    pub fn fig5_series(&self, months: u32) -> (Vec<TrajectoryPoint>, Vec<TrajectoryPoint>) {
        (
            self.trajectory(Technology::AllSi).sample_monthly(months),
            self.trajectory(Technology::M3dIgzoCnfetSi)
                .sample_monthly(months),
        )
    }

    /// The Fig. 6 tCDP map at an evaluation lifetime.
    pub fn tcdp_map(&self, lifetime: Lifetime) -> TcdpMap {
        let nominal_yield = match self.m3d.yield_model() {
            YieldModel::Fixed(y) => *y,
            other => other.die_yield(self.m3d.die().area()),
        };
        TcdpMap::new(
            self.trajectory(Technology::AllSi),
            self.trajectory(Technology::M3dIgzoCnfetSi),
            lifetime,
            nominal_yield,
        )
    }

    /// The Table II summary.
    pub fn summary(&self) -> PpatcSummary {
        PpatcSummary {
            f_clk: self.si.f_clk(),
            m0_dynamic_pj: self.eval_si.m0_dynamic_per_cycle.as_picojoules(),
            mem_pj: [
                self.eval_si.mem_energy_per_cycle.as_picojoules(),
                self.eval_m3d.mem_energy_per_cycle.as_picojoules(),
            ],
            cycles: self.eval_si.cycles,
            memory_area_mm2: [
                self.si.memory_area().as_square_millimeters(),
                self.m3d.memory_area().as_square_millimeters(),
            ],
            total_area_mm2: [
                self.si.area().as_square_millimeters(),
                self.m3d.area().as_square_millimeters(),
            ],
            die_h_um: [
                self.si.die().height().as_micrometers(),
                self.m3d.die().height().as_micrometers(),
            ],
            die_w_um: [
                self.si.die().width().as_micrometers(),
                self.m3d.die().width().as_micrometers(),
            ],
            embodied_per_wafer_kg: [
                self.embodied_si.per_wafer().as_kilograms(),
                self.embodied_m3d.per_wafer().as_kilograms(),
            ],
            dies_per_wafer: [
                self.embodied_si.dies_per_wafer(),
                self.embodied_m3d.dies_per_wafer(),
            ],
            embodied_per_good_die_g: [
                self.embodied_si.per_good_die().as_grams(),
                self.embodied_m3d.per_good_die().as_grams(),
            ],
        }
    }
}

/// The Table II rows, all-Si first, M3D second.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub struct PpatcSummary {
    pub f_clk: Frequency,
    pub m0_dynamic_pj: f64,
    pub mem_pj: [f64; 2],
    pub cycles: u64,
    pub memory_area_mm2: [f64; 2],
    pub total_area_mm2: [f64; 2],
    pub die_h_um: [f64; 2],
    pub die_w_um: [f64; 2],
    pub embodied_per_wafer_kg: [f64; 2],
    pub dies_per_wafer: [u64; 2],
    pub embodied_per_good_die_g: [f64; 2],
}

impl core::fmt::Display for PpatcSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{:44}{:>16}{:>16}",
            "System", "M0 + Si eDRAM", "M0 + M3D eDRAM"
        )?;
        writeln!(
            f,
            "{:44}{:>16}{:>16}",
            "clock frequency (MHz)",
            format!("{:.0}", self.f_clk.as_megahertz()),
            format!("{:.0}", self.f_clk.as_megahertz()),
        )?;
        writeln!(
            f,
            "{:44}{:>16.2}{:>16.2}",
            "M0 dynamic energy per cycle (pJ)", self.m0_dynamic_pj, self.m0_dynamic_pj
        )?;
        writeln!(
            f,
            "{:44}{:>16.1}{:>16.1}",
            "average memory energy per cycle (pJ)", self.mem_pj[0], self.mem_pj[1]
        )?;
        writeln!(
            f,
            "{:44}{:>16}{:>16}",
            "clock cycles to run \"matmul-int\"", self.cycles, self.cycles
        )?;
        writeln!(
            f,
            "{:44}{:>16.3}{:>16.3}",
            "64 kB memory area footprint (mm²)", self.memory_area_mm2[0], self.memory_area_mm2[1]
        )?;
        writeln!(
            f,
            "{:44}{:>16.3}{:>16.3}",
            "total area footprint (mm²)", self.total_area_mm2[0], self.total_area_mm2[1]
        )?;
        writeln!(
            f,
            "{:44}{:>16}{:>16}",
            "die outline H × W (µm)",
            format!("{:.0} × {:.0}", self.die_h_um[0], self.die_w_um[0]),
            format!("{:.0} × {:.0}", self.die_h_um[1], self.die_w_um[1]),
        )?;
        writeln!(
            f,
            "{:44}{:>16.0}{:>16.0}",
            "embodied carbon per wafer, U.S. grid (kg)",
            self.embodied_per_wafer_kg[0],
            self.embodied_per_wafer_kg[1]
        )?;
        writeln!(
            f,
            "{:44}{:>16}{:>16}",
            "total die count per 300 mm wafer", self.dies_per_wafer[0], self.dies_per_wafer[1]
        )?;
        write!(
            f,
            "{:44}{:>16.2}{:>16.2}",
            "embodied carbon per good die (g)",
            self.embodied_per_good_die_g[0],
            self.embodied_per_good_die_g[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;
    use ppatc_workloads::Workload;
    use std::sync::OnceLock;

    /// Full-length matmul run, shared across tests (release-mode benches
    /// re-run it; unit tests only pay once).
    fn full_run() -> &'static WorkloadRun {
        static RUN: OnceLock<WorkloadRun> = OnceLock::new();
        RUN.get_or_init(|| Workload::matmul_int().execute().expect("matmul runs"))
    }

    fn study() -> &'static CaseStudy {
        static STUDY: OnceLock<CaseStudy> = OnceLock::new();
        STUDY.get_or_init(|| CaseStudy::paper(full_run()).expect("case study builds"))
    }

    #[test]
    fn headline_tcdp_benefit_at_24_months() {
        // Abstract: "the 3D IGZO/CNFET/Si implementation is 1.02× more
        // carbon-efficient per good die vs. the baseline Si implementation".
        let ratio = study().tcdp_ratio(Lifetime::months(24.0));
        assert!(
            approx_eq(1.0 / ratio, 1.02, 0.015),
            "tCDP benefit {:.3}",
            1.0 / ratio
        );
    }

    #[test]
    fn m3d_loses_at_short_lifetimes() {
        // Fig. 5: before the crossover, tC (hence tCDP) is higher for M3D.
        let ratio = study().tcdp_ratio(Lifetime::months(1.0));
        assert!(ratio > 1.0, "early ratio {ratio}");
    }

    #[test]
    fn fig5_crossovers() {
        let s = study();
        let si = s.trajectory(Technology::AllSi);
        let m3d = s.trajectory(Technology::M3dIgzoCnfetSi);
        let t_si = si.embodied_dominance_crossover().expect("all-Si crossover");
        let t_m3d = m3d.embodied_dominance_crossover().expect("M3D crossover");
        // Paper: ~14 and ~19 months.
        assert!(
            approx_eq(t_si.as_months(), 14.0, 0.08),
            "all-Si {:.1} mo",
            t_si.as_months()
        );
        assert!(
            approx_eq(t_m3d.as_months(), 19.0, 0.08),
            "M3D {:.1} mo",
            t_m3d.as_months()
        );
        // The designs' total-carbon curves cross once within the window
        // (paper reports 11 months from its exact flow; Table II's published
        // aggregates place it later — see EXPERIMENTS.md).
        let cross = m3d.crossover_with(&si).expect("designs cross");
        assert!(
            cross.as_months() > 5.0 && cross.as_months() < 24.0,
            "{:.1}",
            cross.as_months()
        );
    }

    #[test]
    fn table2_summary_anchors() {
        let summary = study().summary();
        assert!(approx_eq(summary.cycles as f64, 20_047_348.0, 0.01));
        assert!(approx_eq(summary.m0_dynamic_pj, 1.42, 0.08));
        assert!(approx_eq(summary.mem_pj[0], 18.0, 0.03));
        assert!(approx_eq(summary.mem_pj[1], 15.5, 0.03));
        assert!(approx_eq(summary.embodied_per_wafer_kg[0], 837.0, 0.01));
        assert!(approx_eq(summary.embodied_per_wafer_kg[1], 1100.0, 0.01));
        assert!(approx_eq(summary.embodied_per_good_die_g[0], 3.11, 0.03));
        assert!(approx_eq(summary.embodied_per_good_die_g[1], 3.63, 0.05));
        let text = summary.to_string();
        assert!(text.contains("matmul-int") && text.contains("per good die"));
    }

    #[test]
    fn tcdp_ratio_converges_toward_energy_ratio() {
        // Fig. 5 caption: the tCDP ratio converges to the EDP (energy)
        // ratio as operational carbon dominates at long lifetimes.
        let s = study();
        let p_si = s.evaluation(Technology::AllSi).operational_power;
        let p_m3d = s.evaluation(Technology::M3dIgzoCnfetSi).operational_power;
        let energy_ratio = p_m3d / p_si;
        let long = s.tcdp_ratio(Lifetime::months(2400.0));
        assert!(
            approx_eq(long, energy_ratio, 0.01),
            "{long} vs {energy_ratio}"
        );
    }

    #[test]
    fn fig6_map_nominal_point() {
        let map = study().tcdp_map(Lifetime::months(24.0));
        let r = map.ratio(1.0, 1.0);
        assert!(approx_eq(
            r,
            study().tcdp_ratio(Lifetime::months(24.0)),
            1e-12
        ));
    }
}
