//! Per-pitch wire parasitics.
//!
//! Wordline/bitline delay and energy in the eDRAM macro are dominated by
//! wire RC at these geometries, so the paper's SPICE netlists "include wire
//! parasitics". The values here follow the usual scaling of damascene Cu
//! interconnect: resistance per length grows roughly with the inverse square
//! of the half-pitch (cross-section shrinks in both dimensions and the
//! barrier/size effect worsens), while capacitance per length stays within a
//! narrow band around 0.2 fF/µm across pitches.

use ppatc_units::{Capacitance, Length, Resistance};

/// Wire resistance/capacitance per unit length at a given routing pitch.
///
/// ```
/// use ppatc_pdk::wire::WireModel;
/// use ppatc_units::Length;
///
/// let m2 = WireModel::for_pitch(Length::from_nanometers(36.0));
/// let bitline = m2.segment(Length::from_micrometers(30.0));
/// assert!(bitline.resistance.as_ohms() > 100.0);
/// assert!(bitline.capacitance.as_femtofarads() > 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireModel {
    pitch: Length,
    r_per_um: f64,
    c_ff_per_um: f64,
}

/// Lumped parasitics of one routed segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireSegment {
    /// Total series resistance of the segment.
    pub resistance: Resistance,
    /// Total ground capacitance of the segment.
    pub capacitance: Capacitance,
}

impl WireModel {
    /// Reference: 36 nm-pitch Cu wire resistance, Ω/µm.
    const R_36: f64 = 28.0;
    /// Reference capacitance, fF/µm (weak function of pitch).
    const C_36: f64 = 0.21;

    /// Wire model for a layer of the given routing pitch.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    pub fn for_pitch(pitch: Length) -> Self {
        let nm = pitch.as_nanometers();
        assert!(nm > 0.0, "pitch must be positive");
        let scale = 36.0 / nm;
        Self {
            pitch,
            // R ∝ 1/(w·t) ≈ (36/pitch)²; size effects make fine pitches
            // slightly worse than geometric scaling alone.
            r_per_um: Self::R_36 * scale * scale,
            // C per length is nearly pitch-independent (taller wires at
            // looser pitch trade ground for coupling capacitance).
            c_ff_per_um: Self::C_36 * (0.85 + 0.15 * scale),
        }
    }

    /// The routing pitch this model describes.
    pub fn pitch(&self) -> Length {
        self.pitch
    }

    /// Resistance per micrometre of routed length.
    pub fn resistance_per_um(&self) -> Resistance {
        Resistance::from_ohms(self.r_per_um)
    }

    /// Capacitance per micrometre of routed length.
    pub fn capacitance_per_um(&self) -> Capacitance {
        Capacitance::from_femtofarads(self.c_ff_per_um)
    }

    /// Lumped parasitics of a segment of the given length.
    pub fn segment(&self, length: Length) -> WireSegment {
        let um = length.as_micrometers();
        WireSegment {
            resistance: Resistance::from_ohms(self.r_per_um * um),
            capacitance: Capacitance::from_femtofarads(self.c_ff_per_um * um),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn finer_pitch_is_more_resistive() {
        let fine = WireModel::for_pitch(Length::from_nanometers(36.0));
        let coarse = WireModel::for_pitch(Length::from_nanometers(80.0));
        assert!(fine.resistance_per_um() > coarse.resistance_per_um());
    }

    #[test]
    fn capacitance_is_nearly_flat() {
        let fine = WireModel::for_pitch(Length::from_nanometers(36.0));
        let coarse = WireModel::for_pitch(Length::from_nanometers(80.0));
        let ratio = fine.capacitance_per_um() / coarse.capacitance_per_um();
        assert!((1.0..1.2).contains(&ratio), "C ratio {ratio}");
    }

    #[test]
    fn segment_scales_linearly() {
        let m = WireModel::for_pitch(Length::from_nanometers(48.0));
        let one = m.segment(Length::from_micrometers(1.0));
        let ten = m.segment(Length::from_micrometers(10.0));
        assert!(approx_eq(
            ten.resistance.as_ohms(),
            10.0 * one.resistance.as_ohms(),
            1e-12
        ));
        assert!(approx_eq(
            ten.capacitance.as_femtofarads(),
            10.0 * one.capacitance.as_femtofarads(),
            1e-12
        ));
    }

    #[test]
    fn rc_per_mm_is_sub_nanosecond() {
        // Sanity: a 100 µm 36 nm-pitch wire has RC well under a clock period.
        let m = WireModel::for_pitch(Length::from_nanometers(36.0));
        let seg = m.segment(Length::from_micrometers(100.0));
        let tau = seg.resistance * seg.capacitance;
        assert!(tau.as_nanoseconds() < 0.2, "tau {tau:?}");
    }
}
