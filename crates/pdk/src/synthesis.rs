//! An analytical synthesis/place-and-route model.
//!
//! The paper runs Cadence Genus + Innovus over a sweep of target clock
//! frequencies (100 MHz–1 GHz) and all four ASAP7 threshold flavors,
//! extracting critical-path delay and application-dependent energy per
//! cycle (Fig. 4). This module reproduces that trade-off surface
//! analytically:
//!
//! - The critical path is `depth` canonical (NAND2) stages plus a flip-flop.
//!   Uniform gate upsizing by factor `s` trades wire-load delay for input
//!   capacitance: `t_stage(s) = t_i + R·(fo·C_in) + R·C_wire/s`.
//! - Timing closure picks the smallest `s` meeting the target period;
//!   infeasible targets return [`TimingError`].
//! - Energy per cycle = activity-weighted switched capacitance (gates grow
//!   with `s`) + flop clock energy + leakage · T_clk.
//!
//! The model is calibrated so the Table II anchor holds: the Cortex-M0 block
//! at RVT, 500 MHz consumes ≈ 1.42 pJ per cycle.

use crate::stdcell::{CellKind, StdCellLibrary};
use ppatc_device::SiVtFlavor;
use ppatc_units::{Area, Capacitance, Energy, Frequency, Power, Time};

/// Maximum uniform upsizing factor synthesis may apply.
const MAX_SIZING: f64 = 16.0;

/// A gate-level logic block to be mapped onto a standard-cell library.
///
/// ```
/// use ppatc_pdk::synthesis::LogicBlock;
/// use ppatc_pdk::SiVtFlavor;
/// use ppatc_units::Frequency;
///
/// let m0 = LogicBlock::cortex_m0();
/// // HVT cannot close timing at 1 GHz, SLVT can.
/// assert!(m0.synthesize(SiVtFlavor::Hvt, Frequency::from_gigahertz(1.0)).is_err());
/// assert!(m0.synthesize(SiVtFlavor::Slvt, Frequency::from_gigahertz(1.0)).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LogicBlock {
    name: String,
    /// Combinational complexity in NAND2-equivalent gates.
    gate_count: f64,
    /// Sequential elements.
    flop_count: f64,
    /// Canonical stages on the critical path.
    logic_depth: f64,
    /// Average fraction of gates switching per cycle (workload-dependent).
    activity: f64,
    /// Average routed wire capacitance loading each gate output.
    wire_cap_per_gate: Capacitance,
    /// Average logical fanout per gate.
    fanout: f64,
    /// Placement utilization.
    utilization: f64,
}

impl LogicBlock {
    /// An ARM Cortex-M0-class microcontroller core: ~12k NAND2-equivalent
    /// gates, ~850 flops, and the long unpipelined single-cycle paths that
    /// make it close timing only up to ~1 GHz in a 7 nm library.
    pub fn cortex_m0() -> Self {
        Self {
            name: "cortex-m0".into(),
            gate_count: 16_000.0, // NAND2-equivalent gates
            flop_count: 850.0,
            logic_depth: 86.0,
            activity: 0.131,
            wire_cap_per_gate: Capacitance::from_femtofarads(1.05),
            fanout: 3.0,
            utilization: 0.70,
        }
    }

    /// Creates a custom logic block.
    ///
    /// # Panics
    ///
    /// Panics if any count/factor is non-positive, `activity` or
    /// `utilization` is outside `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        gate_count: f64,
        flop_count: f64,
        logic_depth: f64,
        activity: f64,
        wire_cap_per_gate: Capacitance,
        fanout: f64,
        utilization: f64,
    ) -> Self {
        assert!(gate_count > 0.0 && flop_count >= 0.0 && logic_depth > 0.0 && fanout > 0.0);
        assert!(
            activity > 0.0 && activity <= 1.0,
            "activity must be in (0, 1]"
        );
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        Self {
            name: name.into(),
            gate_count,
            flop_count,
            logic_depth,
            activity,
            wire_cap_per_gate,
            fanout,
            utilization,
        }
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy with a different switching activity (workloads differ).
    /// # Panics
    ///
    /// If `activity` is outside `(0, 1]`.
    #[must_use]
    pub fn with_activity(mut self, activity: f64) -> Self {
        assert!(
            activity > 0.0 && activity <= 1.0,
            "activity must be in (0, 1]"
        );
        self.activity = activity;
        self
    }

    /// Maps the block onto the given threshold flavor at a target clock.
    ///
    /// # Errors
    ///
    /// [`TimingError`] if no gate sizing within the library's range meets the
    /// target period.
    pub fn synthesize(
        &self,
        flavor: SiVtFlavor,
        f_clk: Frequency,
    ) -> Result<SynthesisResult, TimingError> {
        let lib = StdCellLibrary::asap7(flavor);
        let vdd = lib.vdd();
        let nand = lib.cell(CellKind::Nand2);
        let dff = lib.cell(CellKind::Dff);
        let t_clk = f_clk.period();

        // Stage delay at sizing s: drive R shrinks as 1/s, gate loads grow
        // with s (they cancel for gate-cap load), wire load does not grow.
        let r = nand.drive_resistance();
        let c_in = nand.input_cap();
        let c_wire = self.wire_cap_per_gate;
        let t_fixed = nand.intrinsic_delay() + r * (c_in * self.fanout);
        // Flop overhead: clk→q plus setup, modeled as two flop delays.
        let t_flop = dff.intrinsic_delay() * 2.0 + dff.drive_resistance() * c_wire;
        let t_budget = t_clk - t_flop - t_fixed * self.logic_depth;
        let wire_term = (r * c_wire) * self.logic_depth;
        if t_budget.as_seconds() <= 0.0 || wire_term / t_budget > MAX_SIZING {
            return Err(TimingError {
                block: self.name.clone(),
                flavor,
                f_clk,
                min_period: t_flop + t_fixed * self.logic_depth + wire_term / MAX_SIZING,
            });
        }
        let sizing = (wire_term / t_budget).max(1.0);
        let critical_path = t_flop + (t_fixed + (r * c_wire) / sizing) * self.logic_depth;

        // Dynamic energy per cycle: each switching gate charges its own
        // internal cap, its wire, and the downstream gate inputs.
        let c_switched_per_gate = Capacitance::from_farads(
            nand.internal_cap().as_farads() * sizing
                + c_wire.as_farads()
                + c_in.as_farads() * sizing,
        );
        let v2 = vdd.as_volts() * vdd.as_volts();
        let gate_dynamic = self.activity * self.gate_count * c_switched_per_gate.as_farads() * v2;
        // Flops see the clock every cycle regardless of data activity.
        let flop_dynamic = self.flop_count
            * (dff.internal_cap().as_farads() + dff.input_cap().as_farads())
            * v2
            * 0.5;
        let dynamic_energy = Energy::from_joules(gate_dynamic + flop_dynamic);

        let leakage_power = Power::from_watts(
            nand.leakage().as_watts() * self.gate_count * sizing
                + dff.leakage().as_watts() * self.flop_count,
        );

        let area = Area::from_square_meters(
            (nand.area().as_square_meters() * self.gate_count * (0.5 + 0.5 * sizing)
                + dff.area().as_square_meters() * self.flop_count)
                / self.utilization,
        );

        Ok(SynthesisResult {
            flavor,
            f_clk,
            sizing,
            critical_path,
            dynamic_energy,
            leakage_power,
            area,
        })
    }

    /// Sweeps the target frequency across `points` for one flavor,
    /// returning `(frequency, result)` pairs for the targets that close
    /// timing — the data behind one curve of Fig. 4.
    /// # Panics
    ///
    /// If `points < 2` — a sweep needs both endpoints.
    pub fn frequency_sweep(
        &self,
        flavor: SiVtFlavor,
        from: Frequency,
        to: Frequency,
        points: usize,
    ) -> Vec<(Frequency, SynthesisResult)> {
        assert!(points >= 2, "a sweep needs at least two points");
        (0..points)
            .filter_map(|i| {
                let f = Frequency::from_hertz(
                    from.as_hertz()
                        + (to.as_hertz() - from.as_hertz()) * (i as f64) / ((points - 1) as f64),
                );
                self.synthesize(flavor, f).ok().map(|r| (f, r))
            })
            .collect()
    }
}

/// Outcome of a successful synthesis run.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesisResult {
    flavor: SiVtFlavor,
    f_clk: Frequency,
    sizing: f64,
    critical_path: Time,
    dynamic_energy: Energy,
    leakage_power: Power,
    area: Area,
}

impl SynthesisResult {
    /// Threshold flavor used.
    pub fn flavor(&self) -> SiVtFlavor {
        self.flavor
    }

    /// Target clock frequency.
    pub fn f_clk(&self) -> Frequency {
        self.f_clk
    }

    /// Uniform gate-sizing factor chosen by timing closure.
    pub fn sizing(&self) -> f64 {
        self.sizing
    }

    /// Achieved critical-path delay (≤ the target period).
    pub fn critical_path(&self) -> Time {
        self.critical_path
    }

    /// Dynamic energy per clock cycle (excludes leakage).
    pub fn dynamic_energy(&self) -> Energy {
        self.dynamic_energy
    }

    /// Static leakage power.
    pub fn leakage_power(&self) -> Power {
        self.leakage_power
    }

    /// Total energy per cycle including leakage integrated over one period —
    /// the y-axis of Fig. 4.
    pub fn energy_per_cycle(&self) -> Energy {
        self.dynamic_energy + self.leakage_power * self.f_clk.period()
    }

    /// Placed block area.
    pub fn area(&self) -> Area {
        self.area
    }
}

/// Timing-closure failure: the block cannot meet the target period in the
/// chosen flavor.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingError {
    block: String,
    flavor: SiVtFlavor,
    f_clk: Frequency,
    min_period: Time,
}

impl TimingError {
    /// Fastest period the block could achieve in this flavor.
    pub fn min_period(&self) -> Time {
        self.min_period
    }

    /// Fastest achievable clock frequency in this flavor.
    pub fn max_frequency(&self) -> Frequency {
        self.min_period.to_frequency()
    }
}

impl core::fmt::Display for TimingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "block `{}` cannot close timing at {:.0} MHz in {} (min period {:.0} ps)",
            self.block,
            self.f_clk.as_megahertz(),
            self.flavor,
            self.min_period.as_picoseconds()
        )
    }
}

impl std::error::Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn table2_anchor_m0_energy_per_cycle() {
        let m0 = LogicBlock::cortex_m0();
        let r = m0
            .synthesize(SiVtFlavor::Rvt, Frequency::from_megahertz(500.0))
            .expect("RVT closes 500 MHz");
        let pj = r.dynamic_energy().as_picojoules();
        assert!(approx_eq(pj, 1.42, 0.08), "M0 dynamic energy {pj} pJ/cycle");
    }

    #[test]
    fn critical_path_meets_target() {
        let m0 = LogicBlock::cortex_m0();
        for flavor in SiVtFlavor::ALL {
            if let Ok(r) = m0.synthesize(flavor, Frequency::from_megahertz(500.0)) {
                assert!(r.critical_path() <= Frequency::from_megahertz(500.0).period());
            }
        }
    }

    #[test]
    fn energy_rises_toward_max_frequency() {
        let m0 = LogicBlock::cortex_m0();
        let slow = m0
            .synthesize(SiVtFlavor::Rvt, Frequency::from_megahertz(300.0))
            .expect("RVT closes 300 MHz");
        let f_max = match m0.synthesize(SiVtFlavor::Rvt, Frequency::from_gigahertz(5.0)) {
            Err(e) => e.max_frequency(),
            Ok(_) => panic!("5 GHz should not close"),
        };
        let fast = m0
            .synthesize(
                SiVtFlavor::Rvt,
                Frequency::from_hertz(f_max.as_hertz() * 0.98),
            )
            .expect("just under f_max closes");
        assert!(fast.energy_per_cycle() > slow.energy_per_cycle());
        assert!(fast.sizing() > slow.sizing());
    }

    #[test]
    fn slvt_leakage_dominates_at_low_frequency() {
        let m0 = LogicBlock::cortex_m0();
        let f = Frequency::from_megahertz(100.0);
        let hvt = m0
            .synthesize(SiVtFlavor::Hvt, f)
            .expect("HVT closes 100 MHz");
        let slvt = m0
            .synthesize(SiVtFlavor::Slvt, f)
            .expect("SLVT closes 100 MHz");
        // Fig. 4: at 100 MHz the SLVT curve sits far above HVT.
        assert!(slvt.energy_per_cycle().as_joules() > 1.5 * hvt.energy_per_cycle().as_joules());
    }

    #[test]
    fn hvt_cannot_reach_one_gigahertz() {
        let m0 = LogicBlock::cortex_m0();
        let err = m0
            .synthesize(SiVtFlavor::Hvt, Frequency::from_gigahertz(1.0))
            .expect_err("HVT should fail at 1 GHz");
        assert!(err.max_frequency().as_megahertz() < 1000.0);
        assert!(err.to_string().contains("cannot close timing"));
    }

    #[test]
    fn sweep_skips_infeasible_points() {
        let m0 = LogicBlock::cortex_m0();
        let pts = m0.frequency_sweep(
            SiVtFlavor::Hvt,
            Frequency::from_megahertz(100.0),
            Frequency::from_gigahertz(1.0),
            10,
        );
        assert!(!pts.is_empty());
        assert!(pts.len() < 10, "HVT should drop the top of the sweep");
        // Monotone non-decreasing energy along the feasible range's ends.
        assert!(pts.last().unwrap().1.energy_per_cycle() >= pts[0].1.energy_per_cycle() * 0.999);
    }

    #[test]
    fn m0_area_is_table2_scale() {
        // Table II: total area 0.139 mm² with two 0.068 mm² memories leaves
        // ~0.003 mm² for the core.
        let m0 = LogicBlock::cortex_m0();
        let r = m0
            .synthesize(SiVtFlavor::Rvt, Frequency::from_megahertz(500.0))
            .expect("RVT closes 500 MHz");
        let mm2 = r.area().as_square_millimeters();
        assert!(mm2 > 0.001 && mm2 < 0.006, "M0 area {mm2} mm²");
    }

    #[test]
    fn activity_scales_dynamic_energy() {
        let m0 = LogicBlock::cortex_m0();
        let busy = m0.clone().with_activity(0.27);
        let f = Frequency::from_megahertz(500.0);
        let base = m0
            .synthesize(SiVtFlavor::Rvt, f)
            .expect("base closes")
            .dynamic_energy();
        let hot = busy
            .synthesize(SiVtFlavor::Rvt, f)
            .expect("busy closes")
            .dynamic_energy();
        assert!(hot.as_joules() > 1.5 * base.as_joules());
    }
}
