//! Layer-stack descriptions of the all-Si and M3D processes (paper Fig. 2a/b).

use ppatc_units::Length;

/// The two fabrication technologies the paper compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Baseline 7 nm all-Si CMOS process (Fig. 2a): Si FinFET FEOL plus a
    /// 9-layer BEOL (M1–M9).
    AllSi,
    /// Monolithic-3D process (Fig. 2b): the same Si FinFET FEOL and M1–M4,
    /// then two CNFET tiers and one IGZO tier interleaved with 36 nm metal
    /// layers, topped by M11–M15.
    M3dIgzoCnfetSi,
}

impl Technology {
    /// Both technologies, baseline first.
    pub const ALL: [Technology; 2] = [Technology::AllSi, Technology::M3dIgzoCnfetSi];

    /// Short display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Technology::AllSi => "all-Si",
            Technology::M3dIgzoCnfetSi => "M3D IGZO/CNT/Si",
        }
    }

    /// The layer stack of this technology.
    pub fn stack(self) -> LayerStack {
        match self {
            Technology::AllSi => LayerStack::all_si(),
            Technology::M3dIgzoCnfetSi => LayerStack::m3d(),
        }
    }
}

impl core::fmt::Display for Technology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Patterning method for a metal layer, determined by its pitch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lithography {
    /// Single-exposure EUV, required at 36 nm pitch.
    EuvSingle,
    /// Litho-etch-litho-etch double patterning with 193i immersion
    /// (used at 48 nm pitch; the paper maps it to 42 nm-pitch energy data).
    ImmersionLele,
    /// Single-exposure 193i immersion (64 and 80 nm pitches).
    ImmersionSingle,
}

impl Lithography {
    /// The patterning method ASAP7-style design rules require at `pitch`.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    pub fn for_pitch(pitch: Length) -> Self {
        let nm = pitch.as_nanometers();
        assert!(nm > 0.0, "pitch must be positive");
        if nm < 40.0 {
            Lithography::EuvSingle
        } else if nm < 60.0 {
            Lithography::ImmersionLele
        } else {
            Lithography::ImmersionSingle
        }
    }
}

/// One metal routing layer (with its underlying via layer).
#[derive(Clone, Debug, PartialEq)]
pub struct MetalLayer {
    name: String,
    pitch: Length,
}

impl MetalLayer {
    /// Creates a metal layer.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    pub fn new(name: impl Into<String>, pitch: Length) -> Self {
        assert!(pitch.as_nanometers() > 0.0, "pitch must be positive");
        Self {
            name: name.into(),
            pitch,
        }
    }

    /// Layer name, e.g. `"M1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Routing pitch of this layer.
    pub fn pitch(&self) -> Length {
        self.pitch
    }

    /// Patterning method this layer's pitch requires.
    pub fn lithography(&self) -> Lithography {
        Lithography::for_pitch(self.pitch)
    }
}

/// Kind of BEOL device tier in the M3D process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TierKind {
    /// A carbon-nanotube FET tier (CNT deposition, O₂-plasma active etch,
    /// S/D + high-k + gate formation).
    Cnfet,
    /// An IGZO FET tier (RF-sputtered channel, wet-etched active).
    Igzo,
}

impl core::fmt::Display for TierKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TierKind::Cnfet => f.write_str("CNFET tier"),
            TierKind::Igzo => f.write_str("IGZO tier"),
        }
    }
}

/// One element of a back-end layer stack, bottom-up.
#[derive(Clone, Debug, PartialEq)]
pub enum StackElement {
    /// A metal/via routing pair.
    Metal(MetalLayer),
    /// A BEOL transistor tier.
    DeviceTier(TierKind),
}

/// An ordered (bottom-up) description of a process back-end.
///
/// ```
/// use ppatc_pdk::{LayerStack, TierKind};
///
/// let m3d = LayerStack::m3d();
/// assert_eq!(m3d.metal_count(), 15);
/// assert_eq!(m3d.tier_count(TierKind::Cnfet), 2);
/// assert_eq!(m3d.tier_count(TierKind::Igzo), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LayerStack {
    elements: Vec<StackElement>,
}

impl LayerStack {
    /// Builds a stack from explicit elements (bottom-up order).
    pub fn from_elements(elements: Vec<StackElement>) -> Self {
        Self { elements }
    }

    /// The all-Si BEOL (Fig. 2a): M1–M3 at 36 nm, M4–M5 at 48 nm, M6–M7 at
    /// 64 nm, M8–M9 at 80 nm, per the ASAP7 PDK.
    pub fn all_si() -> Self {
        let pitches = [36.0, 36.0, 36.0, 48.0, 48.0, 64.0, 64.0, 80.0, 80.0];
        let elements = pitches
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                StackElement::Metal(MetalLayer::new(
                    format!("M{}", i + 1),
                    Length::from_nanometers(p),
                ))
            })
            .collect();
        Self { elements }
    }

    /// The M3D BEOL (Fig. 2b): identical to the all-Si stack through M4,
    /// then `CNFET → M5 M6 → CNFET → M7 M8 → IGZO → M9 M10` (all 36 nm),
    /// topped by M11–M15 at the same dimensions as the all-Si M5–M9.
    pub fn m3d() -> Self {
        let mut elements = Vec::new();
        let metal = |elements: &mut Vec<StackElement>, idx: usize, p: f64| {
            elements.push(StackElement::Metal(MetalLayer::new(
                format!("M{idx}"),
                Length::from_nanometers(p),
            )));
        };
        // M1–M4 as in the all-Si process.
        metal(&mut elements, 1, 36.0);
        metal(&mut elements, 2, 36.0);
        metal(&mut elements, 3, 36.0);
        metal(&mut elements, 4, 48.0);
        // First CNFET tier with its two 36 nm routing layers.
        elements.push(StackElement::DeviceTier(TierKind::Cnfet));
        metal(&mut elements, 5, 36.0);
        metal(&mut elements, 6, 36.0);
        // Second CNFET tier.
        elements.push(StackElement::DeviceTier(TierKind::Cnfet));
        metal(&mut elements, 7, 36.0);
        metal(&mut elements, 8, 36.0);
        // IGZO tier and its two 36 nm layers.
        elements.push(StackElement::DeviceTier(TierKind::Igzo));
        metal(&mut elements, 9, 36.0);
        metal(&mut elements, 10, 36.0);
        // Global layers mirroring all-Si M5–M9.
        metal(&mut elements, 11, 48.0);
        metal(&mut elements, 12, 64.0);
        metal(&mut elements, 13, 64.0);
        metal(&mut elements, 14, 80.0);
        metal(&mut elements, 15, 80.0);
        Self { elements }
    }

    /// Iterates over the stack elements, bottom-up.
    pub fn iter(&self) -> core::slice::Iter<'_, StackElement> {
        self.elements.iter()
    }

    /// All metal layers, bottom-up.
    pub fn metals(&self) -> impl Iterator<Item = &MetalLayer> {
        self.elements.iter().filter_map(|e| match e {
            StackElement::Metal(m) => Some(m),
            StackElement::DeviceTier(_) => None,
        })
    }

    /// Number of metal routing layers.
    pub fn metal_count(&self) -> usize {
        self.metals().count()
    }

    /// Number of device tiers of the given kind.
    pub fn tier_count(&self, kind: TierKind) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, StackElement::DeviceTier(k) if *k == kind))
            .count()
    }

    /// Number of metal layers at exactly the given pitch (nm).
    pub fn metals_at_pitch(&self, pitch_nm: f64) -> usize {
        self.metals()
            .filter(|m| (m.pitch().as_nanometers() - pitch_nm).abs() < 0.5)
            .count()
    }
}

impl<'a> IntoIterator for &'a LayerStack {
    type Item = &'a StackElement;
    type IntoIter = core::slice::Iter<'a, StackElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_si_matches_asap7() {
        let s = LayerStack::all_si();
        assert_eq!(s.metal_count(), 9);
        assert_eq!(s.metals_at_pitch(36.0), 3);
        assert_eq!(s.metals_at_pitch(48.0), 2);
        assert_eq!(s.metals_at_pitch(64.0), 2);
        assert_eq!(s.metals_at_pitch(80.0), 2);
        assert_eq!(s.tier_count(TierKind::Cnfet), 0);
    }

    #[test]
    fn m3d_matches_paper_description() {
        let s = LayerStack::m3d();
        assert_eq!(s.metal_count(), 15);
        // Nine 36 nm layers: M1–M3 plus the six tier-local layers M5–M10.
        assert_eq!(s.metals_at_pitch(36.0), 9);
        assert_eq!(s.metals_at_pitch(48.0), 2); // M4 and M11
        assert_eq!(s.metals_at_pitch(64.0), 2);
        assert_eq!(s.metals_at_pitch(80.0), 2);
        assert_eq!(s.tier_count(TierKind::Cnfet), 2);
        assert_eq!(s.tier_count(TierKind::Igzo), 1);
    }

    #[test]
    fn m3d_shares_base_with_all_si() {
        let m3d = LayerStack::m3d();
        let si = LayerStack::all_si();
        let m3d_first4: Vec<_> = m3d
            .metals()
            .take(4)
            .map(|m| m.pitch().as_nanometers())
            .collect();
        let si_first4: Vec<_> = si
            .metals()
            .take(4)
            .map(|m| m.pitch().as_nanometers())
            .collect();
        assert_eq!(m3d_first4, si_first4);
    }

    #[test]
    fn lithography_by_pitch() {
        use Lithography::*;
        assert_eq!(
            Lithography::for_pitch(Length::from_nanometers(36.0)),
            EuvSingle
        );
        assert_eq!(
            Lithography::for_pitch(Length::from_nanometers(48.0)),
            ImmersionLele
        );
        assert_eq!(
            Lithography::for_pitch(Length::from_nanometers(64.0)),
            ImmersionSingle
        );
        assert_eq!(
            Lithography::for_pitch(Length::from_nanometers(80.0)),
            ImmersionSingle
        );
    }

    #[test]
    fn ordering_of_m3d_elements() {
        // The first device tier appears after exactly four metals.
        let s = LayerStack::m3d();
        let idx = s
            .iter()
            .position(|e| matches!(e, StackElement::DeviceTier(TierKind::Cnfet)))
            .expect("m3d stack contains a CNFET tier");
        assert_eq!(idx, 4);
    }

    #[test]
    fn technology_accessors() {
        assert_eq!(Technology::AllSi.stack().metal_count(), 9);
        assert_eq!(Technology::M3dIgzoCnfetSi.stack().metal_count(), 15);
        assert_eq!(Technology::AllSi.to_string(), "all-Si");
    }
}
