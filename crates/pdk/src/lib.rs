//! An ASAP7-style predictive 7 nm PDK model: back-end metal stacks for the
//! all-Si and M3D processes, wire parasitics, standard cells, and an
//! analytical synthesis model.
//!
//! This crate is the EDA-flow substrate of the PPAtC reproduction. The paper
//! uses the ASAP7 PDK (Clark et al., MEJ 2016) with Cadence Genus/Innovus to
//! produce, per threshold flavor and target frequency: critical-path delay,
//! energy per cycle, leakage power, and placed area (its Fig. 4 and the M0
//! rows of Table II). Here those quantities come from:
//!
//! - [`stack`] — the structural description of both processes' layer stacks
//!   (Fig. 2a/b): which metal/via pairs at which pitch, where the CNFET and
//!   IGZO device tiers sit. The `ppatc-fab` crate walks these stacks to
//!   count fabrication steps.
//! - [`wire`] — per-pitch wire resistance/capacitance used for bitline and
//!   wordline parasitics.
//! - [`stdcell`] — a small standard-cell library whose delay, energy, and
//!   leakage are derived from the `ppatc-device` compact models.
//! - [`synthesis`] — an analytical logic-depth/gate-sizing model mapping a
//!   target clock frequency to achievable delay, per-cycle energy, leakage,
//!   and area for a logic block such as the Cortex-M0.
//!
//! # Example
//!
//! ```
//! use ppatc_pdk::synthesis::LogicBlock;
//! use ppatc_pdk::SiVtFlavor;
//! use ppatc_units::Frequency;
//!
//! let m0 = LogicBlock::cortex_m0();
//! // RVT closes timing at 500 MHz, so synthesis succeeds.
//! let r = m0.synthesize(SiVtFlavor::Rvt, Frequency::from_megahertz(500.0))?;
//! // Table II: M0 dynamic energy per cycle = 1.42 pJ.
//! assert!((r.energy_per_cycle().as_picojoules() - 1.42).abs() < 0.15);
//! # Ok::<(), ppatc_pdk::synthesis::TimingError>(())
//! ```

#![warn(missing_docs)]

pub mod gds;
pub mod layout;
pub mod liberty;
pub mod stack;
pub mod stdcell;
pub mod synthesis;
pub mod wire;

pub use ppatc_device::SiVtFlavor;
pub use stack::{LayerStack, Lithography, MetalLayer, StackElement, Technology, TierKind};
