//! A compact ASAP7-style standard-cell library.
//!
//! Cell timing/energy/leakage is derived from the `ppatc-device` virtual-
//! source models rather than tabulated, so threshold-flavor trends (drive vs.
//! leakage) flow straight from device physics into the synthesis model.

use ppatc_device::{si, SiVtFlavor};
use ppatc_units::{Area, Capacitance, Energy, Length, Power, Resistance, Time, Voltage};

/// Logic function of a standard cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-input inverter.
    Inverter,
    /// Two-input NAND — the canonical synthesis gate.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// D flip-flop (positive edge).
    Dff,
}

/// ASAP7-style geometry constants.
mod geom {
    /// Contacted poly pitch, nm.
    pub const CPP_NM: f64 = 54.0;
    /// Standard-cell row height, nm (7.5 tracks of M2).
    pub const ROW_NM: f64 = 270.0;
    /// x1 NFET width, nm (three fins).
    pub const WN_NM: f64 = 81.0;
    /// x1 PFET width, nm.
    pub const WP_NM: f64 = 108.0;
}

/// One characterized standard cell at a fixed drive strength (x1).
///
/// Larger drives are modeled in the synthesis layer by linear scaling of
/// drive resistance (1/s), capacitances (s), leakage (s), and area.
///
/// ```
/// use ppatc_pdk::stdcell::{CellKind, StdCellLibrary};
/// use ppatc_pdk::SiVtFlavor;
/// use ppatc_units::Capacitance;
///
/// let lib = StdCellLibrary::asap7(SiVtFlavor::Rvt);
/// let nand = lib.cell(CellKind::Nand2);
/// let d = nand.delay(Capacitance::from_femtofarads(1.0));
/// assert!(d.as_picoseconds() > 1.0 && d.as_picoseconds() < 50.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StdCell {
    name: String,
    kind: CellKind,
    flavor: SiVtFlavor,
    area: Area,
    input_cap: Capacitance,
    internal_cap: Capacitance,
    drive_resistance: Resistance,
    intrinsic_delay: Time,
    leakage: Power,
}

impl StdCell {
    /// Cell name, e.g. `"NAND2x1_RVT"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logic function.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Threshold flavor.
    pub fn flavor(&self) -> SiVtFlavor {
        self.flavor
    }

    /// Placed cell area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Capacitance presented to each input pin.
    pub fn input_cap(&self) -> Capacitance {
        self.input_cap
    }

    /// Internal (self-load) capacitance switched on each output transition.
    pub fn internal_cap(&self) -> Capacitance {
        self.internal_cap
    }

    /// Effective output drive resistance.
    pub fn drive_resistance(&self) -> Resistance {
        self.drive_resistance
    }

    /// Parasitic (zero-load) delay.
    pub fn intrinsic_delay(&self) -> Time {
        self.intrinsic_delay
    }

    /// Static leakage power at nominal V_DD.
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Propagation delay driving `load`: `t_intrinsic + R_drive · C_load`.
    pub fn delay(&self, load: Capacitance) -> Time {
        self.intrinsic_delay + self.drive_resistance * load
    }

    /// Energy of one output transition pair (charge + discharge of self +
    /// external load): `(C_int + C_load) · V_DD²`.
    pub fn switching_energy(&self, load: Capacitance, vdd: Voltage) -> Energy {
        Energy::from_joules(
            (self.internal_cap.as_farads() + load.as_farads()) * vdd.as_volts() * vdd.as_volts(),
        )
    }
}

/// A characterized cell set for one threshold flavor.
#[derive(Clone, Debug, PartialEq)]
pub struct StdCellLibrary {
    flavor: SiVtFlavor,
    vdd: Voltage,
    cells: Vec<StdCell>,
}

impl StdCellLibrary {
    /// Builds the ASAP7-style library for one threshold flavor at the PDK's
    /// recommended V_DD of 0.7 V.
    pub fn asap7(flavor: SiVtFlavor) -> Self {
        let vdd = Voltage::from_volts(0.7);
        let wn = Length::from_nanometers(geom::WN_NM);
        let wp = Length::from_nanometers(geom::WP_NM);
        let nfet = si::nfet(flavor).sized(wn);
        let pfet = si::pfet(flavor).sized(wp);

        // Average N/P drive sets the effective output resistance; the paper's
        // flows size P wider to balance rise/fall.
        let i_eff = (nfet.i_eff(vdd) + pfet.i_eff(vdd)) * 0.5;
        let r_drive = Resistance::from_ohms(vdd.as_volts() / i_eff.as_amperes());
        let c_in = nfet.gate_capacitance() + pfet.gate_capacitance();
        let c_self = nfet.drain_capacitance() + pfet.drain_capacitance();
        let leak = vdd * ((nfet.i_off(vdd) + pfet.i_off(vdd)) * 0.5);
        let t_intrinsic = r_drive * c_self;

        let cell = |kind: CellKind| -> StdCell {
            // Topology factors relative to the inverter: input loading,
            // stack resistance, self-capacitance, leakage paths, and width.
            let (cpp, cap_f, res_f, leak_f, name) = match kind {
                CellKind::Inverter => (2.0, 1.0, 1.0, 1.0, "INVx1"),
                CellKind::Nand2 => (3.0, 1.1, 1.25, 1.6, "NAND2x1"),
                CellKind::Nor2 => (3.0, 1.15, 1.45, 1.6, "NOR2x1"),
                CellKind::Dff => (9.0, 2.2, 1.3, 4.0, "DFFx1"),
            };
            StdCell {
                name: format!("{name}_{}", flavor.library_suffix()),
                kind,
                flavor,
                area: Length::from_nanometers(cpp * geom::CPP_NM)
                    * Length::from_nanometers(geom::ROW_NM),
                input_cap: c_in * cap_f,
                internal_cap: c_self * (cap_f * 1.2),
                drive_resistance: r_drive * res_f,
                intrinsic_delay: t_intrinsic * res_f * 1.2,
                leakage: leak * leak_f,
            }
        };

        StdCellLibrary {
            flavor,
            vdd,
            cells: vec![
                cell(CellKind::Inverter),
                cell(CellKind::Nand2),
                cell(CellKind::Nor2),
                cell(CellKind::Dff),
            ],
        }
    }

    /// Threshold flavor of this library.
    pub fn flavor(&self) -> SiVtFlavor {
        self.flavor
    }

    /// Nominal supply voltage.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Looks up the x1 cell of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the library lacks that kind (cannot happen for libraries
    /// from [`StdCellLibrary::asap7`]).
    pub fn cell(&self, kind: CellKind) -> &StdCell {
        match self.cells.iter().find(|c| c.kind == kind) {
            Some(cell) => cell,
            None => panic!("library lacks cell kind {kind:?}"),
        }
    }

    /// Iterates over the cells.
    pub fn iter(&self) -> core::slice::Iter<'_, StdCell> {
        self.cells.iter()
    }

    /// Fanout-of-4 inverter delay — the canonical speed metric of a library.
    pub fn fo4_delay(&self) -> Time {
        let inv = self.cell(CellKind::Inverter);
        inv.delay(inv.input_cap() * 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fo4_is_single_digit_picoseconds() {
        let lib = StdCellLibrary::asap7(SiVtFlavor::Rvt);
        let fo4 = lib.fo4_delay().as_picoseconds();
        assert!(fo4 > 1.0 && fo4 < 20.0, "FO4 {fo4} ps");
    }

    #[test]
    fn slvt_is_faster_but_leakier_than_hvt() {
        let hvt = StdCellLibrary::asap7(SiVtFlavor::Hvt);
        let slvt = StdCellLibrary::asap7(SiVtFlavor::Slvt);
        assert!(slvt.fo4_delay() < hvt.fo4_delay());
        assert!(
            slvt.cell(CellKind::Nand2).leakage().as_watts()
                > 10.0 * hvt.cell(CellKind::Nand2).leakage().as_watts()
        );
    }

    #[test]
    fn dff_is_the_largest_cell() {
        let lib = StdCellLibrary::asap7(SiVtFlavor::Rvt);
        let dff = lib.cell(CellKind::Dff).area();
        for c in lib.iter() {
            assert!(c.area() <= dff);
        }
    }

    #[test]
    fn delay_grows_with_load() {
        let lib = StdCellLibrary::asap7(SiVtFlavor::Rvt);
        let nand = lib.cell(CellKind::Nand2);
        assert!(
            nand.delay(Capacitance::from_femtofarads(2.0))
                > nand.delay(Capacitance::from_femtofarads(0.5))
        );
    }

    #[test]
    fn switching_energy_is_femtojoule_scale() {
        let lib = StdCellLibrary::asap7(SiVtFlavor::Rvt);
        let inv = lib.cell(CellKind::Inverter);
        let e = inv
            .switching_energy(Capacitance::from_femtofarads(1.0), lib.vdd())
            .as_femtojoules();
        assert!(e > 0.1 && e < 10.0, "E_sw {e} fJ");
    }

    #[test]
    fn cell_metadata() {
        let lib = StdCellLibrary::asap7(SiVtFlavor::Lvt);
        let inv = lib.cell(CellKind::Inverter);
        assert_eq!(inv.name(), "INVx1_LVT");
        assert_eq!(inv.kind(), CellKind::Inverter);
        assert_eq!(inv.flavor(), SiVtFlavor::Lvt);
        let um2 = inv.area().as_square_micrometers();
        assert!(um2 > 0.01 && um2 < 0.1, "INV area {um2} µm²");
    }
}
