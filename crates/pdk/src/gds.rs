//! A minimal GDSII stream-format writer and reader.
//!
//! The paper's artifact repository ships a GDS layout of the M3D process
//! for 3D rendering in GDS3D; this module provides the same capability:
//! build a [`GdsLibrary`] of polygons on numbered layers, serialize it to
//! the binary GDSII stream format any layout tool can open, and parse it
//! back (used by the tests to guarantee round-trip fidelity).
//!
//! Only the record types needed for polygon layouts are implemented:
//! `HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME, BOUNDARY, LAYER,
//! DATATYPE, XY, ENDEL, ENDSTR, ENDLIB`.
//!
//! # Example
//!
//! ```
//! use ppatc_pdk::gds::{GdsBoundary, GdsLibrary, GdsStructure};
//!
//! let mut cell = GdsStructure::new("CELL");
//! cell.push(GdsBoundary::rect(10, 0, (0, 0), (1000, 2000))); // nm
//! let mut lib = GdsLibrary::new("PPATC");
//! lib.push(cell);
//! let bytes = lib.to_bytes();
//! let back = GdsLibrary::from_bytes(&bytes)?;
//! assert_eq!(back, lib);
//! # Ok::<(), ppatc_pdk::gds::GdsError>(())
//! ```

use std::fmt;

/// Database unit: 1 nm (in metres).
const DB_UNIT_M: f64 = 1e-9;
/// User unit: 1 µm expressed in database units.
const DB_PER_USER: f64 = 1e-3;

/// GDSII record types used here.
mod rec {
    pub const HEADER: u8 = 0x00;
    pub const BGNLIB: u8 = 0x01;
    pub const LIBNAME: u8 = 0x02;
    pub const UNITS: u8 = 0x03;
    pub const ENDLIB: u8 = 0x04;
    pub const BGNSTR: u8 = 0x05;
    pub const STRNAME: u8 = 0x06;
    pub const ENDSTR: u8 = 0x07;
    pub const BOUNDARY: u8 = 0x08;
    pub const LAYER: u8 = 0x0D;
    pub const DATATYPE: u8 = 0x0E;
    pub const XY: u8 = 0x10;
    pub const ENDEL: u8 = 0x11;
}

/// GDSII data-type codes.
mod dt {
    pub const NONE: u8 = 0x00;
    pub const I16: u8 = 0x02;
    pub const I32: u8 = 0x03;
    pub const F64: u8 = 0x05;
    pub const ASCII: u8 = 0x06;
}

/// A polygon on a numbered layer. Coordinates are in database units (nm);
/// the closing point is implicit (added on write, checked on read).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GdsBoundary {
    /// GDS layer number.
    pub layer: i16,
    /// GDS datatype number.
    pub datatype: i16,
    /// Vertices, in nm, without the repeated closing vertex.
    pub points: Vec<(i32, i32)>,
}

impl GdsBoundary {
    /// A rectangle from `min` to `max` corners (nm).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is degenerate.
    pub fn rect(layer: i16, datatype: i16, min: (i32, i32), max: (i32, i32)) -> Self {
        assert!(max.0 > min.0 && max.1 > min.1, "degenerate rectangle");
        Self {
            layer,
            datatype,
            points: vec![min, (max.0, min.1), max, (min.0, max.1)],
        }
    }

    /// Bounding box `((min_x, min_y), (max_x, max_y))` in nm.
    ///
    /// # Panics
    ///
    /// Panics if the polygon has no points.
    pub fn bbox(&self) -> ((i32, i32), (i32, i32)) {
        assert!(!self.points.is_empty(), "empty polygon");
        let mut min = self.points[0];
        let mut max = self.points[0];
        for &(x, y) in &self.points {
            min = (min.0.min(x), min.1.min(y));
            max = (max.0.max(x), max.1.max(y));
        }
        (min, max)
    }
}

/// A named structure (cell) containing boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GdsStructure {
    name: String,
    elements: Vec<GdsBoundary>,
}

impl GdsStructure {
    /// Creates an empty structure.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            elements: Vec::new(),
        }
    }

    /// Structure name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a boundary.
    pub fn push(&mut self, boundary: GdsBoundary) {
        self.elements.push(boundary);
    }

    /// The boundaries.
    pub fn elements(&self) -> &[GdsBoundary] {
        &self.elements
    }

    /// Polygon count on one layer.
    pub fn count_on_layer(&self, layer: i16) -> usize {
        self.elements.iter().filter(|b| b.layer == layer).count()
    }
}

/// A GDSII library: named structures with 1 nm database units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GdsLibrary {
    name: String,
    structures: Vec<GdsStructure>,
}

/// Parse error for GDSII streams.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GdsError {
    /// Stream ended inside a record.
    Truncated,
    /// Unexpected record where another was required.
    UnexpectedRecord {
        /// The found record type.
        found: u8,
    },
    /// Record payload malformed (odd XY count, bad string, ...).
    MalformedRecord {
        /// The offending record type.
        record: u8,
    },
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::Truncated => f.write_str("truncated GDSII stream"),
            GdsError::UnexpectedRecord { found } => {
                write!(f, "unexpected GDSII record {found:#04x}")
            }
            GdsError::MalformedRecord { record } => {
                write!(f, "malformed GDSII record {record:#04x}")
            }
        }
    }
}

impl std::error::Error for GdsError {}

impl GdsLibrary {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            structures: Vec::new(),
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a structure.
    pub fn push(&mut self, structure: GdsStructure) {
        self.structures.push(structure);
    }

    /// The structures.
    pub fn structures(&self) -> &[GdsStructure] {
        &self.structures
    }

    /// Serializes to the GDSII stream format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.record_i16(rec::HEADER, &[600]); // stream version 6
        w.record_i16(rec::BGNLIB, &[0; 12]); // timestamps zeroed (determinism)
        w.record_ascii(rec::LIBNAME, &self.name);
        w.record_f64(rec::UNITS, &[DB_PER_USER, DB_UNIT_M]);
        for s in &self.structures {
            w.record_i16(rec::BGNSTR, &[0; 12]);
            w.record_ascii(rec::STRNAME, &s.name);
            for b in &s.elements {
                w.record_none(rec::BOUNDARY);
                w.record_i16(rec::LAYER, &[b.layer]);
                w.record_i16(rec::DATATYPE, &[b.datatype]);
                let mut xy = Vec::with_capacity(2 * (b.points.len() + 1));
                for &(x, y) in &b.points {
                    xy.push(x);
                    xy.push(y);
                }
                // GDSII closes the polygon explicitly.
                xy.push(b.points[0].0);
                xy.push(b.points[0].1);
                w.record_i32(rec::XY, &xy);
                w.record_none(rec::ENDEL);
            }
            w.record_none(rec::ENDSTR);
        }
        w.record_none(rec::ENDLIB);
        w.out
    }

    /// Parses a GDSII stream produced by [`GdsLibrary::to_bytes`] (or any
    /// other tool, as long as it sticks to boundary elements).
    ///
    /// # Errors
    ///
    /// [`GdsError`] on truncation or unsupported/malformed records.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GdsError> {
        let mut r = Reader { bytes, pos: 0 };
        r.expect_record(rec::HEADER)?;
        r.expect_record(rec::BGNLIB)?;
        let name_rec = r.expect_record(rec::LIBNAME)?;
        let name = ascii_payload(&name_rec)?;
        r.expect_record(rec::UNITS)?;
        let mut lib = GdsLibrary::new(name);
        loop {
            let (rtype, payload) = r.next_record()?;
            match rtype {
                rec::ENDLIB => break,
                rec::BGNSTR => {
                    let sname_rec = r.expect_record(rec::STRNAME)?;
                    let mut structure = GdsStructure::new(ascii_payload(&sname_rec)?);
                    loop {
                        let (etype, _) = r.next_record()?;
                        match etype {
                            rec::ENDSTR => break,
                            rec::BOUNDARY => {
                                let layer_rec = r.expect_record(rec::LAYER)?;
                                let layer = i16_payload(&layer_rec, rec::LAYER)?;
                                let dt_rec = r.expect_record(rec::DATATYPE)?;
                                let datatype = i16_payload(&dt_rec, rec::DATATYPE)?;
                                let xy_rec = r.expect_record(rec::XY)?;
                                let coords = i32_payload(&xy_rec)?;
                                if coords.len() < 8 || coords.len() % 2 != 0 {
                                    return Err(GdsError::MalformedRecord { record: rec::XY });
                                }
                                let mut points: Vec<(i32, i32)> =
                                    coords.chunks(2).map(|c| (c[0], c[1])).collect();
                                // Drop the explicit closing vertex.
                                if points.last() == points.first() {
                                    points.pop();
                                }
                                r.expect_record(rec::ENDEL)?;
                                structure.push(GdsBoundary {
                                    layer,
                                    datatype,
                                    points,
                                });
                            }
                            other => return Err(GdsError::UnexpectedRecord { found: other }),
                        }
                    }
                    lib.push(structure);
                }
                other => {
                    let _ = payload;
                    return Err(GdsError::UnexpectedRecord { found: other });
                }
            }
        }
        Ok(lib)
    }

    /// Total polygon count across all structures.
    pub fn polygon_count(&self) -> usize {
        self.structures.iter().map(|s| s.elements.len()).sum()
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    /// # Panics
    ///
    /// If the record payload would overflow the GDSII 16-bit length field.
    fn header(&mut self, rtype: u8, dtype: u8, payload_len: usize) {
        let total = 4 + payload_len;
        assert!(total <= u16::MAX as usize, "record too long");
        self.out.extend_from_slice(&(total as u16).to_be_bytes());
        self.out.push(rtype);
        self.out.push(dtype);
    }

    fn record_none(&mut self, rtype: u8) {
        self.header(rtype, dt::NONE, 0);
    }

    fn record_i16(&mut self, rtype: u8, values: &[i16]) {
        self.header(rtype, dt::I16, 2 * values.len());
        for v in values {
            self.out.extend_from_slice(&v.to_be_bytes());
        }
    }

    fn record_i32(&mut self, rtype: u8, values: &[i32]) {
        self.header(rtype, dt::I32, 4 * values.len());
        for v in values {
            self.out.extend_from_slice(&v.to_be_bytes());
        }
    }

    fn record_f64(&mut self, rtype: u8, values: &[f64]) {
        self.header(rtype, dt::F64, 8 * values.len());
        for &v in values {
            self.out.extend_from_slice(&to_gds_real(v));
        }
    }

    fn record_ascii(&mut self, rtype: u8, s: &str) {
        let mut bytes = s.as_bytes().to_vec();
        if !bytes.len().is_multiple_of(2) {
            bytes.push(0); // GDSII pads odd strings with NUL
        }
        self.header(rtype, dt::ASCII, bytes.len());
        self.out.extend_from_slice(&bytes);
    }
}

/// Converts an `f64` to GDSII 8-byte excess-64 base-16 real format.
fn to_gds_real(v: f64) -> [u8; 8] {
    if v == 0.0 {
        return [0; 8];
    }
    let sign = if v < 0.0 { 0x80u8 } else { 0 };
    let mut mantissa = v.abs();
    let mut exponent = 0i32;
    // Normalize mantissa into [1/16, 1).
    while mantissa >= 1.0 {
        mantissa /= 16.0;
        exponent += 1;
    }
    while mantissa < 1.0 / 16.0 {
        mantissa *= 16.0;
        exponent -= 1;
    }
    let mut out = [0u8; 8];
    out[0] = sign | ((exponent + 64) as u8 & 0x7F);
    let mut frac = mantissa;
    for slot in out.iter_mut().skip(1) {
        frac *= 256.0;
        let byte = frac.floor();
        *slot = byte as u8;
        frac -= byte;
    }
    out
}

/// Converts a GDSII 8-byte real back to `f64` (used by the reader's tests).
#[cfg(test)]
pub(crate) fn from_gds_real(bytes: &[u8; 8]) -> f64 {
    let sign = if bytes[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exponent = i32::from(bytes[0] & 0x7F) - 64;
    let mut mantissa = 0.0f64;
    for (i, &b) in bytes[1..].iter().enumerate() {
        mantissa += f64::from(b) / 256.0f64.powi(i as i32 + 1);
    }
    sign * mantissa * 16.0f64.powi(exponent)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn next_record(&mut self) -> Result<(u8, Vec<u8>), GdsError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(GdsError::Truncated);
        }
        let len = u16::from_be_bytes([self.bytes[self.pos], self.bytes[self.pos + 1]]) as usize;
        let rtype = self.bytes[self.pos + 2];
        if len < 4 || self.pos + len > self.bytes.len() {
            return Err(GdsError::Truncated);
        }
        let payload = self.bytes[self.pos + 4..self.pos + len].to_vec();
        self.pos += len;
        Ok((rtype, payload))
    }

    fn expect_record(&mut self, rtype: u8) -> Result<Vec<u8>, GdsError> {
        let (found, payload) = self.next_record()?;
        if found != rtype {
            return Err(GdsError::UnexpectedRecord { found });
        }
        Ok(payload)
    }
}

fn ascii_payload(payload: &[u8]) -> Result<String, GdsError> {
    let trimmed: Vec<u8> = payload.iter().copied().filter(|&b| b != 0).collect();
    String::from_utf8(trimmed).map_err(|_| GdsError::MalformedRecord {
        record: rec::LIBNAME,
    })
}

fn i16_payload(payload: &[u8], record: u8) -> Result<i16, GdsError> {
    if payload.len() != 2 {
        return Err(GdsError::MalformedRecord { record });
    }
    Ok(i16::from_be_bytes([payload[0], payload[1]]))
}

fn i32_payload(payload: &[u8]) -> Result<Vec<i32>, GdsError> {
    if !payload.len().is_multiple_of(4) {
        return Err(GdsError::MalformedRecord { record: rec::XY });
    }
    Ok(payload
        .chunks(4)
        .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GdsLibrary {
        let mut cell = GdsStructure::new("BITCELL");
        cell.push(GdsBoundary::rect(10, 0, (0, 0), (216, 220)));
        cell.push(GdsBoundary {
            layer: 42,
            datatype: 1,
            points: vec![(0, 0), (100, 0), (100, 50), (50, 80)],
        });
        let mut top = GdsStructure::new("TOP");
        top.push(GdsBoundary::rect(11, 0, (-50, -50), (50, 50)));
        let mut lib = GdsLibrary::new("PPATC_TEST");
        lib.push(cell);
        lib.push(top);
        lib
    }

    #[test]
    fn round_trip() {
        let lib = sample();
        let bytes = lib.to_bytes();
        let back = GdsLibrary::from_bytes(&bytes).expect("parses");
        assert_eq!(back, lib);
    }

    #[test]
    fn stream_is_well_formed() {
        let bytes = sample().to_bytes();
        // Starts with HEADER (len 6, type 0x00, dtype 0x02, version 600).
        assert_eq!(&bytes[..6], &[0, 6, 0x00, 0x02, 0x02, 0x58]);
        // Ends with ENDLIB.
        assert_eq!(&bytes[bytes.len() - 4..], &[0, 4, 0x04, 0x00]);
        // Even length throughout (all records are even-sized).
        assert_eq!(bytes.len() % 2, 0);
    }

    #[test]
    fn gds_real_round_trips_units() {
        for v in [1e-9, 1e-3, 0.25, 1.0, 123.456, -42.0, 0.0] {
            let enc = to_gds_real(v);
            let dec = from_gds_real(&enc);
            assert!((dec - v).abs() <= v.abs() * 1e-12, "{v} -> {dec}");
        }
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = sample().to_bytes();
        let err = GdsLibrary::from_bytes(&bytes[..bytes.len() - 2]).expect_err("must fail");
        assert!(matches!(
            err,
            GdsError::Truncated | GdsError::UnexpectedRecord { .. }
        ));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(GdsLibrary::from_bytes(&[1, 2, 3]).is_err());
        // Valid header then junk record type.
        let mut bytes = GdsLibrary::new("X").to_bytes();
        bytes[2 + 4] = 0x7F; // corrupt the BGNLIB record type
        assert!(GdsLibrary::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bbox_and_counts() {
        let lib = sample();
        assert_eq!(lib.polygon_count(), 3);
        let cell = &lib.structures()[0];
        assert_eq!(cell.count_on_layer(10), 1);
        assert_eq!(cell.count_on_layer(42), 1);
        let (min, max) = cell.elements()[1].bbox();
        assert_eq!(min, (0, 0));
        assert_eq!(max, (100, 80));
    }

    #[test]
    #[should_panic(expected = "degenerate rectangle")]
    fn degenerate_rect_panics() {
        let _ = GdsBoundary::rect(1, 0, (0, 0), (0, 10));
    }
}
