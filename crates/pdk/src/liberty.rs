//! Liberty (`.lib`) export of the standard-cell library.
//!
//! Synthesis tools consume cell timing/power as Liberty files; exporting
//! our characterized cells in that format makes the library inspectable by
//! standard EDA tooling, just as the GDS export makes layouts viewable.
//! The writer emits the scalar (linear-delay) subset: per-cell area,
//! leakage, pin capacitances, and an intrinsic-plus-resistance timing arc.

use crate::stdcell::{CellKind, StdCell, StdCellLibrary};
use core::fmt::Write as _;

/// Renders a library as Liberty text.
///
/// ```
/// use ppatc_pdk::stdcell::StdCellLibrary;
/// use ppatc_pdk::{liberty, SiVtFlavor};
///
/// let lib = liberty::export(&StdCellLibrary::asap7(SiVtFlavor::Rvt));
/// assert!(lib.contains("library (asap7_rvt)"));
/// assert!(lib.contains("cell (NAND2x1_RVT)"));
/// ```
pub fn export(library: &StdCellLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "library (asap7_{}) {{",
        library.flavor().library_suffix().to_lowercase()
    );
    let _ = writeln!(out, "  delay_model : table_lookup;");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  leakage_power_unit : \"1nW\";");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(out, "  nom_voltage : {:.2};", library.vdd().as_volts());
    for cell in library.iter() {
        write_cell(&mut out, cell);
    }
    out.push_str("}\n");
    out
}

fn write_cell(out: &mut String, cell: &StdCell) {
    let _ = writeln!(out, "  cell ({}) {{", cell.name());
    let _ = writeln!(
        out,
        "    area : {:.4};",
        cell.area().as_square_micrometers()
    );
    let _ = writeln!(
        out,
        "    cell_leakage_power : {:.4};",
        cell.leakage().as_watts() * 1e9
    );
    let inputs: &[&str] = match cell.kind() {
        CellKind::Inverter => &["A"],
        CellKind::Nand2 | CellKind::Nor2 => &["A", "B"],
        CellKind::Dff => &["D", "CLK"],
    };
    for pin in inputs {
        let _ = writeln!(out, "    pin ({pin}) {{");
        let _ = writeln!(out, "      direction : input;");
        let _ = writeln!(
            out,
            "      capacitance : {:.4};",
            cell.input_cap().as_femtofarads()
        );
        let _ = writeln!(out, "    }}");
    }
    let out_pin = if cell.kind() == CellKind::Dff {
        "Q"
    } else {
        "Y"
    };
    let _ = writeln!(out, "    pin ({out_pin}) {{");
    let _ = writeln!(out, "      direction : output;");
    let related = inputs[0];
    let _ = writeln!(out, "      timing () {{");
    let _ = writeln!(out, "        related_pin : \"{related}\";");
    let _ = writeln!(
        out,
        "        intrinsic_rise : {:.2};",
        cell.intrinsic_delay().as_picoseconds()
    );
    let _ = writeln!(
        out,
        "        intrinsic_fall : {:.2};",
        cell.intrinsic_delay().as_picoseconds()
    );
    // Liberty linear model: delay = intrinsic + R * C_load. R in ps/fF =
    // kΩ (since ps/fF ≡ GΩ⁻¹... 1 kΩ × 1 fF = 1 ps).
    let r_ps_per_ff = cell.drive_resistance().as_ohms() / 1e3;
    let _ = writeln!(out, "        rise_resistance : {r_ps_per_ff:.3};");
    let _ = writeln!(out, "        fall_resistance : {r_ps_per_ff:.3};");
    let _ = writeln!(out, "      }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiVtFlavor;

    fn lib_text() -> String {
        export(&StdCellLibrary::asap7(SiVtFlavor::Slvt))
    }

    #[test]
    fn braces_balance() {
        let text = lib_text();
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close, "unbalanced braces");
    }

    #[test]
    fn all_cells_are_present_with_pins() {
        let text = lib_text();
        for name in ["INVx1_SLVT", "NAND2x1_SLVT", "NOR2x1_SLVT", "DFFx1_SLVT"] {
            assert!(text.contains(&format!("cell ({name})")), "missing {name}");
        }
        assert!(text.contains("pin (CLK)"));
        assert!(text.contains("pin (Q)"));
        assert!(text.contains("related_pin"));
    }

    #[test]
    fn numbers_are_physical() {
        let text = lib_text();
        // Leakage in nW must be a positive number for SLVT.
        let leak_line = text
            .lines()
            .find(|l| l.contains("cell_leakage_power"))
            .expect("leakage line exists");
        let value: f64 = leak_line
            .trim()
            .trim_start_matches("cell_leakage_power :")
            .trim_end_matches(';')
            .trim()
            .parse()
            .expect("parses");
        assert!(value > 0.1, "SLVT leakage {value} nW");
    }

    #[test]
    fn flavors_export_distinct_libraries() {
        let hvt = export(&StdCellLibrary::asap7(SiVtFlavor::Hvt));
        let slvt = lib_text();
        assert!(hvt.contains("library (asap7_hvt)"));
        assert_ne!(hvt, slvt);
    }
}
