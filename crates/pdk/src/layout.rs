//! Layout generation: bit-cell and array GDS, and the process
//! cross-sections of the paper's Fig. 2a/b.
//!
//! The paper's artifact includes a GDS of the M3D process with instructions
//! to render it in 3D. [`cell_array`] generates an equivalent flattened GDS
//! for either technology, and [`cross_section`] produces the layer-by-layer
//! z-stack (name, height range, GDS layer number) that a GDS3D-style
//! process file needs — and that reproduces the structure of Fig. 2a/b.

use crate::gds::{GdsBoundary, GdsLibrary, GdsStructure};
use crate::stack::{LayerStack, StackElement, Technology, TierKind};
use ppatc_units::Length;

/// One layer of a technology cross-section (Fig. 2a/b row).
#[derive(Clone, Debug, PartialEq)]
pub struct CrossSectionLayer {
    /// Layer name (`"M1"`, `"CNFET tier 1"`, ...).
    pub name: String,
    /// Bottom of the layer, nm above the substrate surface.
    pub z_bottom_nm: f64,
    /// Top of the layer, nm.
    pub z_top_nm: f64,
    /// GDS layer number used by [`cell_array`].
    pub gds_layer: i16,
}

/// FEOL thickness (fins + gate + MOL), nm.
const FEOL_THICKNESS_NM: f64 = 100.0;
/// Device-tier thickness (channel + gate stack + S/D), nm.
const TIER_THICKNESS_NM: f64 = 50.0;
/// GDS layer for the Si FEOL.
const FEOL_GDS_LAYER: i16 = 1;

/// Metal thickness from pitch: aspect ratio ~1.8 on the half-pitch.
fn metal_thickness_nm(pitch: Length) -> f64 {
    0.9 * pitch.as_nanometers()
}

/// Via (inter-layer dielectric) height under each metal, nm.
fn via_height_nm(pitch: Length) -> f64 {
    0.8 * pitch.as_nanometers()
}

/// GDS layer number of the i-th metal (M1 = 10, M2 = 12, ...).
fn metal_gds_layer(metal_index: usize) -> i16 {
    (10 + 2 * metal_index) as i16
}

/// GDS layer of a device tier (CNFET tiers 60, 62, ...; IGZO 70).
fn tier_gds_layer(kind: TierKind, ordinal: usize) -> i16 {
    match kind {
        TierKind::Cnfet => (60 + 2 * ordinal) as i16,
        TierKind::Igzo => (70 + 2 * ordinal) as i16,
    }
}

/// Computes the full cross-section of a technology, bottom-up —
/// the data behind Fig. 2a (all-Si) and Fig. 2b (M3D).
pub fn cross_section(technology: Technology) -> Vec<CrossSectionLayer> {
    cross_section_of(&technology.stack())
}

/// Cross-section of an arbitrary stack.
pub fn cross_section_of(stack: &LayerStack) -> Vec<CrossSectionLayer> {
    let mut out = vec![CrossSectionLayer {
        name: "Si FEOL (FinFET + MOL)".to_string(),
        z_bottom_nm: 0.0,
        z_top_nm: FEOL_THICKNESS_NM,
        gds_layer: FEOL_GDS_LAYER,
    }];
    let mut z = FEOL_THICKNESS_NM;
    let mut metal_index = 0usize;
    let mut cnfet_ordinal = 0usize;
    let mut igzo_ordinal = 0usize;
    for element in stack {
        match element {
            StackElement::Metal(m) => {
                z += via_height_nm(m.pitch());
                let top = z + metal_thickness_nm(m.pitch());
                out.push(CrossSectionLayer {
                    name: format!("{} ({:.0} nm pitch)", m.name(), m.pitch().as_nanometers()),
                    z_bottom_nm: z,
                    z_top_nm: top,
                    gds_layer: metal_gds_layer(metal_index),
                });
                z = top;
                metal_index += 1;
            }
            StackElement::DeviceTier(kind) => {
                let ordinal = match kind {
                    TierKind::Cnfet => {
                        cnfet_ordinal += 1;
                        cnfet_ordinal
                    }
                    TierKind::Igzo => {
                        igzo_ordinal += 1;
                        igzo_ordinal
                    }
                };
                let top = z + TIER_THICKNESS_NM;
                out.push(CrossSectionLayer {
                    name: format!("{kind} {ordinal}"),
                    z_bottom_nm: z,
                    z_top_nm: top,
                    gds_layer: tier_gds_layer(*kind, ordinal - 1),
                });
                z = top;
            }
        }
    }
    out
}

/// Total back-end height of a technology, nm — the M3D stack is visibly
/// taller, which is exactly the Fig. 2b story.
pub fn stack_height(technology: Technology) -> Length {
    let z_top = cross_section(technology)
        .last()
        .map(|l| l.z_top_nm)
        .unwrap_or(0.0);
    Length::from_nanometers(z_top)
}

/// Renders a GDS3D-style process description: one line per layer with its
/// GDS number and height range.
pub fn gds3d_process_file(technology: Technology) -> String {
    let mut out = format!("# GDS3D process file for the {technology} stack\n");
    for layer in cross_section(technology) {
        out.push_str(&format!(
            "LayerStart: {}\nLayer: {}\nHeight: {:.1}\nThickness: {:.1}\nLayerEnd\n",
            layer.name,
            layer.gds_layer,
            layer.z_bottom_nm,
            layer.z_top_nm - layer.z_bottom_nm
        ));
    }
    out
}

/// Generates the 3T bit-cell structure for a technology. The footprint
/// matches the eDRAM area model's cell size; polygons sit on the layers the
/// cell actually uses (FEOL + M1/M2 for all-Si; the CNFET/IGZO tiers and
/// their local metals for M3D).
/// # Panics
///
/// If `cell_side_nm` is too small (≤ 40 nm) to draw a legal cell.
pub fn bit_cell(technology: Technology, cell_side_nm: i32) -> GdsStructure {
    assert!(cell_side_nm > 40, "cell too small to draw");
    let mut cell = GdsStructure::new(match technology {
        Technology::AllSi => "BITCELL_SI",
        Technology::M3dIgzoCnfetSi => "BITCELL_M3D",
    });
    let s = cell_side_nm;
    let third = s / 3;
    match technology {
        Technology::AllSi => {
            // Active area + three gates in the FEOL, bitline on M1,
            // wordlines on M2.
            cell.push(GdsBoundary::rect(FEOL_GDS_LAYER, 0, (4, 4), (s - 4, s - 4)));
            for k in 0..3 {
                let x0 = 8 + k * third;
                cell.push(GdsBoundary::rect(2, 0, (x0, 0), (x0 + third / 3, s)));
            }
            cell.push(GdsBoundary::rect(
                metal_gds_layer(0),
                0,
                (s / 2 - 18, 0),
                (s / 2 + 18, s),
            ));
            cell.push(GdsBoundary::rect(
                metal_gds_layer(1),
                0,
                (0, s / 2 - 18),
                (s, s / 2 + 18),
            ));
        }
        Technology::M3dIgzoCnfetSi => {
            // Two CNFET read devices on tier 1, IGZO write device on the
            // IGZO tier, local routing on the tier metals (M5/M6 = metal
            // indices 4 and 5 in the M3D stack).
            cell.push(GdsBoundary::rect(
                tier_gds_layer(TierKind::Cnfet, 0),
                0,
                (4, 4),
                (s - 4, s / 2),
            ));
            cell.push(GdsBoundary::rect(
                tier_gds_layer(TierKind::Cnfet, 1),
                0,
                (4, s / 2),
                (s - 4, s - 4),
            ));
            cell.push(GdsBoundary::rect(
                tier_gds_layer(TierKind::Igzo, 0),
                0,
                (third, third),
                (2 * third, 2 * third),
            ));
            cell.push(GdsBoundary::rect(
                metal_gds_layer(4),
                0,
                (s / 2 - 18, 0),
                (s / 2 + 18, s),
            ));
            cell.push(GdsBoundary::rect(
                metal_gds_layer(5),
                0,
                (0, s / 2 - 18),
                (s, s / 2 + 18),
            ));
        }
    }
    cell
}

/// Generates a flattened `rows × cols` cell array with spanning wordlines
/// and bitlines, as a complete GDS library.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn cell_array(technology: Technology, rows: usize, cols: usize) -> GdsLibrary {
    assert!(rows > 0 && cols > 0, "array must be non-empty");
    let cell_side: i32 = match technology {
        Technology::AllSi => 322,
        Technology::M3dIgzoCnfetSi => 218,
    };
    let template = bit_cell(technology, cell_side);
    let mut array = GdsStructure::new("ARRAY");
    for r in 0..rows {
        for c in 0..cols {
            let (dx, dy) = (c as i32 * cell_side, r as i32 * cell_side);
            for b in template.elements() {
                array.push(GdsBoundary {
                    layer: b.layer,
                    datatype: b.datatype,
                    points: b.points.iter().map(|&(x, y)| (x + dx, y + dy)).collect(),
                });
            }
        }
    }
    let mut lib = GdsLibrary::new(match technology {
        Technology::AllSi => "PPATC_ALLSI",
        Technology::M3dIgzoCnfetSi => "PPATC_M3D",
    });
    lib.push(template);
    lib.push(array);
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn m3d_stack_is_taller() {
        let si = stack_height(Technology::AllSi);
        let m3d = stack_height(Technology::M3dIgzoCnfetSi);
        assert!(m3d.as_nanometers() > 1.4 * si.as_nanometers());
    }

    #[test]
    fn cross_sections_have_paper_layer_counts() {
        // Fig. 2a: FEOL + 9 metals. Fig. 2b: FEOL + 15 metals + 3 tiers.
        assert_eq!(cross_section(Technology::AllSi).len(), 1 + 9);
        assert_eq!(cross_section(Technology::M3dIgzoCnfetSi).len(), 1 + 15 + 3);
    }

    #[test]
    fn layers_are_stacked_without_overlap() {
        for tech in Technology::ALL {
            let xs = cross_section(tech);
            for pair in xs.windows(2) {
                assert!(pair[1].z_bottom_nm >= pair[0].z_top_nm - 1e-9);
                assert!(pair[1].z_top_nm > pair[1].z_bottom_nm);
            }
        }
    }

    #[test]
    fn tiers_sit_between_the_right_metals() {
        let xs = cross_section(Technology::M3dIgzoCnfetSi);
        let idx = |name: &str| xs.iter().position(|l| l.name.starts_with(name)).unwrap();
        assert!(idx("CNFET tier 1") > idx("M4"));
        assert!(idx("CNFET tier 1") < idx("M5"));
        assert!(idx("IGZO tier 1") > idx("M8"));
        assert!(idx("IGZO tier 1") < idx("M9"));
    }

    #[test]
    fn array_gds_round_trips() {
        for tech in Technology::ALL {
            let lib = cell_array(tech, 4, 4);
            let bytes = lib.to_bytes();
            let back = GdsLibrary::from_bytes(&bytes).expect("parses");
            assert_eq!(back, lib);
            // 2 structures: template + flattened array.
            assert_eq!(back.structures().len(), 2);
            let per_cell = back.structures()[0].elements().len();
            assert_eq!(back.structures()[1].elements().len(), 16 * per_cell);
        }
    }

    #[test]
    fn m3d_cell_uses_beol_device_layers() {
        let cell = bit_cell(Technology::M3dIgzoCnfetSi, 218);
        assert_eq!(cell.count_on_layer(60), 1); // CNFET tier 1
        assert_eq!(cell.count_on_layer(62), 1); // CNFET tier 2
        assert_eq!(cell.count_on_layer(70), 1); // IGZO tier
        assert_eq!(cell.count_on_layer(FEOL_GDS_LAYER), 0); // nothing in FEOL
        let si = bit_cell(Technology::AllSi, 322);
        assert_eq!(si.count_on_layer(FEOL_GDS_LAYER), 1);
        assert_eq!(si.count_on_layer(60), 0);
    }

    #[test]
    fn gds3d_file_lists_every_layer() {
        let text = gds3d_process_file(Technology::M3dIgzoCnfetSi);
        assert_eq!(text.matches("LayerStart").count(), 19);
        assert!(text.contains("IGZO tier 1"));
    }

    #[test]
    fn cell_footprints_match_the_area_model() {
        // 218 nm and 322 nm sides approximate the eDRAM model's 0.0477 and
        // 0.104 µm² cells.
        assert!(approx_eq(0.218 * 0.218, 0.0477, 0.01));
        assert!(approx_eq(0.322 * 0.322, 0.104, 0.01));
    }
}
