//! Tier-1 gate: the workspace must lint clean under its own rules.
//!
//! This is the test-suite twin of the CI `cargo run -p ppatc-lint --
//! --deny-warnings` job: any deny- or warn-severity finding introduced
//! anywhere in the workspace fails this test with the full diagnostic list.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = ppatc_lint::lint_workspace(&root).expect("workspace should be lintable");
    assert!(
        report.files > 50,
        "expected to scan the whole workspace, saw only {} files",
        report.files
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "ppatc-lint found {} issue(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn rule_catalog_is_stable() {
    let rules = ppatc_lint::rules::all();
    let listed: Vec<(&str, &str)> = rules.iter().map(|r| (r.code, r.name)).collect();
    assert_eq!(
        listed,
        vec![
            ("PL001", "raw-unit-api"),
            ("PL002", "panic-in-lib"),
            ("PL003", "must-use-try"),
            ("PL004", "magic-constant"),
            ("PL005", "non-exhaustive-error"),
            ("PL006", "dimension-mismatch"),
            ("PL007", "unit-cast-roundtrip"),
            ("PL008", "unused-allow"),
            ("PL009", "panic-reachable-from-try"),
            ("PL010", "hash-order-escape"),
            ("PL011", "wall-clock-in-result"),
            ("PL012", "float-reduction-order"),
            ("PL013", "possible-div-by-zero"),
            ("PL014", "float-domain-error"),
            ("PL015", "nan-unsafe-comparison"),
            ("PL016", "shared-state-escape"),
            ("PL017", "unwind-boundary"),
        ]
    );
}

/// The parallel per-file stage must not change the report: serial and
/// multi-worker runs over the real workspace produce byte-identical
/// diagnostics (the cross-file stage is serial and the sort is total).
#[test]
fn parallel_lint_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let serial = ppatc_lint::lint_workspace_jobs(&root, 1).expect("serial run");
    let parallel = ppatc_lint::lint_workspace_jobs(&root, 4).expect("parallel run");
    assert_eq!(serial.files, parallel.files);
    assert_eq!(serial.suppressed, parallel.suppressed);
    let render = |r: &ppatc_lint::Report| {
        r.diagnostics
            .iter()
            .map(ppatc_lint::Diagnostic::json)
            .collect::<Vec<_>>()
            .join(",")
    };
    assert_eq!(render(&serial), render(&parallel));
}
