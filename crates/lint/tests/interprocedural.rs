//! Whole-workspace integration tests: cross-crate dimension propagation,
//! panic-reachability witness paths, wall-clock taint through helpers, and
//! the incremental summary cache — all exercised against scratch
//! workspaces built on disk, exactly the way the CLI sees the real one.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ppatc_lint::{lint_workspace_cached, Report};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// A scratch workspace under the system temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(files: &[(&str, &str)]) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("ppatc-lint-itest-{}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch root");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n")
            .expect("write workspace manifest");
        let scratch = Self { root };
        for (rel, src) in files {
            scratch.write(rel, src);
        }
        scratch
    }

    fn write(&self, rel: &str, src: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("file path has a parent"))
            .expect("create source dir");
        fs::write(path, src).expect("write source file");
    }

    fn lint(&self, use_cache: bool) -> Report {
        lint_workspace_cached(&self.root, 1, use_cache).expect("scratch workspace lints")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn render(report: &Report) -> String {
    report
        .diagnostics
        .iter()
        .map(ppatc_lint::Diagnostic::json)
        .collect::<Vec<_>>()
        .join(",")
}

const FAB_ENERGY: &str = "pub fn per_wafer_energy_joules(energy_joules: f64) -> f64 {\n\
                          \x20   energy_joules * 1.05\n\
                          }\n";

const CORE_CALLS_FAB_WITH_TIME: &str = "pub fn embodied_joules(delay_ns: f64) -> f64 {\n\
     \x20   ppatc_fab::per_wafer_energy_joules(delay_ns)\n\
     }\n";

#[test]
fn dimension_mismatch_crosses_crate_boundaries() {
    let ws = Scratch::new(&[
        ("crates/fab/src/lib.rs", FAB_ENERGY),
        ("crates/core/src/lib.rs", CORE_CALLS_FAB_WITH_TIME),
    ]);
    let report = ws.lint(false);
    let pl006: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "PL006")
        .collect();
    assert_eq!(pl006.len(), 1, "diagnostics: {}", render(&report));
    assert!(
        pl006[0].path.contains("core"),
        "finding should anchor at the call site: {}",
        pl006[0].path
    );
    assert!(
        pl006[0].message.contains("defined in crates/fab"),
        "message should cite the callee's crate: {}",
        pl006[0].message
    );
}

#[test]
fn panic_reachability_reports_a_cross_crate_witness_path() {
    let ws = Scratch::new(&[
        (
            "crates/fab/src/lib.rs",
            "pub fn nearest(x: f64) -> f64 {\n\
             \x20   let v: Option<f64> = Some(x);\n\
             \x20   v.unwrap()\n\
             }\n",
        ),
        (
            "crates/core/src/lib.rs",
            "#[must_use = \"handle the fit result\"]\n\
             pub fn try_fit(x: f64) -> Result<f64, ()> {\n\
             \x20   Ok(ppatc_fab::nearest(x))\n\
             }\n",
        ),
    ]);
    let report = ws.lint(false);
    let pl009: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "PL009")
        .collect();
    assert_eq!(pl009.len(), 1, "diagnostics: {}", render(&report));
    assert!(
        pl009[0].message.contains("nearest [fab]"),
        "witness path should annotate the crate hop: {}",
        pl009[0].message
    );
}

#[test]
fn wall_clock_taint_flows_through_helper_fns() {
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "pub fn elapsed_portion(t0: std::time::Instant) -> f64 {\n\
         \x20   t0.elapsed().as_secs_f64()\n\
         }\n\
         \n\
         pub fn leaked(t0: std::time::Instant, power_watts: f64) -> ppatc_units::Energy {\n\
         \x20   ppatc_units::Energy::from_joules(elapsed_portion(t0) * power_watts)\n\
         }\n",
    )]);
    let report = ws.lint(false);
    assert!(
        report.diagnostics.iter().any(|d| d.code == "PL011"),
        "expected PL011 through the helper: {}",
        render(&report)
    );
}

#[test]
fn warm_cache_run_is_byte_identical_to_cold() {
    let ws = Scratch::new(&[
        ("crates/fab/src/lib.rs", FAB_ENERGY),
        ("crates/core/src/lib.rs", CORE_CALLS_FAB_WITH_TIME),
    ]);
    let cold = ws.lint(true);
    assert_eq!(cold.cache_hits, 0, "first run must analyze everything");
    let warm = ws.lint(true);
    assert_eq!(
        warm.cache_hits, warm.files,
        "unchanged rerun should hit on every file"
    );
    assert_eq!(render(&cold), render(&warm));
    assert_eq!(cold.suppressed, warm.suppressed);
    assert!(
        ws.root.join("target/ppatc-lint.cache").is_file(),
        "cache file should persist under target/"
    );
}

#[test]
fn editing_a_caller_invalidates_the_cached_cross_crate_finding() {
    let ws = Scratch::new(&[
        ("crates/fab/src/lib.rs", FAB_ENERGY),
        ("crates/core/src/lib.rs", CORE_CALLS_FAB_WITH_TIME),
    ]);
    let cold = ws.lint(true);
    assert!(
        cold.diagnostics.iter().any(|d| d.code == "PL006"),
        "seed workspace must carry the mismatch: {}",
        render(&cold)
    );

    // Fix the call site: pass an energy where an energy is expected. A
    // stale cache would keep reporting the old mismatch.
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn embodied_joules(heat_joules: f64) -> f64 {\n\
         \x20   ppatc_fab::per_wafer_energy_joules(heat_joules)\n\
         }\n",
    );
    let after = ws.lint(true);
    assert!(
        !after.diagnostics.iter().any(|d| d.code == "PL006"),
        "edited workspace must be clean: {}",
        render(&after)
    );
}

#[test]
fn editing_a_callee_signature_propagates_to_cached_callers() {
    let ws = Scratch::new(&[
        (
            "crates/fab/src/lib.rs",
            "pub fn scale(raw: f64) -> f64 {\n\x20   raw * 1.05\n}\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub fn embodied_joules(delay_ns: f64) -> f64 {\n\
             \x20   ppatc_fab::scale(delay_ns)\n\
             }\n",
        ),
    ]);
    let cold = ws.lint(true);
    assert!(
        !cold.diagnostics.iter().any(|d| d.code == "PL006"),
        "undimensioned callee cannot mismatch: {}",
        render(&cold)
    );

    // Give the callee a dimensioned parameter. Only fab's file changes on
    // disk, but the caller's cached verdict must be re-derived: the
    // neighborhood invalidation has to reach core via the call edge.
    ws.write(
        "crates/fab/src/lib.rs",
        "pub fn scale(energy_joules: f64) -> f64 {\n\x20   energy_joules * 1.05\n}\n",
    );
    let after = ws.lint(true);
    assert!(
        after.diagnostics.iter().any(|d| d.code == "PL006"),
        "caller must now mismatch against the new signature: {}",
        render(&after)
    );
}

/// The CLI end of the same invariants: `--json` output carries the schema
/// version, pins the finding shape byte-for-byte, and a warm cached run
/// prints exactly what the cold run printed.
#[test]
fn cli_json_output_is_schema_versioned_and_cache_stable() {
    let ws = Scratch::new(&[(
        "crates/device/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )]);
    let run = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_ppatc-lint"));
        cmd.arg("--root").arg(&ws.root).arg("--json");
        for a in extra {
            cmd.arg(a);
        }
        let out = cmd.output().expect("run ppatc-lint");
        (
            out.status.code(),
            String::from_utf8(out.stdout).expect("utf-8 stdout"),
        )
    };

    let (code, uncached) = run(&["--no-cache"]);
    assert_eq!(code, Some(1), "a deny finding must fail the run");
    assert_eq!(
        uncached,
        "{\"schema\":3,\"findings\":[{\"code\":\"PL002\",\"rule\":\"panic-in-lib\",\
         \"severity\":\"deny\",\"path\":\"crates/device/src/lib.rs\",\"line\":1,\"col\":37,\
         \"message\":\"`.unwrap()` in non-test library code; document a `# Panics` \
         contract on `fn f` or return a Result\"}]}\n"
    );

    let (_, cold) = run(&[]);
    let (_, warm) = run(&[]);
    assert_eq!(cold, uncached, "cache must not change the report");
    assert_eq!(warm, cold, "warm output must be byte-identical to cold");
}

/// Scratch-workspace determinism rules fire exactly like the real run:
/// jobs=1 vs jobs=4 and cold vs warm all render identically.
#[test]
fn scratch_workspace_report_is_worker_count_invariant() {
    let ws = Scratch::new(&[
        ("crates/fab/src/lib.rs", FAB_ENERGY),
        ("crates/core/src/lib.rs", CORE_CALLS_FAB_WITH_TIME),
        (
            "crates/device/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn keys_of(m: &HashMap<String, u32>) -> Vec<String> {\n\
             \x20   m.keys().cloned().collect()\n\
             }\n",
        ),
    ]);
    let serial = lint_workspace_cached(&ws.root, 1, false).expect("serial");
    let parallel = lint_workspace_cached(&ws.root, 4, false).expect("parallel");
    assert!(
        serial.diagnostics.iter().any(|d| d.code == "PL010"),
        "hash-order escape must fire: {}",
        render(&serial)
    );
    assert_eq!(render(&serial), render(&parallel));
}
