//! Seeded-bug fixtures for the dataflow rules: PL006 dimension-mismatch,
//! PL007 unit-cast-roundtrip, PL008 unused-allow, PL009
//! panic-reachable-from-try. Each rule must catch its planted bugs and
//! stay quiet on the corrected form — the false-positive half of the
//! contract is what lets the workspace run `--deny-warnings` in CI.

use ppatc_lint::lint_source;

fn codes(path: &str, src: &str) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = lint_source(path, src).into_iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

// -----------------------------------------------------------------------
// PL006: dimension-mismatch
// -----------------------------------------------------------------------

#[test]
fn pl006_fires_on_ctor_fed_the_wrong_dimension() {
    // Seeded bug 1: an Energy constructor fed seconds.
    let src = "pub fn f(t: Time) -> Energy { Energy::from_joules(t.as_seconds()) }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL006"]);
}

#[test]
fn pl006_fires_on_adding_energy_to_time() {
    // Seeded bug 2: J + s in an accumulator.
    let src = "pub fn g(e: Energy, t: Time) -> f64 { e.as_joules() + t.as_seconds() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL006"]);
}

#[test]
fn pl006_fires_on_comparing_mm2_against_m2() {
    // Seeded bug 3: suffix-seeded same-dimension, different-scale compare.
    let src = "pub fn h(chip_area_mm2: f64, wafer_area_m2: f64) -> bool { chip_area_mm2 > wafer_area_m2 }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL006"]);
}

#[test]
fn pl006_accepts_matching_dimensions_through_locals() {
    let src = "pub fn f(a: Energy, b: Energy) -> Energy {\n    let total = a.as_joules() + b.as_joules();\n    Energy::from_joules(total)\n}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl006_accepts_dimensioned_product_feeding_the_right_ctor() {
    // P·t = E: the registry's product table must make this clean.
    let src = "pub fn f(p: Power, t: Time) -> Energy { Energy::from_joules(p.as_watts() * t.as_seconds()) }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl006_stays_quiet_on_engineering_scale_factors() {
    // A 0.9 guardband is not a unit conversion; only *named* unit factors
    // may turn a same-dimension scale difference into a finding.
    let src = "pub fn f(v: Voltage) -> Voltage { Voltage::from_volts(v.as_volts() * 0.9) }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL007: unit-cast-roundtrip
// -----------------------------------------------------------------------

#[test]
fn pl007_fires_on_picojoules_into_from_joules() {
    // Seeded bug 1: a silent 1e12× error.
    let src = "pub fn f(e: Energy) -> Energy { Energy::from_joules(e.as_picojoules()) }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL007"]);
}

#[test]
fn pl007_fires_on_nanoseconds_into_from_seconds() {
    // Seeded bug 2: 1e9× in the latency path.
    let src = "pub fn f(t: Time) -> Time { Time::from_seconds(t.as_nanoseconds()) }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL007"]);
}

#[test]
fn pl007_fires_on_microwatts_into_from_watts() {
    // Seeded bug 3: 1e6× in the power path.
    let src = "pub fn f(p: Power) -> Power { Power::from_watts(p.as_microwatts()) }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL007"]);
}

#[test]
fn pl007_accepts_matching_accessor_and_ctor_scales() {
    let src = "pub fn f(e: Energy) -> Energy { Energy::from_picojoules(e.as_picojoules()) }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl007_accepts_explicit_literal_rescale() {
    // Multiplying by the conversion factor repairs the scale; the pass
    // tracks it exactly, so the roundtrip is clean.
    let src = "pub fn f(e: Energy) -> Energy { Energy::from_joules(e.as_picojoules() * 1e-12) }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL008: unused-allow
// -----------------------------------------------------------------------

#[test]
fn pl008_fires_on_stale_allow_comment() {
    let src = "// ppatc-lint: allow(magic-constant) — predates the refactor\npub fn ok() {}\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL008"]);
}

#[test]
fn pl008_fires_on_unknown_rule_name() {
    let src = "// ppatc-lint: allow(no-such-rule)\npub fn ok() {}\n";
    let diags = lint_source("crates/device/src/x.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "PL008");
    assert!(
        diags[0].message.contains("unknown rule") && diags[0].message.contains("no-such-rule"),
        "message: {}",
        diags[0].message
    );
}

#[test]
fn pl008_stays_quiet_when_the_allow_suppresses_something() {
    let src = "// ppatc-lint: allow(panic-in-lib) — reviewed: index is bounded\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl008_ignores_directive_syntax_inside_doc_comments() {
    // Doc comments are prose *about* suppressions, never suppressions.
    let src = "/// Suppress with `// ppatc-lint: allow(magic-constant)`.\npub fn ok() {}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL009: panic-reachable-from-try
// -----------------------------------------------------------------------

#[test]
fn pl009_fires_when_try_fn_reaches_an_unwrap_through_a_helper() {
    let src = "#[must_use = \"handle the Result\"]\n\
               pub fn try_fit(v: Option<u32>) -> Result<u32, String> { Ok(helper(v)) }\n\
               fn helper(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let found = codes("crates/device/src/x.rs", src);
    // PL002 flags the helper's own unwrap; PL009 flags the try_ entry.
    assert!(found.contains(&"PL009"), "codes: {found:?}");
    let diags = lint_source("crates/device/src/x.rs", src);
    let pl009 = diags
        .iter()
        .find(|d| d.code == "PL009")
        .expect("PL009 diag");
    assert!(
        pl009.message.contains("try_fit") && pl009.message.contains("helper"),
        "witness path missing from: {}",
        pl009.message
    );
}

#[test]
fn pl009_absorbed_by_a_panics_contract_on_the_path() {
    let src = "#[must_use = \"handle the Result\"]\n\
               pub fn try_fit(v: Option<u32>) -> Result<u32, String> { Ok(helper(v)) }\n\
               /// Helper.\n///\n/// # Panics\n///\n/// If `v` is `None`.\n\
               fn helper(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl009_does_not_resolve_method_calls_to_free_fns() {
    // `.map(..)` is an Option combinator; a free fn named `map` in the
    // same file must not become a call edge.
    let src = "#[must_use = \"handle the Result\"]\n\
               pub fn try_scale(v: Option<u32>) -> Result<u32, String> { Ok(v.map(|x| x + 1).unwrap_or(0)) }\n\
               pub fn map(v: Option<u32>) -> u32 { v.expect(\"mapped\") }\n";
    let found = codes("crates/device/src/x.rs", src);
    assert!(
        !found.contains(&"PL009"),
        "`.map()` wrongly resolved to the free fn: {found:?}"
    );
}
