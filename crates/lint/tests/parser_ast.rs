//! Parser coverage: golden s-expression snapshots for the expression
//! shapes the dimensional pass leans on (method chains, generics vs `<`,
//! turbofish, closures, control flow), plus a property test that every
//! fn body in the real workspace parses without a single `ParseIssue`.

use ppatc_lint::ast::sexp_block;
use ppatc_lint::parser::parse_body;
use ppatc_lint::source::SourceFile;
use std::path::{Path, PathBuf};

/// Parses the first fn body in `src` and renders it as an s-expression,
/// asserting the parse is issue-free.
fn ast_of(src: &str) -> String {
    let file = SourceFile::parse("crates/core/src/x.rs", src);
    let f = file.fns.first().expect("fixture must contain a fn");
    let (block, issues) = parse_body(&file, f.body.expect("fn must have a body"));
    assert!(issues.is_empty(), "parse issues for {src:?}: {issues:?}");
    sexp_block(&block).trim().to_string()
}

#[test]
fn golden_method_chain() {
    assert_eq!(
        ast_of("fn a(e: f64) -> f64 { e.abs().max(1.0).sqrt() }"),
        "(method (method (method (path e) .abs) .max (lit 1.0)) .sqrt)"
    );
}

#[test]
fn golden_nested_generics_vs_less_than() {
    // `Vec<Option<u32>>` in the signature must not confuse the body
    // parser, and both `<` uses below are comparisons, not generics.
    assert_eq!(
        ast_of("fn b(v: Vec<Option<u32>>) -> bool { v.len() < 3 && 1 < 2 }"),
        "(&& (< (method (path v) .len) (lit 3)) (< (lit 1) (lit 2)))"
    );
}

#[test]
fn golden_turbofish() {
    // Path turbofish (`Vec::<u32>::new`) and method turbofish
    // (`.sum::<u32>()`) both parse as plain calls with the generics
    // skipped — the dims pass keys on names, not type arguments.
    assert_eq!(
        ast_of("fn c() -> u32 { Vec::<u32>::new().iter().copied().sum::<u32>() }"),
        "(method (method (method (call (path Vec::new)) .iter) .copied) .sum)"
    );
}

#[test]
fn golden_closures() {
    assert_eq!(
        ast_of("fn d(xs: &[f64]) -> f64 { xs.iter().map(|x| x * 2.0).fold(0.0, |a, b| a + b) }"),
        "(method (method (method (path xs) .iter) .map (closure |x| \
         (* (path x) (lit 2.0)))) .fold (lit 0.0) (closure |a,b| \
         (+ (path a) (path b))))"
    );
}

#[test]
fn golden_if_let_match_with_guard() {
    assert_eq!(
        ast_of(
            "fn e(x: u32) -> u32 { let y = if x > 2 { x } else { 0 }; \
             match y { 0 => 1, n if n > 5 => n, _ => 2 } }"
        ),
        "(let y = (if (> (path x) (lit 2)) then (path x) else (block (lit 0)))) \
         (match (path y) (lit 1) (> (path n) (lit 5)) (path n) (lit 2))"
    );
}

#[test]
fn golden_for_loop_with_range_and_jump() {
    assert_eq!(
        ast_of("fn g() { for i in 0..10 { if i == 3 { continue; } } }"),
        "(loop (range (lit 0) (lit 10)) (if (== (path i) (lit 3)) then (continue);))"
    );
}

#[test]
fn operator_precedence_groups_mul_before_add() {
    assert_eq!(
        ast_of("fn h(a: f64, b: f64, c: f64) -> f64 { a + b * c }"),
        "(+ (path a) (* (path b) (path c)))"
    );
}

#[test]
fn struct_literals_are_disabled_in_condition_position() {
    // `x < limit` inside `if` must not start a struct literal at `limit {`.
    assert_eq!(
        ast_of("fn k(x: u32, limit: u32) -> u32 { if x < limit { x } else { limit } }"),
        "(if (< (path x) (path limit)) then (path x) else (block (path limit)))"
    );
}

#[test]
fn golden_nested_closures_capturing_mut() {
    // A closure stored in a `let mut` binding whose body contains a second
    // closure over the same captured `&mut` environment — the shape the
    // determinism pass walks when classifying sink writes inside closures.
    assert_eq!(
        ast_of(
            "fn a(xs: &mut Vec<f64>, xs2: &mut Vec<f64>) { \
             let mut push = |v: f64| xs.iter().for_each(|x| xs2.push(x + v)); \
             push(1.0); }"
        ),
        "(let push = (closure |v| (method (method (path xs) .iter) .for_each \
         (closure |x| (method (path xs2) .push (+ (path x) (path v))))))) \
         (call (path push) (lit 1.0));"
    );
}

#[test]
fn golden_loop_with_break_value() {
    // `break` carrying a value out of a bare `loop` used as a `let` init.
    assert_eq!(
        ast_of("fn b(n: u32) -> u32 { let v = loop { if n > 3 { break n * 2; } }; v }"),
        "(let v = (loop (if (> (path n) (lit 3)) then (break (* (path n) (lit 2)));))) (path v)"
    );
}

#[test]
fn golden_match_guard_on_binding_pattern() {
    // A guard over a pattern binding: the guard expression and every arm
    // body must all survive as walkable expressions.
    assert_eq!(
        ast_of(
            "fn c(o: Option<u32>) -> u32 { \
             match o { Some(n) if n % 2 == 0 => n, Some(n) => n + 1, None => 0 } }"
        ),
        "(match (path o) (== (% (path n) (lit 2)) (lit 0)) (path n) \
         (+ (path n) (lit 1)) (lit 0))"
    );
}

/// Every fn body in the actual workspace must parse without issues. This
/// is the property that keeps PL006–PL009 trustworthy: an unparsed body
/// is an unanalyzed body.
#[test]
fn every_workspace_fn_body_parses_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let mut files: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    let mut dirs = vec![crates, root.join("src")];
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                files.push(path);
            }
        }
    }
    assert!(
        files.len() > 50,
        "workspace walk found only {} files",
        files.len()
    );

    let mut bodies = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .to_string();
        let file = SourceFile::parse(&rel, &src);
        for f in &file.fns {
            let Some(body) = f.body else { continue };
            let (_block, issues) = parse_body(&file, body);
            bodies += 1;
            for issue in issues {
                failures.push(format!(
                    "{rel}:{}:{} in fn {}: {}",
                    issue.line, issue.col, f.name, issue.message
                ));
            }
        }
    }
    assert!(
        bodies > 300,
        "expected to parse many fn bodies, saw {bodies}"
    );
    assert!(
        failures.is_empty(),
        "{} fn bodies failed to parse cleanly:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
