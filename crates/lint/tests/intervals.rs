//! Seeded-bug fixtures for the interval and concurrency passes
//! (PL013–PL017): each rule must catch every bug planted here, the
//! widening protocol must terminate on growing loop accumulators, and the
//! passes must analyze every fn body in the real workspace without
//! panicking.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ppatc_lint::{lint_workspace_cached, Diagnostic, Report};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// A scratch workspace under the system temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(files: &[(&str, &str)]) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("ppatc-lint-ivtest-{}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch root");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n")
            .expect("write workspace manifest");
        for (rel, src) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("file path has a parent"))
                .expect("create source dir");
            fs::write(path, src).expect("write source file");
        }
        Self { root }
    }

    fn lint(&self, use_cache: bool) -> Report {
        lint_workspace_cached(&self.root, 1, use_cache).expect("scratch workspace lints")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn with_code<'r>(report: &'r Report, code: &str) -> Vec<&'r Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .collect()
}

// --- PL013: possible division by zero ---------------------------------------

#[test]
fn div_by_zero_catches_seeded_bugs() {
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "pub fn bug_clamped_divisor(x: f64) -> f64 {\n\
         \x20   let d = x.max(0.0);\n\
         \x20   1.0 / d\n\
         }\n\
         pub fn bug_loop_counter(xs: &[f64]) -> f64 {\n\
         \x20   let mut s = 0.0;\n\
         \x20   let mut n = 0.0;\n\
         \x20   for x in xs {\n\
         \x20       s += *x;\n\
         \x20       n += 1.0;\n\
         \x20   }\n\
         \x20   s / n\n\
         }\n\
         pub fn ok_guarded(x: f64) -> f64 {\n\
         \x20   let d = x.max(0.0);\n\
         \x20   if d <= 0.0 {\n\
         \x20       return 0.0;\n\
         \x20   }\n\
         \x20   1.0 / d\n\
         }\n",
    )]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL013");
    assert_eq!(
        hits.len(),
        2,
        "both seeded divisions must fire and the guarded one must not: {:?}",
        report.diagnostics
    );
    assert!(hits
        .iter()
        .all(|d| d.severity == ppatc_lint::Severity::Deny));
}

#[test]
fn div_by_zero_range_crosses_crate_boundaries() {
    // The divisor's zero-admitting range comes from another crate's
    // return summary, not anything visible in the calling file.
    let ws = Scratch::new(&[
        (
            "crates/fab/src/lib.rs",
            "pub fn clamped(x: f64) -> f64 {\n\
             \x20   x.max(0.0)\n\
             }\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub fn bug_remote_range(x: f64) -> f64 {\n\
             \x20   1.0 / ppatc_fab::clamped(x)\n\
             }\n",
        ),
    ]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL013");
    assert_eq!(hits.len(), 1, "diagnostics: {:?}", report.diagnostics);
    assert_eq!(hits[0].path, "crates/core/src/lib.rs");
}

#[test]
fn assert_guards_refine_like_if_guards() {
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "/// # Panics\n\
         /// Panics when `x` is not positive.\n\
         pub fn ok_asserted(x: f64) -> f64 {\n\
         \x20   let d = x.max(0.0);\n\
         \x20   assert!(d > 0.0, \"d must be positive\");\n\
         \x20   1.0 / d\n\
         }\n",
    )]);
    let report = ws.lint(false);
    assert!(
        with_code(&report, "PL013").is_empty(),
        "assert!(d > 0.0) proves the divisor non-zero: {:?}",
        report.diagnostics
    );
}

// --- PL014: float domain errors ---------------------------------------------

#[test]
fn domain_error_catches_seeded_bugs() {
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "pub fn bug_sqrt_negative(x: f64) -> f64 {\n\
         \x20   let y = x.min(-1.0);\n\
         \x20   y.sqrt()\n\
         }\n\
         pub fn bug_ln_nonpositive(x: f64) -> f64 {\n\
         \x20   let y = x.min(0.5) - 1.0;\n\
         \x20   y.ln()\n\
         }\n\
         pub fn ok_sqrt_of_square(x: f64) -> f64 {\n\
         \x20   (x * x).sqrt()\n\
         }\n\
         pub fn ok_guarded_sqrt(x: f64) -> f64 {\n\
         \x20   if x < 0.0 {\n\
         \x20       return 0.0;\n\
         \x20   }\n\
         \x20   x.sqrt()\n\
         }\n",
    )]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL014");
    assert_eq!(
        hits.len(),
        2,
        "both seeded domain errors must fire and neither safe fn may: {:?}",
        report.diagnostics
    );
}

// --- PL015: NaN-unsafe comparisons ------------------------------------------

#[test]
fn nan_comparison_catches_seeded_bugs() {
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "pub fn bug_float_eq(a: f64, b: f64) -> bool {\n\
         \x20   a == b\n\
         }\n\
         pub fn bug_partial_cmp(a: f64, b: f64) -> core::cmp::Ordering {\n\
         \x20   a.partial_cmp(&b).unwrap()\n\
         }\n\
         pub fn ok_guarded_eq(a: f64, b: f64) -> bool {\n\
         \x20   if a.is_nan() || b.is_nan() {\n\
         \x20       return false;\n\
         \x20   }\n\
         \x20   a == b\n\
         }\n\
         pub fn ok_total_cmp(a: f64, b: f64) -> core::cmp::Ordering {\n\
         \x20   a.total_cmp(&b)\n\
         }\n",
    )]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL015");
    assert_eq!(
        hits.len(),
        2,
        "the raw == and the partial_cmp().unwrap() must fire; the guarded \
         and total_cmp forms must not: {:?}",
        report.diagnostics
    );
    assert!(hits
        .iter()
        .all(|d| d.severity == ppatc_lint::Severity::Warn));
}

// --- PL016: shared state reachable from workers ------------------------------

const SHARED_DIRECT: &str = "static mut HITS: u64 = 0;\n\
     pub fn bug_direct(n: u64) {\n\
     \x20   std::thread::scope(|s| {\n\
     \x20       let mut k = 0;\n\
     \x20       while k < n {\n\
     \x20           s.spawn(|| unsafe { HITS += 1 });\n\
     \x20           k += 1;\n\
     \x20       }\n\
     \x20   });\n\
     }\n";

const SHARED_HELPER: &str = "static mut COUNTER: u64 = 0;\n\
     pub fn bump() {\n\
     \x20   unsafe { COUNTER += 1 };\n\
     }\n";

const SHARED_REMOTE_WORKER: &str = "pub fn bug_transitive() {\n\
     \x20   std::thread::scope(|s| {\n\
     \x20       s.spawn(|| ppatc_fab::bump());\n\
     \x20   });\n\
     }\n";

#[test]
fn shared_state_escape_catches_direct_and_transitive_bugs() {
    let ws = Scratch::new(&[
        ("crates/fab/src/lib.rs", SHARED_HELPER),
        (
            "crates/core/src/lib.rs",
            &format!("{SHARED_DIRECT}{SHARED_REMOTE_WORKER}"),
        ),
    ]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL016");
    assert_eq!(
        hits.len(),
        2,
        "the in-closure touch and the cross-crate worker call must both \
         fire: {:?}",
        report.diagnostics
    );
    assert!(hits.iter().all(|d| d.path == "crates/core/src/lib.rs"));
    assert!(
        hits.iter().any(|d| d.message.contains("COUNTER")),
        "the transitive finding must name the shared state it reaches: {:?}",
        hits
    );
}

#[test]
fn shared_state_untouched_by_workers_is_clean() {
    // The same static mut, but only ever touched outside worker closures.
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "static mut SETUP_DONE: bool = false;\n\
         pub fn init() {\n\
         \x20   unsafe { SETUP_DONE = true };\n\
         }\n\
         pub fn fan_out(xs: &[f64]) -> f64 {\n\
         \x20   let mut total = 0.0;\n\
         \x20   std::thread::scope(|_s| {\n\
         \x20       total = xs.len() as f64;\n\
         \x20   });\n\
         \x20   total\n\
         }\n",
    )]);
    let report = ws.lint(false);
    assert!(
        with_code(&report, "PL016").is_empty(),
        "no worker ever reaches SETUP_DONE: {:?}",
        report.diagnostics
    );
}

// --- PL017: unwind boundaries -------------------------------------------------

#[test]
fn unwind_boundary_catches_seeded_bugs() {
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "pub fn bug_push_across_unwind(xs: &[f64]) -> Vec<f64> {\n\
         \x20   let mut acc = Vec::new();\n\
         \x20   for x in xs {\n\
         \x20       let _ = std::panic::catch_unwind(|| acc.push(*x));\n\
         \x20   }\n\
         \x20   acc\n\
         }\n\
         pub fn bug_assign_across_unwind(n: u64) -> u64 {\n\
         \x20   let mut total = 0;\n\
         \x20   let _ = std::panic::catch_unwind(|| {\n\
         \x20       total += n;\n\
         \x20   });\n\
         \x20   total\n\
         }\n\
         pub fn ok_acknowledged(n: u64) -> u64 {\n\
         \x20   let mut total = 0;\n\
         \x20   let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {\n\
         \x20       total += n;\n\
         \x20   }));\n\
         \x20   total\n\
         }\n\
         pub fn ok_local_only() {\n\
         \x20   let _ = std::panic::catch_unwind(|| {\n\
         \x20       let mut local = Vec::new();\n\
         \x20       local.push(1);\n\
         \x20   });\n\
         }\n",
    )]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL017");
    assert_eq!(
        hits.len(),
        2,
        "both unacknowledged captures must fire; AssertUnwindSafe and \
         closure-local state must not: {:?}",
        report.diagnostics
    );
    assert!(hits
        .iter()
        .all(|d| d.severity == ppatc_lint::Severity::Warn));
}

// --- widening, caching, and total-workspace robustness ------------------------

#[test]
fn widening_terminates_on_growing_accumulators() {
    // Without widening, the doubling accumulator's interval never
    // converges; with it, analysis terminates and the nonzero fact
    // survives, so the final division is clean.
    let ws = Scratch::new(&[(
        "crates/core/src/lib.rs",
        "pub fn ok_doubling(n: u64) -> f64 {\n\
         \x20   let mut x = 1.0;\n\
         \x20   let mut i = 0;\n\
         \x20   while i < n {\n\
         \x20       x = x * 2.0;\n\
         \x20       i += 1;\n\
         \x20   }\n\
         \x20   1.0 / x\n\
         }\n\
         pub fn bug_draining(n: u64) -> f64 {\n\
         \x20   let mut x = 4.0;\n\
         \x20   let mut i = 0;\n\
         \x20   while i < n {\n\
         \x20       x = x - 1.0;\n\
         \x20       i += 1;\n\
         \x20   }\n\
         \x20   1.0 / x\n\
         }\n",
    )]);
    let report = ws.lint(false);
    let hits = with_code(&report, "PL013");
    assert_eq!(
        hits.len(),
        1,
        "the doubling loop stays nonzero; the draining loop widens down \
         through zero: {:?}",
        report.diagnostics
    );
    assert!(hits[0].message.contains("admits zero"));
}

#[test]
fn interval_and_concurrency_findings_survive_a_warm_cache() {
    let files: &[(&str, &str)] = &[
        ("crates/fab/src/lib.rs", SHARED_HELPER),
        (
            "crates/core/src/lib.rs",
            "pub fn bug_div(x: f64) -> f64 {\n\
             \x20   1.0 / x.max(0.0)\n\
             }\n\
             pub fn bug_worker() {\n\
             \x20   std::thread::scope(|s| {\n\
             \x20       s.spawn(|| ppatc_fab::bump());\n\
             \x20   });\n\
             }\n",
        ),
    ];
    let ws = Scratch::new(files);
    let cold = ws.lint(true);
    let warm = ws.lint(true);
    assert!(warm.cache_hits > 0, "second run must hit the cache");
    let render = |r: &Report| {
        r.diagnostics
            .iter()
            .map(ppatc_lint::Diagnostic::json)
            .collect::<Vec<_>>()
            .join(",")
    };
    assert_eq!(
        render(&cold),
        render(&warm),
        "cached PL013 and recomputed PL016 findings must both be \
         byte-identical on a warm run"
    );
    assert_eq!(with_code(&cold, "PL013").len(), 1);
    assert_eq!(with_code(&cold, "PL016").len(), 1);
}

#[test]
fn every_workspace_file_analyzes_without_panicking() {
    // Run the full per-file + interprocedural pipeline over each real
    // workspace file in isolation: the interval pass must handle every fn
    // body the parser produces, whatever its shape.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    assert!(files.len() > 50, "expected a real workspace to sweep");
    for path in files {
        let src = fs::read_to_string(&path).expect("readable source");
        let rel = path
            .strip_prefix(&root)
            .expect("workspace-relative")
            .to_string_lossy()
            .replace('\\', "/");
        // The value is the absence of a panic; findings are asserted by
        // the self-lint gate, not here.
        let _ = ppatc_lint::lint_source(&rel, &src);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}
