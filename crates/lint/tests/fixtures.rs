//! Seeded-fixture tests: every rule in the catalog must fire on a minimal
//! violating source, stay quiet on the corrected form, and honour the
//! `ppatc-lint: allow(...)` suppression syntax.

use ppatc_lint::lexer::{self, TokenKind};
use ppatc_lint::lint_source;

fn codes(path: &str, src: &str) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = lint_source(path, src).into_iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

// -----------------------------------------------------------------------
// PL001: raw-unit-api
// -----------------------------------------------------------------------

#[test]
fn pl001_fires_on_bare_f64_in_unit_crate() {
    let src = "pub fn embodied_carbon(area: f64) -> f64 { area * 2.0 }\n";
    assert_eq!(codes("crates/core/src/x.rs", src), vec!["PL001"]);
}

#[test]
fn pl001_ignores_non_unit_crates() {
    let src = "pub fn embodied_carbon(area: f64) -> f64 { area * 2.0 }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl001_accepts_unit_named_and_dimensionless_signatures() {
    let src = "pub fn carbon_grams(area_mm2: f64, yield_fraction: f64) -> f64 { area_mm2 * yield_fraction }\n";
    assert!(codes("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn pl001_ignores_private_fns() {
    let src = "fn helper(x: f64) -> f64 { x }\n";
    assert!(codes("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn pl001_reports_params_at_the_signature_line() {
    // One allow-comment above a multi-line signature must cover every
    // parameter, so all findings anchor at the `pub fn` line.
    let src = "pub fn blend(\n    a: f64,\n    b: f64,\n) -> f64 {\n    a + b\n}\n";
    let diags = lint_source("crates/core/src/x.rs", src);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.line == 1), "diags: {diags:?}");
}

// -----------------------------------------------------------------------
// PL002: panic-in-lib
// -----------------------------------------------------------------------

#[test]
fn pl002_fires_on_unwrap_in_lib_code() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002"]);
}

#[test]
fn pl002_fires_on_panic_macro() {
    let src = "pub fn f() { panic!(\"boom\"); }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002"]);
}

#[test]
fn pl002_exempts_documented_panics_contract() {
    let src = "/// Grabs the value.\n///\n/// # Panics\n///\n/// If `v` is `None`.\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl002_ignores_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(1, 1); Some(1).unwrap(); }\n}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl002_fires_on_unwrap_in_doc_example() {
    let src = "/// ```\n/// let x = compute().unwrap();\n/// ```\npub fn compute() -> Option<u32> { None }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002"]);
}

#[test]
fn pl002_ignores_unwrap_mentioned_in_prose_docs() {
    // Outside a code fence, ".unwrap(" is prose, not a doc-test body.
    let src = "/// Never calls `.unwrap()` internally.\npub fn f() {}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl002_exempts_harness_crates() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/bench/src/x.rs", src).is_empty());
    assert!(codes("src/suite.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL003: must-use-try
// -----------------------------------------------------------------------

#[test]
fn pl003_fires_on_try_fn_without_must_use() {
    let src = "pub fn try_build() -> Result<u32, String> { Ok(1) }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL003"]);
}

#[test]
fn pl003_fires_on_try_fn_not_returning_result() {
    let src = "#[must_use = \"handle it\"]\npub fn try_build() -> u32 { 1 }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL003"]);
}

#[test]
fn pl003_accepts_must_use_result_try_fn() {
    let src = "#[must_use = \"handle it\"]\npub fn try_build() -> Result<u32, String> { Ok(1) }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL004: magic-constant
// -----------------------------------------------------------------------

#[test]
fn pl004_fires_on_uncommented_scientific_literal() {
    let src = "pub fn f() -> f64 { 8.617e-5 }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL004"]);
}

#[test]
fn pl004_accepts_same_line_unit_comment() {
    let src = "pub fn f() -> f64 { 8.617e-5 } // eV/K (Boltzmann)\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl004_accepts_named_const() {
    let src = "const K_B_EV_PER_K: f64 = 8.617e-5;\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl004_ignores_power_of_ten_conversions() {
    // 1e-9, 1.0e6 are unit-prefix conversions, not calibrated constants.
    let src = "pub fn f(x: f64) -> f64 { x * 1e-9 + 1.0e6 }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl004_ignores_table_files_and_units_crate() {
    let src = "pub fn f() -> f64 { 8.617e-5 }\n";
    assert!(codes("crates/device/src/steps.rs", src).is_empty());
    assert!(codes("crates/units/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL005: non-exhaustive-error
// -----------------------------------------------------------------------

#[test]
fn pl005_fires_on_exhaustive_pub_error_enum() {
    let src = "pub enum ParseError { Bad }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL005"]);
}

#[test]
fn pl005_accepts_non_exhaustive_error_enum() {
    let src = "#[non_exhaustive]\npub enum ParseError { Bad }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl005_ignores_private_and_non_error_enums() {
    let src = "enum ParseError { Bad }\npub enum Mode { Fast }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// Suppression
// -----------------------------------------------------------------------

#[test]
fn allow_comment_on_line_above_suppresses() {
    let src = "// ppatc-lint: allow(panic-in-lib) — fixture\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn allow_comment_on_same_line_suppresses() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() } // ppatc-lint: allow(panic-in-lib)\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn allow_all_suppresses_every_rule() {
    let src = "// ppatc-lint: allow(all)\npub enum ParseError { Bad }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    // The unwrap still fires, and the mismatched directive is itself
    // stale, so PL008 rides along.
    let src =
        "// ppatc-lint: allow(magic-constant)\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002", "PL008"]);
}

#[test]
fn allow_comment_does_not_leak_past_the_next_code_line() {
    // The directive's window ends at `ok()`, so the unwrap two lines down
    // fires — and the directive, suppressing nothing, draws PL008.
    let src = "// ppatc-lint: allow(panic-in-lib)\npub fn ok() {}\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002", "PL008"]);
}

#[test]
fn unused_allow_all_is_itself_flagged() {
    // A blanket allow(all) over clean code suppresses nothing. Before the
    // self-suppression fix the directive swallowed its own PL008 report
    // (allow(all) matched the unused-allow rule too); now only a *different*
    // directive can waive it.
    let src = "// ppatc-lint: allow(all)\npub fn ok() {}\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL008"]);
}

#[test]
fn unused_allow_of_unused_allow_is_itself_flagged() {
    // Same self-suppression hazard, spelled directly.
    let src = "// ppatc-lint: allow(unused-allow)\npub fn ok() {}\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL008"]);
}

#[test]
fn used_allow_all_stays_exempt_from_pl008() {
    // allow(all) that genuinely suppresses a finding is used, not stale.
    let src = "// ppatc-lint: allow(all)\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL010: hash-order-escape
// -----------------------------------------------------------------------

#[test]
fn pl010_fires_on_hashmap_iteration_into_a_string() {
    let src = "use std::collections::HashMap;\n\
               pub fn render(totals: &HashMap<String, f64>) -> String {\n\
                   let mut out = String::new();\n\
                   for (k, _v) in totals.iter() {\n\
                       out.push_str(k);\n\
                   }\n\
                   out\n\
               }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL010"]);
}

#[test]
fn pl010_fires_on_unsorted_collect_returned_from_a_hashed_source() {
    let src = "use std::collections::HashMap;\n\
               pub fn keys_of(m: &HashMap<String, u32>) -> Vec<String> {\n\
                   m.keys().cloned().collect()\n\
               }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL010"]);
}

#[test]
fn pl010_accepts_sorted_collect() {
    let src = "use std::collections::HashMap;\n\
               pub fn keys_of(m: &HashMap<String, u32>) -> Vec<String> {\n\
                   let mut keys: Vec<String> = m.keys().cloned().collect();\n\
                   keys.sort();\n\
                   keys\n\
               }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl010_accepts_btreemap_iteration() {
    let src = "use std::collections::BTreeMap;\n\
               pub fn render(totals: &BTreeMap<String, f64>) -> String {\n\
                   let mut out = String::new();\n\
                   for (k, _v) in totals.iter() {\n\
                       out.push_str(k);\n\
                   }\n\
                   out\n\
               }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL012: float-reduction-order
// -----------------------------------------------------------------------

#[test]
fn pl012_fires_on_arrival_order_float_reduction() {
    let src = "pub fn total(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {\n\
                   let mut sum = 0.0;\n\
                   while let Ok(x) = rx.recv() {\n\
                       sum += x;\n\
                   }\n\
                   sum\n\
               }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL012"]);
}

#[test]
fn pl012_exempts_the_par_map_indexed_idiom() {
    let src = "pub fn par_map_indexed_total(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {\n\
                   let mut sum = 0.0;\n\
                   while let Ok(x) = rx.recv() {\n\
                       sum += x;\n\
                   }\n\
                   sum\n\
               }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// Golden finding shape: the --json schema is pinned byte-for-byte.
// -----------------------------------------------------------------------

#[test]
fn json_finding_shape_is_stable() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let diags = lint_source("crates/device/src/x.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].json(),
        "{\"code\":\"PL002\",\"rule\":\"panic-in-lib\",\"severity\":\"deny\",\
         \"path\":\"crates/device/src/x.rs\",\"line\":1,\"col\":37,\
         \"message\":\"`.unwrap()` in non-test library code; document a `# Panics` \
         contract on `fn f` or return a Result\"}"
    );
}

// -----------------------------------------------------------------------
// Lexer edge cases
// -----------------------------------------------------------------------

#[test]
fn lexer_handles_nested_block_comments() {
    let toks = lexer::lex("/* outer /* inner */ still comment */ fn f() {}");
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert!(toks[0].text.contains("inner"));
    assert_eq!(toks[1].text, "fn");
}

#[test]
fn lexer_keeps_unwrap_inside_raw_string_as_a_string() {
    // A raw string containing `unwrap(` must not look like a call.
    let src = r####"pub fn f() -> &'static str { r#"x.unwrap()"# }"####;
    let toks = lexer::lex(src);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Str && t.text.contains("unwrap")));
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn lexer_separates_lifetimes_from_char_literals() {
    let toks = lexer::lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
}

#[test]
fn lexer_reads_float_exponents_as_one_number() {
    let toks = lexer::lex("let x = 3.6e-6;");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Number && t.text == "3.6e-6"));
}

#[test]
fn lexer_does_not_eat_method_calls_on_integers() {
    let toks = lexer::lex("let x = 1.max(2);");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Number && t.text == "1"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "max"));
}

#[test]
fn lexer_tracks_line_and_column() {
    let toks = lexer::lex("fn a() {}\nfn b() {}");
    let b = toks.iter().find(|t| t.text == "b").expect("ident b");
    assert_eq!((b.line, b.col), (2, 4));
}

#[test]
fn cfg_test_region_spans_the_whole_module() {
    let src = "pub fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper(v: Option<u32>) -> u32 {\n        v.unwrap()\n    }\n}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}
