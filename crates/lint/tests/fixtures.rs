//! Seeded-fixture tests: every rule in the catalog must fire on a minimal
//! violating source, stay quiet on the corrected form, and honour the
//! `ppatc-lint: allow(...)` suppression syntax.

use ppatc_lint::lexer::{self, TokenKind};
use ppatc_lint::lint_source;

fn codes(path: &str, src: &str) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = lint_source(path, src).into_iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

// -----------------------------------------------------------------------
// PL001: raw-unit-api
// -----------------------------------------------------------------------

#[test]
fn pl001_fires_on_bare_f64_in_unit_crate() {
    let src = "pub fn embodied_carbon(area: f64) -> f64 { area * 2.0 }\n";
    assert_eq!(codes("crates/core/src/x.rs", src), vec!["PL001"]);
}

#[test]
fn pl001_ignores_non_unit_crates() {
    let src = "pub fn embodied_carbon(area: f64) -> f64 { area * 2.0 }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl001_accepts_unit_named_and_dimensionless_signatures() {
    let src = "pub fn carbon_grams(area_mm2: f64, yield_fraction: f64) -> f64 { area_mm2 * yield_fraction }\n";
    assert!(codes("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn pl001_ignores_private_fns() {
    let src = "fn helper(x: f64) -> f64 { x }\n";
    assert!(codes("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn pl001_reports_params_at_the_signature_line() {
    // One allow-comment above a multi-line signature must cover every
    // parameter, so all findings anchor at the `pub fn` line.
    let src = "pub fn blend(\n    a: f64,\n    b: f64,\n) -> f64 {\n    a + b\n}\n";
    let diags = lint_source("crates/core/src/x.rs", src);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.line == 1), "diags: {diags:?}");
}

// -----------------------------------------------------------------------
// PL002: panic-in-lib
// -----------------------------------------------------------------------

#[test]
fn pl002_fires_on_unwrap_in_lib_code() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002"]);
}

#[test]
fn pl002_fires_on_panic_macro() {
    let src = "pub fn f() { panic!(\"boom\"); }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002"]);
}

#[test]
fn pl002_exempts_documented_panics_contract() {
    let src = "/// Grabs the value.\n///\n/// # Panics\n///\n/// If `v` is `None`.\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl002_ignores_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(1, 1); Some(1).unwrap(); }\n}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl002_fires_on_unwrap_in_doc_example() {
    let src = "/// ```\n/// let x = compute().unwrap();\n/// ```\npub fn compute() -> Option<u32> { None }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002"]);
}

#[test]
fn pl002_ignores_unwrap_mentioned_in_prose_docs() {
    // Outside a code fence, ".unwrap(" is prose, not a doc-test body.
    let src = "/// Never calls `.unwrap()` internally.\npub fn f() {}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl002_exempts_harness_crates() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/bench/src/x.rs", src).is_empty());
    assert!(codes("src/suite.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL003: must-use-try
// -----------------------------------------------------------------------

#[test]
fn pl003_fires_on_try_fn_without_must_use() {
    let src = "pub fn try_build() -> Result<u32, String> { Ok(1) }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL003"]);
}

#[test]
fn pl003_fires_on_try_fn_not_returning_result() {
    let src = "#[must_use = \"handle it\"]\npub fn try_build() -> u32 { 1 }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL003"]);
}

#[test]
fn pl003_accepts_must_use_result_try_fn() {
    let src = "#[must_use = \"handle it\"]\npub fn try_build() -> Result<u32, String> { Ok(1) }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL004: magic-constant
// -----------------------------------------------------------------------

#[test]
fn pl004_fires_on_uncommented_scientific_literal() {
    let src = "pub fn f() -> f64 { 8.617e-5 }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL004"]);
}

#[test]
fn pl004_accepts_same_line_unit_comment() {
    let src = "pub fn f() -> f64 { 8.617e-5 } // eV/K (Boltzmann)\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl004_accepts_named_const() {
    let src = "const K_B_EV_PER_K: f64 = 8.617e-5;\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl004_ignores_power_of_ten_conversions() {
    // 1e-9, 1.0e6 are unit-prefix conversions, not calibrated constants.
    let src = "pub fn f(x: f64) -> f64 { x * 1e-9 + 1.0e6 }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl004_ignores_table_files_and_units_crate() {
    let src = "pub fn f() -> f64 { 8.617e-5 }\n";
    assert!(codes("crates/device/src/steps.rs", src).is_empty());
    assert!(codes("crates/units/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// PL005: non-exhaustive-error
// -----------------------------------------------------------------------

#[test]
fn pl005_fires_on_exhaustive_pub_error_enum() {
    let src = "pub enum ParseError { Bad }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL005"]);
}

#[test]
fn pl005_accepts_non_exhaustive_error_enum() {
    let src = "#[non_exhaustive]\npub enum ParseError { Bad }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn pl005_ignores_private_and_non_error_enums() {
    let src = "enum ParseError { Bad }\npub enum Mode { Fast }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

// -----------------------------------------------------------------------
// Suppression
// -----------------------------------------------------------------------

#[test]
fn allow_comment_on_line_above_suppresses() {
    let src = "// ppatc-lint: allow(panic-in-lib) — fixture\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn allow_comment_on_same_line_suppresses() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() } // ppatc-lint: allow(panic-in-lib)\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn allow_all_suppresses_every_rule() {
    let src = "// ppatc-lint: allow(all)\npub enum ParseError { Bad }\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    // The unwrap still fires, and the mismatched directive is itself
    // stale, so PL008 rides along.
    let src =
        "// ppatc-lint: allow(magic-constant)\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002", "PL008"]);
}

#[test]
fn allow_comment_does_not_leak_past_the_next_code_line() {
    // The directive's window ends at `ok()`, so the unwrap two lines down
    // fires — and the directive, suppressing nothing, draws PL008.
    let src = "// ppatc-lint: allow(panic-in-lib)\npub fn ok() {}\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(codes("crates/device/src/x.rs", src), vec!["PL002", "PL008"]);
}

// -----------------------------------------------------------------------
// Lexer edge cases
// -----------------------------------------------------------------------

#[test]
fn lexer_handles_nested_block_comments() {
    let toks = lexer::lex("/* outer /* inner */ still comment */ fn f() {}");
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert!(toks[0].text.contains("inner"));
    assert_eq!(toks[1].text, "fn");
}

#[test]
fn lexer_keeps_unwrap_inside_raw_string_as_a_string() {
    // A raw string containing `unwrap(` must not look like a call.
    let src = r####"pub fn f() -> &'static str { r#"x.unwrap()"# }"####;
    let toks = lexer::lex(src);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Str && t.text.contains("unwrap")));
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}

#[test]
fn lexer_separates_lifetimes_from_char_literals() {
    let toks = lexer::lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
}

#[test]
fn lexer_reads_float_exponents_as_one_number() {
    let toks = lexer::lex("let x = 3.6e-6;");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Number && t.text == "3.6e-6"));
}

#[test]
fn lexer_does_not_eat_method_calls_on_integers() {
    let toks = lexer::lex("let x = 1.max(2);");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Number && t.text == "1"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "max"));
}

#[test]
fn lexer_tracks_line_and_column() {
    let toks = lexer::lex("fn a() {}\nfn b() {}");
    let b = toks.iter().find(|t| t.text == "b").expect("ident b");
    assert_eq!((b.line, b.col), (2, 4));
}

#[test]
fn cfg_test_region_spans_the_whole_module() {
    let src = "pub fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper(v: Option<u32>) -> u32 {\n        v.unwrap()\n    }\n}\n";
    assert!(codes("crates/device/src/x.rs", src).is_empty());
}
