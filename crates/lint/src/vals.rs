//! Flow-sensitive interval abstract interpretation over fn bodies.
//!
//! Every expression is evaluated on a numeric-range lattice: a
//! [`Range`] is `[lo, hi]` plus three predicates — *may be NaN*,
//! *provably a float*, and *provably non-zero*. The top element
//! `[-inf, +inf] · may-be-NaN` means "nothing is known"; rules only fire
//! on ranges that are **known** (at least one finite bound), so the pass
//! is silent-by-default exactly like [`crate::dims`].
//!
//! Ranges are seeded from four sources:
//!
//! * literal values (`0.0` is the point range `[0, 0]`, never NaN),
//! * registry constructors/accessors — an accessor of an inherently
//!   non-negative quantity (`Area`, `Energy`, `Time`, …) yields
//!   `[0, +inf] · not-NaN`; signed quantities (`Voltage`, `Current`)
//!   yield an unbounded but NaN-free float,
//! * guard conditions — `if x > 0.0 { .. }` narrows `x` in the then
//!   branch, `if x <= 0.0 { return .. }` narrows the continuation, and
//!   `!x.is_nan()` / `x.is_finite()` clear the NaN bit,
//! * interprocedural return ranges via the [`Inter`] oracle, so a
//!   `fn zero() -> f64 { 0.0 }` poisons divisions in other crates.
//!
//! Loop back-edges are handled by bounded **widening**: the body is
//! evaluated up to [`WIDEN_ITERS`] times, any variable whose range grew
//! is widened (to `0` when the growth stayed on one side of zero, else to
//! infinity), and a final stabilized evaluation emits the findings. The
//! iteration count is a constant, so termination is unconditional.
//!
//! Three findings come out:
//!
//! * **PL013 `possible-div-by-zero`** — `/` or `%` whose divisor's range
//!   provably admits zero.
//! * **PL014 `float-domain-error`** — `sqrt`/`ln`/`log10`/`log2` on a
//!   possibly-negative range, or `powf` of a possibly-negative base with
//!   a non-integer exponent: all produce NaN.
//! * **PL015 `nan-unsafe-comparison`** — float `==`/`!=` or
//!   `partial_cmp(..).unwrap()` where a side is a proven float not
//!   provably NaN-free; NaN makes `==` silently false and
//!   `partial_cmp` panic, so compare with `f64::total_cmp` or guard
//!   with `is_nan`/`is_finite` first.

use crate::ast::{BinOp, Block, Expr, LitKind, Stmt, UnOp};
use crate::source::FnItem;
use ppatc_units::registry::{MethodRole, REGISTRY};
use std::collections::HashMap;

/// Widening iterations per loop before the stabilized final pass.
const WIDEN_ITERS: usize = 2;

/// A PL013/PL014/PL015 finding, before it is bound to a `Rule`.
#[derive(Clone, Debug)]
pub struct RangeFinding {
    /// Which rule the finding belongs to.
    pub kind: RangeKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// The interval-dataflow rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RangeKind {
    /// PL013: a divisor whose range provably admits zero.
    DivByZero,
    /// PL014: `sqrt`/`ln`/`log10`/`powf` on a possibly-negative range.
    DomainError,
    /// PL015: float `==`/`partial_cmp().unwrap()` on possibly-NaN values.
    NanComparison,
}

/// An abstract numeric range. `lo`/`hi` are inclusive bounds (`±inf` for
/// "unbounded"); the flags refine the interval:
///
/// * `nan` — the value may be NaN (the bounds then describe the non-NaN
///   portion of the value set),
/// * `float` — the value is *provably* an `f64`/`f32` (PL015 only fires
///   on proven floats),
/// * `nonzero` — the value is provably not zero even when the interval
///   spans zero (`if x != 0.0` guards set this without tightening a
///   bound).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Range {
    /// Inclusive lower bound (`-inf` when unbounded).
    pub lo: f64,
    /// Inclusive upper bound (`+inf` when unbounded).
    pub hi: f64,
    /// The value may be NaN.
    pub nan: bool,
    /// The value is provably a float.
    pub float: bool,
    /// The value is provably non-zero.
    pub nonzero: bool,
}

impl Default for Range {
    fn default() -> Self {
        Range::TOP
    }
}

impl Range {
    /// Nothing is known.
    pub const TOP: Range = Range {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        nan: true,
        float: false,
        nonzero: false,
    };

    /// An exact literal value.
    #[must_use]
    pub fn point(v: f64) -> Range {
        Range {
            lo: v,
            hi: v,
            nan: false,
            float: false,
            nonzero: !v.is_nan() && v.abs().to_bits() != 0,
        }
    }

    /// An `f64` about which only float-ness is known (unseeded `f64`
    /// parameters: any value, NaN included).
    #[must_use]
    pub fn float_unknown() -> Range {
        Range {
            float: true,
            ..Range::TOP
        }
    }

    /// An integer-typed value: unbounded but never NaN.
    #[must_use]
    pub fn int_unknown() -> Range {
        Range {
            nan: false,
            ..Range::TOP
        }
    }

    /// A NaN-free float in `[0, +inf]` (non-negative quantity accessors).
    #[must_use]
    pub fn nonneg_float() -> Range {
        Range {
            lo: 0.0,
            hi: f64::INFINITY,
            nan: false,
            float: true,
            nonzero: false,
        }
    }

    /// At least one finite bound: the range carries real information, so
    /// rules may fire on it. `TOP`-like ranges stay silent.
    #[must_use]
    pub fn known(&self) -> bool {
        self.lo.is_finite() || self.hi.is_finite()
    }

    /// The range admits an exact zero.
    #[must_use]
    pub fn zero_possible(&self) -> bool {
        !self.nonzero && self.lo <= 0.0 && self.hi >= 0.0
    }

    /// The range admits a negative value.
    #[must_use]
    pub fn neg_possible(&self) -> bool {
        self.lo < 0.0
    }

    /// The least upper bound of two ranges.
    #[must_use]
    pub fn join(&self, other: &Range) -> Range {
        Range {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            nan: self.nan || other.nan,
            float: self.float && other.float,
            nonzero: self.nonzero && other.nonzero,
        }
    }

    /// Loop widening: a bound that grew jumps to the nearest threshold
    /// (`0`, then `±inf`), so repeated widening reaches a fixed point in
    /// at most two steps per bound.
    #[must_use]
    pub fn widen(&self, grown: &Range) -> Range {
        let lo = if grown.lo < self.lo {
            if grown.lo >= 0.0 {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        } else {
            self.lo
        };
        let hi = if grown.hi > self.hi {
            if grown.hi <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.hi
        };
        Range {
            lo,
            hi,
            nan: self.nan || grown.nan,
            float: self.float && grown.float,
            nonzero: self.nonzero && grown.nonzero,
        }
    }

    /// Renders the range for diagnostics: `[0, +inf]`, `[-2, -2]`, …
    fn render(&self) -> String {
        fn b(v: f64) -> String {
            if v.is_infinite() {
                let sign = if v > 0.0 { "+inf" } else { "-inf" };
                sign.to_string()
            } else {
                format!("{v}")
            }
        }
        format!("[{}, {}]", b(self.lo), b(self.hi))
    }
}

/// The interprocedural oracle: resolves a call to the callee's inferred
/// return range. Implemented by [`crate::summaries`]' fixed-point engine;
/// `None` keeps the evaluation purely intra-procedural.
pub(crate) trait Inter {
    /// `segs(..)` for path calls, `recv.segs[0](..)` when `is_method`.
    fn ret_range(&self, segs: &[String], is_method: bool) -> Range;
}

/// Evaluates one fn body, appending findings to `out` and returning the
/// fn's abstract return range (the join of the tail expression and every
/// `return` expression).
pub(crate) fn eval_fn(
    seed: HashMap<String, Range>,
    block: &Block,
    inter: Option<&dyn Inter>,
    out: &mut Vec<RangeFinding>,
) -> Range {
    let mut cx = Checker {
        env: seed,
        rets: Vec::new(),
        inter,
        out,
        quiet: 0,
    };
    let tail = cx.eval_block(block);
    cx.rets.iter().fold(tail, |a, r| a.join(r))
}

/// Seeds the range environment from fn parameters: `f64`/`f32` become
/// unbounded-but-proven floats, integer types become NaN-free unknowns,
/// everything else stays top. Bounds are never assumed from types — a
/// caller may pass any value — so parameter-derived findings require a
/// guard or arithmetic evidence inside the body.
pub(crate) fn seed_params(f: &FnItem) -> HashMap<String, Range> {
    const INT_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    let mut env = HashMap::new();
    for p in &f.params {
        if p.name == "self" || p.name == "_" {
            continue;
        }
        if p.ty.iter().any(|t| t == "f64" || t == "f32") {
            env.insert(p.name.clone(), Range::float_unknown());
        } else if p.ty.iter().any(|t| INT_TYPES.contains(&t.as_str())) {
            env.insert(p.name.clone(), Range::int_unknown());
        }
    }
    env
}

/// Quantity types whose values are non-negative by construction in this
/// workspace (capacities, areas, energies, …). Signed quantities —
/// `Voltage`, `Current` (margins go negative) — are deliberately absent.
const NONNEG_TYPES: &[&str] = &[
    "Energy",
    "Power",
    "EnergyArea",
    "Time",
    "Frequency",
    "Length",
    "Area",
    "Volume",
    "CarbonMass",
    "CarbonIntensity",
    "CarbonArea",
    "CarbonPerEnergyArea",
    "CarbonDelay",
    "Charge",
    "Capacitance",
    "Resistance",
];

/// The result range of a registry accessor, by method name (accessor
/// names are unique across the registry). `None` when `method` is not an
/// accessor.
fn accessor_range(method: &str) -> Option<Range> {
    for spec in REGISTRY {
        if spec
            .methods
            .iter()
            .any(|m| m.name == method && m.role == MethodRole::Accessor)
        {
            return Some(if NONNEG_TYPES.contains(&spec.type_name) {
                Range::nonneg_float()
            } else {
                Range {
                    nan: false,
                    float: true,
                    ..Range::TOP
                }
            });
        }
    }
    None
}

struct Checker<'a> {
    env: HashMap<String, Range>,
    /// Ranges of `return` expressions seen so far.
    rets: Vec<Range>,
    /// The interprocedural oracle, when running under the summary engine.
    inter: Option<&'a dyn Inter>,
    out: &'a mut Vec<RangeFinding>,
    /// Depth of finding suppression (widening pre-passes re-evaluate loop
    /// bodies; only the stabilized final pass reports).
    quiet: usize,
}

impl Checker<'_> {
    fn finding(&mut self, kind: RangeKind, line: u32, col: u32, message: String) {
        if self.quiet == 0 {
            self.out.push(RangeFinding {
                kind,
                line,
                col,
                message,
            });
        }
    }

    fn eval_block(&mut self, block: &Block) -> Range {
        let mut last = Range::TOP;
        for (i, stmt) in block.stmts.iter().enumerate() {
            match stmt {
                Stmt::Let {
                    names, ty, init, ..
                } => {
                    let mut val = match init {
                        Some(e) => self.eval(e),
                        None => Range::TOP,
                    };
                    if names.len() == 1 {
                        if ty
                            .as_ref()
                            .is_some_and(|ts| ts.iter().any(|t| t == "f64" || t == "f32"))
                        {
                            val.float = true;
                        }
                        self.env.insert(names[0].clone(), val);
                    } else {
                        for name in names {
                            self.env.insert(name.clone(), Range::TOP);
                        }
                    }
                    last = Range::TOP;
                }
                Stmt::Expr { expr, semi } => {
                    let v = self.eval(expr);
                    last = if *semi || i + 1 != block.stmts.len() {
                        Range::TOP
                    } else {
                        v
                    };
                }
                Stmt::Item { .. } => last = Range::TOP,
            }
        }
        last
    }

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, expr: &Expr) -> Range {
        match expr {
            Expr::Lit { kind, text, .. } => match kind {
                LitKind::Number => {
                    crate::dims::literal_value(text).map_or(Range::TOP, Range::point)
                }
                _ => Range::TOP,
            },
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.env.get(&segs[0]).copied().unwrap_or(Range::TOP)
                } else {
                    Range::TOP
                }
            }
            Expr::Unary { op, expr, .. } => {
                let v = self.eval(expr);
                match op {
                    UnOp::Neg => neg_range(v),
                    UnOp::Not => Range::TOP,
                    UnOp::Deref | UnOp::Ref => v,
                }
            }
            Expr::Binary { op, lhs, rhs, span } => self.binary(*op, lhs, rhs, span.line, span.col),
            Expr::Call { callee, args, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.len() >= 2
                        && (segs[segs.len() - 2] == "f64" || segs[segs.len() - 2] == "f32")
                    {
                        // `f64::from(x)` is an exact widening conversion.
                        if segs[segs.len() - 1] == "from" && args.len() == 1 {
                            let v = self.eval(&args[0]);
                            return Range { float: true, ..v };
                        }
                    }
                    // Wrappers that pass their single operand through.
                    if args.len() == 1
                        && matches!(
                            segs[segs.len() - 1].as_str(),
                            "AssertUnwindSafe" | "Some" | "Ok" | "Box"
                        )
                    {
                        return self.eval(&args[0]);
                    }
                }
                for a in args {
                    self.eval(a);
                }
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(inter) = self.inter {
                        return inter.ret_range(segs, false);
                    }
                }
                Range::TOP
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                // `a.partial_cmp(&b).unwrap()` — checked structurally so
                // the operand ranges are inspected exactly once.
                if matches!(method.as_str(), "unwrap" | "expect") {
                    if let Expr::MethodCall {
                        recv: cmp_recv,
                        method: cmp_method,
                        args: cmp_args,
                        span: cmp_span,
                    } = recv.as_ref()
                    {
                        if cmp_method == "partial_cmp" && cmp_args.len() == 1 {
                            for a in args {
                                self.eval(a);
                            }
                            let l = self.eval(cmp_recv);
                            let r = self.eval(&cmp_args[0]);
                            self.check_nan_cmp("partial_cmp", l, r, cmp_span.line, cmp_span.col);
                            return Range::TOP;
                        }
                    }
                }
                let rv = self.eval(recv);
                let arg_ranges: Vec<Range> = args.iter().map(|a| self.eval(a)).collect();
                if let Some(v) = self.method_call(rv, method, &arg_ranges, span.line, span.col) {
                    return v;
                }
                if let Some(inter) = self.inter {
                    return inter.ret_range(std::slice::from_ref(method), true);
                }
                Range::TOP
            }
            Expr::Field { recv, .. } => {
                self.eval(recv);
                Range::TOP
            }
            Expr::Index { recv, index, .. } => {
                self.eval(recv);
                self.eval(index);
                Range::TOP
            }
            Expr::Cast { expr, ty, .. } => {
                let v = self.eval(expr);
                if ty.iter().any(|t| t == "f64" || t == "f32") {
                    Range { float: true, ..v }
                } else {
                    // Casting to an integer truncates (NaN becomes 0).
                    Range {
                        nan: false,
                        float: false,
                        nonzero: false,
                        ..v
                    }
                }
            }
            Expr::Try { expr, .. } => {
                self.eval(expr);
                Range::TOP
            }
            Expr::Tuple { items, group, .. } => {
                let vals: Vec<Range> = items.iter().map(|e| self.eval(e)).collect();
                if *group && vals.len() == 1 {
                    vals[0]
                } else {
                    Range::TOP
                }
            }
            Expr::Array { items, .. } => {
                for e in items {
                    self.eval(e);
                }
                Range::TOP
            }
            Expr::Block { block, .. } => self.eval_block(block),
            Expr::If {
                cond, then, els, ..
            } => {
                self.eval(cond);
                let saved = self.env.clone();
                refine(&mut self.env, cond, true);
                let tv = self.eval_block(then);
                let tdiv = block_diverges(then);
                let tenv = std::mem::replace(&mut self.env, saved);
                refine(&mut self.env, cond, false);
                let (ev, ediv) = match els {
                    Some(e) => (Some(self.eval(e)), expr_diverges(e)),
                    None => (None, false),
                };
                let eenv = std::mem::take(&mut self.env);
                self.env = match (tdiv, ediv) {
                    (true, _) => eenv,
                    (false, true) => tenv,
                    (false, false) => join_envs(&tenv, &eenv),
                };
                match (ev, tdiv, ediv) {
                    (Some(ev), false, false) => tv.join(&ev),
                    (Some(ev), true, false) => ev,
                    (Some(_), false, true) => tv,
                    _ => Range::TOP,
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.eval(scrutinee);
                let mut joined: Option<Range> = None;
                for a in arms {
                    let v = self.eval(a);
                    joined = Some(match joined {
                        None => v,
                        Some(j) => j.join(&v),
                    });
                }
                joined.unwrap_or(Range::TOP)
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.eval(h);
                }
                let before = self.env.clone();
                // Widening pre-passes: findings off, ranges stabilize.
                self.quiet += 1;
                for _ in 0..WIDEN_ITERS {
                    let snapshot = self.env.clone();
                    if let Some(h) = head {
                        refine(&mut self.env, h, true);
                    }
                    self.eval_block(body);
                    let mut stable = true;
                    for (name, prev) in &snapshot {
                        let cur = self.env.get(name).copied().unwrap_or(Range::TOP);
                        if cur != *prev {
                            self.env.insert(name.clone(), prev.widen(&cur));
                            stable = false;
                        }
                    }
                    if stable {
                        break;
                    }
                }
                self.quiet -= 1;
                // Stabilized pass: findings on.
                if let Some(h) = head {
                    refine(&mut self.env, h, true);
                }
                self.eval_block(body);
                // The loop may run zero times.
                let body_env = std::mem::take(&mut self.env);
                self.env = join_envs(&before, &body_env);
                Range::TOP
            }
            Expr::Closure { params, body, .. } => {
                for p in params {
                    self.env.insert(p.clone(), Range::TOP);
                }
                self.eval(body);
                Range::TOP
            }
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.eval(e);
                }
                if let Some(b) = base {
                    self.eval(b);
                }
                Range::TOP
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.eval(e);
                }
                if let Some(e) = hi {
                    self.eval(e);
                }
                Range::TOP
            }
            Expr::Jump { keyword, expr, .. } => {
                let v = expr.as_ref().map_or(Range::TOP, |e| self.eval(e));
                if *keyword == "return" {
                    self.rets.push(v);
                }
                Range::TOP
            }
            Expr::Macro { cond, .. } => {
                // An `assert!`-family condition (the only macro argument
                // the parser keeps) is guaranteed to hold downstream:
                // check it, then refine the environment as a true guard.
                if let Some(c) = cond {
                    self.eval(c);
                    refine(&mut self.env, c, true);
                }
                Range::TOP
            }
            Expr::Unknown { .. } => Range::TOP,
        }
    }

    /// Binary-operator transfer function; emits PL013 on `/`/`%` with a
    /// provably zero-admitting divisor and PL015 on float `==`/`!=`.
    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32, col: u32) -> Range {
        use BinOp::{
            Add, AddAssign, Assign, Div, DivAssign, Eq, Mul, MulAssign, Ne, Rem, RemAssign, Sub,
            SubAssign,
        };
        if op == Assign {
            let v = self.eval(rhs);
            self.eval(lhs);
            self.assign(lhs, v);
            return Range::TOP;
        }
        let lv = self.eval(lhs);
        let rv = self.eval(rhs);
        let result = match op {
            Add | AddAssign => add_range(lv, rv),
            Sub | SubAssign => add_range(lv, neg_range(rv)),
            Mul | MulAssign => mul_range(lv, rv),
            Div | DivAssign | Rem | RemAssign => {
                if rv.zero_possible() && rv.known() {
                    self.finding(
                        RangeKind::DivByZero,
                        line,
                        col,
                        format!(
                            "divisor range {} admits zero; guard it (`if d > 0.0`) or \
                             return a typed error before dividing",
                            rv.render(),
                        ),
                    );
                }
                div_range(lv, rv)
            }
            Eq | Ne => {
                self.check_nan_cmp(op.symbol(), lv, rv, line, col);
                Range::TOP
            }
            _ => Range::TOP,
        };
        if matches!(
            op,
            AddAssign | SubAssign | MulAssign | DivAssign | RemAssign
        ) {
            self.assign(lhs, result);
            return Range::TOP;
        }
        result
    }

    /// Writes an assignment target's new range back into the environment
    /// (simple variables only; fields and indexes are not tracked).
    fn assign(&mut self, lhs: &Expr, v: Range) {
        if let Expr::Path { segs, .. } = lhs {
            if segs.len() == 1 {
                self.env.insert(segs[0].clone(), v);
            }
        }
    }

    /// PL015: a float equality (or `partial_cmp().unwrap()`) where a side
    /// is a proven float that may be NaN.
    fn check_nan_cmp(&mut self, what: &str, l: Range, r: Range, line: u32, col: u32) {
        if (l.float && l.nan) || (r.float && r.nan) {
            self.finding(
                RangeKind::NanComparison,
                line,
                col,
                format!(
                    "`{what}` on a float not provably NaN-free; NaN compares unequal \
                     to everything — use f64::total_cmp, or guard with is_nan/is_finite \
                     first"
                ),
            );
        }
    }

    /// Float method transfer functions. `None` when the method is not
    /// modeled (the caller then consults the interprocedural oracle).
    fn method_call(
        &mut self,
        recv: Range,
        method: &str,
        args: &[Range],
        line: u32,
        col: u32,
    ) -> Option<Range> {
        match method {
            "sqrt" => {
                self.check_domain("sqrt", recv, line, col);
                Some(if recv.lo >= 0.0 && !recv.nan {
                    Range {
                        lo: recv.lo.sqrt(),
                        hi: recv.hi.sqrt(),
                        nan: false,
                        float: true,
                        nonzero: recv.nonzero && recv.lo >= 0.0,
                    }
                } else {
                    Range {
                        lo: 0.0,
                        hi: f64::INFINITY,
                        nan: true,
                        float: true,
                        nonzero: false,
                    }
                })
            }
            "ln" | "log10" | "log2" => {
                self.check_domain(method, recv, line, col);
                Some(Range {
                    nan: recv.nan || recv.lo <= 0.0,
                    float: true,
                    ..Range::TOP
                })
            }
            "powf" => {
                if recv.neg_possible()
                    && recv.known()
                    && !args.first().is_some_and(is_integer_point)
                {
                    self.finding(
                        RangeKind::DomainError,
                        line,
                        col,
                        format!(
                            "powf on range {} admits a negative base with a non-integer \
                             exponent, which is NaN; clamp the base or use powi",
                            recv.render(),
                        ),
                    );
                }
                Some(Range {
                    nan: true,
                    float: true,
                    ..Range::TOP
                })
            }
            "powi" => Some(if recv.lo >= 0.0 && !recv.nan {
                Range::nonneg_float()
            } else {
                Range {
                    nan: recv.nan,
                    float: true,
                    ..Range::TOP
                }
            }),
            "exp" | "exp2" => Some(Range {
                lo: 0.0,
                hi: f64::INFINITY,
                nan: recv.nan,
                float: true,
                nonzero: false,
            }),
            "abs" => Some(abs_range(recv)),
            "floor" | "ceil" | "round" | "trunc" => Some(Range {
                lo: lo_add(recv.lo, -1.0),
                hi: hi_add(recv.hi, 1.0),
                nan: recv.nan,
                float: recv.float,
                nonzero: false,
            }),
            "min" => args.first().map(|a| Range {
                lo: recv.lo.min(a.lo),
                hi: recv.hi.min(a.hi),
                nan: recv.nan || a.nan,
                float: recv.float,
                nonzero: recv.nonzero && a.nonzero,
            }),
            "max" => args.first().map(|a| Range {
                lo: recv.lo.max(a.lo),
                hi: recv.hi.max(a.hi),
                nan: recv.nan || a.nan,
                float: recv.float,
                nonzero: recv.nonzero && a.nonzero,
            }),
            "clamp" => {
                // `x.clamp(l, h)` pins the result inside `[l.lo, h.hi]`
                // (NaN passes through, matching f64::clamp).
                if let [l, h] = args {
                    Some(Range {
                        lo: recv.lo.max(l.lo),
                        hi: recv.hi.min(h.hi),
                        nan: recv.nan,
                        float: recv.float || l.float,
                        nonzero: recv.nonzero && l.lo > 0.0,
                    })
                } else {
                    Some(recv)
                }
            }
            "total_cmp" | "partial_cmp" | "is_nan" | "is_finite" | "is_infinite"
            | "is_sign_positive" | "is_sign_negative" => Some(Range::TOP),
            "unwrap_or" => args.first().map(|a| Range::TOP.join(a)),
            "clone" | "to_owned" => Some(recv),
            _ => accessor_range(method),
        }
    }

    /// PL014 for `sqrt`/`ln`/`log10`/`log2`.
    fn check_domain(&mut self, what: &str, recv: Range, line: u32, col: u32) {
        if recv.neg_possible() && recv.known() {
            self.finding(
                RangeKind::DomainError,
                line,
                col,
                format!(
                    "{what} on range {} admits a negative argument, which is NaN; \
                     guard the sign or return a typed error",
                    recv.render(),
                ),
            );
        }
    }
}

/// `-x`: bounds flip, flags survive.
fn neg_range(v: Range) -> Range {
    Range {
        lo: -v.hi,
        hi: -v.lo,
        ..v
    }
}

/// `|x|`.
fn abs_range(v: Range) -> Range {
    let (lo, hi) = if v.lo >= 0.0 {
        (v.lo, v.hi)
    } else if v.hi <= 0.0 {
        (-v.hi, -v.lo)
    } else {
        (0.0, v.hi.max(-v.lo))
    };
    Range {
        lo,
        hi,
        nonzero: v.nonzero,
        ..v
    }
}

/// Endpoint addition that resolves `inf + -inf` conservatively downward.
fn lo_add(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        f64::NEG_INFINITY
    } else {
        s
    }
}

/// Endpoint addition that resolves `inf + -inf` conservatively upward.
fn hi_add(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        f64::INFINITY
    } else {
        s
    }
}

fn add_range(a: Range, b: Range) -> Range {
    // `inf + -inf` at the *value* level is NaN; it can only occur when
    // both operands admit an infinity of opposite signs.
    let mixes_inf = (a.hi == f64::INFINITY && b.lo == f64::NEG_INFINITY)
        || (a.lo == f64::NEG_INFINITY && b.hi == f64::INFINITY);
    Range {
        lo: lo_add(a.lo, b.lo),
        hi: hi_add(a.hi, b.hi),
        nan: a.nan || b.nan || mixes_inf,
        float: a.float || b.float,
        nonzero: false,
    }
}

fn mul_range(a: Range, b: Range) -> Range {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for x in [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi] {
        if x.is_nan() {
            // `0 · inf` at an endpoint: widen that side fully.
            lo = f64::NEG_INFINITY;
            hi = f64::INFINITY;
        } else {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    let mixes_zero_inf = (a.zero_possible() && !b.known()) || (b.zero_possible() && !a.known());
    // Products of tiny non-zero floats underflow to zero — unless one
    // factor has magnitude >= 1, which can only grow the other's
    // magnitude (an exact product at or above the smallest subnormal
    // never rounds to zero).
    let min_abs = |r: &Range| {
        if r.lo > 0.0 {
            r.lo
        } else if r.hi < 0.0 {
            -r.hi
        } else {
            0.0
        }
    };
    Range {
        lo,
        hi,
        nan: a.nan || b.nan || mixes_zero_inf,
        float: a.float || b.float,
        nonzero: a.nonzero && b.nonzero && (min_abs(&a) >= 1.0 || min_abs(&b) >= 1.0),
    }
}

fn div_range(a: Range, b: Range) -> Range {
    if b.zero_possible() || b.lo < 0.0 && b.hi > 0.0 {
        // Division by a range touching or crossing zero: anything.
        return Range {
            float: a.float || b.float,
            ..Range::TOP
        };
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for x in [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi] {
        if x.is_nan() {
            lo = f64::NEG_INFINITY;
            hi = f64::INFINITY;
        } else {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    Range {
        lo,
        hi,
        nan: a.nan || b.nan,
        float: a.float || b.float,
        nonzero: false,
    }
}

/// `true` when the range is a single value that is a mathematical
/// integer (a `powf` exponent that cannot produce NaN from a negative
/// base).
fn is_integer_point(r: &Range) -> bool {
    r.lo.is_finite() && !r.nan && r.lo.to_bits() == r.hi.to_bits() && r.lo.fract() == 0.0
}

/// `true` when the expression unconditionally leaves the enclosing block
/// (`return`/`break`/`continue`, a panicking macro, or a block/if that
/// always does).
fn expr_diverges(e: &Expr) -> bool {
    match e {
        Expr::Jump { .. } => true,
        Expr::Macro { name, .. } => {
            let last = name.rsplit("::").next().unwrap_or(name).trim();
            matches!(last, "panic" | "unreachable" | "todo" | "unimplemented")
        }
        Expr::Block { block, .. } => block_diverges(block),
        Expr::If { then, els, .. } => {
            block_diverges(then) && els.as_ref().is_some_and(|e| expr_diverges(e))
        }
        _ => false,
    }
}

/// `true` when the block unconditionally diverges: some statement (or the
/// tail) always jumps out.
fn block_diverges(b: &Block) -> bool {
    b.stmts.iter().any(|s| match s {
        Stmt::Expr { expr, .. } => expr_diverges(expr),
        Stmt::Let { init, .. } => init.as_ref().is_some_and(expr_diverges),
        Stmt::Item { .. } => false,
    })
}

/// Pointwise join of two branch environments. Only variables present in
/// both survive (branch-local `let`s go out of scope anyway).
fn join_envs(a: &HashMap<String, Range>, b: &HashMap<String, Range>) -> HashMap<String, Range> {
    let mut out = HashMap::new();
    for (k, av) in a {
        if let Some(bv) = b.get(k) {
            out.insert(k.clone(), av.join(bv));
        }
    }
    out
}

/// Refines the environment under the assumption that `cond` evaluated to
/// `assume`. Handles `&&`/`||`/`!`, variable-vs-bound comparisons (both
/// orientations), and `is_nan`/`is_finite` guards. Comparisons evaluating
/// to `true` imply both operands are non-NaN; a *false* ordered
/// comparison implies nothing about NaN (NaN fails every ordering), so
/// the NaN bit survives negative refinement.
fn refine(env: &mut HashMap<String, Range>, cond: &Expr, assume: bool) {
    match cond {
        Expr::Tuple { items, group, .. } if *group && items.len() == 1 => {
            refine(env, &items[0], assume);
        }
        Expr::Unary {
            op: UnOp::Not,
            expr,
            ..
        } => refine(env, expr, !assume),
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
            ..
        } if assume => {
            refine(env, lhs, true);
            refine(env, rhs, true);
        }
        Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
            ..
        } if !assume => {
            refine(env, lhs, false);
            refine(env, rhs, false);
        }
        Expr::Binary { op, lhs, rhs, .. } if op.is_comparison() => {
            if let (Some(name), Some(bound)) = (var_name(lhs), simple_bound(env, rhs)) {
                refine_cmp(env, &name, *op, bound, assume);
            } else if let (Some(name), Some(bound)) = (var_name(rhs), simple_bound(env, lhs)) {
                refine_cmp(env, &name, flip(*op), bound, assume);
            } else if let (Some(name), Some(bound)) = (accessor_var(lhs), simple_bound(env, rhs)) {
                // `x.as_watts() > 0.0` — unit-accessor scales are positive
                // and finite, so comparisons against zero transfer to the
                // receiver (sign and zero-ness are scale-invariant; other
                // bounds are not).
                if zero_point(&bound) {
                    refine_cmp(env, &name, *op, bound, assume);
                }
            } else if let (Some(name), Some(bound)) = (accessor_var(rhs), simple_bound(env, lhs)) {
                if zero_point(&bound) {
                    refine_cmp(env, &name, flip(*op), bound, assume);
                }
            }
        }
        Expr::MethodCall { recv, method, .. } => {
            if let Some(name) = var_name(recv) {
                match (method.as_str(), assume) {
                    // `!x.is_nan()` / `x.is_finite()` prove NaN-freedom.
                    ("is_nan", false) | ("is_finite", true) => {
                        if let Some(r) = env.get_mut(&name) {
                            r.nan = false;
                        }
                    }
                    _ => {}
                }
            }
        }
        _ => {}
    }
}

/// The receiver variable of a zero-argument unit accessor
/// (`x.as_watts()`, `x.as_secs_f64()`); used only for comparisons against
/// zero, where the positive accessor scale cannot change the verdict.
fn accessor_var(e: &Expr) -> Option<String> {
    match e {
        Expr::MethodCall {
            recv, method, args, ..
        } if args.is_empty() && method.starts_with("as_") => var_name(recv),
        _ => None,
    }
}

/// True when the bound is exactly `0.0` (or `-0.0`).
fn zero_point(b: &Range) -> bool {
    !b.nan && b.lo.abs().to_bits() == 0 && b.hi.abs().to_bits() == 0
}

/// The simple-variable name a refinement can key on.
fn var_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Tuple { items, group, .. } if *group && items.len() == 1 => var_name(&items[0]),
        Expr::Unary {
            op: UnOp::Deref | UnOp::Ref,
            expr,
            ..
        } => var_name(expr),
        _ => None,
    }
}

/// A side-effect-free bound for guard refinement: a literal, a negated
/// literal, or an already-tracked variable's range.
fn simple_bound(env: &HashMap<String, Range>, e: &Expr) -> Option<Range> {
    match e {
        Expr::Lit {
            kind: LitKind::Number,
            text,
            ..
        } => crate::dims::literal_value(text).map(Range::point),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
            ..
        } => simple_bound(env, expr).map(neg_range),
        Expr::Tuple { items, group, .. } if *group && items.len() == 1 => {
            simple_bound(env, &items[0])
        }
        Expr::Path { segs, .. } if segs.len() == 1 => env.get(&segs[0]).copied(),
        _ => None,
    }
}

/// Mirrors a comparison so the tracked variable sits on the left.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Applies `name <op> bound == assume` to `name`'s range.
fn refine_cmp(env: &mut HashMap<String, Range>, name: &str, op: BinOp, bound: Range, assume: bool) {
    let Some(r) = env.get_mut(name) else {
        return;
    };
    // Normalize to the op that holds: a false `a < b` means `a >= b` *or
    // a is NaN*, so negative refinement narrows bounds but keeps `nan`.
    let (op, proves_not_nan) = if assume {
        (op, true)
    } else {
        let negated = match op {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            other => other,
        };
        (negated, false)
    };
    match op {
        BinOp::Gt => {
            if bound.lo.is_finite() {
                r.lo = r.lo.max(bound.lo);
                if bound.lo >= 0.0 {
                    r.nonzero = true;
                }
            }
        }
        BinOp::Ge => {
            if bound.lo.is_finite() {
                r.lo = r.lo.max(bound.lo);
                if bound.lo > 0.0 {
                    r.nonzero = true;
                }
            }
        }
        BinOp::Lt => {
            if bound.hi.is_finite() {
                r.hi = r.hi.min(bound.hi);
                if bound.hi <= 0.0 {
                    r.nonzero = true;
                }
            }
        }
        BinOp::Le => {
            if bound.hi.is_finite() {
                r.hi = r.hi.min(bound.hi);
                if bound.hi < 0.0 {
                    r.nonzero = true;
                }
            }
        }
        BinOp::Eq => {
            if bound.lo.is_finite() && bound.lo.to_bits() == bound.hi.to_bits() && !bound.nan {
                *r = Range {
                    float: r.float,
                    ..Range::point(bound.lo)
                };
            }
        }
        BinOp::Ne => {
            // `x != 0.0` holds for NaN too: the bound tightens but the
            // NaN bit must survive — which is exactly why PL015 prefers
            // ordered guards.
            if bound.zero_possible() && bound.lo.to_bits() == bound.hi.to_bits() {
                r.nonzero = true;
            }
            return;
        }
        _ => return,
    }
    if proves_not_nan {
        r.nan = false;
    }
    if r.lo > r.hi {
        // Contradictory guard (dead branch): clamp to a point.
        r.hi = r.lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_join() {
        let a = Range::point(1.0);
        let b = Range::point(-3.0);
        let j = a.join(&b);
        assert!((j.lo + 3.0).abs() < 1e-12 && (j.hi - 1.0).abs() < 1e-12);
        assert!(!j.nan);
        // Both branches are nonzero constants, so the join — despite
        // spanning zero — still proves the value is never zero.
        assert!(j.nonzero);
        assert!(!j.zero_possible());
    }

    #[test]
    fn widen_reaches_fixed_point_in_two_steps() {
        let mut cur = Range::point(1.0);
        // Simulate a loop accumulator that keeps growing upward.
        for step in 0..4 {
            let grown = Range {
                hi: cur.hi + 1.0,
                ..cur
            };
            let next = cur.widen(&grown);
            if step >= 1 {
                assert_eq!(next, cur, "widening must stabilize after two steps");
            }
            cur = next;
        }
        assert_eq!(cur.hi, f64::INFINITY);
        assert!((cur.lo - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abs_and_neg() {
        let v = Range {
            lo: -4.0,
            hi: 2.0,
            nan: false,
            float: true,
            nonzero: false,
        };
        let a = abs_range(v);
        assert!((a.lo).abs() < 1e-12 && (a.hi - 4.0).abs() < 1e-12);
        let n = neg_range(v);
        assert!((n.lo + 2.0).abs() < 1e-12 && (n.hi - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mul_zero_times_unbounded_admits_nan() {
        let zeroish = Range::point(0.0);
        let top = Range::float_unknown();
        assert!(mul_range(zeroish, top).nan);
    }

    #[test]
    fn div_by_crossing_range_is_top() {
        let a = Range::point(1.0);
        let b = Range {
            lo: -1.0,
            hi: 1.0,
            nan: false,
            float: true,
            nonzero: false,
        };
        let q = div_range(a, b);
        assert_eq!(q.lo, f64::NEG_INFINITY);
        assert_eq!(q.hi, f64::INFINITY);
    }
}
