//! The rule catalog.
//!
//! | Code  | Name                   | Severity | Scope |
//! |-------|------------------------|----------|-------|
//! | PL001 | `raw-unit-api`            | deny     | `core`, `fab`, `wafer`, `edram` |
//! | PL002 | `panic-in-lib`            | deny     | all model crates (not `bench`/`suite`) |
//! | PL003 | `must-use-try`            | deny     | whole workspace |
//! | PL004 | `magic-constant`          | warn     | model crates, outside const tables |
//! | PL005 | `non-exhaustive-error`    | deny     | whole workspace |
//! | PL006 | `dimension-mismatch`      | deny     | whole workspace (interprocedural dataflow, [`crate::dims`] + [`crate::summaries`]) |
//! | PL007 | `unit-cast-roundtrip`     | deny     | whole workspace (dataflow, [`crate::dims`]) |
//! | PL008 | `unused-allow`            | warn     | whole workspace (report assembly) |
//! | PL009 | `panic-reachable-from-try`| warn     | workspace call graph ([`crate::callgraph`]) |
//! | PL010 | `hash-order-escape`       | deny     | whole workspace ([`crate::determinism`]) |
//! | PL011 | `wall-clock-in-result`    | warn     | whole workspace (dataflow, [`crate::dims`]) |
//! | PL012 | `float-reduction-order`   | deny     | whole workspace ([`crate::determinism`]) |
//!
//! Every rule can be silenced locally with a
//! `// ppatc-lint: allow(rule-name)` comment on the offending line or the
//! line above it.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::{FnItem, SourceFile};

/// A single lint rule: identity plus a check pass over one file.
pub struct Rule {
    /// Stable diagnostic code.
    pub code: &'static str,
    /// Kebab-case name (used in suppression comments and `--list-rules`).
    pub name: &'static str,
    /// Severity of this rule's findings.
    pub severity: Severity,
    /// One-line description for `--list-rules`.
    pub describes: &'static str,
    check: fn(&Rule, &SourceFile, &mut Vec<Diagnostic>),
}

impl Rule {
    /// Runs the rule over one file, appending findings to `out`.
    pub fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        (self.check)(self, file, out);
    }

    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: String) -> Diagnostic {
        Diagnostic {
            code: self.code,
            rule: self.name,
            severity: self.severity,
            path: file.path.clone(),
            line,
            col,
            message,
        }
    }
}

/// The full rule set, in diagnostic-code order.
pub fn all() -> Vec<Rule> {
    vec![
        Rule {
            code: "PL001",
            name: "raw-unit-api",
            severity: Severity::Deny,
            describes: "pub fn signatures in unit-bearing crates must use ppatc-units \
                        quantities instead of bare f64 (dimensionless ratios exempt)",
            check: raw_unit_api,
        },
        Rule {
            code: "PL002",
            name: "panic-in-lib",
            severity: Severity::Deny,
            describes: "no panic!/unwrap/expect/assert! in non-test library code unless the \
                        enclosing fn documents a `# Panics` contract; no unwrap/expect in \
                        doc examples",
            check: panic_in_lib,
        },
        Rule {
            code: "PL003",
            name: "must-use-try",
            severity: Severity::Deny,
            describes: "every try_* fn must return Result and carry #[must_use]",
            check: must_use_try,
        },
        Rule {
            code: "PL004",
            name: "magic-constant",
            severity: Severity::Warn,
            describes: "scientific-notation float literals outside const tables must name \
                        their unit in a same-line comment",
            check: magic_constant,
        },
        Rule {
            code: "PL005",
            name: "non-exhaustive-error",
            severity: Severity::Deny,
            describes: "public *Error enums must be #[non_exhaustive]",
            check: non_exhaustive_error,
        },
        Rule {
            code: "PL006",
            name: "dimension-mismatch",
            severity: Severity::Deny,
            describes: "additive/comparison operands and constructor arguments must agree \
                        in dimension and unit scale (interprocedural dataflow seeded \
                        from the ppatc-units registry and fn summaries)",
            // Emitted by the interprocedural engine at report assembly.
            check: no_per_file_check,
        },
        Rule {
            code: "PL007",
            name: "unit-cast-roundtrip",
            severity: Severity::Deny,
            describes: "quantity constructor fed a raw value of the right dimension at \
                        the wrong scale, e.g. Energy::from_joules(x.as_picojoules())",
            // Emitted by the PL006 dataflow pass; see dimensional_dataflow.
            check: no_per_file_check,
        },
        Rule {
            code: "PL008",
            name: "unused-allow",
            severity: Severity::Warn,
            describes: "ppatc-lint: allow(...) directives that suppress nothing must be \
                        removed or narrowed",
            // Computed at report assembly, after every other rule has run.
            check: no_per_file_check,
        },
        Rule {
            code: "PL009",
            name: "panic-reachable-from-try",
            severity: Severity::Warn,
            describes: "try_* fns must not transitively reach panic!/unwrap/expect \
                        without a `# Panics` contract on the call path",
            // Computed over the whole-workspace call graph.
            check: no_per_file_check,
        },
        Rule {
            code: "PL010",
            name: "hash-order-escape",
            severity: Severity::Deny,
            describes: "HashMap/HashSet iteration order must not reach an ordered sink \
                        (Vec/String/accumulator/output) without an intervening sort",
            // Computed by the determinism pass over parsed fn bodies.
            check: no_per_file_check,
        },
        Rule {
            code: "PL011",
            name: "wall-clock-in-result",
            severity: Severity::Warn,
            describes: "Instant/SystemTime readings must not flow into ppatc-units \
                        quantities; model results must be a pure function of inputs",
            // Co-emitted by the PL006 interprocedural dataflow.
            check: no_per_file_check,
        },
        Rule {
            code: "PL012",
            name: "float-reduction-order",
            severity: Severity::Deny,
            describes: "float accumulation across thread or channel boundaries must \
                        merge in index order, not arrival order (par_map_indexed idiom)",
            // Computed by the determinism pass over parsed fn bodies.
            check: no_per_file_check,
        },
        Rule {
            code: "PL013",
            name: "possible-div-by-zero",
            severity: Severity::Deny,
            describes: "division or remainder whose divisor's inferred interval \
                        provably admits zero (flow-sensitive ranges seeded from \
                        literals, guards, unit accessors, and return summaries)",
            // Emitted by the interval pass at report assembly.
            check: no_per_file_check,
        },
        Rule {
            code: "PL014",
            name: "float-domain-error",
            severity: Severity::Deny,
            describes: "sqrt/ln/log10/powf applied to an interval that provably \
                        admits a negative argument, which evaluates to NaN",
            // Emitted by the interval pass at report assembly.
            check: no_per_file_check,
        },
        Rule {
            code: "PL015",
            name: "nan-unsafe-comparison",
            severity: Severity::Warn,
            describes: "float ==/!= or partial_cmp().unwrap() on values not provably \
                        NaN-free; use f64::total_cmp or guard with is_nan/is_finite",
            // Emitted by the interval pass at report assembly.
            check: no_per_file_check,
        },
        Rule {
            code: "PL016",
            name: "shared-state-escape",
            severity: Severity::Deny,
            describes: "static mut (non-atomic shared mutable state) reachable from \
                        thread::scope/par_map_indexed worker closures, directly or \
                        through the cross-crate call graph",
            // Computed over the whole-workspace call graph at assembly.
            check: no_per_file_check,
        },
        Rule {
            code: "PL017",
            name: "unwind-boundary",
            severity: Severity::Warn,
            describes: "catch_unwind closures mutating captured state without an \
                        AssertUnwindSafe acknowledgment (panic leaves it half-written)",
            // Computed by the concurrency pass over parsed fn bodies.
            check: no_per_file_check,
        },
    ]
}

/// Placeholder for rules whose findings are produced outside the per-file
/// rule loop (dataflow co-emission, report assembly, call graph).
fn no_per_file_check(_rule: &Rule, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}

// ---------------------------------------------------------------------------
// Diagnostic builders for assembly-emitted rules
// ---------------------------------------------------------------------------

/// Builds a diagnostic for a [`crate::dims::Finding`] from the
/// interprocedural engine: PL006 for dimension mismatches, PL007 for
/// scale roundtrips, PL011 for wall-clock taint.
pub(crate) fn dims_finding_diag(path: &str, f: crate::dims::Finding) -> Diagnostic {
    let (code, rule, severity) = match f.kind {
        crate::dims::FindingKind::DimensionMismatch => {
            ("PL006", "dimension-mismatch", Severity::Deny)
        }
        crate::dims::FindingKind::UnitCastRoundtrip => {
            ("PL007", "unit-cast-roundtrip", Severity::Deny)
        }
        crate::dims::FindingKind::WallClockInResult => {
            ("PL011", "wall-clock-in-result", Severity::Warn)
        }
    };
    Diagnostic {
        code,
        rule,
        severity,
        path: path.to_string(),
        line: f.line,
        col: f.col,
        message: f.message,
    }
}

/// Builds a diagnostic for a [`crate::determinism::DetFinding`] (PL010 or
/// PL012, both deny).
pub(crate) fn det_finding_diag(path: &str, f: crate::determinism::DetFinding) -> Diagnostic {
    let (rule, severity) = match f.code {
        "PL010" => ("hash-order-escape", Severity::Deny),
        _ => ("float-reduction-order", Severity::Deny),
    };
    Diagnostic {
        code: f.code,
        rule,
        severity,
        path: path.to_string(),
        line: f.line,
        col: f.col,
        message: f.message,
    }
}

/// Builds a PL008 `unused-allow` diagnostic (report assembly).
pub(crate) fn unused_allow_diag(path: &str, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic {
        code: "PL008",
        rule: "unused-allow",
        severity: Severity::Warn,
        path: path.to_string(),
        line,
        col,
        message,
    }
}

/// Builds a PL009 `panic-reachable-from-try` diagnostic (call-graph pass).
pub(crate) fn panic_reachable_diag(path: &str, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic {
        code: "PL009",
        rule: "panic-reachable-from-try",
        severity: Severity::Warn,
        path: path.to_string(),
        line,
        col,
        message,
    }
}

/// Builds a diagnostic for a [`crate::vals::RangeFinding`] from the
/// interval pass: PL013 for zero-admitting divisors, PL014 for float
/// domain errors, PL015 for NaN-unsafe comparisons.
pub(crate) fn range_finding_diag(path: &str, f: crate::vals::RangeFinding) -> Diagnostic {
    let (code, rule, severity) = match f.kind {
        crate::vals::RangeKind::DivByZero => ("PL013", "possible-div-by-zero", Severity::Deny),
        crate::vals::RangeKind::DomainError => ("PL014", "float-domain-error", Severity::Deny),
        crate::vals::RangeKind::NanComparison => ("PL015", "nan-unsafe-comparison", Severity::Warn),
    };
    Diagnostic {
        code,
        rule,
        severity,
        path: path.to_string(),
        line: f.line,
        col: f.col,
        message: f.message,
    }
}

/// Builds a diagnostic for a [`crate::concurrency::ConcFinding`]: PL016
/// for shared-state escapes, PL017 for unwind boundaries.
pub(crate) fn conc_finding_diag(path: &str, f: crate::concurrency::ConcFinding) -> Diagnostic {
    let (code, rule, severity) = match f.kind {
        crate::concurrency::ConcKind::SharedStateEscape => {
            ("PL016", "shared-state-escape", Severity::Deny)
        }
        crate::concurrency::ConcKind::UnwindBoundary => {
            ("PL017", "unwind-boundary", Severity::Warn)
        }
    };
    Diagnostic {
        code,
        rule,
        severity,
        path: path.to_string(),
        line: f.line,
        col: f.col,
        message: f.message,
    }
}

// ---------------------------------------------------------------------------
// PL001: raw-unit-api
// ---------------------------------------------------------------------------

/// Crates whose public API must speak in `ppatc-units` quantities.
const UNIT_CRATES: &[&str] = &["core", "fab", "wafer", "edram"];

/// Name segments that mark a value as genuinely dimensionless.
const DIMENSIONLESS: &[&str] = &[
    "activity",
    "alpha",
    "beta",
    "cycles",
    "dies",
    "duty",
    "exponent",
    "factor",
    "factors",
    "frac",
    "fraction",
    "gamma",
    "margin",
    "overhead",
    "percent",
    "prob",
    "probability",
    "quantile",
    "quantiles",
    "ratio",
    "ratios",
    "reps",
    "scale",
    "scales",
    "sensitivity",
    "share",
    "tol",
    "tolerance",
    "util",
    "utilization",
    "weight",
    "weights",
    "yield",
];

/// Name segments that spell the unit out, making a bare `f64` explicit
/// (`from_grams`, `as_months`, `g_per_kwh`, `cell_side_nm`, ...).
const UNIT_NAMED: &[&str] = &[
    "amperes",
    "celsius",
    "cm",
    "cm2",
    "coulombs",
    "day",
    "days",
    "dollars",
    "ev",
    "farads",
    "fc",
    "ff",
    "fj",
    "ghz",
    "gram",
    "grams",
    "hour",
    "hours",
    "hz",
    "joule",
    "joules",
    "kelvin",
    "kg",
    "khz",
    "kilograms",
    "kwh",
    "liter",
    "liters",
    "litre",
    "litres",
    "m2",
    "mhz",
    "minutes",
    "mj",
    "mm",
    "mm2",
    "month",
    "months",
    "mv",
    "mw",
    "nj",
    "nm",
    "ns",
    "nw",
    "ohm",
    "ohms",
    "pf",
    "pj",
    "ps",
    "sec",
    "second",
    "seconds",
    "secs",
    "tonnes",
    "ua",
    "um",
    "um2",
    "us",
    "usd",
    "uw",
    "volt",
    "volts",
    "watt",
    "watts",
];

fn name_is_unit_explicit(name: &str) -> bool {
    name.split('_').any(|seg| {
        let seg = seg.to_ascii_lowercase();
        DIMENSIONLESS.contains(&seg.as_str()) || UNIT_NAMED.contains(&seg.as_str())
    })
}

fn raw_unit_api(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !UNIT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for f in &file.fns {
        if !f.is_pub || f.in_test || file.in_test(f.line) {
            continue;
        }
        for p in &f.params {
            if p.ty.iter().any(|t| t == "f64") && !name_is_unit_explicit(&p.name) {
                // Anchor at the fn line so one allow-comment above the
                // signature covers every parameter.
                out.push(rule.diag(
                    file,
                    f.line,
                    f.col,
                    format!(
                        "parameter `{}: f64` of `pub fn {}` should be a ppatc-units \
                         quantity (or carry a unit/dimensionless name)",
                        p.name, f.name
                    ),
                ));
            }
        }
        if f.ret.iter().any(|t| t == "f64") && !name_is_unit_explicit(&f.name) {
            out.push(rule.diag(
                file,
                f.line,
                f.col,
                format!(
                    "`pub fn {}` returns bare f64; return a ppatc-units quantity or \
                     give the fn a unit/dimensionless name",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// PL002: panic-in-lib
// ---------------------------------------------------------------------------

/// Macro names that abort at runtime.
pub(crate) const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Crates where panicking on broken fixtures is acceptable (analysis
/// harness and the integration-test shell).
const PANIC_EXEMPT_CRATES: &[&str] = &["bench", "suite", "lint"];

fn panic_in_lib(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if PANIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    // Sort fn bodies innermost-first so enclosing-fn lookup picks the
    // tightest span.
    let mut bodied: Vec<&FnItem> = file.fns.iter().filter(|f| f.body.is_some()).collect();
    bodied.sort_by_key(|f| f.body.map_or(0, |(a, b)| b - a));

    for (ci, &ti) in file.code.iter().enumerate() {
        let tok = &file.tokens[ti];
        if tok.kind != TokenKind::Ident || file.in_test(tok.line) {
            continue;
        }
        let next = file.code_token(ci + 1).map_or("", |t| t.text.as_str());
        let prev = if ci > 0 {
            file.code_token(ci - 1).map_or("", |t| t.text.as_str())
        } else {
            ""
        };
        let is_panic_macro = PANIC_MACROS.contains(&tok.text.as_str()) && next == "!";
        let is_unwrap_call =
            matches!(tok.text.as_str(), "unwrap" | "expect") && prev == "." && next == "(";
        if !is_panic_macro && !is_unwrap_call {
            continue;
        }
        // Exempt when the enclosing fn documents its panic contract.
        let enclosing = bodied
            .iter()
            .find(|f| f.body.is_some_and(|(a, b)| (a..=b).contains(&ci)));
        if enclosing.is_some_and(|f| f.doc.contains("# Panics")) {
            continue;
        }
        let what = if is_panic_macro {
            format!("`{}!`", tok.text)
        } else {
            format!("`.{}()`", tok.text)
        };
        let hint = match enclosing {
            Some(f) => format!(
                "document a `# Panics` contract on `fn {}` or return a Result",
                f.name
            ),
            None => "move it into test code or return a Result".to_string(),
        };
        out.push(rule.diag(
            file,
            tok.line,
            tok.col,
            format!("{what} in non-test library code; {hint}"),
        ));
    }

    // Doc-test bodies: fenced code in `///` / `//!` comments is compiled
    // and run by rustdoc, but the clippy unwrap/expect gate never sees it.
    let mut in_fence = false;
    for tok in &file.tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        if !tok.text.starts_with("///") && !tok.text.starts_with("//!") {
            continue;
        }
        if body.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence && (body.contains(".unwrap(") || body.contains(".expect(")) {
            out.push(
                rule.diag(
                    file,
                    tok.line,
                    tok.col,
                    "unwrap/expect in a doc example; use `?` with a hidden \
                 `# Ok::<(), _>(())` tail instead"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// PL003: must-use-try
// ---------------------------------------------------------------------------

fn must_use_try(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for f in &file.fns {
        if !f.name.starts_with("try_") || f.in_test || file.in_test(f.line) {
            continue;
        }
        if !f.ret.iter().any(|t| t == "Result") {
            out.push(rule.diag(
                file,
                f.line,
                f.col,
                format!("`fn {}` is named try_* but does not return Result", f.name),
            ));
        }
        if !f.attrs.iter().any(|a| a.starts_with("must_use")) {
            out.push(rule.diag(
                file,
                f.line,
                f.col,
                format!(
                    "`fn {}` must carry #[must_use = \"...\"] so dropped Results are \
                     caught at the call site",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// PL004: magic-constant
// ---------------------------------------------------------------------------

/// Crates exempt from the magic-constant rule: the units crate *defines*
/// the conversion factors, and the harness crates are exploratory.
const MAGIC_EXEMPT_CRATES: &[&str] = &["units", "bench", "suite", "lint"];

/// File-stem fragments that mark calibrated-parameter tables, where the
/// surrounding doc comments carry the units.
const TABLE_FILE_MARKERS: &[&str] = &["consts", "grid", "materials", "steps", "table"];

fn magic_constant(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if MAGIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let norm = file.path.replace('\\', "/");
    let stem = norm.rsplit('/').next().unwrap_or("");
    if TABLE_FILE_MARKERS.iter().any(|m| stem.contains(m)) {
        return;
    }
    let const_lines = const_item_lines(file);
    for &ti in &file.code {
        let tok = &file.tokens[ti];
        if tok.kind != TokenKind::Number
            || file.in_test(tok.line)
            || !(is_physical_constant_literal(&tok.text) || is_large_plain_literal(&tok.text))
        {
            continue;
        }
        if const_lines.contains(&tok.line) || file.line_has_comment(tok.line) {
            continue;
        }
        out.push(rule.diag(
            file,
            tok.line,
            tok.col,
            format!(
                "physical-constant literal `{}` needs a same-line `// unit` comment \
                 or a move into a named const",
                tok.text
            ),
        ));
    }
}

/// Lines covered by `const`/`static` items (through the terminating `;`).
fn const_item_lines(file: &SourceFile) -> Vec<u32> {
    let mut lines = Vec::new();
    let mut ci = 0usize;
    while ci < file.code.len() {
        let tok = &file.tokens[file.code[ci]];
        if tok.kind == TokenKind::Ident && (tok.text == "const" || tok.text == "static") {
            let start = tok.line;
            let mut depth = 0i32;
            let mut k = ci;
            let mut end = start;
            while let Some(t) = file.code_token(k) {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => {
                        end = t.line;
                        break;
                    }
                    _ => {}
                }
                end = t.line;
                k += 1;
            }
            lines.extend(start..=end);
            ci = k;
        }
        ci += 1;
    }
    lines
}

/// A plain-decimal literal (no exponent) of magnitude ≥ 1e3:
/// `1_000_000.0`, `86_400`, `44100.5`. Underscore separators do not hide
/// the magnitude. Pure powers of ten stay exempt only in scientific
/// notation (`1e6` reads as a scale factor; `1_000_000.0` reads as a
/// physical magnitude that needs its unit named). Integer powers of two
/// (`1024`, `65_536`) are structural sizes, not physical constants.
fn is_large_plain_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return false;
    }
    if lower.contains('e') {
        // Scientific notation is the other branch's business entirely.
        return false;
    }
    let Some(v) = crate::dims::literal_value(text) else {
        return false;
    };
    if !lower.contains('.') && v.fract() == 0.0 && (v as u64).is_power_of_two() {
        return false;
    }
    v >= 1e3
}

fn is_physical_constant_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase().replace('_', "");
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return false;
    }
    let Some(e_at) = lower.find('e') else {
        return false;
    };
    let mantissa: f64 = match lower[..e_at].parse() {
        Ok(m) => m,
        Err(_) => return false,
    };
    if mantissa <= 0.0 {
        return false;
    }
    let log = mantissa.log10();
    (log - log.round()).abs() > 1e-9
}

// ---------------------------------------------------------------------------
// PL005: non-exhaustive-error
// ---------------------------------------------------------------------------

fn non_exhaustive_error(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for e in &file.enums {
        if !e.is_pub || !e.name.ends_with("Error") || e.in_test || file.in_test(e.line) {
            continue;
        }
        if !e.attrs.iter().any(|a| a == "non_exhaustive") {
            out.push(rule.diag(
                file,
                e.line,
                e.col,
                format!(
                    "public error enum `{}` must be #[non_exhaustive] so adding \
                     variants stays non-breaking",
                    e.name
                ),
            ));
        }
    }
}
