//! The workspace symbol table: name-to-definition resolution for the
//! interprocedural passes.
//!
//! Resolution works over the flat list of [`FnSummary`]s produced by the
//! per-file stage and understands four call shapes:
//!
//! * **method syntax** `x.f(..)` — resolves to the unique `self`-receiver
//!   fn named `f` in the workspace (receiver types are not tracked, so
//!   uniqueness is the safety net);
//! * **type-qualified paths** `Energy::from_joules(..)`,
//!   `Self::helper(..)` — resolved against the `impl` owner recorded for
//!   each method, with the crate narrowed through the calling file's
//!   `use` imports or an explicit `ppatc_*`/`crate` path prefix;
//! * **module-qualified paths** `checkpoint::write_journal(..)`,
//!   `ppatc::eval::run(..)` — free fns matched by name, narrowed to the
//!   crate named by the path prefix (or the caller's own crate) and to
//!   the module file the qualifier names;
//! * **bare calls** `try_eval(..)` — first through the calling file's
//!   `use`-aliases (which give both the target name and the target
//!   crate), then the caller's own crate, then workspace-wide uniqueness.
//!
//! Every rule requires a *unique* surviving candidate; ambiguity yields no
//! edge. That keeps PL009 and the dimensional summaries conservative: a
//! wrong edge could manufacture findings, a missing edge only loses them.

use crate::callgraph::{CallRef, FnSummary};
use std::collections::HashMap;

/// An index over one batch of fn summaries (the whole workspace, or a
/// single file under `lint_source`).
pub struct SymbolTable<'a> {
    summaries: &'a [FnSummary],
    by_name: HashMap<&'a str, Vec<usize>>,
}

/// Maps a path-prefix segment to a workspace crate directory name.
/// `crate`/`self`/`super` resolve relative to the caller; the root crate's
/// lib name `ppatc` maps to `crates/core`; `ppatc_units` and friends map
/// by suffix. Anything else (`std`, `core::mem`, …) is foreign.
fn seg_to_crate<'s>(seg: &'s str, caller_crate: &'s str) -> Option<&'s str> {
    match seg {
        "crate" | "self" | "super" => Some(caller_crate),
        "ppatc" => Some("core"),
        _ => seg.strip_prefix("ppatc_"),
    }
}

/// `true` when `path` (workspace-relative, `/`-separated) is the module
/// file `module` — `crates/core/src/checkpoint.rs` for `checkpoint`, or
/// any file under a `checkpoint/` directory.
fn path_matches_module(path: &str, module: &str) -> bool {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    stem == module || path.contains(&format!("/{module}/"))
}

impl<'a> SymbolTable<'a> {
    /// Indexes `summaries` by fn name.
    pub fn build(summaries: &'a [FnSummary]) -> Self {
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, s) in summaries.iter().enumerate() {
            by_name.entry(s.name.as_str()).or_default().push(i);
        }
        Self { summaries, by_name }
    }

    fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The unique candidate named `name` passing `keep`, if any.
    fn unique(&self, name: &str, keep: impl Fn(&FnSummary) -> bool) -> Option<usize> {
        let mut found = None;
        for &i in self.candidates(name) {
            if keep(&self.summaries[i]) {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }

    /// Resolves one call made by `summaries[caller]` to a summary index.
    pub fn resolve(&self, caller: usize, call: &CallRef) -> Option<usize> {
        let from = &self.summaries[caller];
        let name = call.segs.last()?;
        if call.is_method {
            // `x.f()`: unique self-receiver fn named `f`.
            return self.unique(name, |s| s.has_self);
        }
        match call.segs.len() {
            1 => self.resolve_bare(from, name),
            _ => self.resolve_qualified(from, &call.segs),
        }
    }

    /// `f(..)` with no qualifier.
    fn resolve_bare(&self, from: &FnSummary, name: &str) -> Option<usize> {
        // A `use` import binding this name fixes both the target name and
        // (usually) the target crate; once an import matches, local
        // fallbacks must not fire — the name means the import.
        if let Some(u) = from.uses.iter().find(|u| u.alias == name) {
            let target = u.segs.last()?;
            let crate_hint = u
                .segs
                .first()
                .and_then(|s| seg_to_crate(s, &from.crate_name));
            return self.unique(target, |s| {
                s.owner.is_none() && !s.has_self && crate_hint.is_none_or(|c| s.crate_name == c)
            });
        }
        // Unique free fn in the caller's crate, then workspace-wide, then
        // the legacy any-fn fallback (kept for single-file `lint_source`
        // runs where impl context may be partial).
        self.unique(name, |s| {
            s.owner.is_none() && !s.has_self && s.crate_name == from.crate_name
        })
        .or_else(|| self.unique(name, |s| s.owner.is_none() && !s.has_self))
        .or_else(|| self.unique(name, |_| true))
    }

    /// `q::f(..)`, `A::B::f(..)`.
    fn resolve_qualified(&self, from: &FnSummary, segs: &[String]) -> Option<usize> {
        let name = segs.last()?;
        let qual = &segs[segs.len() - 2];
        if qual == "Self" {
            let owner = from.owner.as_deref()?;
            return self.unique(name, |s| s.owner.as_deref() == Some(owner));
        }
        if qual.chars().next().is_some_and(char::is_uppercase) {
            // Type-qualified: `Energy::from_joules`. The crate comes from
            // the longer path prefix when present, else from the import
            // that brought the type name in.
            let crate_hint = if segs.len() >= 3 {
                seg_to_crate(&segs[0], &from.crate_name)
            } else {
                from.uses
                    .iter()
                    .find(|u| u.alias == *qual)
                    .and_then(|u| u.segs.first())
                    .and_then(|s| seg_to_crate(s, &from.crate_name))
            };
            return self.unique(name, |s| {
                s.owner.as_deref() == Some(qual.as_str())
                    && crate_hint.is_none_or(|c| s.crate_name == c)
            });
        }
        // Module-qualified: `checkpoint::write_journal`,
        // `ppatc_fab::energy::per_wafer`. The first segment names the
        // crate (or the caller's own, via `crate`/`self`/`super`); when it
        // is itself the module qualifier, the caller's crate is searched.
        let crate_hint = seg_to_crate(&segs[0], &from.crate_name);
        let module = if segs.len() >= 3 || crate_hint.is_none() {
            Some(qual.as_str())
        } else {
            None // the qualifier IS the crate prefix: `ppatc_fab::f()`
        };
        let target_crate = crate_hint.unwrap_or(&from.crate_name);
        let narrowed = self.unique(name, |s| {
            s.owner.is_none()
                && !s.has_self
                && s.crate_name == target_crate
                && module.is_none_or(|m| path_matches_module(&s.path, m))
        });
        if narrowed.is_some() {
            return narrowed;
        }
        // `crate::deep::module::f()` paths whose middle segments are not
        // plain file names (re-exports): fall back to crate-wide
        // uniqueness, but only when the crate prefix was explicit.
        if crate_hint.is_some() {
            return self.unique(name, |s| {
                s.owner.is_none() && !s.has_self && s.crate_name == target_crate
            });
        }
        None
    }

    /// Resolves every call of every fn, producing the edge list the PL009
    /// taint pass and the cache's invalidation fingerprints run over.
    /// `edges[i]` is sorted and deduplicated.
    pub fn edges(&self) -> Vec<Vec<usize>> {
        (0..self.summaries.len())
            .map(|i| {
                let mut e: Vec<usize> = self.summaries[i]
                    .calls
                    .iter()
                    .filter_map(|c| self.resolve(i, c))
                    .collect();
                e.sort_unstable();
                e.dedup();
                e
            })
            .collect()
    }
}
