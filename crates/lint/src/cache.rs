//! The incremental analysis cache (`target/ppatc-lint.cache`).
//!
//! The per-file stage (lex, scan, body parse, PL001–PL005, PL010/PL012,
//! call-graph summaries) is a pure function of one file's text, and the
//! interprocedural findings of a file are a function of its text plus the
//! summaries of its call-graph neighborhood. The cache persists, per
//! file:
//!
//! * the FNV-1a hash of the source text,
//! * the pre-suppression per-file findings (everything except PL008,
//!   PL009, and PL016, which are recomputed at every assembly),
//! * the call-graph [`FnSummary`]s (panic sites, calls, imports, and the
//!   concurrency facts behind PL016 — enough to rerun PL009/PL016 and
//!   name resolution without re-parsing),
//! * the converged dimensional summaries ([`FnDim`]), including each
//!   fn's return-value interval from the range fixed point,
//! * the suppression directives and windows,
//! * the file-level dependency neighborhood (callees *and* callers).
//!
//! **Invalidation.** A cached file is reused only when (a) its content
//! hash matches, (b) every file in its dependency neighborhood is itself
//! reused — applied transitively, so a body edit re-analyzes the edited
//! file and everything whose inferred units could see it — and (c) the
//! workspace *symbol shape* (the sorted multiset of fn name/owner/crate/
//! path/receiver tuples) is unchanged, because name resolution is global:
//! adding a second `fn frobnicate` anywhere can re-route an edge in a
//! file that never changed. Body-only edits keep the shape stable, which
//! is what makes warm runs fast in practice.
//!
//! The format is a versioned, line-based, tab-separated text file written
//! atomically (temp file + rename); any parse irregularity discards the
//! whole cache. `f64` scales round-trip bit-exactly through hex bit
//! patterns, so a warm report is byte-identical to a cold one.

use crate::callgraph::{CallRef, FnSummary, PanicSite};
use crate::concurrency::{ConcFacts, SharedSite, WorkerCall};
use crate::diag::Diagnostic;
use crate::source::{AllowDirective, UseItem};
use crate::summaries::{AbsVal, FnDim};
use crate::vals::Range;
use crate::FileAnalysis;
use ppatc_units::registry::DimVec;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Format version; bump on any schema change.
const VERSION: &str = "ppatc-lint-cache v2";

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One file's persisted analysis.
pub(crate) struct Entry {
    /// Workspace-relative path.
    pub path: String,
    /// FNV-1a hash of the source text.
    pub content_hash: u64,
    /// Paths of the file's interprocedural neighborhood (sorted).
    pub deps: Vec<String>,
    /// Pre-suppression findings (all but PL008/PL009).
    pub found: Vec<Diagnostic>,
    /// Call-graph summaries, in declaration order.
    pub summaries: Vec<FnSummary>,
    /// Converged dimensional summaries, aligned with `summaries`.
    pub dims: Vec<FnDim>,
    /// Suppression directives as written.
    pub allow_directives: Vec<AllowDirective>,
    /// Per-rule suppression windows.
    pub suppressions: Vec<(String, u32, u32)>,
}

/// A parsed cache file.
pub(crate) struct CacheFile {
    /// Symbol-shape hash of the run that wrote the cache.
    pub shape: u64,
    /// Entries, in the writing run's input order.
    pub entries: Vec<Entry>,
}

/// Converts a cache entry back into the pipeline's per-file product.
pub(crate) fn to_analysis(e: Entry) -> FileAnalysis {
    FileAnalysis {
        path: e.path,
        content_hash: e.content_hash,
        found: e.found,
        summaries: e.summaries,
        allow_directives: e.allow_directives,
        suppressions: e.suppressions,
        fresh: None,
        cached_dims: Some(e.dims),
    }
}

/// Hashes the resolution-relevant shape of the workspace symbol table:
/// per fn, its name, `impl` owner, crate, defining path, and receiver
/// flag. Bodies, line numbers, panic sites, and findings are excluded, so
/// body-only edits keep the shape stable.
pub(crate) fn symbol_shape(summaries: &[FnSummary]) -> u64 {
    symbol_shape_iter(summaries.iter())
}

/// [`symbol_shape`] over any summary iterator.
pub(crate) fn symbol_shape_iter<'a, I: Iterator<Item = &'a FnSummary>>(iter: I) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |s: &str| {
        for &b in s.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for s in iter {
        eat(&s.name);
        eat(s.owner.as_deref().unwrap_or("-"));
        eat(&s.crate_name);
        eat(&s.path);
        eat(if s.has_self { "1" } else { "0" });
    }
    h
}

/// The cache file's location under the workspace root.
fn cache_file(root: &Path) -> PathBuf {
    root.join("target").join("ppatc-lint.cache")
}

// --- field escaping ---------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn enc_absval(v: &AbsVal) -> String {
    match v {
        AbsVal::Unknown => "U".to_string(),
        AbsVal::Number => "N".to_string(),
        AbsVal::Wall => "W".to_string(),
        AbsVal::Typed(name) => format!("T:{name}"),
        AbsVal::Raw { dim, scale } => format!(
            "R:{}:{}:{}:{}:{}:{}:{}",
            dim.energy,
            dim.time,
            dim.length,
            dim.carbon,
            dim.charge,
            dim.currency,
            scale.map_or("-".to_string(), |s| format!("{:016x}", s.to_bits())),
        ),
    }
}

fn dec_absval(s: &str) -> Option<AbsVal> {
    match s {
        "U" => return Some(AbsVal::Unknown),
        "N" => return Some(AbsVal::Number),
        "W" => return Some(AbsVal::Wall),
        _ => {}
    }
    if let Some(name) = s.strip_prefix("T:") {
        return Some(AbsVal::Typed(name.to_string()));
    }
    let rest = s.strip_prefix("R:")?;
    let parts: Vec<&str> = rest.split(':').collect();
    if parts.len() != 7 {
        return None;
    }
    let e: [i8; 6] = [
        parts[0].parse().ok()?,
        parts[1].parse().ok()?,
        parts[2].parse().ok()?,
        parts[3].parse().ok()?,
        parts[4].parse().ok()?,
        parts[5].parse().ok()?,
    ];
    let scale = if parts[6] == "-" {
        None
    } else {
        Some(f64::from_bits(u64::from_str_radix(parts[6], 16).ok()?))
    };
    Some(AbsVal::Raw {
        dim: DimVec::of(e[0], e[1], e[2], e[3], e[4], e[5]),
        scale,
    })
}

/// Encodes a [`Range`] as `lo:hi:nan:float:nonzero` with bit-exact hex
/// bounds, so warm reports stay byte-identical to cold ones.
fn enc_range(r: &Range) -> String {
    format!(
        "{:016x}:{:016x}:{}:{}:{}",
        r.lo.to_bits(),
        r.hi.to_bits(),
        u8::from(r.nan),
        u8::from(r.float),
        u8::from(r.nonzero),
    )
}

fn dec_range(s: &str) -> Option<Range> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 5 {
        return None;
    }
    let flag = |f: &str| match f {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    };
    Some(Range {
        lo: f64::from_bits(u64::from_str_radix(parts[0], 16).ok()?),
        hi: f64::from_bits(u64::from_str_radix(parts[1], 16).ok()?),
        nan: flag(parts[2])?,
        float: flag(parts[3])?,
        nonzero: flag(parts[4])?,
    })
}

// --- writing ----------------------------------------------------------------

/// Serializes and atomically writes the cache. Best-effort: callers
/// ignore the result (a missing cache only costs a cold run).
pub(crate) fn store(root: &Path, shape: u64, entries: &[Entry]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str(VERSION);
    out.push('\n');
    out.push_str(&format!("shape\t{shape:016x}\n"));
    for e in entries {
        out.push_str(&format!(
            "file\t{}\t{:016x}\n",
            esc(&e.path),
            e.content_hash
        ));
        for d in &e.deps {
            out.push_str(&format!("dep\t{}\n", esc(d)));
        }
        // `use` imports are per-file resolution context (identical on
        // every summary); store them once.
        if let Some(s) = e.summaries.first() {
            for u in &s.uses {
                out.push_str(&format!("use\t{}", esc(&u.alias)));
                for seg in &u.segs {
                    out.push_str(&format!("\t{}", esc(seg)));
                }
                out.push('\n');
            }
        }
        for a in &e.allow_directives {
            out.push_str(&format!(
                "allow\t{}\t{}\t{}\t{}",
                a.line, a.col, a.first, a.last
            ));
            for r in &a.rules {
                out.push_str(&format!("\t{}", esc(r)));
            }
            out.push('\n');
        }
        for (r, a, b) in &e.suppressions {
            out.push_str(&format!("supp\t{}\t{a}\t{b}\n", esc(r)));
        }
        for d in &e.found {
            out.push_str(&format!(
                "diag\t{}\t{}\t{}\t{}\n",
                d.code,
                d.line,
                d.col,
                esc(&d.message)
            ));
        }
        for (s, fd) in e.summaries.iter().zip(&e.dims) {
            out.push_str(&format!(
                "fn\t{}\t{}\t{}\t{}\t{}\t{}\n",
                esc(&s.name),
                esc(s.owner.as_deref().unwrap_or("-")),
                s.line,
                s.col,
                u8::from(s.has_panics_doc),
                u8::from(s.has_self),
            ));
            for p in &s.panics {
                out.push_str(&format!("panic\t{}\t{}\n", p.line, esc(&p.what)));
            }
            for c in &s.calls {
                out.push_str(&format!("call\t{}", u8::from(c.is_method)));
                for seg in &c.segs {
                    out.push_str(&format!("\t{}", esc(seg)));
                }
                out.push('\n');
            }
            for (kind, sites) in [("s", &s.conc.shared), ("w", &s.conc.worker_shared)] {
                for site in sites {
                    out.push_str(&format!(
                        "shr\t{kind}\t{}\t{}\t{}\n",
                        esc(&site.name),
                        site.line,
                        site.col
                    ));
                }
            }
            for c in &s.conc.worker_calls {
                out.push_str(&format!(
                    "wcal\t{}\t{}\t{}",
                    c.line,
                    c.col,
                    u8::from(c.call.is_method)
                ));
                for seg in &c.call.segs {
                    out.push_str(&format!("\t{}", esc(seg)));
                }
                out.push('\n');
            }
            out.push_str(&format!(
                "dim\t{}\t{}",
                enc_absval(&fd.ret),
                enc_range(&fd.ret_range)
            ));
            for p in &fd.params {
                out.push_str(&format!("\t{}", enc_absval(p)));
            }
            out.push('\n');
        }
    }

    let target = root.join("target");
    fs::create_dir_all(&target)?;
    let tmp = target.join(format!("ppatc-lint.cache.tmp.{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(out.as_bytes())?;
    }
    fs::rename(&tmp, cache_file(root))
}

// --- reading ----------------------------------------------------------------

/// Loads and parses the cache; `None` on absence, version mismatch, or
/// any malformed record (the whole cache is discarded, never partially
/// trusted).
pub(crate) fn load(root: &Path) -> Option<CacheFile> {
    let text = fs::read_to_string(cache_file(root)).ok()?;
    parse(&text)
}

fn parse(text: &str) -> Option<CacheFile> {
    let mut lines = text.lines();
    if lines.next()? != VERSION {
        return None;
    }
    let shape_line = lines.next()?;
    let shape = u64::from_str_radix(shape_line.strip_prefix("shape\t")?, 16).ok()?;

    // Diagnostic identity is reconstructed from the live rule catalog, so
    // a cache naming an unknown code is simply invalid.
    let catalog = crate::rules::all();

    let mut entries: Vec<Entry> = Vec::new();
    let mut uses: Vec<UseItem> = Vec::new();
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied()? {
            "file" => {
                if fields.len() != 3 {
                    return None;
                }
                uses = Vec::new();
                entries.push(Entry {
                    path: unesc(fields[1])?,
                    content_hash: u64::from_str_radix(fields[2], 16).ok()?,
                    deps: Vec::new(),
                    found: Vec::new(),
                    summaries: Vec::new(),
                    dims: Vec::new(),
                    allow_directives: Vec::new(),
                    suppressions: Vec::new(),
                });
            }
            "dep" => {
                if fields.len() != 2 {
                    return None;
                }
                entries.last_mut()?.deps.push(unesc(fields[1])?);
            }
            "use" => {
                if fields.len() < 2 {
                    return None;
                }
                let mut segs = Vec::with_capacity(fields.len() - 2);
                for f in &fields[2..] {
                    segs.push(unesc(f)?);
                }
                uses.push(UseItem {
                    alias: unesc(fields[1])?,
                    segs,
                });
                entries.last()?;
            }
            "allow" => {
                if fields.len() < 6 {
                    return None;
                }
                let mut rules = Vec::with_capacity(fields.len() - 5);
                for f in &fields[5..] {
                    rules.push(unesc(f)?);
                }
                entries.last_mut()?.allow_directives.push(AllowDirective {
                    line: fields[1].parse().ok()?,
                    col: fields[2].parse().ok()?,
                    first: fields[3].parse().ok()?,
                    last: fields[4].parse().ok()?,
                    rules,
                });
            }
            "supp" => {
                if fields.len() != 4 {
                    return None;
                }
                entries.last_mut()?.suppressions.push((
                    unesc(fields[1])?,
                    fields[2].parse().ok()?,
                    fields[3].parse().ok()?,
                ));
            }
            "diag" => {
                if fields.len() != 5 {
                    return None;
                }
                let rule = catalog.iter().find(|r| r.code == fields[1])?;
                let entry = entries.last_mut()?;
                entry.found.push(Diagnostic {
                    code: rule.code,
                    rule: rule.name,
                    severity: rule.severity,
                    path: entry.path.clone(),
                    line: fields[2].parse().ok()?,
                    col: fields[3].parse().ok()?,
                    message: unesc(fields[4])?,
                });
            }
            "fn" => {
                if fields.len() != 7 {
                    return None;
                }
                let entry = entries.last_mut()?;
                let owner = unesc(fields[2])?;
                entry.summaries.push(FnSummary {
                    path: entry.path.clone(),
                    crate_name: crate::source::crate_name_of(&entry.path),
                    name: unesc(fields[1])?,
                    owner: (owner != "-").then_some(owner),
                    line: fields[3].parse().ok()?,
                    col: fields[4].parse().ok()?,
                    has_panics_doc: fields[5] == "1",
                    has_self: fields[6] == "1",
                    panics: Vec::new(),
                    calls: Vec::new(),
                    conc: ConcFacts::default(),
                    uses: uses.clone(),
                });
            }
            "panic" => {
                if fields.len() != 3 {
                    return None;
                }
                entries
                    .last_mut()?
                    .summaries
                    .last_mut()?
                    .panics
                    .push(PanicSite {
                        line: fields[1].parse().ok()?,
                        what: unesc(fields[2])?,
                    });
            }
            "call" => {
                if fields.len() < 3 {
                    return None;
                }
                let mut segs = Vec::with_capacity(fields.len() - 2);
                for f in &fields[2..] {
                    segs.push(unesc(f)?);
                }
                entries
                    .last_mut()?
                    .summaries
                    .last_mut()?
                    .calls
                    .push(CallRef {
                        segs,
                        is_method: fields[1] == "1",
                    });
            }
            "shr" => {
                if fields.len() != 5 {
                    return None;
                }
                let site = SharedSite {
                    name: unesc(fields[2])?,
                    line: fields[3].parse().ok()?,
                    col: fields[4].parse().ok()?,
                };
                let conc = &mut entries.last_mut()?.summaries.last_mut()?.conc;
                match fields[1] {
                    "s" => conc.shared.push(site),
                    "w" => conc.worker_shared.push(site),
                    _ => return None,
                }
            }
            "wcal" => {
                if fields.len() < 5 {
                    return None;
                }
                let mut segs = Vec::with_capacity(fields.len() - 4);
                for f in &fields[4..] {
                    segs.push(unesc(f)?);
                }
                entries
                    .last_mut()?
                    .summaries
                    .last_mut()?
                    .conc
                    .worker_calls
                    .push(WorkerCall {
                        call: CallRef {
                            segs,
                            is_method: fields[3] == "1",
                        },
                        line: fields[1].parse().ok()?,
                        col: fields[2].parse().ok()?,
                    });
            }
            "dim" => {
                if fields.len() < 3 {
                    return None;
                }
                let ret = dec_absval(fields[1])?;
                let ret_range = dec_range(fields[2])?;
                let mut params = Vec::with_capacity(fields.len() - 3);
                for f in &fields[3..] {
                    params.push(dec_absval(f)?);
                }
                let entry = entries.last_mut()?;
                entry.dims.push(FnDim {
                    params,
                    ret,
                    ret_range,
                });
                if entry.dims.len() > entry.summaries.len() {
                    return None;
                }
            }
            _ => return None,
        }
    }
    // Every fn must carry a dimensional summary.
    if entries.iter().any(|e| e.dims.len() != e.summaries.len()) {
        return None;
    }
    Some(CacheFile { shape, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "tab\there", "nl\nthere", "back\\slash", ""] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn absval_roundtrip() {
        let vals = [
            AbsVal::Unknown,
            AbsVal::Number,
            AbsVal::Wall,
            AbsVal::Typed("Energy".to_string()),
            AbsVal::Raw {
                dim: DimVec::of(1, -1, 0, 0, 0, 0),
                scale: Some(1e-12),
            },
            AbsVal::Raw {
                dim: DimVec::of(0, 1, 0, 0, 0, 0),
                scale: None,
            },
        ];
        for v in &vals {
            assert_eq!(dec_absval(&enc_absval(v)).as_ref(), Some(v));
        }
    }

    #[test]
    fn range_roundtrip_is_bit_exact() {
        let vals = [
            Range::TOP,
            Range::point(0.0),
            Range::point(-0.0),
            Range {
                lo: 1e-300,
                hi: f64::INFINITY,
                nan: false,
                float: true,
                nonzero: true,
            },
            Range {
                lo: f64::NEG_INFINITY,
                hi: -3.5,
                nan: true,
                float: true,
                nonzero: false,
            },
        ];
        for v in &vals {
            let back = dec_range(&enc_range(v)).expect("roundtrip");
            assert_eq!(back.lo.to_bits(), v.lo.to_bits());
            assert_eq!(back.hi.to_bits(), v.hi.to_bits());
            assert_eq!(
                (back.nan, back.float, back.nonzero),
                (v.nan, v.float, v.nonzero)
            );
        }
        assert!(dec_range("0:0:0:0").is_none());
        assert!(dec_range("zz:0:0:0:0").is_none());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn version_mismatch_discards_cache() {
        assert!(parse("ppatc-lint-cache v0\nshape\t0\n").is_none());
    }

    #[test]
    fn truncated_records_discard_cache() {
        let good = format!("{VERSION}\nshape\t00000000000000aa\n");
        assert!(parse(&good).is_some());
        assert!(parse(&format!("{good}file\tonly-two-fields\n")).is_none());
        assert!(parse(&format!("{good}dep\tx\n")).is_none()); // dep before file
    }
}
